module graphio

go 1.22
