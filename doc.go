// Package graphio is a from-scratch Go reproduction of "Spectral Lower
// Bounds on the I/O Complexity of Computation Graphs" (Saachi Jain and
// Matei Zaharia, SPAA 2020).
//
// The library computes lower bounds on the non-trivial I/O any evaluation
// order of a computation DAG must incur on a two-level memory hierarchy
// with fast memory of size M. The primary method (internal/core) bounds
// I/O by the smallest eigenvalues of the graph's out-degree-normalized
// Laplacian (Theorems 4-6 of the paper); baselines, closed-form spectra,
// generators, a computation tracer, a pebble-game simulator, and an
// experiment harness that regenerates every figure of the paper's
// evaluation live in the sibling internal packages. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for reproduction results; the
// runnable entry points are cmd/specio, cmd/experiments, and the programs
// under examples/.
package graphio
