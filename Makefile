# Convenience targets; everything is plain `go` underneath (no deps).

.PHONY: build test test-race vet vet-strict lint lint-sarif lint-fixtures bench bench-json bench-check bench-history cover experiments experiments-quick verify-resume verify-dist verify-graphiod examples fmt

build:
	go build ./...

vet:
	go vet ./...

# Repo-specific invariants (durability, cancellation, float comparisons,
# typed errors, clock injection, metric naming, error handling) enforced by
# the stdlib-only analyzer in internal/lint. Non-zero exit on any finding;
# suppress individual lines with `//lint:ignore <rule> <reason>`.
lint:
	go run ./cmd/graphiolint ./...

# The same gate, also writing a SARIF 2.1.0 log for code-scanning uploads
# (the CI lint job attaches lint.sarif as a build artifact).
lint-sarif:
	go run ./cmd/graphiolint -format sarif -o lint.sarif ./...

# The analyzer's own test suite: `// want` hit/clean fixtures per rule,
# call-graph unit tests, SARIF golden, baseline round-trip, directives.
lint-fixtures:
	go test -timeout 10m ./internal/lint/

# The strictest static gate the repo has (used by the CI lint job):
# gofmt cleanliness, the full vet suite, then the repo's own analyzer.
vet-strict:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
	go run ./cmd/graphiolint ./...

test:
	go vet ./...
	go test ./...

test-race:
	go test -race ./...

cover:
	go test -cover ./internal/...

bench:
	go test -bench=. -benchmem -benchtime=1x .

# Real benchmark timings (not the 1x smoke run) as machine-readable JSON:
# name -> {ns_per_op, allocs_per_op, ...} for regression tracking across PRs.
bench-json:
	go test -bench=. -benchmem -benchtime=3x . | go run ./cmd/benchjson -o BENCH_PR1.json

# CI regression gate: run the benchmarks fresh and diff the timings against
# the committed BENCH_PR1.json baseline. Exits non-zero if any ns_per_op
# regressed by more than 20% (see cmd/obsreport -fail-over).
bench-check:
	go test -bench=. -benchmem -benchtime=3x . | go run ./cmd/benchjson -o /tmp/bench-current.json
	go run ./cmd/obsreport -fail-over 20 BENCH_PR1.json /tmp/bench-current.json

# Multi-run trend ledger: run the benchmarks, append this run (git rev,
# platform, ns/op per benchmark) to results/bench_history.jsonl, then
# compare the latest run against the median of the prior runs. Exits
# non-zero when any benchmark regressed more than 20% against that median;
# harmless on the first run (nothing to compare against yet).
bench-history:
	go test -bench=. -benchmem -benchtime=3x . | go run ./cmd/benchjson -o /tmp/bench-current.json -history results/bench_history.jsonl
	go run ./cmd/obsreport trend -fail-over 20 results/bench_history.jsonl

experiments:
	go run ./cmd/experiments -profile default -out results

experiments-quick:
	go run ./cmd/experiments -profile quick

# Crash-consistency gate: short sweep, SIGKILL between experiment commits,
# resume, require byte-identical artifacts versus an uninterrupted run.
verify-resume:
	sh scripts/verify_resume.sh

# Distributed chaos gate: coordinator + three workers (one SIGKILLed
# mid-shard, one stalled past lease expiry), coordinator SIGKILLed and
# restarted with -resume; the merged artifacts must be byte-identical to
# a single-process sweep and the manifest must still resume cleanly.
verify-dist:
	sh scripts/verify_dist.sh

# Daemon chaos gate: graphiod SIGKILLed with jobs in flight, restarted on
# the same data dir; the WAL replay must finish every accepted job, a
# resubmission must be a byte-identical cache hit, an unmeetable deadline
# must fail typed while siblings complete, and SIGTERM must drain cleanly.
verify-graphiod:
	sh scripts/verify_graphiod.sh

examples:
	go run ./examples/quickstart
	go run ./examples/fft -max-l 9
	go run ./examples/tsp -cities 10
	go run ./examples/tracer -size 48
	go run ./examples/parallel
	go run ./examples/hierarchy -graph-level 7

fmt:
	gofmt -w .
