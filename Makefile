# Convenience targets; everything is plain `go` underneath (no deps).

.PHONY: build test vet bench cover experiments experiments-quick examples fmt

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

cover:
	go test -cover ./internal/...

bench:
	go test -bench=. -benchmem -benchtime=1x .

experiments:
	go run ./cmd/experiments -profile default -out results

experiments-quick:
	go run ./cmd/experiments -profile quick

examples:
	go run ./examples/quickstart
	go run ./examples/fft -max-l 9
	go run ./examples/tsp -cities 10
	go run ./examples/tracer -size 48
	go run ./examples/parallel
	go run ./examples/hierarchy -graph-level 7

fmt:
	gofmt -w .
