package graphio_test

import (
	"math/rand"
	"testing"

	"graphio/internal/analytic"
	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/mincut"
	"graphio/internal/pebble"
	"graphio/internal/redblue"
)

// upperBound returns the best simulated I/O found for g at memory M:
// exhaustive over all topological orders when the graph is tiny, heuristic
// order search otherwise. Any lower bound exceeding this is a bug.
func upperBound(t *testing.T, g *graph.Graph, M int) int {
	t.Helper()
	if res, _, err := pebble.ExhaustiveBest(g, M, pebble.Belady, 20000); err == nil {
		return res.Total()
	}
	res, _, _, err := pebble.BestOrder(g, M, pebble.Belady, 30, 1)
	if err != nil {
		t.Fatalf("no feasible order for %s at M=%d: %v", g.Name(), M, err)
	}
	return res.Total()
}

// checkSandwich asserts lower ≤ upper for every bound the module produces.
func checkSandwich(t *testing.T, g *graph.Graph, M int) {
	t.Helper()
	if g.MaxInDeg() > M {
		return // infeasible point; the paper drops these too
	}
	ub := upperBound(t, g, M)
	for _, kind := range []laplacian.Kind{laplacian.OutDegreeNormalized, laplacian.Original} {
		res, err := core.SpectralBound(g, core.Options{M: M, Laplacian: kind})
		if err != nil {
			t.Fatalf("%s M=%d: %v", g.Name(), M, err)
		}
		if res.Bound > float64(ub)+1e-6 {
			t.Errorf("%s M=%d kind=%v: spectral lower bound %.3f exceeds simulated upper bound %d",
				g.Name(), M, kind, res.Bound, ub)
		}
	}
	mc, err := mincut.ConvexMinCutBound(g, mincut.Options{M: M})
	if err != nil {
		t.Fatalf("%s M=%d: %v", g.Name(), M, err)
	}
	if mc.Bound > float64(ub)+1e-6 {
		t.Errorf("%s M=%d: min-cut lower bound %.3f exceeds simulated upper bound %d",
			g.Name(), M, mc.Bound, ub)
	}
}

func TestSandwichStructuredGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		gen.InnerProduct(2),
		gen.InnerProduct(4),
		gen.FFT(2),
		gen.FFT(3),
		gen.FFT(4),
		gen.NaiveMatMul(2),
		gen.Strassen(2),
		gen.BellmanHeldKarp(3),
		gen.BellmanHeldKarp(4),
		gen.Grid2D(4, 4),
		gen.BinaryTreeReduce(3),
		gen.Chain(10),
	}
	for _, g := range graphs {
		for _, M := range []int{2, 4, 8} {
			checkSandwich(t, g, M)
		}
	}
}

func TestSandwichRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(25)
		g := gen.ErdosRenyiDAG(n, 0.15+0.3*rng.Float64(), rng.Int63())
		M := 2 + rng.Intn(6)
		checkSandwich(t, g, M)
	}
	for trial := 0; trial < 8; trial++ {
		g := gen.RandomLayeredDAG(2+rng.Intn(4), 2+rng.Intn(6), 1+rng.Intn(3), rng.Int63())
		checkSandwich(t, g, 3+rng.Intn(4))
	}
}

func TestClosedFormsBelowSimulatedUpperBounds(t *testing.T) {
	// §5.1/§5.2 closed forms are lower bounds on J*, so they must sit
	// below any simulated schedule too.
	for _, l := range []int{3, 4} {
		for _, M := range []int{2, 4} {
			gFFT := gen.FFT(l)
			ubF := upperBound(t, gFFT, M)
			if cf, _ := analytic.FFTClosedForm(l, M); cf > float64(ubF)+1e-6 {
				t.Errorf("FFT l=%d M=%d: closed form %.3f > simulated %d", l, M, cf, ubF)
			}
			gH := gen.BellmanHeldKarp(l)
			if gH.MaxInDeg() > M {
				continue
			}
			ubH := upperBound(t, gH, M)
			if cf, _ := analytic.HypercubeBoundOptimal(l, M); cf > float64(ubH)+1e-6 {
				t.Errorf("BHK l=%d M=%d: closed form %.3f > simulated %d", l, M, cf, ubH)
			}
		}
	}
}

func TestExactSandwich(t *testing.T) {
	// On tiny graphs the red-blue solver gives the *true* J*, so the chain
	// lower ≤ J* ≤ simulated-best must hold with the real optimum in the
	// middle — the strongest validation this module can run.
	rng := rand.New(rand.NewSource(99))
	graphs := []*graph.Graph{
		gen.InnerProduct(2),
		gen.InnerProduct(3),
		gen.FFT(2),
		gen.Grid2D(3, 4),
		gen.BinaryTreeReduce(3),
	}
	for trial := 0; trial < 8; trial++ {
		graphs = append(graphs, gen.ErdosRenyiDAG(5+rng.Intn(8), 0.3, rng.Int63()))
	}
	for _, g := range graphs {
		for _, M := range []int{2, 3} {
			if g.MaxInDeg() > M {
				continue
			}
			exact, err := redblue.Optimal(g, M, redblue.Options{})
			if err != nil {
				t.Fatalf("%s M=%d: %v", g.Name(), M, err)
			}
			for _, kind := range []laplacian.Kind{laplacian.OutDegreeNormalized, laplacian.Original} {
				res, err := core.SpectralBound(g, core.Options{M: M, Laplacian: kind})
				if err != nil {
					t.Fatal(err)
				}
				if res.Bound > float64(exact.IO)+1e-6 {
					t.Errorf("%s M=%d: spectral %.2f exceeds exact J* %d", g.Name(), M, res.Bound, exact.IO)
				}
			}
			mc, err := mincut.ConvexMinCutBound(g, mincut.Options{M: M})
			if err != nil {
				t.Fatal(err)
			}
			if mc.Bound > float64(exact.IO)+1e-6 {
				t.Errorf("%s M=%d: min-cut %.2f exceeds exact J* %d", g.Name(), M, mc.Bound, exact.IO)
			}
			if sim, _, err := pebble.ExhaustiveBest(g, M, pebble.Belady, 20000); err == nil {
				if exact.IO > sim.Total() {
					t.Errorf("%s M=%d: exact J* %d above simulated %d", g.Name(), M, exact.IO, sim.Total())
				}
			}
		}
	}
}

func TestParallelBoundBelowSerialUpperBound(t *testing.T) {
	// Theorem 6 bounds the I/O of the busiest of p processors, which can
	// never exceed a single-processor schedule's total I/O.
	g := gen.FFT(4)
	ub := upperBound(t, g, 4)
	for _, p := range []int{2, 4} {
		res, err := core.SpectralBound(g, core.Options{M: 4, Processors: p})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bound > float64(ub)+1e-6 {
			t.Errorf("p=%d: parallel bound %.3f exceeds serial upper bound %d", p, res.Bound, ub)
		}
	}
}
