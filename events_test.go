package graphio_test

// End-to-end check of the ISSUE 6 acceptance criterion: with the event
// collector on (the -events-out path), all three bound engines — spectral
// (Lanczos/Chebyshev + bisection), min-cut (Dinic), and pebble — emit
// per-iteration probe events, and the dumped log replays as a CRC-clean
// persist journal.

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/linalg"
	"graphio/internal/mincut"
	"graphio/internal/obs"
	"graphio/internal/pebble"
	"graphio/internal/persist"
)

func TestAllBoundEnginesEmitEvents(t *testing.T) {
	obs.ResetEvents()
	obs.StartEvents()
	defer func() {
		obs.StopEvents()
		obs.ResetEvents()
	}()

	g := gen.FFT(4)

	// Spectral engine, forced onto the iterative solvers (SolverAuto would
	// take the dense path at this size and skip the instrumented loops).
	for _, s := range []core.Solver{core.SolverLanczos, core.SolverChebyshev} {
		if _, err := core.SpectralBound(g, core.Options{M: 4, Solver: s, DenseCutoff: 1}); err != nil {
			t.Fatalf("spectral bound (solver %v): %v", s, err)
		}
	}
	// Bisection refinements (the spectral cross-check path).
	if _, err := linalg.TridiagEigBisect([]float64{2, 3, 4, 5}, []float64{1, 1, 1}, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Min-cut engine: Dinic phases + per-flow sweep events.
	if _, err := mincut.ConvexMinCutBound(g, mincut.Options{M: 4}); err != nil {
		t.Fatal(err)
	}
	// Pebble engine: order-search candidates + sampled simulation steps.
	if _, _, _, err := pebble.BestOrder(g, 4, pebble.Belady, 2, 1); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := obs.DumpEvents(path); err != nil {
		t.Fatal(err)
	}
	recs, err := persist.ReadJournal(path)
	if err != nil {
		t.Fatalf("event log not a clean journal: %v", err)
	}
	probes := map[string]int{}
	for _, r := range recs {
		var ev struct {
			Probe string `json:"probe"`
		}
		if err := json.Unmarshal(r, &ev); err != nil {
			t.Fatalf("unparseable event payload %s: %v", r, err)
		}
		probes[ev.Probe]++
	}
	for _, want := range []string{
		"linalg.lanczos", "linalg.cheb", "linalg.bisect",
		"maxflow.dinic", "mincut.sweep",
		"pebble.simulate", "pebble.best_order",
	} {
		if probes[want] == 0 {
			t.Errorf("no events from probe %s (got %v)", want, probes)
		}
	}
}
