package graphio_test

// One benchmark per paper artifact (Figures 7-11, the Section 5 closed-form
// tables) plus solver and simulator ablations. Graph construction happens
// outside the timed region; each iteration re-runs the bound computation
// the corresponding figure point needs. go test -bench=. -benchmem runs
// them all; EXPERIMENTS.md records a reference run.

import (
	"testing"

	"graphio/internal/analytic"
	"graphio/internal/core"
	"graphio/internal/expansion"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/hier"
	"graphio/internal/hongkung"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
	"graphio/internal/mincut"
	"graphio/internal/pebble"
	"graphio/internal/redblue"
)

func benchSpectral(b *testing.B, g *graph.Graph, M int, solver core.Solver) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SpectralBound(g, core.Options{M: M, Solver: solver}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMinCut(b *testing.B, g *graph.Graph, M int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mincut.ConvexMinCutBound(g, mincut.Options{M: M}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBound is the canonical end-to-end bound computation used to
// check that the observability layer costs nothing when disabled: the
// acceptance bar is <2% regression versus a build without the hooks.
func BenchmarkBound(b *testing.B) { benchSpectral(b, gen.FFT(7), 16, core.SolverAuto) }

// Figure 7: FFT bound points (spectral and baseline).

func BenchmarkFig7FFTSpectralL8(b *testing.B)  { benchSpectral(b, gen.FFT(8), 4, core.SolverAuto) }
func BenchmarkFig7FFTSpectralL10(b *testing.B) { benchSpectral(b, gen.FFT(10), 4, core.SolverAuto) }
func BenchmarkFig7FFTMinCutL5(b *testing.B)    { benchMinCut(b, gen.FFT(5), 4) }

// Figure 8: naive matrix multiplication (n-ary sums, as in the paper).

func BenchmarkFig8MatMulSpectralN8(b *testing.B) {
	benchSpectral(b, gen.NaiveMatMulNary(8), 32, core.SolverAuto)
}
func BenchmarkFig8MatMulSpectralN16(b *testing.B) {
	benchSpectral(b, gen.NaiveMatMulNary(16), 32, core.SolverAuto)
}
func BenchmarkFig8MatMulMinCutN4(b *testing.B) { benchMinCut(b, gen.NaiveMatMulNary(4), 32) }

// Figure 9: Strassen multiplication.

func BenchmarkFig9StrassenSpectralN8(b *testing.B) {
	benchSpectral(b, gen.Strassen(8), 8, core.SolverAuto)
}
func BenchmarkFig9StrassenMinCutN4(b *testing.B) { benchMinCut(b, gen.Strassen(4), 8) }

// Figure 10: Bellman-Held-Karp hypercube.

func BenchmarkFig10BHKSpectralL10(b *testing.B) {
	benchSpectral(b, gen.BellmanHeldKarp(10), 16, core.SolverAuto)
}
func BenchmarkFig10BHKSpectralL12(b *testing.B) {
	benchSpectral(b, gen.BellmanHeldKarp(12), 16, core.SolverAuto)
}

// Figure 11 is the runtime comparison itself: spectral vs min-cut on the
// same BHK instance.

func BenchmarkFig11BHKSpectralL8(b *testing.B) {
	benchSpectral(b, gen.BellmanHeldKarp(8), 16, core.SolverAuto)
}
func BenchmarkFig11BHKMinCutL8(b *testing.B) { benchMinCut(b, gen.BellmanHeldKarp(8), 16) }

// Section 5.1 table: hypercube closed form (exact spectrum + k sweep).

func BenchmarkTableHypercubeClosedForm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		analytic.HypercubeBoundOptimal(14, 16)
	}
}

// Section 5.2 table: butterfly closed-form spectrum (Theorem 7) and bound.

func BenchmarkTableFFTClosedFormSpectrum(b *testing.B) {
	b.ReportAllocs()
	n := (12 + 1) << 12
	for i := 0; i < b.N; i++ {
		spec := analytic.ButterflySpectrum(12)
		core.BoundFromEigenvalues(spec, n, 4, 1, 2)
	}
}

// Section 5.3 table: Erdős-Rényi sampled bound.

func BenchmarkTableERSpectral(b *testing.B) {
	g := gen.ErdosRenyiDAG(512, 12*6.24/511, 1) // p0·log(512)/(n−1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SpectralBound(g, core.Options{M: 4, Laplacian: laplacian.Original}); err != nil {
			b.Fatal(err)
		}
	}
}

// Validation table: simulated upper bound search.

func BenchmarkSandwichSimulationFFT6(b *testing.B) {
	g := gen.FFT(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := pebble.BestOrder(g, 8, pebble.Belady, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Solver ablation (DESIGN.md A2): the same spectrum three ways.

func BenchmarkSolverDenseBHK8(b *testing.B) {
	benchSpectral(b, gen.BellmanHeldKarp(8), 16, core.SolverDense)
}
func BenchmarkSolverLanczosBHK8(b *testing.B) {
	benchSpectral(b, gen.BellmanHeldKarp(8), 16, core.SolverLanczos)
}
func BenchmarkSolverPowerBHK8(b *testing.B) {
	// Deflated power iteration converges linearly in the eigenvalue gap
	// ratio; h = 20 is its realistic operating range (the other solvers
	// run the full h = 100 default).
	g := gen.BellmanHeldKarp(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SpectralBound(g, core.Options{M: 16, MaxK: 20, Solver: core.SolverPower}); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkSolverChebyshevBHK8(b *testing.B) {
	benchSpectral(b, gen.BellmanHeldKarp(8), 16, core.SolverChebyshev)
}
func BenchmarkSolverChebyshevStrassen8(b *testing.B) {
	benchSpectral(b, gen.Strassen(8), 16, core.SolverChebyshev)
}

// Substrate microbenchmarks.

func BenchmarkEigDensePath256(b *testing.B) {
	g := gen.Chain(256)
	L := laplacian.BuildDense(g, laplacian.Original)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SymEigValues(L.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLanczosFFT8h50(b *testing.B) {
	g := gen.FFT(8)
	L, err := laplacian.BuildCSR(g, laplacian.OutDegreeNormalized)
	if err != nil {
		b.Fatal(err)
	}
	c := L.GershgorinUpper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SmallestEigsPSD(L, c, 50, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPebbleSimulateFFT8(b *testing.B) {
	g := gen.FFT(8)
	order := g.TopoOrder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pebble.Simulate(g, order, 8, pebble.Belady); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphBuildFFT10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen.FFT(10)
	}
}

func BenchmarkExactRedBlueInner4(b *testing.B) {
	g := gen.InnerProduct(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := redblue.Optimal(g, 3, redblue.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpansionSweepCutBHK10(b *testing.B) {
	g := gen.BellmanHeldKarp(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expansion.SweepCut(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrontierOrderFFT10(b *testing.B) {
	g := gen.FFT(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pebble.FrontierOrder(g)
	}
}

func BenchmarkHierSimulateFFT8(b *testing.B) {
	g := gen.FFT(8)
	order := g.TopoOrder()
	caps := []int{4, 16, 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hier.Simulate(g, order, caps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHongKungInner3(b *testing.B) {
	g := gen.InnerProduct(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hongkung.Bound(g, 2, hongkung.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvexCutSingleVertexBHK8(b *testing.B) {
	g := gen.BellmanHeldKarp(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mincut.ConvexCut(g, 127); err != nil {
			b.Fatal(err)
		}
	}
}
