package experiments

// Failure-isolation and cancellation coverage for the sweep driver: a
// failing or deadlined experiment must not take the rest of the sweep down,
// and cancelling mid-sweep must leave every completed experiment's CSV (and
// report.txt) on disk. These drive runRunners directly with synthetic
// runners so failures are deterministic and instant.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func stubTable(name string) *Table {
	t := &Table{Name: name, Title: "stub " + name, Columns: []string{"k", "v"}}
	t.AddRow("1", "2")
	return t
}

func okRunner(name string) Runner {
	return Runner{Name: name, Run: func(ctx context.Context, cfg Config) (*Table, error) {
		return stubTable(name), nil
	}}
}

func TestRunAllContinuesPastFailure(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("synthetic solver blow-up")
	runners := []Runner{
		okRunner("alpha"),
		{Name: "bad", Run: func(ctx context.Context, cfg Config) (*Table, error) {
			return nil, boom
		}},
		okRunner("omega"),
	}
	var log bytes.Buffer
	tables, err := runRunners(context.Background(), Config{}, dir, nil, &log, runners)
	if err == nil {
		t.Fatal("sweep with a failing experiment returned nil error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want synthetic failure in chain", err)
	}
	if !strings.Contains(err.Error(), "experiment bad") {
		t.Errorf("error %q does not name the failed experiment", err)
	}
	if len(tables) != 2 || tables[0].Name != "alpha" || tables[1].Name != "omega" {
		t.Fatalf("tables = %v, want [alpha omega]", tableNames(tables))
	}
	for _, name := range []string{"alpha.csv", "omega.csv", "report.txt"} {
		if _, statErr := os.Stat(filepath.Join(dir, name)); statErr != nil {
			t.Errorf("missing %s after partial-failure sweep: %v", name, statErr)
		}
	}
	if _, statErr := os.Stat(filepath.Join(dir, "bad.csv")); statErr == nil {
		t.Error("bad.csv exists for a failed experiment")
	}
	report, readErr := os.ReadFile(filepath.Join(dir, "report.txt"))
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, want := range []string{"stub alpha", "stub omega"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report.txt missing %q", want)
		}
	}
	if !strings.Contains(log.String(), "1 of 3 experiment(s) failed") {
		t.Errorf("log missing failure summary:\n%s", log.String())
	}
}

func TestRunAllAppliesPerExperimentDeadline(t *testing.T) {
	runners := []Runner{
		{Name: "hung", Run: func(ctx context.Context, cfg Config) (*Table, error) {
			// A well-behaved experiment blocked in a solve: it returns only
			// when its per-experiment deadline fires.
			<-ctx.Done()
			return nil, ctx.Err()
		}},
		okRunner("after"),
	}
	var log bytes.Buffer
	cfg := Config{ExperimentTimeout: 20 * time.Millisecond}
	tables, err := runRunners(context.Background(), cfg, "", nil, &log, runners)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded in chain", err)
	}
	if len(tables) != 1 || tables[0].Name != "after" {
		t.Fatalf("tables = %v: the experiment after the deadlined one must still run", tableNames(tables))
	}
}

func TestRunAllCancellationKeepsCompletedCSVs(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runners := []Runner{
		{Name: "first", Run: func(ctx context.Context, cfg Config) (*Table, error) {
			return stubTable("first"), nil
		}},
		{Name: "second", Run: func(ctx context.Context, cfg Config) (*Table, error) {
			// Simulates SIGINT landing mid-experiment: the sweep context is
			// cancelled while this experiment is in flight.
			cancel()
			return nil, fmt.Errorf("solve interrupted: %w", ctx.Err())
		}},
		okRunner("never-started"),
	}
	var log bytes.Buffer
	tables, err := runRunners(ctx, Config{}, dir, nil, &log, runners)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in chain", err)
	}
	if !strings.Contains(err.Error(), "experiment never-started: not started") {
		t.Errorf("error %q does not report the never-started experiment", err)
	}
	if len(tables) != 1 || tables[0].Name != "first" {
		t.Fatalf("tables = %v, want just [first]", tableNames(tables))
	}
	// The acceptance bar: everything completed before the cancellation is on
	// disk, including the report over the completed subset.
	for _, name := range []string{"first.csv", "report.txt"} {
		if _, statErr := os.Stat(filepath.Join(dir, name)); statErr != nil {
			t.Errorf("missing %s after cancelled sweep: %v", name, statErr)
		}
	}
	for _, name := range []string{"second.csv", "never-started.csv"} {
		if _, statErr := os.Stat(filepath.Join(dir, name)); statErr == nil {
			t.Errorf("%s exists for an uncompleted experiment", name)
		}
	}
}

func TestRunAllCancelledBeforeStartRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	started := false
	runners := []Runner{
		{Name: "only", Run: func(ctx context.Context, cfg Config) (*Table, error) {
			started = true
			return stubTable("only"), nil
		}},
	}
	var log bytes.Buffer
	tables, err := runRunners(ctx, Config{}, "", nil, &log, runners)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if started {
		t.Error("experiment ran despite pre-cancelled context")
	}
	if len(tables) != 0 {
		t.Errorf("tables = %v, want none", tableNames(tables))
	}
}

func tableNames(ts []*Table) []string {
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}
