package experiments

import (
	"context"
	"fmt"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/hier"
	"graphio/internal/pebble"
)

// TableHier demonstrates the multi-level extension: per-boundary spectral
// floors (cumulative capacities) against the traffic a simulated schedule
// actually pushes across each boundary of a three-level hierarchy.
func TableHier(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:  "hier",
		Title: "Multi-level hierarchy (extension): per-boundary spectral floors vs simulated transfers (3 levels)",
		Columns: []string{"graph", "n", "caps", "floor_b0", "sim_b0", "floor_b1", "sim_b1",
			"floor_b2", "sim_b2"},
	}
	graphs := []*graph.Graph{
		gen.FFT(7),
		gen.FFT(9),
		gen.BellmanHeldKarp(9),
	}
	for _, g := range graphs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		caps := []int{4, 12, 48}
		if g.MaxInDeg() > caps[0] {
			caps[0] = g.MaxInDeg()
		}
		floors, err := hier.Bounds(g, caps, core.Options{MaxK: cfg.MaxK, Solver: cfg.Solver})
		if err != nil {
			return nil, err
		}
		sim, err := hier.Simulate(g, pebble.FrontierOrder(g), caps)
		if err != nil {
			return nil, err
		}
		row := []string{g.Name(), inum(g.N()), fmt.Sprintf("%d/%d/%d", caps[0], caps[1], caps[2])}
		for i := range caps {
			if floors[i] > float64(sim.Transfers[i])+1e-6 {
				return nil, fmt.Errorf("hier table: floor above simulated traffic at boundary %d of %s", i, g.Name())
			}
			row = append(row, fnum(floors[i]), inum(sim.Transfers[i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}
