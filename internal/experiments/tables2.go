package experiments

import (
	"context"
	"fmt"
	"math"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
	"graphio/internal/mincut"
	"graphio/internal/partition"
	"graphio/internal/pebble"
	"graphio/internal/redblue"
)

// TableParallel sweeps the Theorem 6 parallel bound over processor counts:
// the per-processor certificate decays with p but stays nontrivial while
// ⌊n/(kp)⌋ is large (§4.4).
func TableParallel(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "parallel",
		Title:   "Parallel spectral bound (Theorem 6): busiest-processor I/O vs processor count",
		Columns: []string{"graph", "n", "M", "p1", "p2", "p4", "p8", "p16"},
	}
	graphs := []*graph.Graph{
		gen.FFT(7),
		gen.FFT(9),
		gen.BellmanHeldKarp(9),
		gen.BellmanHeldKarp(11),
	}
	for _, g := range graphs {
		M := 4
		if g.MaxInDeg() > M {
			M = g.MaxInDeg()
		}
		row := []string{g.Name(), inum(g.N()), inum(M)}
		// One eigensolve serves every p.
		res, err := core.SpectralBoundContext(ctx, g, core.Options{M: M, MaxK: cfg.MaxK, Solver: cfg.Solver})
		if err != nil {
			return nil, err
		}
		prev := math.Inf(1)
		for _, p := range []int{1, 2, 4, 8, 16} {
			bound, _, _ := core.BoundFromEigenvalues(res.Eigenvalues, g.N(), M, p, 1)
			if bound > prev+1e-9 {
				return nil, fmt.Errorf("parallel bound increased with p on %s", g.Name())
			}
			prev = bound
			row = append(row, fnum(bound))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// TablePartitionedMinCut reproduces the §6.3 observation that the
// baseline's suggested partitioned variant (2M-vertex parts) collapses to
// trivial bounds on complex computation graphs, which is why the paper —
// and Figures 7-10 here — plot the whole-graph variant.
func TablePartitionedMinCut(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "mincut-partitioned",
		Title:   "Ablation (§6.3): whole-graph vs partitioned convex min-cut (parts ≤ 2M vertices)",
		Columns: []string{"graph", "n", "M", "whole_graph", "partitioned", "parts"},
	}
	graphs := []*graph.Graph{
		gen.FFT(5),
		gen.NaiveMatMulNary(4),
		gen.BellmanHeldKarp(6),
		gen.Grid2D(8, 8),
	}
	for _, g := range graphs {
		M := 4
		if g.MaxInDeg() > M {
			M = g.MaxInDeg()
		}
		whole, err := mincut.ConvexMinCutBoundContext(ctx, g, mincut.Options{M: M, Timeout: cfg.MinCutTimeout})
		if err != nil {
			return nil, err
		}
		parts, err := partition.RecursiveBisection(g, 2*M)
		if err != nil {
			return nil, err
		}
		parted, err := mincut.PartitionedBound(g, parts, M)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name(), inum(g.N()), inum(M),
			fnum(whole.Bound), fnum(parted.Bound), inum(len(parts)))
	}
	return t, nil
}

// TableScheduler quantifies how much the evaluation order matters in the
// simulator: Kahn vs DFS vs the greedy frontier scheduler vs the best of a
// random sample, all against the spectral lower bound. The gap between the
// best schedule and the bound brackets J*.
func TableScheduler(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:  "scheduler",
		Title: "Schedule sensitivity: simulated I/O by order heuristic vs spectral lower bound (Belady eviction)",
		Columns: []string{"graph", "n", "M", "lower_bound", "kahn", "dfs", "frontier",
			"affinity", "best_random", "best"},
	}
	graphs := []*graph.Graph{
		gen.FFT(6),
		gen.FFT(8),
		gen.NaiveMatMulNary(6),
		gen.BellmanHeldKarp(8),
		gen.Grid2D(16, 16),
	}
	for _, g := range graphs {
		M := 8
		if g.MaxInDeg() > M {
			M = g.MaxInDeg()
		}
		lower, err := core.SpectralBoundContext(ctx, g, core.Options{M: M, MaxK: cfg.MaxK, Solver: cfg.Solver})
		if err != nil {
			return nil, err
		}
		sim := func(order []int) (string, int, error) {
			res, err := pebble.SimulateContext(ctx, g, order, M, pebble.Belady)
			if err != nil {
				return "", 0, err
			}
			return inum(res.Total()), res.Total(), nil
		}
		kahnS, kahnV, err := sim(g.TopoOrder())
		if err != nil {
			return nil, err
		}
		dfsS, dfsV, err := sim(g.DFSTopoOrder())
		if err != nil {
			return nil, err
		}
		frS, frV, err := sim(pebble.FrontierOrder(g))
		if err != nil {
			return nil, err
		}
		affOrder, err := pebble.AffinityOrder(g, 4*M)
		if err != nil {
			return nil, err
		}
		affS, affV, err := sim(affOrder)
		if err != nil {
			return nil, err
		}
		rnd, _, _, err := pebble.BestOrderContext(ctx, g, M, pebble.Belady, cfg.SandwichSamples, cfg.Seed)
		if err != nil {
			return nil, err
		}
		best := minInt(kahnV, minInt(dfsV, minInt(frV, minInt(affV, rnd.Total()))))
		if lower.Bound > float64(best)+1e-6 {
			return nil, fmt.Errorf("scheduler table: lower bound %.2f above best schedule %d on %s",
				lower.Bound, best, g.Name())
		}
		t.AddRow(g.Name(), inum(g.N()), inum(M), fnum(lower.Bound),
			kahnS, dfsS, frS, affS, inum(rnd.Total()), inum(best))
	}
	return t, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TableExact pins the true J* with the exact red-blue solver on tiny
// graphs and reports how tight each lower bound and the best simulated
// schedule are against it. This is ground truth the paper could not
// include (it calls exact approaches intractable — true at scale; at a
// dozen vertices the state space is searchable).
func TableExact(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "exact",
		Title:   "Ground truth on tiny graphs: exact J* vs lower bounds vs best simulated schedule",
		Columns: []string{"graph", "n", "M", "spectral_T4", "mincut", "exact_J*", "best_simulated"},
	}
	graphs := []*graph.Graph{
		gen.InnerProduct(2),
		gen.InnerProduct(4),
		gen.FFT(2),
		gen.Grid2D(4, 4),
		gen.BinaryTreeReduce(3),
		gen.ErdosRenyiDAG(14, 0.3, cfg.Seed),
	}
	for _, g := range graphs {
		for _, M := range []int{2, 3} {
			if g.MaxInDeg() > M {
				continue
			}
			exact, err := redblue.OptimalContext(ctx, g, M, redblue.Options{})
			if err != nil {
				return nil, err
			}
			t4, err := core.SpectralBoundContext(ctx, g, core.Options{M: M, MaxK: cfg.MaxK, Solver: core.SolverDense})
			if err != nil {
				return nil, err
			}
			mc, err := mincut.ConvexMinCutBoundContext(ctx, g, mincut.Options{M: M})
			if err != nil {
				return nil, err
			}
			sim, _, _, err := pebble.BestOrderContext(ctx, g, M, pebble.Belady, cfg.SandwichSamples, cfg.Seed)
			if err != nil {
				return nil, err
			}
			if t4.Bound > float64(exact.IO)+1e-6 || mc.Bound > float64(exact.IO)+1e-6 {
				return nil, fmt.Errorf("exact table: a lower bound exceeds J* on %s M=%d", g.Name(), M)
			}
			if exact.IO > sim.Total() {
				return nil, fmt.Errorf("exact table: J* above a simulated schedule on %s M=%d", g.Name(), M)
			}
			t.AddRow(g.Name(), inum(g.N()), inum(M), fnum(t4.Bound), fnum(mc.Bound),
				inum(exact.IO), inum(sim.Total()))
		}
	}
	return t, nil
}

// TableLambda2 checks the §5.3 ingredient directly: the algebraic
// connectivity λ2 of sampled Erdős–Rényi graphs against the
// Kolokolnikov et al. prediction p0·log n·(1 − sqrt(2/p0)) used inside the
// sparse-regime bound.
func TableLambda2(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "lambda2",
		Title:   "Erdős-Rényi algebraic connectivity: sampled λ2 vs §5.3 prediction",
		Columns: []string{"n", "p", "sampled_lambda2", "predicted", "ratio"},
	}
	for _, n := range cfg.ERSizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := cfg.ERP0 * math.Log(float64(n)) / float64(n-1)
		g := gen.ErdosRenyiDAG(n, p, cfg.Seed)
		L, err := laplacian.BuildCSR(g, laplacian.Original)
		if err != nil {
			return nil, err
		}
		eigs, err := linalg.SmallestEigsPSD(L, L.GershgorinUpper(), 2, nil)
		if err != nil {
			return nil, err
		}
		lambda2 := eigs[1]
		pred := cfg.ERP0 * math.Log(float64(n)) * (1 - math.Sqrt(2/cfg.ERP0))
		ratio := lambda2 / pred
		t.AddRow(inum(n), fmt.Sprintf("%.4f", p), fnum(lambda2), fnum(pred),
			fmt.Sprintf("%.3f", ratio))
	}
	return t, nil
}
