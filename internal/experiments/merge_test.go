package experiments

// Manifest-merge semantics for distributed sweeps: the coordinator's
// Merge must produce an outDir a single-process sweep could have written —
// byte-identical report.txt, resume-compatible manifest — while absorbing
// the distributed-only edge cases: two workers completing the same shard
// after a lease race (last-write-wins), and poisoned shards that must
// survive into the report and be re-run by a later -resume.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// csvBytes renders a table the way a worker uploads it.
func csvBytes(t *testing.T, tab *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Committing every shard through Merge must reproduce, byte for byte, the
// report.txt a single-process runRunners writes for the same runners.
func TestMergeReportMatchesSingleProcess(t *testing.T) {
	names := []string{"alpha", "beta", "gamma"}
	runners, _ := countingRunners(names...)

	refDir := t.TempDir()
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{}, refDir, nil, &log, runners); err != nil {
		t.Fatal(err)
	}
	refReport, err := os.ReadFile(filepath.Join(refDir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}

	mergeDir := t.TempDir()
	m, err := OpenMerge(context.Background(), mergeDir, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Commit out of order: report order must come from the canonical list,
	// not arrival order.
	for _, name := range []string{"gamma", "alpha", "beta"} {
		tab := stubTable(name)
		if err := m.CommitResult(name, tab.Title, csvBytes(t, tab), 7, "w1"); err != nil {
			t.Fatal(err)
		}
	}
	included, err := m.FinishReport(names)
	if err != nil {
		t.Fatal(err)
	}
	if len(included) != 3 {
		t.Fatalf("included = %v, want all three shards", included)
	}
	gotReport, err := os.ReadFile(filepath.Join(mergeDir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refReport, gotReport) {
		t.Errorf("merged report differs from single-process report:\n--- single\n%s--- merged\n%s", refReport, gotReport)
	}
	for _, name := range names {
		ref, err := os.ReadFile(filepath.Join(refDir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(mergeDir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, got) {
			t.Errorf("%s.csv differs between single-process and merged sweeps", name)
		}
	}
}

// Lease race: a worker whose lease expired still uploads after the
// reassigned worker already committed. The second commit must win — CSV on
// disk, manifest tail, and a later -resume must all agree on the last
// write, and the directory must still verify cleanly.
func TestMergeLeaseRaceLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMerge(context.Background(), dir, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	first := stubTable("alpha")
	if err := m.CommitResult("alpha", first.Title, csvBytes(t, first), 5, "w1"); err != nil {
		t.Fatal(err)
	}
	// The late upload carries different bytes (in production both computed
	// the same config hash so the bytes agree; the divergence here is what
	// makes the winner observable).
	second := &Table{Name: "alpha", Title: "stub alpha", Columns: []string{"k", "v"}}
	second.AddRow("1", "99")
	secondCSV := csvBytes(t, second)
	if err := m.CommitResult("alpha", second.Title, secondCSV, 9, "w2"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FinishReport([]string{"alpha"}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	onDisk, err := os.ReadFile(filepath.Join(dir, "alpha.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, secondCSV) {
		t.Fatalf("alpha.csv = %q, want the later upload to win", onDisk)
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "99") {
		t.Errorf("report.txt does not reflect the winning upload:\n%s", report)
	}

	// A later resume must treat the last write as the verified artifact.
	m2, err := OpenMerge(context.Background(), dir, Config{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Reusable("alpha") {
		t.Error("winning upload does not verify on resume")
	}
}

// Poisoned shards must (a) surface explicitly in the report trailer and
// (b) survive into the manifest as non-ok records so a later -resume
// re-runs them instead of skipping or silently dropping them.
func TestMergePoisonedSurvivesResumeAndReport(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMerge(context.Background(), dir, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	good := stubTable("alpha")
	if err := m.CommitResult("alpha", good.Title, csvBytes(t, good), 5, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPoisoned("beta", 3, errors.New("solver exploded")); err != nil {
		t.Fatal(err)
	}
	included, err := m.FinishReport([]string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if len(included) != 1 || included[0] != "alpha" {
		t.Fatalf("included = %v, want only alpha", included)
	}
	if got := m.Poisoned([]string{"alpha", "beta"}); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("Poisoned = %v, want [beta]", got)
	}
	m.Close()

	report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "poisoned shards") ||
		!strings.Contains(string(report), "beta: gave up after 3 attempt(s): solver exploded") {
		t.Errorf("report.txt does not name the poisoned shard:\n%s", report)
	}

	// Resume semantics: alpha verifies and skips; beta must not.
	m2, err := OpenMerge(context.Background(), dir, Config{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Reusable("alpha") {
		t.Error("committed shard alpha does not verify on resume")
	}
	if m2.Reusable("beta") {
		t.Error("poisoned shard beta reported reusable; it must re-run")
	}

	// And the real resume path agrees: a single-process -resume over the
	// merged directory re-runs exactly the poisoned shard.
	m2.Close()
	runners, runs := countingRunners("alpha", "beta")
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{Resume: true}, dir, nil, &log, runners); err != nil {
		t.Fatal(err)
	}
	if runs["alpha"] != 0 {
		t.Errorf("resume recomputed the verified shard alpha (%d runs)", runs["alpha"])
	}
	if runs["beta"] != 1 {
		t.Errorf("resume ran poisoned shard beta %d times, want exactly 1", runs["beta"])
	}
	assertCleanDir(t, dir)
}

// A completed-then-poisoned shard drops out of the tables (defensive: the
// coordinator never does this today, but the merge must stay coherent),
// and a commit after poisoning re-heals it.
func TestMergePoisonThenHeal(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMerge(context.Background(), dir, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CommitPoisoned("alpha", 2, errors.New("flaky")); err != nil {
		t.Fatal(err)
	}
	tab := stubTable("alpha")
	if err := m.CommitResult("alpha", tab.Title, csvBytes(t, tab), 5, "w9"); err != nil {
		t.Fatal(err)
	}
	included, err := m.FinishReport([]string{"alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if len(included) != 1 {
		t.Fatalf("included = %v, want healed alpha", included)
	}
	if got := m.Poisoned([]string{"alpha"}); len(got) != 0 {
		t.Fatalf("Poisoned = %v, want none after heal", got)
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(report), "poisoned") {
		t.Errorf("healed shard still listed as poisoned:\n%s", report)
	}
}

// Garbage uploads are rejected at commit time, before anything lands on
// disk.
func TestMergeRejectsGarbageCSV(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMerge(context.Background(), dir, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CommitResult("alpha", "t", []byte(`"unclosed`), 1, "w1"); err == nil {
		t.Fatal("garbage CSV accepted")
	}
	if _, err := os.Stat(filepath.Join(dir, "alpha.csv")); !os.IsNotExist(err) {
		t.Fatal("rejected upload still landed on disk")
	}
}
