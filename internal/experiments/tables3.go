package experiments

import (
	"context"
	"fmt"

	"graphio/internal/analytic"
	"graphio/internal/core"
	"graphio/internal/expansion"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/hongkung"
	"graphio/internal/laplacian"
	"graphio/internal/mincut"
	"graphio/internal/pebble"
	"graphio/internal/redblue"
)

// TableExpansion relates the spectral bound to its edge-expansion
// ancestry (§2, §4.1): Cheeger's inequality confines h(G) to
// [λ2/2, sqrt(2·dmax·λ2)], a Fiedler sweep cut realizes a concrete cut
// inside that interval, and the k-sweep spectral bound dominates what λ2
// alone (k = 2, the expansion-style argument) certifies.
func TableExpansion(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:  "expansion",
		Title: "Edge expansion vs spectral: Cheeger interval, sweep cut, and k=2 vs full k-sweep bounds (M=4)",
		Columns: []string{"graph", "n", "lambda2", "cheeger_lo", "exact_h", "sweep_cut",
			"bound_k2", "bound_sweep"},
	}
	graphs := []*graph.Graph{
		gen.Chain(16),
		gen.Grid2D(4, 4),
		gen.ErdosRenyiDAG(18, 0.3, cfg.Seed),
		gen.FFT(5),
		gen.BellmanHeldKarp(7),
	}
	M := 4
	for _, g := range graphs {
		l2, err := expansion.Lambda2(g)
		if err != nil {
			return nil, err
		}
		lo, _ := expansion.CheegerInterval(l2, g.MaxDeg())
		exactCell := "-"
		if g.N() <= 22 {
			h, err := expansion.Exact(g)
			if err != nil {
				return nil, err
			}
			if h < lo-1e-8 {
				return nil, fmt.Errorf("expansion table: exact h below Cheeger lower on %s", g.Name())
			}
			exactCell = fnum(h)
		}
		sweep, err := expansion.SweepCut(g)
		if err != nil {
			return nil, err
		}
		res, err := core.SpectralBoundContext(ctx, g, core.Options{
			M: M, MaxK: cfg.MaxK, Laplacian: laplacian.Original, Solver: cfg.Solver,
		})
		if err != nil {
			return nil, err
		}
		k2 := 0.0
		if len(res.PerK) >= 2 && res.PerK[1] > 0 {
			k2 = res.PerK[1]
		}
		if k2 > res.Bound+1e-9 {
			return nil, fmt.Errorf("expansion table: k=2 bound above the sweep maximum on %s", g.Name())
		}
		t.AddRow(g.Name(), inum(g.N()), fnum(l2), fnum(lo), exactCell, fnum(sweep),
			fnum(k2), fnum(res.Bound))
	}
	return t, nil
}

// TableHongKung compares, at toy scale, every automated lower-bound method
// against exact ground truth: the spectral bound and convex min-cut
// against the exact *non-trivial* optimum, and the exactly computed
// Hong-Kung 2S-partition bound against the exact *total* optimum. This is
// the comparison the paper's §2/§6.3 leaves open ("the ILP based method is
// intractable") — tractable here because the graphs are tiny.
func TableHongKung(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:  "hongkung",
		Title: "Toy-scale method comparison vs exact optima (HK bounds total I/O; spectral/min-cut bound non-trivial I/O)",
		Columns: []string{"graph", "n", "M", "spectral_T4", "mincut", "exactJ*_nontrivial",
			"hong_kung", "exactJ*_total"},
	}
	graphs := []*graph.Graph{
		gen.InnerProduct(2),
		gen.InnerProduct(3),
		gen.FFT(1),
		gen.FFT(2),
		gen.Grid2D(3, 4),
		gen.BinaryTreeReduce(3),
	}
	for _, g := range graphs {
		for _, M := range []int{2, 3} {
			if g.MaxInDeg() > M {
				continue
			}
			spec, err := core.SpectralBoundContext(ctx, g, core.Options{M: M, MaxK: cfg.MaxK, Solver: core.SolverDense})
			if err != nil {
				return nil, err
			}
			mc, err := mincut.ConvexMinCutBoundContext(ctx, g, mincut.Options{M: M})
			if err != nil {
				return nil, err
			}
			exactNT, err := redblue.OptimalContext(ctx, g, M, redblue.Options{})
			if err != nil {
				return nil, err
			}
			hk, err := hongkung.Bound(g, M, hongkung.Options{})
			if err != nil {
				return nil, err
			}
			exactT, err := redblue.OptimalContext(ctx, g, M, redblue.Options{CountTrivial: true})
			if err != nil {
				return nil, err
			}
			if spec.Bound > float64(exactNT.IO)+1e-6 || mc.Bound > float64(exactNT.IO)+1e-6 {
				return nil, fmt.Errorf("hongkung table: non-trivial bound above J* on %s M=%d", g.Name(), M)
			}
			if hk > float64(exactT.IO)+1e-6 {
				return nil, fmt.Errorf("hongkung table: HK bound above total J* on %s M=%d", g.Name(), M)
			}
			t.AddRow(g.Name(), inum(g.N()), inum(M), fnum(spec.Bound), fnum(mc.Bound),
				inum(exactNT.IO), fnum(hk), inum(exactT.IO))
		}
	}
	return t, nil
}

// TableGrid applies the spectral method to a workload outside the paper's
// evaluation: the 2-D stencil DAG, whose closed-form spectrum (Cartesian
// product of paths, analytic.GridSpectrum) makes the Theorem 5 bound
// analytic. Stencils have small spectral gaps, so the certified floor is
// far below the simulated schedules — an honest negative result that marks
// the method's boundary.
func TableGrid(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "grid",
		Title:   "2-D stencil (extension): closed-form Theorem 5 bound vs computed vs simulated schedules",
		Columns: []string{"side", "n", "M", "closed_T5", "computed_T4", "sim_frontier", "sim_kahn"},
	}
	for _, side := range []int{8, 16, 24} {
		g := gen.Grid2D(side, side)
		for _, M := range []int{4, 8} {
			closed, _ := analytic.GridBound(side, side, M, cfg.MaxK)
			res, err := core.SpectralBoundContext(ctx, g, core.Options{M: M, MaxK: cfg.MaxK, Solver: cfg.Solver})
			if err != nil {
				return nil, err
			}
			fr, err := pebble.SimulateContext(ctx, g, pebble.FrontierOrder(g), M, pebble.Belady)
			if err != nil {
				return nil, err
			}
			kahn, err := pebble.SimulateContext(ctx, g, g.TopoOrder(), M, pebble.Belady)
			if err != nil {
				return nil, err
			}
			if closed > float64(fr.Total())+1e-6 || res.Bound > float64(fr.Total())+1e-6 {
				return nil, fmt.Errorf("grid table: lower bound above simulated schedule at side=%d M=%d", side, M)
			}
			t.AddRow(inum(side), inum(g.N()), inum(M), fnum(closed), fnum(res.Bound),
				inum(fr.Total()), inum(kahn.Total()))
		}
	}
	return t, nil
}
