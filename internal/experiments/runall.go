package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/obs"
)

// Runner names one experiment and how to produce its table.
type Runner struct {
	Name string
	Run  func(Config) (*Table, error)
}

// Runners returns every experiment in DESIGN.md's index (F7-F11, T1-T3,
// V1, A1, A3), in presentation order.
func Runners() []Runner {
	fft := func(l int) *graph.Graph { return gen.FFT(l) }
	mm := func(n int) *graph.Graph { return gen.NaiveMatMulNary(n) }
	st := func(n int) *graph.Graph { return gen.Strassen(n) }
	bhk := func(l int) *graph.Graph { return gen.BellmanHeldKarp(l) }
	return []Runner{
		{"fig7", func(c Config) (*Table, error) { return Figure7(c, fft) }},
		{"fig8", func(c Config) (*Table, error) { return Figure8(c, mm) }},
		{"fig9", func(c Config) (*Table, error) { return Figure9(c, st) }},
		{"fig10", func(c Config) (*Table, error) { return Figure10(c, bhk) }},
		{"fig11", func(c Config) (*Table, error) { return Figure11(c, bhk) }},
		{"hypercube", TableHypercube},
		{"fft", TableFFT},
		{"er", TableER},
		{"sandwich", TableSandwich},
		{"bestk", TableBestK},
		{"thm4vs5", TableThm4vs5},
		{"parallel", TableParallel},
		{"mincut-partitioned", TablePartitionedMinCut},
		{"scheduler", TableScheduler},
		{"lambda2", TableLambda2},
		{"exact", TableExact},
		{"expansion", TableExpansion},
		{"grid", TableGrid},
		{"hongkung", TableHongKung},
		{"hier", TableHier},
	}
}

// RunAll executes the selected experiments (all of them when names is
// empty), writes <name>.csv per experiment plus a combined report.txt into
// outDir (created if needed, skipped if empty), streams progress to log,
// and returns the tables.
func RunAll(cfg Config, outDir string, names []string, log io.Writer) ([]*Table, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, err
		}
	}
	var tables []*Table
	for _, r := range Runners() {
		if len(want) > 0 && !want[r.Name] {
			continue
		}
		fmt.Fprintf(log, "== running %s\n", r.Name)
		runStart := time.Now()
		stop := heartbeat(cfg.Progress, r.Name, runStart)
		t, err := r.Run(cfg)
		stop()
		elapsed := time.Since(runStart)
		obs.Observe("experiments."+r.Name, elapsed)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "experiments: %s done in %v\n", r.Name, elapsed.Round(time.Millisecond))
		}
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", r.Name, err)
		}
		tables = append(tables, t)
		if err := t.WriteText(log); err != nil {
			return nil, err
		}
		fmt.Fprintln(log)
		// Persist each table as soon as it exists: long sweeps should not
		// lose completed experiments to a crash or a kill.
		if outDir != "" {
			if err := writeCSV(outDir, t); err != nil {
				return nil, err
			}
		}
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("no experiment matches %v", names)
	}
	if outDir != "" {
		report, err := os.Create(filepath.Join(outDir, "report.txt"))
		if err != nil {
			return nil, err
		}
		defer report.Close()
		for _, t := range tables {
			if err := t.WriteText(report); err != nil {
				return nil, err
			}
			fmt.Fprintln(report)
		}
	}
	return tables, nil
}

// heartbeat emits a still-running line to w every interval until the
// returned stop function is called. Long sweeps (minutes per experiment)
// would otherwise look hung between the "== running" banner and the table.
// When span tracking is live (-trace-out or -debug-addr), the line names
// the innermost open span, so the operator sees *which* solve is slow, not
// just that something is; -debug-addr's /progress endpoint serves the full
// open-span stack on demand.
func heartbeat(w io.Writer, name string, start time.Time) (stop func()) {
	if w == nil {
		return func() {}
	}
	const interval = 15 * time.Second
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				where := ""
				if open := obs.OpenSpans(); len(open) > 0 {
					deepest := open[len(open)-1]
					where = fmt.Sprintf(", in %s for %v", deepest.Name,
						time.Duration(deepest.ElapsedNS).Round(time.Second))
				}
				fmt.Fprintf(w, "experiments: %s still running (%v elapsed%s)\n",
					name, time.Since(start).Round(time.Second), where)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func writeCSV(outDir string, t *Table) error {
	f, err := os.Create(filepath.Join(outDir, t.Name+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
