package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/obs"
)

// Runner names one experiment and how to produce its table.
type Runner struct {
	Name string
	Run  func(context.Context, Config) (*Table, error)
}

// Runners returns every experiment in DESIGN.md's index (F7-F11, T1-T3,
// V1, A1, A3), in presentation order.
func Runners() []Runner {
	fft := func(l int) *graph.Graph { return gen.FFT(l) }
	mm := func(n int) *graph.Graph { return gen.NaiveMatMulNary(n) }
	st := func(n int) *graph.Graph { return gen.Strassen(n) }
	bhk := func(l int) *graph.Graph { return gen.BellmanHeldKarp(l) }
	return []Runner{
		{"fig7", func(ctx context.Context, c Config) (*Table, error) { return Figure7(ctx, c, fft) }},
		{"fig8", func(ctx context.Context, c Config) (*Table, error) { return Figure8(ctx, c, mm) }},
		{"fig9", func(ctx context.Context, c Config) (*Table, error) { return Figure9(ctx, c, st) }},
		{"fig10", func(ctx context.Context, c Config) (*Table, error) { return Figure10(ctx, c, bhk) }},
		{"fig11", func(ctx context.Context, c Config) (*Table, error) { return Figure11(ctx, c, bhk) }},
		{"hypercube", TableHypercube},
		{"fft", TableFFT},
		{"er", TableER},
		{"sandwich", TableSandwich},
		{"bestk", TableBestK},
		{"thm4vs5", TableThm4vs5},
		{"parallel", TableParallel},
		{"mincut-partitioned", TablePartitionedMinCut},
		{"scheduler", TableScheduler},
		{"lambda2", TableLambda2},
		{"exact", TableExact},
		{"expansion", TableExpansion},
		{"grid", TableGrid},
		{"hongkung", TableHongKung},
		{"hier", TableHier},
	}
}

// RunAll executes the selected experiments (all of them when names is
// empty), writes <name>.csv per experiment plus a combined report.txt into
// outDir (created if needed, skipped if empty), streams progress to log,
// and returns the tables of the experiments that succeeded.
//
// A failing experiment no longer aborts the sweep: the remaining
// experiments still run, a per-experiment error summary is printed at the
// end, report.txt still covers every successful table, and the joined
// failures come back as the error (so a CLI can exit non-zero while the
// operator keeps all completed work). Cancelling ctx stops the sweep at
// the next experiment boundary — and, via the contexts threaded into the
// solvers, usually mid-experiment — with everything completed so far on
// disk. Config.ExperimentTimeout, when positive, deadlines each experiment
// individually; a timed-out experiment is reported as failed and the sweep
// moves on.
func RunAll(ctx context.Context, cfg Config, outDir string, names []string, log io.Writer) ([]*Table, error) {
	return runRunners(ctx, cfg, outDir, names, log, Runners())
}

// runRunners is RunAll over an explicit runner set (tests substitute
// failing, blocking, or instrumented runners).
func runRunners(ctx context.Context, cfg Config, outDir string, names []string, log io.Writer, runners []Runner) ([]*Table, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, err
		}
	}
	type failure struct {
		name string
		err  error
	}
	var tables []*Table
	var failures []failure
	matched := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.Name] {
			continue
		}
		matched++
		if err := ctx.Err(); err != nil {
			// The sweep itself was cancelled: stop starting experiments. The
			// tables already produced stay valid and get reported below.
			failures = append(failures, failure{r.Name, fmt.Errorf("not started: %w", err)})
			obs.Inc("experiments.skipped")
			continue
		}
		fmt.Fprintf(log, "== running %s\n", r.Name)
		runStart := time.Now()
		stop := heartbeat(cfg.Progress, r.Name, runStart)
		ectx := ctx
		cancel := context.CancelFunc(func() {})
		if cfg.ExperimentTimeout > 0 {
			ectx, cancel = context.WithTimeout(ctx, cfg.ExperimentTimeout)
		}
		t, err := r.Run(ectx, cfg)
		cancel()
		stop()
		elapsed := time.Since(runStart)
		obs.Observe("experiments."+r.Name, elapsed)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "experiments: %s done in %v\n", r.Name, elapsed.Round(time.Millisecond))
		}
		if err != nil {
			failures = append(failures, failure{r.Name, err})
			obs.Inc("experiments.failures")
			fmt.Fprintf(log, "== %s FAILED after %v: %v\n\n", r.Name, elapsed.Round(time.Millisecond), err)
			continue
		}
		tables = append(tables, t)
		if err := t.WriteText(log); err != nil {
			return tables, err
		}
		fmt.Fprintln(log)
		// Persist each table as soon as it exists: long sweeps should not
		// lose completed experiments to a crash, a kill, or a failure later
		// in the sweep.
		if outDir != "" {
			if err := writeCSV(outDir, t); err != nil {
				return tables, err
			}
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no experiment matches %v", names)
	}
	if outDir != "" && len(tables) > 0 {
		report, err := os.Create(filepath.Join(outDir, "report.txt"))
		if err != nil {
			return tables, err
		}
		defer report.Close()
		for _, t := range tables {
			if err := t.WriteText(report); err != nil {
				return tables, err
			}
			fmt.Fprintln(report)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(log, "== %d of %d experiment(s) failed:\n", len(failures), matched)
		errs := make([]error, 0, len(failures))
		for _, f := range failures {
			fmt.Fprintf(log, "==   %s: %v\n", f.name, f.err)
			errs = append(errs, fmt.Errorf("experiment %s: %w", f.name, f.err))
		}
		return tables, errors.Join(errs...)
	}
	return tables, nil
}

// heartbeat emits a still-running line to w every interval until the
// returned stop function is called. Long sweeps (minutes per experiment)
// would otherwise look hung between the "== running" banner and the table.
// When span tracking is live (-trace-out or -debug-addr), the line names
// the innermost open span, so the operator sees *which* solve is slow, not
// just that something is; -debug-addr's /progress endpoint serves the full
// open-span stack on demand.
func heartbeat(w io.Writer, name string, start time.Time) (stop func()) {
	if w == nil {
		return func() {}
	}
	const interval = 15 * time.Second
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				where := ""
				if open := obs.OpenSpans(); len(open) > 0 {
					deepest := open[len(open)-1]
					where = fmt.Sprintf(", in %s for %v", deepest.Name,
						time.Duration(deepest.ElapsedNS).Round(time.Second))
				}
				fmt.Fprintf(w, "experiments: %s still running (%v elapsed%s)\n",
					name, time.Since(start).Round(time.Second), where)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func writeCSV(outDir string, t *Table) error {
	f, err := os.Create(filepath.Join(outDir, t.Name+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
