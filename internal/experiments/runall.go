package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/obs"
	"graphio/internal/persist"
)

// Runner names one experiment and how to produce its table.
type Runner struct {
	Name string
	Run  func(context.Context, Config) (*Table, error)
}

// Runners returns every experiment in DESIGN.md's index (F7-F11, T1-T3,
// V1, A1, A3), in presentation order.
func Runners() []Runner {
	fft := func(l int) *graph.Graph { return gen.FFT(l) }
	mm := func(n int) *graph.Graph { return gen.NaiveMatMulNary(n) }
	st := func(n int) *graph.Graph { return gen.Strassen(n) }
	bhk := func(l int) *graph.Graph { return gen.BellmanHeldKarp(l) }
	return []Runner{
		{"fig7", func(ctx context.Context, c Config) (*Table, error) { return Figure7(ctx, c, fft) }},
		{"fig8", func(ctx context.Context, c Config) (*Table, error) { return Figure8(ctx, c, mm) }},
		{"fig9", func(ctx context.Context, c Config) (*Table, error) { return Figure9(ctx, c, st) }},
		{"fig10", func(ctx context.Context, c Config) (*Table, error) { return Figure10(ctx, c, bhk) }},
		{"fig11", func(ctx context.Context, c Config) (*Table, error) { return Figure11(ctx, c, bhk) }},
		{"hypercube", TableHypercube},
		{"fft", TableFFT},
		{"er", TableER},
		{"sandwich", TableSandwich},
		{"bestk", TableBestK},
		{"thm4vs5", TableThm4vs5},
		{"parallel", TableParallel},
		{"mincut-partitioned", TablePartitionedMinCut},
		{"scheduler", TableScheduler},
		{"lambda2", TableLambda2},
		{"exact", TableExact},
		{"expansion", TableExpansion},
		{"grid", TableGrid},
		{"hongkung", TableHongKung},
		{"hier", TableHier},
	}
}

// RunAll executes the selected experiments (all of them when names is
// empty), writes <name>.csv per experiment plus a combined report.txt into
// outDir (created if needed, skipped if empty), streams progress to log,
// and returns the tables of the experiments that succeeded.
//
// A failing experiment no longer aborts the sweep: the remaining
// experiments still run, a per-experiment error summary is printed at the
// end, report.txt still covers every successful table, and the joined
// failures come back as the error (so a CLI can exit non-zero while the
// operator keeps all completed work). Cancelling ctx stops the sweep at
// the next experiment boundary — and, via the contexts threaded into the
// solvers, usually mid-experiment — with everything completed so far on
// disk. Config.ExperimentTimeout, when positive, deadlines each experiment
// individually; a timed-out experiment is reported as failed and the sweep
// moves on.
//
// With a non-empty outDir every artifact is written crash-safely: CSVs
// and report.txt commit atomically (temp file + fsync + rename), and a
// manifest journal in outDir records each experiment's status, config
// hash, and artifact SHA-256 as it completes. outDir is guarded by a
// single-writer lock; a second concurrent sweep into the same directory
// fails with ErrSweepLocked, while a lock left by a killed run is stolen.
// Config.Resume turns the manifest into a checkpoint: see Config.
func RunAll(ctx context.Context, cfg Config, outDir string, names []string, log io.Writer) ([]*Table, error) {
	return runRunners(ctx, cfg, outDir, names, log, Runners())
}

// runRunners is RunAll over an explicit runner set (tests substitute
// failing, blocking, or instrumented runners).
func runRunners(ctx context.Context, cfg Config, outDir string, names []string, log io.Writer, runners []Runner) ([]*Table, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var selected []Runner
	for _, r := range runners {
		if len(want) == 0 || want[r.Name] {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiment matches %v", names)
	}
	var man *sweepManifest
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, err
		}
		var err error
		if man, err = openManifest(ctx, outDir, cfg, cfg.Resume); err != nil {
			return nil, err
		}
		defer man.close()
	}
	selNames := make([]string, len(selected))
	for i, r := range selected {
		selNames[i] = r.Name
	}
	var priorWalls map[string]time.Duration
	if man != nil {
		priorWalls = man.walls
	}
	eta := newETATracker(selNames, priorWalls)
	obs.SetSweepStatus(eta.status)
	defer obs.SetSweepStatus(nil)
	// The sweep gets its own telemetry scope and each experiment a child of
	// it, so metric snapshots, probe events and log records are attributable
	// per experiment while the process-wide registry still accumulates the
	// totals (scoped emission always dual-writes the default registry). A
	// scope already on ctx becomes the parent — a distributed worker wraps
	// each shard run in its own worker scope, so /tasks and the metrics
	// dump show worker-<id>/sweep/<experiment> lineage; with no scope on
	// ctx, Child on the nil scope opens a root exactly as before.
	sweepScope := obs.FromContext(ctx).Child("sweep")
	defer sweepScope.Close()
	ctx = obs.WithScope(ctx, sweepScope)
	type failure struct {
		name string
		err  error
	}
	var tables []*Table
	var failures []failure
	for _, r := range selected {
		if man != nil && cfg.Resume {
			if t, rec, ok := man.reusable(outDir, r.Name); ok {
				fmt.Fprintf(log, "== skipping %s (artifact verified against manifest)\n", r.Name)
				obs.IncCtx(ctx, "experiments.resume.skipped")
				eta.skip(r.Name)
				if err := man.skipped(rec); err != nil {
					return tables, err
				}
				tables = append(tables, t)
				if cfg.AfterExperiment != nil {
					cfg.AfterExperiment(r.Name)
				}
				continue
			}
			if _, seen := man.prior[r.Name]; seen {
				fmt.Fprintf(log, "== re-running %s (prior run failed, config changed, or artifact does not verify)\n", r.Name)
				obs.IncCtx(ctx, "experiments.resume.reran")
			}
		}
		if err := ctx.Err(); err != nil {
			// The sweep itself was cancelled: stop starting experiments. The
			// tables already produced stay valid and get reported below. No
			// manifest record is written — a not-started experiment keeps
			// whatever state the journal already holds, so a later -resume
			// picks it up exactly where this sweep left off.
			failures = append(failures, failure{r.Name, fmt.Errorf("not started: %w", err)})
			obs.IncCtx(ctx, "experiments.skipped")
			eta.skip(r.Name)
			continue
		}
		fmt.Fprintf(log, "== running %s\n", r.Name)
		runStart := obs.Now()
		eta.begin(r.Name)
		stop := heartbeat(cfg.Progress, r.Name, runStart, eta)
		// Per-experiment child scope: everything the runner (and the solvers
		// under it) emits lands in this scope, its parent sweep scope, and
		// the process totals alike.
		escope := sweepScope.Child(r.Name)
		ectx := obs.WithScope(ctx, escope)
		cancel := context.CancelFunc(func() {})
		if cfg.ExperimentTimeout > 0 {
			ectx, cancel = context.WithTimeout(ectx, cfg.ExperimentTimeout)
		}
		t, err := r.Run(ectx, cfg)
		cancel()
		stop()
		escope.Close()
		elapsed := obs.Since(runStart)
		eta.finish(r.Name, elapsed, err != nil)
		obs.ObserveCtx(ctx, "experiments."+r.Name, elapsed)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "experiments: %s done in %v (%s)\n",
				r.Name, elapsed.Round(time.Millisecond), eta.progressLine())
		}
		if err != nil {
			failures = append(failures, failure{r.Name, err})
			obs.IncCtx(ctx, "experiments.failures")
			fmt.Fprintf(log, "== %s FAILED after %v: %v\n\n", r.Name, elapsed.Round(time.Millisecond), err)
			if man != nil {
				if mErr := man.failed(r.Name, elapsed, err, escope); mErr != nil {
					return tables, mErr
				}
			}
			if cfg.AfterExperiment != nil {
				cfg.AfterExperiment(r.Name)
			}
			continue
		}
		tables = append(tables, t)
		if err := t.WriteText(log); err != nil {
			return tables, err
		}
		fmt.Fprintln(log)
		// Persist each table the moment it exists — atomically, so a crash
		// later in the sweep can cost at most the in-flight experiment, and
		// never leaves a torn CSV for -resume to mistake for a result.
		if outDir != "" {
			sha, err := writeCSV(outDir, t)
			if err != nil {
				return tables, err
			}
			if mErr := man.completed(t, sha, elapsed, escope); mErr != nil {
				return tables, mErr
			}
		}
		if cfg.AfterExperiment != nil {
			cfg.AfterExperiment(r.Name)
		}
	}
	if outDir != "" && len(tables) > 0 {
		var buf bytes.Buffer
		//lint:ignore ctx-loop report.txt must still render after cancellation — completed experiments are preserved by design
		for _, t := range tables {
			if err := t.WriteText(&buf); err != nil {
				return tables, err
			}
			fmt.Fprintln(&buf)
		}
		if err := persist.WriteFileAtomic(filepath.Join(outDir, "report.txt"), buf.Bytes(), 0o644); err != nil {
			return tables, err
		}
		if err := man.report(sha256Bytes(buf.Bytes())); err != nil {
			return tables, err
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(log, "== %d of %d experiment(s) failed:\n", len(failures), len(selected))
		errs := make([]error, 0, len(failures))
		for _, f := range failures {
			fmt.Fprintf(log, "==   %s: %v\n", f.name, f.err)
			errs = append(errs, fmt.Errorf("experiment %s: %w", f.name, f.err))
		}
		return tables, errors.Join(errs...)
	}
	return tables, nil
}

// heartbeat emits a still-running line to w every interval until the
// returned stop function is called. Long sweeps (minutes per experiment)
// would otherwise look hung between the "== running" banner and the table.
// When span tracking is live (-trace-out or -debug-addr), the line names
// the innermost open span, so the operator sees *which* solve is slow, not
// just that something is; -debug-addr's /progress endpoint serves the full
// open-span stack on demand. With an ETA tracker, the line also carries
// sweep progress and estimated remaining time.
func heartbeat(w io.Writer, name string, start time.Time, eta *etaTracker) (stop func()) {
	if w == nil {
		return func() {}
	}
	const interval = 15 * time.Second
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				where := ""
				if open := obs.OpenSpans(); len(open) > 0 {
					deepest := open[len(open)-1]
					where = fmt.Sprintf(", in %s for %v", deepest.Name,
						time.Duration(deepest.ElapsedNS).Round(time.Second))
				}
				progress := ""
				if eta != nil {
					progress = ", " + eta.progressLine()
				}
				fmt.Fprintf(w, "experiments: %s still running (%v elapsed%s%s)\n",
					name, obs.Since(start).Round(time.Second), progress, where)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// writeCSV renders the completed table in memory, commits it atomically
// as <name>.csv, and returns the committed bytes' SHA-256 for the
// manifest. Rendering before the file exists is what guarantees a failed
// or crashed runner can never leave a zero-byte or partial CSV behind.
func writeCSV(outDir string, t *Table) (sha string, err error) {
	var buf bytes.Buffer
	if err := t.WriteCSV(&buf); err != nil {
		return "", err
	}
	path := filepath.Join(outDir, t.Name+".csv")
	if err := persist.WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return sha256Bytes(buf.Bytes()), nil
}
