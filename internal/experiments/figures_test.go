package experiments

import (
	"context"
	"strings"
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
)

func TestMinCutSkippedAboveSizeCap(t *testing.T) {
	cfg := tiny()
	cfg.MinCutMaxN = 10 // everything in the sweep is bigger
	tab, err := Figure7(context.Background(), cfg, func(l int) *graph.Graph { return gen.FFT(l) })
	if err != nil {
		t.Fatal(err)
	}
	mcCol := 3 + len(cfg.FFTMemories)
	for _, row := range tab.Rows {
		if row[mcCol] != "skipped" {
			t.Errorf("min-cut cell %q, want skipped: %v", row[mcCol], row)
		}
	}
}

func TestFigureColumnsShape(t *testing.T) {
	cfg := tiny()
	cfg.StrassenSizes = []int{2, 4}
	tab, err := Figure9(context.Background(), cfg, func(n int) *graph.Graph { return gen.Strassen(n) })
	if err != nil {
		t.Fatal(err)
	}
	wantCols := 3 + 2*len(cfg.StrassenMemories)
	if len(tab.Columns) != wantCols {
		t.Fatalf("columns=%d want %d", len(tab.Columns), wantCols)
	}
	for _, c := range tab.Columns[3 : 3+len(cfg.StrassenMemories)] {
		if !strings.HasPrefix(c, "spectral_M") {
			t.Errorf("unexpected column %q", c)
		}
	}
}

func TestMincutAtDerivation(t *testing.T) {
	// mincutAt must reproduce 2·(cut − M) clamped at 0.
	gb := &graphBounds{cut: 10}
	if got := gb.mincutAt(4); got != 12 {
		t.Errorf("mincutAt(4)=%g want 12", got)
	}
	if got := gb.mincutAt(10); got != 0 {
		t.Errorf("mincutAt(10)=%g want 0", got)
	}
	if got := gb.mincutAt(99); got != 0 {
		t.Errorf("mincutAt(99)=%g want 0", got)
	}
}

func TestTimedOutMincutCellMarked(t *testing.T) {
	g := gen.FFT(3)
	gb := &graphBounds{g: g, cut: 8, cutTimedOut: true}
	cell := mincutCell(gb, 2)
	if !strings.HasSuffix(cell, "*") {
		t.Errorf("timed-out cell %q should carry the * marker", cell)
	}
	gb.cutSkipped = true
	if mincutCell(gb, 2) != "skipped" {
		t.Error("skipped cell not marked")
	}
}

func TestInfeasibleCellDash(t *testing.T) {
	g := gen.BellmanHeldKarp(5) // max in-degree 5
	gb := &graphBounds{g: g, eigs: []float64{0, 1}}
	if cell(gb, 2, 123) != "-" {
		t.Error("in-degree > M should render as '-'")
	}
	if cell(gb, 8, 123) == "-" {
		t.Error("feasible point wrongly dropped")
	}
}
