package experiments

import (
	"context"
	"fmt"
	"math"

	"graphio/internal/analytic"
	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
	"graphio/internal/mincut"
	"graphio/internal/pebble"
)

// TableHypercube reproduces the §5.1 closed-form analysis: the simple
// α = 1 bound, the α-optimized closed form evaluated from the exact
// hypercube spectrum, and the solver-computed Theorem 5 bound, which must
// agree with the closed form (same spectrum, same sweep).
func TableHypercube(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "hypercube",
		Title:   "Bellman-Held-Karp closed forms (§5.1) vs computed bound (Theorem 5)",
		Columns: []string{"l", "M", "simple_alpha1", "closed_optimal", "best_k", "computed_T5", "computed_T4"},
	}
	for _, l := range cfg.BHKCities {
		g := gen.BellmanHeldKarp(l)
		// One eigensolve per Laplacian kind serves every M.
		r5, err := core.SpectralBoundContext(ctx, g, core.Options{
			M: 1, MaxK: cfg.MaxK, Laplacian: laplacian.Original, Solver: cfg.Solver,
		})
		if err != nil {
			return nil, err
		}
		r4, err := core.SpectralBoundContext(ctx, g, core.Options{M: 1, MaxK: cfg.MaxK, Solver: cfg.Solver})
		if err != nil {
			return nil, err
		}
		for _, M := range cfg.BHKMemories {
			if g.MaxInDeg() > M {
				continue
			}
			simple := analytic.HypercubeBoundSimple(l, M)
			opt, bestK := analytic.HypercubeBoundOptimalK(l, M, cfg.MaxK)
			t5, _, _ := core.BoundFromEigenvalues(r5.Eigenvalues, g.N(), M, 1, float64(g.MaxOutDeg()))
			t4, _, _ := core.BoundFromEigenvalues(r4.Eigenvalues, g.N(), M, 1, 1)
			t.AddRow(inum(l), inum(M), fnum(simple), fnum(opt), inum(bestK),
				fnum(t5), fnum(t4))
		}
	}
	return t, nil
}

// TableFFT reproduces the §5.2 analysis: the closed form from the
// Theorem 7 butterfly spectrum, the computed bound, the published
// asymptotically tight Hong–Kung bound, and the ratio between closed form
// and Hong–Kung, which the paper shows is only a 1/log M factor.
func TableFFT(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:  "fft",
		Title: "FFT closed form (§5.2, Theorem 7 spectrum) vs computed bound vs Hong-Kung Ω(l·2^l/log M)",
		Columns: []string{"l", "M", "closed_form", "alpha", "closed_paper_alpha",
			"computed_T5_fullspec", "hong_kung", "closed/hk"},
	}
	for _, l := range cfg.FFTLevels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g := gen.FFT(l)
		for _, M := range cfg.FFTMemories {
			if g.MaxInDeg() > M {
				continue
			}
			cf, alpha := analytic.FFTClosedForm(l, M)
			cfPaper := analytic.FFTClosedFormPaperAlpha(l, M)
			// Theorem 5 evaluated from the exact analytic spectrum over
			// the full k sweep (cheap: the spectrum is closed form).
			spec := analytic.ButterflySpectrum(l)
			computed, _, _ := core.BoundFromEigenvalues(spec, g.N(), M, 1, 2)
			hk := analytic.HongKungFFT(l, M)
			ratio := 0.0
			if hk > 0 {
				ratio = cf / hk
			}
			t.AddRow(inum(l), inum(M), fnum(cf), inum(alpha), fnum(cfPaper),
				fnum(computed), fnum(hk), fmt.Sprintf("%.4f", ratio))
		}
	}
	return t, nil
}

// TableER reproduces the §5.3 probabilistic analysis: sampled Erdős–Rényi
// DAGs in the sparse regime p = p0·log n/(n−1) against the closed-form
// prediction, and in the dense regime p = 1/2 against n/2 − 4M.
func TableER(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "er",
		Title:   "Erdős-Rényi bounds (§5.3): sampled spectral bound vs probabilistic closed form",
		Columns: []string{"regime", "n", "p", "M", "computed_T5", "predicted"},
	}
	M := 4
	for _, n := range cfg.ERSizes {
		p := cfg.ERP0 * math.Log(float64(n)) / float64(n-1)
		g := gen.ErdosRenyiDAG(n, p, cfg.Seed)
		res, err := core.SpectralBoundContext(ctx, g, core.Options{
			M: M, MaxK: cfg.MaxK, Laplacian: laplacian.Original, Solver: cfg.Solver,
		})
		if err != nil {
			return nil, err
		}
		pred := analytic.ErdosRenyiSparseBound(n, cfg.ERP0, M)
		t.AddRow("sparse", inum(n), fmt.Sprintf("%.4f", p), inum(M), fnum(res.Bound), fnum(pred))
	}
	for _, n := range cfg.ERSizes {
		g := gen.ErdosRenyiDAG(n, 0.5, cfg.Seed)
		res, err := core.SpectralBoundContext(ctx, g, core.Options{
			M: M, MaxK: cfg.MaxK, Laplacian: laplacian.Original, Solver: cfg.Solver,
		})
		if err != nil {
			return nil, err
		}
		pred := analytic.ErdosRenyiDenseBound(n, M)
		t.AddRow("dense", inum(n), "0.5", inum(M), fnum(res.Bound), fnum(pred))
	}
	return t, nil
}

// TableSandwich is the validation table V1: for a spread of graphs, every
// lower bound must sit below the best simulated schedule's I/O.
func TableSandwich(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "sandwich",
		Title:   "Validation: lower bounds vs best simulated schedule (upper bound)",
		Columns: []string{"graph", "n", "M", "spectral_T4", "spectral_T5", "mincut", "simulated_UB", "order"},
	}
	graphs := []*graph.Graph{
		gen.InnerProduct(4),
		gen.FFT(3),
		gen.FFT(4),
		gen.FFT(5),
		gen.NaiveMatMulNary(3),
		gen.Strassen(2),
		gen.BellmanHeldKarp(4),
		gen.BellmanHeldKarp(5),
		gen.Grid2D(5, 5),
	}
	for _, g := range graphs {
		for _, M := range []int{4, 8} {
			if g.MaxInDeg() > M {
				continue
			}
			t4, err := core.SpectralBoundContext(ctx, g, core.Options{M: M, MaxK: cfg.MaxK, Solver: cfg.Solver})
			if err != nil {
				return nil, err
			}
			t5, err := core.SpectralBoundContext(ctx, g, core.Options{
				M: M, MaxK: cfg.MaxK, Laplacian: laplacian.Original, Solver: cfg.Solver,
			})
			if err != nil {
				return nil, err
			}
			mc, err := mincut.ConvexMinCutBoundContext(ctx, g, mincut.Options{M: M, Timeout: cfg.MinCutTimeout})
			if err != nil {
				return nil, err
			}
			ub, _, name, err := pebble.BestOrderContext(ctx, g, M, pebble.Belady, cfg.SandwichSamples, cfg.Seed)
			if err != nil {
				return nil, err
			}
			if worst := math.Max(t4.Bound, math.Max(t5.Bound, mc.Bound)); worst > float64(ub.Total())+1e-6 {
				return nil, fmt.Errorf("sandwich violated on %s M=%d: lower %.2f > upper %d",
					g.Name(), M, worst, ub.Total())
			}
			t.AddRow(g.Name(), inum(g.N()), inum(M), fnum(t4.Bound), fnum(t5.Bound),
				fnum(mc.Bound), inum(ub.Total()), name)
		}
	}
	return t, nil
}

// TableBestK is the §6.5 ablation: the k maximizing the bound stays far
// below the h = 100 cap across families and memory sizes, which is why
// computing 100 eigenvalues loses nothing.
func TableBestK(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "bestk",
		Title:   "Ablation (§6.5): maximizing k per graph and memory size (h cap = MaxK)",
		Columns: []string{"graph", "n", "M", "best_k", "h", "bound"},
	}
	type entry struct {
		g  *graph.Graph
		Ms []int
	}
	var entries []entry
	for _, l := range cfg.FFTLevels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		entries = append(entries, entry{gen.FFT(l), cfg.FFTMemories})
	}
	for _, l := range cfg.BHKCities {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		entries = append(entries, entry{gen.BellmanHeldKarp(l), cfg.BHKMemories})
	}
	for _, e := range entries {
		// One eigensolve per graph serves every M.
		res, err := core.SpectralBoundContext(ctx, e.g, core.Options{M: 1, MaxK: cfg.MaxK, Solver: cfg.Solver})
		if err != nil {
			return nil, err
		}
		for _, M := range e.Ms {
			if e.g.MaxInDeg() > M {
				continue
			}
			bound, bestK, _ := core.BoundFromEigenvalues(res.Eigenvalues, e.g.N(), M, 1, 1)
			t.AddRow(e.g.Name(), inum(e.g.N()), inum(M), inum(bestK),
				inum(len(res.Eigenvalues)), fnum(bound))
		}
	}
	return t, nil
}

// TableThm4vs5 is the §4.3 ablation: how much tightness the out-degree-
// normalized Laplacian (Theorem 4) buys over the original Laplacian with
// the max-out-degree division (Theorem 5).
func TableThm4vs5(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		Name:    "thm4vs5",
		Title:   "Ablation (§4.3): Theorem 4 (normalized L̃) vs Theorem 5 (L / max out-degree)",
		Columns: []string{"graph", "n", "M", "T4_bound", "T5_bound", "T4/T5"},
	}
	graphs := []*graph.Graph{
		gen.FFT(6),
		gen.NaiveMatMulNary(8),
		gen.Strassen(4),
		gen.BellmanHeldKarp(8),
	}
	for _, g := range graphs {
		for _, M := range []int{8, 16} {
			if g.MaxInDeg() > M {
				continue
			}
			t4, err := core.SpectralBoundContext(ctx, g, core.Options{M: M, MaxK: cfg.MaxK, Solver: cfg.Solver})
			if err != nil {
				return nil, err
			}
			t5, err := core.SpectralBoundContext(ctx, g, core.Options{
				M: M, MaxK: cfg.MaxK, Laplacian: laplacian.Original, Solver: cfg.Solver,
			})
			if err != nil {
				return nil, err
			}
			ratio := "inf"
			if t5.Bound > 0 {
				ratio = fmt.Sprintf("%.3f", t4.Bound/t5.Bound)
			} else if linalg.EqZero(t4.Bound) {
				ratio = "-"
			}
			t.AddRow(g.Name(), inum(g.N()), inum(M), fnum(t4.Bound), fnum(t5.Bound), ratio)
		}
	}
	return t, nil
}
