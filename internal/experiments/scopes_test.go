package experiments

// Acceptance coverage for the scoped-telemetry tentpole: a two-experiment
// sweep must yield per-experiment metric sections whose counters sum to
// the process totals, the /tasks endpoint must list the sweep and the
// in-flight experiment scope while an experiment is running, and the
// manifest must tie each experiment record to its scope.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphio/internal/obs"
)

func TestSweepScopedTelemetry(t *testing.T) {
	obs.Reset()
	obs.ResetScopes()
	obs.Enable(true)
	t.Cleanup(func() {
		obs.Enable(false)
		obs.ResetScopes()
		obs.Reset()
	})
	stop, addr, err := obs.StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	emit := func(name string, n int) Runner {
		return Runner{Name: name, Run: func(ctx context.Context, cfg Config) (*Table, error) {
			for i := 0; i < n; i++ {
				obs.IncCtx(ctx, "scopetest.work.total")
			}
			return stubTable(name), nil
		}}
	}
	var tasksBody string
	runners := []Runner{
		emit("alpha", 3),
		{Name: "beta", Run: func(ctx context.Context, cfg Config) (*Table, error) {
			for i := 0; i < 5; i++ {
				obs.IncCtx(ctx, "scopetest.work.total")
			}
			// Mid-experiment, /tasks must list the live sweep scope and this
			// experiment's child scope.
			resp, err := http.Get("http://" + addr + "/tasks")
			if err != nil {
				return nil, err
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			tasksBody = string(b)
			return stubTable("beta"), nil
		}},
	}
	dir := t.TempDir()
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{}, dir, nil, &log, runners); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}

	for _, wantPath := range []string{`"path": "sweep"`, `"path": "sweep/beta"`} {
		if !strings.Contains(tasksBody, wantPath) {
			t.Errorf("/tasks mid-run is missing %s:\n%s", wantPath, tasksBody)
		}
	}
	if strings.Contains(tasksBody, `"path": "sweep/alpha"`) {
		t.Errorf("/tasks mid-run still lists the completed alpha scope:\n%s", tasksBody)
	}

	// The metrics dump decomposes the process totals per scope.
	var buf bytes.Buffer
	if err := obs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump obs.Dump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("metrics dump not parseable: %v", err)
	}
	byPath := map[string]obs.ScopeSection{}
	for _, sec := range dump.Scopes {
		byPath[sec.Path] = sec
	}
	alpha, ok := byPath["sweep/alpha"]
	if !ok {
		t.Fatalf("dump has no sweep/alpha section; scopes: %v", paths(dump.Scopes))
	}
	beta := byPath["sweep/beta"]
	sweep := byPath["sweep"]
	if got := alpha.Metrics.Counters["scopetest.work.total"]; got != 3 {
		t.Errorf("alpha section scopetest.work.total = %d, want 3", got)
	}
	if got := beta.Metrics.Counters["scopetest.work.total"]; got != 5 {
		t.Errorf("beta section scopetest.work.total = %d, want 5", got)
	}
	if got := sweep.Metrics.Counters["scopetest.work.total"]; got != 8 {
		t.Errorf("sweep section scopetest.work.total = %d, want the per-experiment sum 8", got)
	}
	perScopeSum := alpha.Metrics.Counters["scopetest.work.total"] + beta.Metrics.Counters["scopetest.work.total"]
	if total := dump.Counters["scopetest.work.total"]; total != perScopeSum {
		t.Errorf("process total = %d, want per-experiment sum %d", total, perScopeSum)
	}

	// The manifest ties each experiment record to its scope and snapshot.
	man, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []obs.ScopeSection{alpha, beta} {
		if !strings.Contains(string(man), `"scope_id":"`+sec.ID+`"`) {
			t.Errorf("manifest has no record with scope_id %s (%s)", sec.ID, sec.Path)
		}
	}
	if !strings.Contains(string(man), `"metrics_sha256":"`) {
		t.Error("manifest records carry no metrics digest")
	}
}

func paths(secs []obs.ScopeSection) []string {
	out := make([]string, len(secs))
	for i, s := range secs {
		out[i] = s.Path
	}
	return out
}
