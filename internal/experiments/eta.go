package experiments

// Sweep progress and ETA. The tracker knows which experiments a sweep
// selected, how long each took in prior runs (manifest wall-time
// history), and how long completed experiments took in this run; from
// that it estimates remaining wall time. The estimate is published two
// ways: the heartbeat/done status lines on the terminal, and the
// /progress debug endpoint through obs.SetSweepStatus.
//
// ETA semantics, in order of preference per unfinished experiment:
//
//  1. its own wall time from the manifest history (same experiment,
//     earlier run — the strongest predictor);
//  2. otherwise the mean wall time over everything with known history
//     plus everything completed this run;
//  3. when neither exists (first run, nothing finished yet), the ETA is
//     unknown and reported as such rather than guessed.
//
// The running experiment contributes max(0, estimate − elapsed), so the
// ETA shrinks smoothly while a long solve is in flight.

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"graphio/internal/obs"
	"graphio/internal/persist"
)

type etaTracker struct {
	mu         sync.Mutex
	history    map[string]time.Duration // name → wall time from prior manifests
	unfinished map[string]bool          // selected, not yet done/skipped (includes current)
	runWalls   []time.Duration          // wall times completed this run
	total      int
	done       int
	failed     int
	skipped    int
	current    string
	currentAt  time.Time
}

// newETATracker starts tracking a sweep over the named experiments.
// history may be nil (no manifest, or first run into a fresh outDir).
func newETATracker(names []string, history map[string]time.Duration) *etaTracker {
	e := &etaTracker{
		history:    history,
		unfinished: make(map[string]bool, len(names)),
		total:      len(names),
	}
	for _, n := range names {
		e.unfinished[n] = true
	}
	return e
}

// begin marks name as the currently running experiment.
func (e *etaTracker) begin(name string) {
	e.mu.Lock()
	e.current = name
	e.currentAt = obs.Now()
	e.mu.Unlock()
}

// finish marks name complete (ok or failed) with its measured wall time,
// which feeds later estimates for experiments without their own history.
func (e *etaTracker) finish(name string, wall time.Duration, didFail bool) {
	e.mu.Lock()
	if e.unfinished[name] {
		delete(e.unfinished, name)
		e.done++
		if didFail {
			e.failed++
		}
		e.runWalls = append(e.runWalls, wall)
	}
	if e.current == name {
		e.current = ""
	}
	e.mu.Unlock()
}

// skip marks name as not running this sweep (resume reuse, or a
// cancelled sweep that never started it).
func (e *etaTracker) skip(name string) {
	e.mu.Lock()
	if e.unfinished[name] {
		delete(e.unfinished, name)
		e.skipped++
	}
	e.mu.Unlock()
}

// eta estimates remaining wall time. The second result is false while no
// history exists to estimate from.
func (e *etaTracker) eta() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.etaLocked()
}

func (e *etaTracker) etaLocked() (time.Duration, bool) {
	// Mean over all known wall times: this run's measurements plus prior
	// history for experiments in this sweep.
	var sum time.Duration
	n := 0
	for _, w := range e.runWalls {
		sum += w
		n++
	}
	for name := range e.unfinished {
		if w, ok := e.history[name]; ok {
			sum += w
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	mean := sum / time.Duration(n)
	var rem time.Duration
	for name := range e.unfinished {
		est := mean
		if w, ok := e.history[name]; ok {
			est = w
		}
		if name == e.current {
			est -= obs.Since(e.currentAt)
			if est < 0 {
				est = 0
			}
		}
		rem += est
	}
	return rem, true
}

// status implements the obs sweep-status provider contract.
func (e *etaTracker) status() (obs.SweepStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := obs.SweepStatus{
		Total:   e.total,
		Done:    e.done,
		Failed:  e.failed,
		Skipped: e.skipped,
		Current: e.current,
	}
	if e.current != "" {
		st.CurrentElapsedNS = obs.Since(e.currentAt).Nanoseconds()
	}
	if rem, ok := e.etaLocked(); ok {
		st.ETAKnown = true
		st.ETANS = rem.Nanoseconds()
	}
	return st, true
}

// progressLine renders the compact "k/N done, ETA ~x" fragment the
// heartbeat and per-experiment status lines append.
func (e *etaTracker) progressLine() string {
	st, _ := e.status()
	s := fmt.Sprintf("%d/%d done", st.Done+st.Skipped, st.Total)
	if st.ETAKnown {
		s += fmt.Sprintf(", ETA ~%v", time.Duration(st.ETANS).Round(time.Second))
	}
	return s
}

// readManifestWalls replays an existing sweep manifest read-only and
// returns the latest ok/failed wall time per experiment. Best-effort by
// design: a missing, torn, or corrupt manifest just means no history, so
// the ETA starts unknown instead of the sweep failing.
func readManifestWalls(path string) map[string]time.Duration {
	records, err := persist.ReadJournal(path)
	if err != nil || len(records) == 0 {
		return nil
	}
	walls := map[string]time.Duration{}
	for _, raw := range records {
		var rec manifestRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue
		}
		if rec.Kind == recExperiment && rec.Name != "" && rec.WallMS > 0 && !rec.Skipped {
			walls[rec.Name] = time.Duration(rec.WallMS) * time.Millisecond
		}
	}
	if len(walls) == 0 {
		return nil
	}
	return walls
}
