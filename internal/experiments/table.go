// Package experiments regenerates every figure and closed-form table of
// the paper's evaluation (Figures 7-11, the Section 5 analyses) plus the
// validation and ablation tables DESIGN.md indexes (sandwich, best-k,
// Theorem 4 vs 5). Each experiment returns a Table that can be rendered as
// CSV (for plotting) or aligned text (for reading); RunAll writes them all
// into a directory and is what cmd/experiments drives.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular result set with named columns.
type Table struct {
	Name    string // short slug, used for file names
	Title   string // human-readable description
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		//lint:ignore no-panic a row/column mismatch is a shape bug in the caller; a malformed table must fail loudly, not render
		panic(fmt.Sprintf("experiments: row of %d cells in table %q with %d columns",
			len(cells), t.Name, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteCSV renders the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders the table with aligned columns for terminals and logs.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.Name, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fnum formats a float compactly for table cells.
func fnum(v float64) string {
	switch {
	//lint:ignore float-eq detects exactly-integer values for %d formatting; a tolerance would misprint near-integers
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1e6 || v <= -1e6:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func inum(v int) string { return fmt.Sprintf("%d", v) }
