package experiments

import (
	"path/filepath"
	"testing"
	"time"

	"graphio/internal/obs"
	"graphio/internal/persist"
)

func TestETAEmptyHistory(t *testing.T) {
	e := newETATracker([]string{"fig7", "fig8", "fig9"}, nil)
	if _, ok := e.eta(); ok {
		t.Error("ETA claimed known with no history and nothing finished")
	}
	st, ok := e.status()
	if !ok {
		t.Fatal("status not reported")
	}
	if st.Total != 3 || st.Done != 0 || st.ETAKnown {
		t.Errorf("status = %+v", st)
	}
	// The first completion creates history: remaining 2 × its wall time.
	e.begin("fig7")
	e.finish("fig7", 10*time.Second, false)
	rem, ok := e.eta()
	if !ok {
		t.Fatal("ETA unknown after a completed experiment")
	}
	if rem != 20*time.Second {
		t.Errorf("ETA = %v, want 20s (mean 10s × 2 remaining)", rem)
	}
}

func TestETAPartialHistory(t *testing.T) {
	base := time.Unix(1700000000, 0)
	obs.SetClock(func() time.Time { return base })
	defer obs.SetClock(nil)

	// fig8 has its own history; fig9 falls back to the mean of known walls.
	hist := map[string]time.Duration{"fig8": 30 * time.Second}
	e := newETATracker([]string{"fig7", "fig8", "fig9"}, hist)
	rem, ok := e.eta()
	if !ok {
		t.Fatal("ETA unknown despite partial history")
	}
	// Known walls: fig8's 30s → mean 30s. fig7 = 30s, fig8 = 30s, fig9 = 30s.
	if rem != 90*time.Second {
		t.Errorf("ETA = %v, want 90s", rem)
	}

	e.begin("fig7")
	e.finish("fig7", 6*time.Second, false)
	rem, ok = e.eta()
	if !ok {
		t.Fatal("ETA unknown")
	}
	// Known walls now 6s (run) + 30s (fig8 history) → mean 18s.
	// fig8 uses its own 30s, fig9 the 18s mean.
	if rem != 48*time.Second {
		t.Errorf("ETA = %v, want 48s", rem)
	}

	// Mid-experiment, the running experiment's estimate shrinks by its
	// elapsed time (fig8: 30s − 10s = 20s; fig9 mean stays 18s).
	e.begin("fig8")
	obs.SetClock(func() time.Time { return base.Add(10 * time.Second) })
	rem, ok = e.eta()
	if !ok {
		t.Fatal("ETA unknown")
	}
	if rem != 38*time.Second {
		t.Errorf("ETA = %v, want 38s", rem)
	}

	// An overrun experiment contributes 0, never negative.
	obs.SetClock(func() time.Time { return base.Add(5 * time.Minute) })
	rem, _ = e.eta()
	if rem != 18*time.Second {
		t.Errorf("ETA with overrun current = %v, want 18s", rem)
	}
}

func TestETASkipAndFailureCounts(t *testing.T) {
	e := newETATracker([]string{"a", "b", "c", "d"}, nil)
	e.skip("a")
	e.begin("b")
	e.finish("b", time.Second, true)
	st, _ := e.status()
	if st.Skipped != 1 || st.Done != 1 || st.Failed != 1 {
		t.Errorf("status = %+v, want skipped=1 done=1 failed=1", st)
	}
	// Double-counting guards: repeated finish/skip of the same name are
	// no-ops.
	e.finish("b", time.Second, true)
	e.skip("a")
	st, _ = e.status()
	if st.Skipped != 1 || st.Done != 1 {
		t.Errorf("status after repeats = %+v", st)
	}
	line := e.progressLine()
	if line != "2/4 done, ETA ~2s" {
		t.Errorf("progressLine = %q", line)
	}
}

func TestReadManifestWalls(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestName)
	if walls := readManifestWalls(path); walls != nil {
		t.Errorf("missing manifest produced history %v", walls)
	}
	j, _, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{
		`{"kind":"sweep","config_hash":"h"}`,
		`{"kind":"experiment","name":"fig7","status":"ok","wall_ms":1500}`,
		`{"kind":"experiment","name":"fig8","status":"failed","wall_ms":200}`,
		`{"kind":"experiment","name":"fig7","status":"ok","wall_ms":2500}`,
		`{"kind":"experiment","name":"fig9","status":"ok","skipped":true,"wall_ms":900}`,
	} {
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	walls := readManifestWalls(path)
	if len(walls) != 2 {
		t.Fatalf("walls = %v, want fig7+fig8", walls)
	}
	if walls["fig7"] != 2500*time.Millisecond {
		t.Errorf("fig7 wall = %v, want latest record's 2.5s", walls["fig7"])
	}
	if walls["fig8"] != 200*time.Millisecond {
		t.Errorf("fig8 wall = %v (failed runs still inform the estimate)", walls["fig8"])
	}
	if _, ok := walls["fig9"]; ok {
		t.Error("skip records must not count as measured wall time")
	}
}
