package experiments

// Sweep durability. The manifest is an append-only, checksummed JSONL
// journal (persist.Journal) named manifest.json in outDir. Each completed
// experiment appends one record carrying the config hash it ran under,
// its status, and the SHA-256 of its committed CSV, so a later -resume
// can prove an artifact is both present and current before skipping the
// recompute. Replay takes the latest record per experiment; a torn final
// record — the crash case — is discarded by the journal layer.

import (
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"graphio/internal/obs"
	"graphio/internal/persist"
)

const (
	// ManifestName is the sweep manifest journal inside outDir.
	ManifestName = "manifest.json"
	// manifestLockName is the single-writer lock guarding outDir.
	manifestLockName = "manifest.lock"
)

// ErrSweepLocked reports that another live process is already sweeping
// into the same outDir. (A lock left by a killed process is stolen, not
// reported.)
var ErrSweepLocked = errors.New("experiments: another sweep is running in this outDir")

// Record kinds. A sweep record opens each run; experiment records carry
// per-artifact state; a report record seals the combined report.txt.
const (
	recSweep      = "sweep"
	recExperiment = "experiment"
	recReport     = "report"
)

// manifestRecord is one journal entry. Fields are pointers-free and
// omitempty so records stay one short JSON line each.
type manifestRecord struct {
	Kind string `json:"kind"`

	// Every kind. ConfigHash pins the Config the work is valid for;
	// stamping it per record (not just on the sweep header) keeps each
	// experiment's skip decision self-contained across resumed runs.
	ConfigHash string `json:"config_hash,omitempty"`
	Time       string `json:"time,omitempty"` // RFC3339, informational

	// recSweep.
	Resumed bool `json:"resumed,omitempty"`

	// recExperiment.
	Name    string `json:"name,omitempty"`
	Title   string `json:"title,omitempty"` // table title, for report regeneration
	Status  string `json:"status,omitempty"`
	Skipped bool   `json:"skipped,omitempty"` // verified and reused, not recomputed
	Error   string `json:"error,omitempty"`
	WallMS  int64  `json:"wall_ms,omitempty"`

	// recExperiment, distributed sweeps only: which worker produced the
	// artifact and how many attempts a poisoned shard burned. Informational
	// — resume skip decisions ignore both, so a merged manifest stays fully
	// resume-compatible with a single-process one.
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts,omitempty"`

	// recExperiment and recReport: the committed artifact and its hash.
	Artifact string `json:"artifact,omitempty"`
	SHA256   string `json:"sha256,omitempty"`

	// recExperiment: the telemetry scope the experiment ran under and the
	// digest of that scope's metric snapshot at completion, tying the
	// manifest row to its section in a -metrics-out dump and to the
	// scope/scope_id tags on -events-out records. Informational only:
	// scope IDs are per-process, so resume skip decisions ignore both.
	ScopeID       string `json:"scope_id,omitempty"`
	MetricsSHA256 string `json:"metrics_sha256,omitempty"`
}

const (
	statusOK     = "ok"
	statusFailed = "failed"
	// statusPoisoned marks a shard a distributed sweep gave up on after its
	// attempt cap: permanently failed for *this* sweep, but — like any
	// non-ok record — re-run by a later -resume, so poisoning never
	// strands an experiment forever.
	statusPoisoned = "poisoned"
)

// Hash returns a stable hex digest of every Config field that affects
// experiment results. Two sweeps with equal hashes produce identical
// artifacts, so a resume may reuse verified ones; operational knobs that
// cannot change results (Progress, ExperimentTimeout, Resume, the
// AfterExperiment hook) are deliberately excluded.
func (c Config) Hash() string {
	shadow := struct {
		V                int // bump to invalidate every old manifest on format change
		FFTLevels        []int
		FFTMemories      []int
		MatMulSizes      []int
		MatMulMemories   []int
		StrassenSizes    []int
		StrassenMemories []int
		BHKCities        []int
		BHKMemories      []int
		MinCutTimeoutNS  int64
		MinCutMaxN       int
		Solver           int
		MaxK             int
		SandwichSamples  int
		ERSizes          []int
		ERP0             float64
		Seed             int64
	}{
		V:         1,
		FFTLevels: c.FFTLevels, FFTMemories: c.FFTMemories,
		MatMulSizes: c.MatMulSizes, MatMulMemories: c.MatMulMemories,
		StrassenSizes: c.StrassenSizes, StrassenMemories: c.StrassenMemories,
		BHKCities: c.BHKCities, BHKMemories: c.BHKMemories,
		MinCutTimeoutNS: c.MinCutTimeout.Nanoseconds(), MinCutMaxN: c.MinCutMaxN,
		Solver: int(c.Solver), MaxK: c.MaxK,
		SandwichSamples: c.SandwichSamples,
		ERSizes:         c.ERSizes, ERP0: c.ERP0, Seed: c.Seed,
	}
	b, err := json.Marshal(shadow)
	if err != nil {
		// Marshalling a struct of ints and slices cannot fail; if it ever
		// does, an unforgeable hash disables all skipping rather than
		// risking a stale artifact.
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// sweepManifest owns the journal and lock for one RunAll invocation.
type sweepManifest struct {
	journal *persist.Journal
	lock    *persist.Lock
	hash    string
	prior   map[string]manifestRecord // latest experiment record per name
	// walls is the previous manifest's wall-time history, captured before
	// a fresh (non-resume) sweep truncates the journal: the ETA estimator
	// can then seed itself even when the results themselves are not reused.
	walls map[string]time.Duration
}

// openManifest locks outDir, clears stale temp debris, and opens the
// manifest journal. With resume set, prior records are replayed so the
// sweep can skip verified work; otherwise the journal starts fresh.
// Config.LockWait bounds how long the lock acquisition queues behind
// another live sweep before failing typed (zero: fail immediately).
func openManifest(ctx context.Context, outDir string, cfg Config, resume bool) (*sweepManifest, error) {
	lock, err := persist.AcquireLockWait(ctx, filepath.Join(outDir, manifestLockName), cfg.LockWait)
	if err != nil {
		if errors.Is(err, persist.ErrLocked) {
			return nil, fmt.Errorf("%w: %v", ErrSweepLocked, err)
		}
		return nil, err
	}
	if _, err := persist.RemoveStaleTemps(outDir); err != nil {
		_ = lock.Release()
		return nil, err
	}
	path := filepath.Join(outDir, ManifestName)
	walls := readManifestWalls(path)
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			_ = lock.Release()
			return nil, err
		}
	}
	journal, records, err := persist.OpenJournal(path)
	if err != nil {
		_ = lock.Release()
		return nil, fmt.Errorf("experiments: opening sweep manifest: %w", err)
	}
	m := &sweepManifest{journal: journal, lock: lock, hash: cfg.Hash(), prior: map[string]manifestRecord{}, walls: walls}
	//lint:ignore ctx-loop replay decodes records already in memory — bounded work with nothing to cancel
	for _, raw := range records {
		var rec manifestRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue // checksummed but unknown shape: treat as absent
		}
		if rec.Kind == recExperiment && rec.Name != "" {
			m.prior[rec.Name] = rec
		}
	}
	if err := m.append(manifestRecord{Kind: recSweep, ConfigHash: m.hash, Resumed: resume}); err != nil {
		m.close()
		return nil, err
	}
	return m, nil
}

func (m *sweepManifest) append(rec manifestRecord) error {
	rec.Time = obs.Now().UTC().Format(time.RFC3339)
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return m.journal.Append(b)
}

// completed records a successful experiment and its committed artifact.
// sc, when non-nil and telemetry is enabled, stamps the record with the
// experiment's scope ID and metric-snapshot digest.
func (m *sweepManifest) completed(t *Table, sha string, wall time.Duration, sc *obs.Scope) error {
	rec := manifestRecord{
		Kind: recExperiment, ConfigHash: m.hash,
		Name: t.Name, Title: t.Title, Status: statusOK,
		Artifact: t.Name + ".csv", SHA256: sha, WallMS: wall.Milliseconds(),
	}
	stampScope(&rec, sc)
	return m.append(rec)
}

// failed records an experiment that ran and errored.
func (m *sweepManifest) failed(name string, wall time.Duration, cause error, sc *obs.Scope) error {
	rec := manifestRecord{
		Kind: recExperiment, ConfigHash: m.hash,
		Name: name, Status: statusFailed, Error: cause.Error(), WallMS: wall.Milliseconds(),
	}
	stampScope(&rec, sc)
	return m.append(rec)
}

// stampScope annotates an experiment record with its telemetry scope.
// Skipped when telemetry is off: the digest of an always-empty snapshot
// carries no information, and the manifest should stay byte-stable for
// sweeps run without -metrics.
func stampScope(rec *manifestRecord, sc *obs.Scope) {
	if sc == nil || !obs.Enabled() {
		return
	}
	rec.ScopeID = sc.ID()
	rec.MetricsSHA256 = sc.Digest()
}

// skipped re-records a verified prior result so the manifest's tail
// always reflects the latest sweep's view of every experiment.
func (m *sweepManifest) skipped(prior manifestRecord) error {
	prior.Kind = recExperiment
	prior.ConfigHash = m.hash
	prior.Skipped = true
	prior.Time = ""
	return m.append(prior)
}

// report seals the combined report.txt's hash.
func (m *sweepManifest) report(sha string) error {
	return m.append(manifestRecord{Kind: recReport, ConfigHash: m.hash, Artifact: "report.txt", SHA256: sha})
}

// reusable decides whether an experiment can be skipped under the current
// config: a prior ok record with a matching config hash whose artifact is
// still on disk with the recorded hash. It returns the reloaded table on
// success (so report.txt still covers skipped experiments byte-for-byte).
func (m *sweepManifest) reusable(outDir, name string) (*Table, manifestRecord, bool) {
	rec, ok := m.prior[name]
	if !ok || rec.Status != statusOK || rec.ConfigHash != m.hash || rec.Artifact == "" {
		return nil, rec, false
	}
	path := filepath.Join(outDir, rec.Artifact)
	sha, err := sha256File(path)
	if err != nil || sha != rec.SHA256 {
		return nil, rec, false
	}
	t, err := loadTableCSV(path, name, rec.Title)
	if err != nil {
		return nil, rec, false
	}
	return t, rec, true
}

func (m *sweepManifest) close() {
	_ = m.journal.Close()
	_ = m.lock.Release()
}

// sha256File hashes a file's current content.
func sha256File(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// sha256Bytes hashes an in-memory artifact.
func sha256Bytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// loadTableCSV reconstructs a Table from its committed CSV plus the title
// the manifest recorded, for regenerating report.txt on resume without
// recomputing the experiment.
func loadTableCSV(path, name, title string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("experiments: %s: empty CSV", path)
	}
	return &Table{Name: name, Title: title, Columns: records[0], Rows: records[1:]}, nil
}
