package experiments

import (
	"io"
	"time"

	"graphio/internal/core"
)

// Config scopes the experiment sweeps. The zero value is unusable; start
// from DefaultConfig (paper-like sweeps sized for minutes of runtime) or
// QuickConfig (seconds; used by tests and benchmarks).
type Config struct {
	// Figure 7: 2^l-point FFT.
	FFTLevels   []int
	FFTMemories []int

	// Figure 8: n×n naive matrix multiplication (n-ary sums, as in the
	// paper's tracer).
	MatMulSizes    []int
	MatMulMemories []int

	// Figure 9: n×n Strassen multiplication.
	StrassenSizes    []int
	StrassenMemories []int

	// Figures 10 and 11: l-city Bellman–Held–Karp.
	BHKCities   []int
	BHKMemories []int

	// Baseline control: the convex min-cut sweep is time-boxed per graph
	// (the paper used a one-day cutoff on its testbed) and skipped
	// entirely above MinCutMaxN vertices.
	MinCutTimeout time.Duration
	MinCutMaxN    int

	// Spectral solver configuration.
	Solver core.Solver
	MaxK   int

	// ExperimentTimeout, when positive, deadlines each experiment
	// individually inside RunAll: a deadlined experiment is reported as
	// failed and the sweep continues with the next one. The zero value
	// leaves experiments unbounded (only the caller's context limits them).
	ExperimentTimeout time.Duration

	// Validation/ablation table control.
	SandwichSamples int // random orders tried per upper-bound search
	ERSizes         []int
	ERP0            float64
	Seed            int64

	// Progress, when non-nil, receives one line per completed figure data
	// point (the sweeps over large graphs can take minutes per point).
	Progress io.Writer

	// Resume, with a non-empty outDir, replays outDir's manifest journal
	// before running: experiments whose prior record carries the same
	// Config hash and whose CSV still matches its recorded SHA-256 are
	// skipped (their tables are reloaded so report.txt stays complete);
	// failed, missing, or hash-mismatched ones re-run. An interrupted or
	// partially-failed sweep therefore converges to the full artifact set
	// across restarts. Resume, Progress, ExperimentTimeout and
	// AfterExperiment do not affect results and are excluded from the hash.
	Resume bool

	// LockWait, when positive, bounds how long opening the sweep's outDir
	// waits for another live sweep to release the single-writer lock
	// before failing with ErrSweepLocked. Zero keeps the historical
	// fail-immediately behaviour. Distributed coordinators set this so a
	// restart can overlap its dying predecessor for a moment instead of
	// aborting the whole sweep. Operational only: excluded from Hash.
	LockWait time.Duration

	// AfterExperiment, when non-nil, runs after each experiment's
	// artifacts and manifest record are durably committed (also for
	// skipped and failed experiments). It exists for fault injection —
	// cmd/experiments' -crash-after kills the process from here to test
	// crash consistency — and for test instrumentation.
	AfterExperiment func(name string)
}

// DefaultConfig returns paper-like sweeps trimmed to commodity-hardware
// runtimes (minutes). Extend the slices toward the paper's largest sizes
// (FFT l=12, matmul n=64, BHK l=15) for a full-scale run.
func DefaultConfig() Config {
	return Config{
		FFTLevels:        []int{3, 4, 5, 6, 7, 8, 9, 10},
		FFTMemories:      []int{4, 8, 16},
		MatMulSizes:      []int{4, 8, 12, 16, 20, 24, 28, 32},
		MatMulMemories:   []int{32, 64, 128},
		StrassenSizes:    []int{4, 8, 16},
		StrassenMemories: []int{8, 16},
		BHKCities:        []int{6, 7, 8, 9, 10, 11, 12},
		BHKMemories:      []int{16, 32, 64},
		MinCutTimeout:    20 * time.Second,
		MinCutMaxN:       40000,
		Solver:           core.SolverAuto,
		MaxK:             100,
		SandwichSamples:  20,
		ERSizes:          []int{128, 256, 512},
		ERP0:             12,
		Seed:             1,
	}
}

// QuickConfig returns a miniature sweep for tests and benchmarks.
func QuickConfig() Config {
	return Config{
		FFTLevels:        []int{3, 4, 5},
		FFTMemories:      []int{4, 8},
		MatMulSizes:      []int{4, 8},
		MatMulMemories:   []int{32, 64},
		StrassenSizes:    []int{4, 8},
		StrassenMemories: []int{8, 16},
		BHKCities:        []int{6, 7, 8},
		BHKMemories:      []int{16, 32},
		MinCutTimeout:    5 * time.Second,
		MinCutMaxN:       5000,
		Solver:           core.SolverAuto,
		MaxK:             60,
		SandwichSamples:  8,
		ERSizes:          []int{96, 128},
		ERP0:             12,
		Seed:             1,
	}
}
