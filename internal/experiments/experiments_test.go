package experiments

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
)

func tiny() Config {
	cfg := QuickConfig()
	cfg.FFTLevels = []int{3, 4}
	cfg.FFTMemories = []int{4, 8}
	cfg.MatMulSizes = []int{2, 4}
	cfg.MatMulMemories = []int{8, 16}
	cfg.StrassenSizes = []int{2, 4}
	cfg.StrassenMemories = []int{8}
	cfg.BHKCities = []int{4, 5, 6}
	cfg.BHKMemories = []int{4, 8}
	cfg.ERSizes = []int{48}
	cfg.SandwichSamples = 4
	return cfg
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Name: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	var csvBuf, txtBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if got := csvBuf.String(); got != "a,bb\n1,2\n" {
		t.Errorf("csv: %q", got)
	}
	if err := tab.WriteText(&txtBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txtBuf.String(), "demo") {
		t.Error("text output missing title")
	}
}

func TestTableAddRowPanicsOnWidthMismatch(t *testing.T) {
	tab := &Table{Name: "x", Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Error("mismatched row accepted")
		}
	}()
	tab.AddRow("1", "2")
}

func parseCell(t *testing.T, s string) (float64, bool) {
	t.Helper()
	s = strings.TrimSuffix(s, "*")
	if s == "-" || s == "skipped" || s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q", s)
	}
	return v, true
}

func TestFigure7ShapeAndMonotonicity(t *testing.T) {
	cfg := tiny()
	tab, err := Figure7(context.Background(), cfg, func(l int) *graph.Graph { return gen.FFT(l) })
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cfg.FFTLevels) {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Reproduction shape checks: spectral grows with l and dominates the
	// min-cut baseline at every point (the paper's headline comparison).
	specCol := 3 // first spectral column (M = FFTMemories[0])
	mcCol := 3 + len(cfg.FFTMemories)
	var prev float64 = -1
	for _, row := range tab.Rows {
		sv, ok := parseCell(t, row[specCol])
		if !ok {
			continue
		}
		if sv < prev {
			t.Errorf("spectral bound decreased with l: %v", tab.Rows)
		}
		prev = sv
		if mv, ok := parseCell(t, row[mcCol]); ok && mv > sv+1e-9 {
			t.Errorf("min-cut %g exceeds spectral %g at row %v", mv, sv, row)
		}
	}
}

func TestFigure10SpectralPositiveAndDominant(t *testing.T) {
	cfg := tiny()
	cfg.BHKCities = []int{6, 7, 8}
	cfg.BHKMemories = []int{8} // M ≥ max in-degree so no point is dropped
	tab, err := Figure10(context.Background(), cfg, func(l int) *graph.Graph { return gen.BellmanHeldKarp(l) })
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if v, ok := parseCell(t, last[3]); !ok || v <= 0 {
		t.Errorf("BHK l=8 M=8 spectral bound should be positive: %v", last)
	}
	// Points where in-degree exceeds M must be dropped, not zeroed.
	cfg.BHKMemories = []int{4}
	tab, err = Figure10(context.Background(), cfg, func(l int) *graph.Graph { return gen.BellmanHeldKarp(l) })
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[0] != "4" && row[3] != "-" {
			t.Errorf("l=%s M=4 should be dropped (in-degree > M): %v", row[0], row)
		}
	}
}

func TestFigure11ReportsRuntimes(t *testing.T) {
	cfg := tiny()
	cfg.BHKCities = []int{4, 5}
	tab, err := Figure11(context.Background(), cfg, func(l int) *graph.Graph { return gen.BellmanHeldKarp(l) })
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if _, err := strconv.ParseFloat(row[2], 64); err != nil {
			t.Errorf("bad spectral runtime cell %q", row[2])
		}
		if _, err := strconv.ParseFloat(row[3], 64); err != nil {
			t.Errorf("bad mincut runtime cell %q", row[3])
		}
	}
}

func TestTableHypercubeClosedFormMatchesComputed(t *testing.T) {
	cfg := tiny()
	tab, err := TableHypercube(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		closed, ok1 := parseCell(t, row[3])
		computed, ok2 := parseCell(t, row[5])
		if ok1 && ok2 {
			diff := closed - computed
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6*(1+closed) {
				t.Errorf("closed form %g != computed %g in row %v", closed, computed, row)
			}
		}
	}
}

func TestTableFFTRatioWithinLogFactor(t *testing.T) {
	cfg := tiny()
	cfg.FFTLevels = []int{10, 12}
	cfg.FFTMemories = []int{4}
	tab, err := TableFFT(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio, ok := parseCell(t, row[7])
		if !ok {
			continue
		}
		// §5.2: the closed form is at most a 1/log2 M factor below
		// Hong-Kung; it must never exceed it (HK is asymptotically tight),
		// and for M ≪ l it is positive.
		if ratio > 1.5 {
			t.Errorf("closed/HK ratio %g too large in row %v", ratio, row)
		}
		if ratio <= 0 {
			t.Errorf("ratio %g should be positive for M ≪ l: %v", ratio, row)
		}
	}
	// The closed form is asymptotic: with M comparable to l it goes
	// trivial (clamped to 0), which must surface as a zero cell, not an
	// error.
	cfg.FFTLevels = []int{8}
	cfg.FFTMemories = []int{16}
	tab, err = TableFFT(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := parseCell(t, tab.Rows[0][2]); !ok || v != 0 {
		t.Errorf("l=8 M=16 closed form should clamp to 0: %v", tab.Rows[0])
	}
}

func TestTableERRuns(t *testing.T) {
	cfg := tiny()
	tab, err := TableER(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2*len(cfg.ERSizes) {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if v, ok := parseCell(t, row[4]); !ok || v < 0 {
			t.Errorf("computed bound cell %q", row[4])
		}
	}
}

func TestTableSandwichHoldsInternally(t *testing.T) {
	cfg := tiny()
	// TableSandwich returns an error if any lower bound exceeds the
	// simulated upper bound, so success is the assertion.
	tab, err := TableSandwich(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("sandwich table empty")
	}
}

func TestTableBestKStaysBelowCap(t *testing.T) {
	cfg := tiny()
	tab, err := TableBestK(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		bestK, _ := parseCell(t, row[3])
		h, _ := parseCell(t, row[4])
		if bestK > h {
			t.Errorf("best k %g exceeds h %g: %v", bestK, h, row)
		}
	}
}

func TestTableThm4vs5Tightness(t *testing.T) {
	cfg := tiny()
	tab, err := TableThm4vs5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		t4, ok1 := parseCell(t, row[3])
		t5, ok2 := parseCell(t, row[4])
		if ok1 && ok2 && t4 < t5-1e-9 {
			t.Errorf("Theorem 4 bound below Theorem 5 in row %v", row)
		}
	}
}

func TestTableParallelMonotone(t *testing.T) {
	cfg := tiny()
	// TableParallel validates monotonicity internally (errors on
	// violation); also check cells parse and p1 dominates p16.
	tab, err := TableParallel(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		p1, ok1 := parseCell(t, row[3])
		p16, ok16 := parseCell(t, row[7])
		if ok1 && ok16 && p16 > p1+1e-9 {
			t.Errorf("p16 bound above p1 in row %v", row)
		}
	}
}

func TestTablePartitionedMinCutTrivial(t *testing.T) {
	cfg := tiny()
	tab, err := TablePartitionedMinCut(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The §6.3 claim: the 2M-part variant collapses on complex graphs.
	// Check it never exceeds the whole-graph variant by a large factor and
	// is zero for at least one complex graph in the set.
	zeroSeen := false
	for _, row := range tab.Rows {
		parted, ok := parseCell(t, row[4])
		if ok && parted == 0 {
			zeroSeen = true
		}
	}
	if !zeroSeen {
		t.Errorf("expected the partitioned variant to be trivial somewhere: %v", tab.Rows)
	}
}

func TestTableSchedulerBracketsJStar(t *testing.T) {
	cfg := tiny()
	// Internal consistency (lower ≤ best) is enforced by the function;
	// it returning without error is the assertion.
	tab, err := TableScheduler(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("scheduler table empty")
	}
}

func TestTableLambda2NearPrediction(t *testing.T) {
	cfg := tiny()
	cfg.ERSizes = []int{256}
	tab, err := TableLambda2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio, ok := parseCell(t, row[4])
		if !ok {
			t.Fatalf("bad ratio cell %q", row[4])
		}
		// Concentration is asymptotic; at n=256 expect the sampled λ2
		// within a factor ~2 of the prediction.
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("λ2 ratio %g far from prediction: %v", ratio, row)
		}
	}
}

func TestTableExactGroundTruth(t *testing.T) {
	cfg := tiny()
	// TableExact enforces lower ≤ J* ≤ simulated internally; returning
	// without error plus non-empty rows is the assertion.
	tab, err := TableExact(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("exact table empty")
	}
	for _, row := range tab.Rows {
		exact, ok1 := parseCell(t, row[5])
		sim, ok2 := parseCell(t, row[6])
		if ok1 && ok2 && exact > sim {
			t.Errorf("J* %g above simulated %g: %v", exact, sim, row)
		}
	}
}

func TestTableExpansionConsistent(t *testing.T) {
	cfg := tiny()
	tab, err := TableExpansion(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		k2, ok1 := parseCell(t, row[6])
		full, ok2 := parseCell(t, row[7])
		if ok1 && ok2 && k2 > full+1e-9 {
			t.Errorf("k=2 bound above the full sweep: %v", row)
		}
	}
}

func TestTableGridSandwich(t *testing.T) {
	cfg := tiny()
	// Internal lower ≤ simulated check is enforced by the function.
	tab, err := TableGrid(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		fr, ok1 := parseCell(t, row[5])
		kahn, ok2 := parseCell(t, row[6])
		if ok1 && ok2 && fr > kahn {
			t.Errorf("frontier order worse than kahn on the grid: %v", row)
		}
	}
}

func TestTableHongKungConsistent(t *testing.T) {
	cfg := tiny()
	tab, err := TableHongKung(context.Background(), cfg) // internal soundness checks error out
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("hongkung table empty")
	}
	for _, row := range tab.Rows {
		nt, ok1 := parseCell(t, row[5])
		tot, ok2 := parseCell(t, row[7])
		if ok1 && ok2 && nt > tot {
			t.Errorf("non-trivial J* above total J*: %v", row)
		}
	}
}

func TestComputeBoundsMatchesDirectSpectralBound(t *testing.T) {
	// Regression for the divisor-1 reuse: the cached-eigenvalue path must
	// agree exactly with a direct Theorem 4 SpectralBound call.
	cfg := tiny()
	g := gen.FFT(4)
	gb, err := computeBounds(context.Background(), cfg, g, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, M := range []int{2, 4, 8} {
		direct, err := core.SpectralBound(g, core.Options{
			M: M, MaxK: cfg.MaxK, Solver: cfg.Solver, Laplacian: laplacian.OutDegreeNormalized,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := gb.spectralAt(M); got != direct.Bound {
			t.Errorf("M=%d: cached %g vs direct %g", M, got, direct.Bound)
		}
	}
}

func TestTableHierFloorsHold(t *testing.T) {
	cfg := tiny()
	tab, err := TableHier(context.Background(), cfg) // internal floor ≤ traffic checks error out
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("hier table empty")
	}
}

func TestRunAllWritesFiles(t *testing.T) {
	cfg := tiny()
	dir := t.TempDir()
	tables, err := RunAll(context.Background(), cfg, dir, []string{"fig11", "er"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables=%d", len(tables))
	}
	for _, name := range []string{"fig11.csv", "er.csv", "report.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	if _, err := RunAll(context.Background(), cfg, "", []string{"nope"}, io.Discard); err == nil {
		t.Error("unknown experiment name accepted")
	}
}
