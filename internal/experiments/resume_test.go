package experiments

// Resume and crash-consistency semantics of the sweep driver: the
// manifest journal must let a restarted sweep skip exactly the work whose
// artifacts verify, re-run everything else, and converge to the same
// artifact set an uninterrupted sweep produces — while a failing artifact
// write can never leave a torn CSV behind.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphio/internal/faultinject"
	"graphio/internal/persist"
)

// countingRunners returns two well-behaved runners plus a map recording
// how many times each actually executed.
func countingRunners(names ...string) ([]Runner, map[string]int) {
	runs := map[string]int{}
	var rs []Runner
	for _, name := range names {
		name := name
		rs = append(rs, Runner{Name: name, Run: func(ctx context.Context, cfg Config) (*Table, error) {
			runs[name]++
			return stubTable(name), nil
		}})
	}
	return rs, runs
}

func dirListing(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// assertCleanDir fails on temp debris or a leftover lock in outDir.
func assertCleanDir(t *testing.T, dir string) {
	t.Helper()
	for _, name := range dirListing(t, dir) {
		if strings.Contains(name, ".tmp") {
			t.Errorf("temp debris %s left in outDir", name)
		}
		if name == manifestLockName {
			t.Errorf("lock file still present after sweep")
		}
	}
}

func TestResumeCleanSkipsEverything(t *testing.T) {
	dir := t.TempDir()
	runners, runs := countingRunners("alpha", "beta")
	cfg := Config{}
	var log1 bytes.Buffer
	if _, err := runRunners(context.Background(), cfg, dir, nil, &log1, runners); err != nil {
		t.Fatal(err)
	}
	report1, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	csv1, err := os.ReadFile(filepath.Join(dir, "alpha.csv"))
	if err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	var log2 bytes.Buffer
	tables, err := runRunners(context.Background(), cfg, dir, nil, &log2, runners)
	if err != nil {
		t.Fatal(err)
	}
	if runs["alpha"] != 1 || runs["beta"] != 1 {
		t.Fatalf("resume recomputed experiments: runs = %v", runs)
	}
	if len(tables) != 2 || tables[0].Name != "alpha" || tables[1].Name != "beta" {
		t.Fatalf("resumed tables = %v, want [alpha beta]", tableNames(tables))
	}
	for _, name := range []string{"alpha", "beta"} {
		if !strings.Contains(log2.String(), "skipping "+name) {
			t.Errorf("log does not announce skipping %s:\n%s", name, log2.String())
		}
	}
	// Byte-identical artifacts: report regenerated from reloaded tables.
	report2, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(report1, report2) {
		t.Errorf("report.txt differs after clean resume:\n--- first\n%s--- resumed\n%s", report1, report2)
	}
	csv2, err := os.ReadFile(filepath.Join(dir, "alpha.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Error("alpha.csv rewritten differently on resume")
	}
	assertCleanDir(t, dir)
}

func TestResumeConfigHashChangeRerunsEverything(t *testing.T) {
	dir := t.TempDir()
	runners, runs := countingRunners("alpha", "beta")
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{MaxK: 10}, dir, nil, &log, runners); err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxK: 20, Resume: true} // result-affecting knob changed
	if _, err := runRunners(context.Background(), cfg, dir, nil, &log, runners); err != nil {
		t.Fatal(err)
	}
	if runs["alpha"] != 2 || runs["beta"] != 2 {
		t.Fatalf("config change must invalidate every artifact: runs = %v", runs)
	}
}

func TestResumeArtifactHashMismatchRerunsJustThatOne(t *testing.T) {
	dir := t.TempDir()
	runners, runs := countingRunners("alpha", "beta", "gamma")
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{}, dir, nil, &log, runners); err != nil {
		t.Fatal(err)
	}
	// Tamper with one committed artifact.
	//lint:ignore persist-writes deliberately tampers with a committed artifact to prove resume re-verifies hashes
	if err := os.WriteFile(filepath.Join(dir, "beta.csv"), []byte("k,v\n9,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var log2 bytes.Buffer
	cfg := Config{Resume: true}
	if _, err := runRunners(context.Background(), cfg, dir, nil, &log2, runners); err != nil {
		t.Fatal(err)
	}
	if runs["alpha"] != 1 || runs["gamma"] != 1 {
		t.Errorf("verified artifacts recomputed: runs = %v", runs)
	}
	if runs["beta"] != 2 {
		t.Errorf("tampered artifact not recomputed: runs = %v", runs)
	}
	if !strings.Contains(log2.String(), "re-running beta") {
		t.Errorf("log does not announce the re-run:\n%s", log2.String())
	}
	// The tampered file is restored to the canonical content.
	b, err := os.ReadFile(filepath.Join(dir, "beta.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) == "k,v\n9,9\n" {
		t.Error("re-run did not replace the tampered artifact")
	}
}

func TestResumeMissingArtifactReruns(t *testing.T) {
	dir := t.TempDir()
	runners, runs := countingRunners("alpha", "beta")
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{}, dir, nil, &log, runners); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "alpha.csv")); err != nil {
		t.Fatal(err)
	}
	if _, err := runRunners(context.Background(), Config{Resume: true}, dir, nil, &log, runners); err != nil {
		t.Fatal(err)
	}
	if runs["alpha"] != 2 || runs["beta"] != 1 {
		t.Fatalf("runs = %v, want alpha re-run and beta skipped", runs)
	}
	if _, err := os.Stat(filepath.Join(dir, "alpha.csv")); err != nil {
		t.Error("alpha.csv not restored by resume")
	}
}

func TestResumeToleratesTornManifestRecord(t *testing.T) {
	dir := t.TempDir()
	runners, runs := countingRunners("alpha", "beta")
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{}, dir, nil, &log, runners); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a half-written record with no terminating newline.
	//lint:ignore persist-writes simulates a torn manifest tail by appending raw bytes behind persist's back
	f, err := os.OpenFile(filepath.Join(dir, ManifestName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"crc":"12345678","rec":{"kind":"experiment","name":"be`)
	f.Close()
	var log2 bytes.Buffer
	if _, err := runRunners(context.Background(), Config{Resume: true}, dir, nil, &log2, runners); err != nil {
		t.Fatalf("resume over a torn manifest tail failed: %v", err)
	}
	if runs["alpha"] != 1 || runs["beta"] != 1 {
		t.Fatalf("torn tail must not invalidate durable records: runs = %v", runs)
	}
}

func TestResumeRacingSweepGetsTypedLockError(t *testing.T) {
	dir := t.TempDir()
	runners, _ := countingRunners("alpha")
	// A live concurrent sweep holds the manifest lock.
	lock, err := persist.AcquireLock(filepath.Join(dir, manifestLockName))
	if err != nil {
		t.Fatal(err)
	}
	defer lock.Release()
	var log bytes.Buffer
	_, err = runRunners(context.Background(), Config{Resume: true}, dir, nil, &log, runners)
	if !errors.Is(err, ErrSweepLocked) {
		t.Fatalf("racing sweep error = %v, want ErrSweepLocked", err)
	}
	// A lock whose owner is dead must not wedge the resume.
	lock.Release()
	//lint:ignore persist-writes forges a stale lock file from a dead PID to test lock stealing
	if err := os.WriteFile(filepath.Join(dir, manifestLockName), []byte("4194000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runRunners(context.Background(), Config{Resume: true}, dir, nil, &log, runners); err != nil {
		t.Fatalf("stale lock not stolen by resume: %v", err)
	}
}

func TestResumeRerunsPriorFailure(t *testing.T) {
	dir := t.TempDir()
	failNow := true
	runs := 0
	runners := []Runner{
		okRunner("alpha"),
		{Name: "flaky", Run: func(ctx context.Context, cfg Config) (*Table, error) {
			runs++
			if failNow {
				return nil, fmt.Errorf("transient: %w", faultinject.ErrInjected)
			}
			return stubTable("flaky"), nil
		}},
	}
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{}, dir, nil, &log, runners); err == nil {
		t.Fatal("first sweep with a failing experiment returned nil error")
	}
	if _, err := os.Stat(filepath.Join(dir, "flaky.csv")); err == nil {
		t.Fatal("failed experiment left a CSV behind")
	}
	failNow = false
	var log2 bytes.Buffer
	tables, err := runRunners(context.Background(), Config{Resume: true}, dir, nil, &log2, runners)
	if err != nil {
		t.Fatalf("resume after failure: %v", err)
	}
	if runs != 2 {
		t.Fatalf("flaky ran %d times, want 2 (once per sweep)", runs)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %v", tableNames(tables))
	}
	if !strings.Contains(log2.String(), "skipping alpha") {
		t.Error("alpha recomputed despite verifying")
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "stub flaky") {
		t.Error("report.txt missing the recovered experiment")
	}
}

// TestResumeConvergesToUninterruptedArtifacts is the acceptance bar at
// the package level: a sweep cancelled mid-run and resumed must produce
// the identical artifact bytes an uninterrupted sweep produces, without
// re-running experiments that verified.
func TestResumeConvergesToUninterruptedArtifacts(t *testing.T) {
	mk := func() []Runner {
		return []Runner{okRunner("alpha"), okRunner("beta"), okRunner("gamma")}
	}
	refDir := t.TempDir()
	var log bytes.Buffer
	if _, err := runRunners(context.Background(), Config{}, refDir, nil, &log, mk()); err != nil {
		t.Fatal(err)
	}

	// Interrupted sweep: cancellation lands while beta is in flight.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := mk()
	interrupted[1] = Runner{Name: "beta", Run: func(ctx context.Context, cfg Config) (*Table, error) {
		cancel()
		return nil, ctx.Err()
	}}
	if _, err := runRunners(ctx, Config{}, dir, nil, &log, interrupted); err == nil {
		t.Fatal("interrupted sweep returned nil error")
	}
	resumed, runs := countingRunners("alpha", "beta", "gamma")
	if _, err := runRunners(context.Background(), Config{Resume: true}, dir, nil, &log, resumed); err != nil {
		t.Fatal(err)
	}
	if runs["alpha"] != 0 {
		t.Error("alpha re-ran despite a verified artifact")
	}
	if runs["beta"] != 1 || runs["gamma"] != 1 {
		t.Errorf("interrupted experiments not recovered: runs = %v", runs)
	}
	for _, name := range []string{"alpha.csv", "beta.csv", "gamma.csv", "report.txt"} {
		ref, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s missing after resume: %v", name, err)
		}
		if !bytes.Equal(ref, got) {
			t.Errorf("%s differs from the uninterrupted run", name)
		}
	}
	assertCleanDir(t, dir)
}

// TestRunnerFailureLeavesNoPartialCSV is the satellite regression: a
// runner that errors mid-run — here via an injected fault — must leave no
// zero-byte or partial <name>.csv, because the CSV is rendered from the
// completed Table and committed atomically.
func TestRunnerFailureLeavesNoPartialCSV(t *testing.T) {
	dir := t.TempDir()
	runners := []Runner{
		okRunner("good"),
		{Name: "torn", Run: func(ctx context.Context, cfg Config) (*Table, error) {
			// A solver dying between data points: the half-built table is
			// discarded with the error and must never reach disk.
			return nil, fmt.Errorf("solver died mid-run: %w", faultinject.ErrInjected)
		}},
	}
	var log bytes.Buffer
	_, err := runRunners(context.Background(), Config{}, dir, nil, &log, runners)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "torn.csv")); statErr == nil {
		t.Fatal("torn.csv exists for a failed runner")
	}
	assertCleanDir(t, dir)
}

// TestWriteCSVFaultNeverPublishes drives the atomic CSV commit through a
// failing filesystem: the destination must stay absent and no temp file
// may survive.
func TestWriteCSVFaultNeverPublishes(t *testing.T) {
	dir := t.TempDir()
	persist.WrapFile = func(f persist.File) persist.File {
		return &faultinject.File{F: f, FailOnSync: 1}
	}
	defer func() { persist.WrapFile = nil }()
	_, err := writeCSV(dir, stubTable("doomed"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("writeCSV with failing sync = %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "doomed.csv")); statErr == nil {
		t.Fatal("doomed.csv published despite the failed commit")
	}
	for _, name := range dirListing(t, dir) {
		t.Errorf("unexpected file %s after failed commit", name)
	}
}

func TestConfigHashStability(t *testing.T) {
	a, b := QuickConfig(), QuickConfig()
	if a.Hash() != b.Hash() {
		t.Fatal("identical configs hash differently")
	}
	// Operational knobs must not invalidate artifacts.
	b.Resume = true
	b.Progress = os.Stderr
	b.ExperimentTimeout = 12345
	b.AfterExperiment = func(string) {}
	if a.Hash() != b.Hash() {
		t.Error("operational knobs changed the config hash")
	}
	// Every result-affecting knob must.
	c := QuickConfig()
	c.Seed = 999
	if a.Hash() == c.Hash() {
		t.Error("seed change not reflected in hash")
	}
	d := QuickConfig()
	d.FFTLevels = append(d.FFTLevels, 11)
	if a.Hash() == d.Hash() {
		t.Error("sweep-range change not reflected in hash")
	}
}
