package experiments

// Merge is the coordinator-facing half of a distributed sweep: it owns an
// outDir exactly like RunAll does (same single-writer lock, same
// manifest.json journal, same atomic CSV commits), but the tables arrive
// over the wire from workers instead of from in-process runners. The
// resulting directory is indistinguishable from a single-process sweep
// where it matters: `-resume` replays the merged manifest with unchanged
// semantics, and FinishReport renders report.txt byte-identically to what
// RunAll would have written for the same set of surviving experiments.
//
// All methods are safe for concurrent use — the coordinator's HTTP
// handlers commit results as they land.

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"graphio/internal/persist"
)

// Merge accumulates worker results into one resume-compatible sweep
// directory. Open with OpenMerge, feed with CommitResult / CommitFailure /
// CommitPoisoned, seal with FinishReport, release with Close.
type Merge struct {
	mu       sync.Mutex
	outDir   string
	man      *sweepManifest
	tables   map[string]*Table // latest committed/reused table per shard
	poisoned map[string]poisonNote
}

// poisonNote is what the report trailer needs to say about a given-up shard.
type poisonNote struct {
	attempts int
	err      string
}

// OpenMerge creates outDir if needed, acquires its single-writer lock
// (waiting up to cfg.LockWait behind a live holder), and opens the
// manifest journal. With resume set, prior records are replayed so
// Reusable can skip shards whose artifacts still verify; otherwise the
// journal starts fresh, exactly like RunAll without -resume.
func OpenMerge(ctx context.Context, outDir string, cfg Config, resume bool) (*Merge, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	man, err := openManifest(ctx, outDir, cfg, resume)
	if err != nil {
		return nil, err
	}
	return &Merge{
		outDir:   outDir,
		man:      man,
		tables:   map[string]*Table{},
		poisoned: map[string]poisonNote{},
	}, nil
}

// ConfigHash returns the hash the merge's outDir is pinned to; the
// coordinator hands it to workers at claim time so a misconfigured worker
// is rejected before it wastes a shard run.
func (m *Merge) ConfigHash() string {
	return m.man.hash
}

// Reusable reports whether the named shard's prior artifact verifies under
// the current config (same hash, CSV still matching its recorded SHA-256).
// On success the table is reloaded for FinishReport and a skipped record
// is journaled, mirroring what RunAll's -resume path does in-process.
func (m *Merge) Reusable(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	// A table this instance already committed is trivially current — the
	// ok record sits at the manifest's tail. This is the in-process
	// coordinator-restart case: the WAL replays against a Merge that
	// outlived the coordinator, whose prior map predates the commits.
	if _, ok := m.tables[name]; ok {
		return true
	}
	t, rec, ok := m.man.reusable(m.outDir, name)
	if !ok {
		return false
	}
	//lint:ignore lock-blocking the skip record and the table reload must land atomically under m.mu or a racing CommitPoisoned could interleave between them
	if err := m.man.skipped(rec); err != nil {
		return false
	}
	m.tables[name] = t
	delete(m.poisoned, name)
	return true
}

// CommitResult durably lands one shard result: the CSV bytes commit
// atomically as <name>.csv and the manifest gains an ok record carrying
// the artifact hash, wall time, and the worker that produced it. Calling
// it again for the same shard — the lease-race case, where a worker whose
// lease expired still finishes and uploads — simply overwrites: both
// results were computed under the same config hash, the manifest's
// replay-latest semantics make the newer record authoritative, and the
// CSV on disk matches it (last-write-wins).
func (m *Merge) CommitResult(name, title string, csvData []byte, wallMS int64, worker string) error {
	t, err := tableFromCSV(name, title, csvData)
	if err != nil {
		return fmt.Errorf("experiments: shard %s result: %w", name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:ignore lock-blocking the CSV artifact and its manifest record must commit atomically under m.mu (last-write-wins correctness); callers needing concurrency keep their own locks out of the way, as the coordinator does
	if err := persist.WriteFileAtomic(filepath.Join(m.outDir, name+".csv"), csvData, 0o644); err != nil {
		return err
	}
	rec := manifestRecord{
		Kind: recExperiment, ConfigHash: m.man.hash,
		Name: name, Title: title, Status: statusOK,
		Artifact: name + ".csv", SHA256: sha256Bytes(csvData),
		WallMS: wallMS, Worker: worker,
	}
	if err := m.man.append(rec); err != nil {
		return err
	}
	m.tables[name] = t
	delete(m.poisoned, name)
	return nil
}

// CommitFailure records one failed attempt (the shard stays eligible for
// retry; this is the audit trail, not a verdict).
func (m *Merge) CommitFailure(name string, wallMS int64, cause error, worker string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:ignore lock-blocking manifest appends must serialize under m.mu; a failure record is one small journal line
	return m.man.append(manifestRecord{
		Kind: recExperiment, ConfigHash: m.man.hash,
		Name: name, Status: statusFailed, Error: cause.Error(),
		WallMS: wallMS, Worker: worker,
	})
}

// CommitPoisoned records that the sweep gave up on a shard after its
// attempt cap. The record's non-ok status means a later -resume re-runs
// the shard rather than trusting it, and FinishReport lists it explicitly
// so a degraded sweep never silently loses work.
func (m *Merge) CommitPoisoned(name string, attempts int, cause error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:ignore lock-blocking the poison record and the table/poisoned-map transition must stay atomic under m.mu (append-before-effect)
	if err := m.man.append(manifestRecord{
		Kind: recExperiment, ConfigHash: m.man.hash,
		Name: name, Status: statusPoisoned, Error: cause.Error(), Attempts: attempts,
	}); err != nil {
		return err
	}
	m.poisoned[name] = poisonNote{attempts: attempts, err: cause.Error()}
	delete(m.tables, name)
	return nil
}

// Poisoned returns the shards the sweep gave up on, in the given canonical
// order (unordered extras appended — defensive, should not happen).
func (m *Merge) Poisoned(order []string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	seen := map[string]bool{}
	for _, name := range order {
		if _, ok := m.poisoned[name]; ok {
			names = append(names, name)
			seen[name] = true
		}
	}
	for name := range m.poisoned {
		if !seen[name] {
			names = append(names, name)
		}
	}
	return names
}

// FinishReport renders report.txt over every committed table, in the given
// canonical order (the caller passes the shard list in Runners() order, so
// the bytes match a single-process RunAll of the same experiments), seals
// its hash into the manifest, and returns the included table names. Shards
// the sweep poisoned are appended as an explicit trailer — a degraded
// sweep produces a partial report that says so, never a silently shrunken
// one. With nothing committed and nothing poisoned, no report is written
// (matching RunAll with zero successful experiments).
func (m *Merge) FinishReport(order []string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.tables) == 0 && len(m.poisoned) == 0 {
		return nil, nil
	}
	var buf bytes.Buffer
	var included []string
	for _, name := range order {
		t, ok := m.tables[name]
		if !ok {
			continue
		}
		if err := t.WriteText(&buf); err != nil {
			return nil, err
		}
		fmt.Fprintln(&buf)
		included = append(included, name)
	}
	if len(m.poisoned) > 0 {
		fmt.Fprintln(&buf, "== poisoned shards: permanently failed this sweep, excluded from the tables above ==")
		for _, name := range order {
			if note, ok := m.poisoned[name]; ok {
				fmt.Fprintf(&buf, "==   %s: gave up after %d attempt(s): %s\n", name, note.attempts, note.err)
			}
		}
	}
	//lint:ignore lock-blocking the report bytes, their sealed hash, and the tables they render must agree — one atomic section under m.mu at sweep end, when nothing contends
	if err := persist.WriteFileAtomic(filepath.Join(m.outDir, "report.txt"), buf.Bytes(), 0o644); err != nil {
		return nil, err
	}
	if err := m.man.report(sha256Bytes(buf.Bytes())); err != nil {
		return nil, err
	}
	return included, nil
}

// WallHistory returns the per-experiment wall times the manifest already
// holds (prior runs included), for coordinators that want to schedule the
// slowest shards first.
func (m *Merge) WallHistory() map[string]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]time.Duration, len(m.man.walls))
	for k, v := range m.man.walls {
		out[k] = v
	}
	return out
}

// Close releases the journal and the outDir lock. Committed records and
// artifacts are already durable (every append and CSV write fsyncs), so a
// coordinator killed before Close loses nothing but the lock file — which
// the next open steals from the dead PID.
func (m *Merge) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:ignore lock-blocking final journal close at shutdown; holding m.mu keeps a straggling commit from appending to a closed journal
	m.man.close()
}

// tableFromCSV parses uploaded CSV bytes back into a Table, validating the
// shape early so a torn or garbage upload is rejected at commit time, not
// discovered when the report renders.
func tableFromCSV(name, title string, data []byte) (*Table, error) {
	records, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("empty CSV")
	}
	return &Table{Name: name, Title: title, Columns: records[0], Rows: records[1:]}, nil
}
