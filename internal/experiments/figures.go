package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"graphio/internal/core"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/mincut"
	"graphio/internal/obs"
)

// graphBounds carries everything the figure tables need for one graph:
// the spectral eigenvalue prefix (M-independent), the baseline's best cut
// (also M-independent — the per-M bound is 2·(cut − M)), and timings.
type graphBounds struct {
	g            *graph.Graph
	eigs         []float64
	spectralTime time.Duration
	cut          int64
	cutTime      time.Duration
	cutTimedOut  bool
	cutSkipped   bool
}

// computeBounds runs the spectral eigensolve and (optionally) the min-cut
// sweep once per graph.
func computeBounds(ctx context.Context, cfg Config, g *graph.Graph, wantMinCut bool) (*graphBounds, error) {
	gb := &graphBounds{g: g}
	start := obs.Now()
	// Explicitly Theorem 4: spectralAt reapplies BoundFromEigenvalues with
	// divisor 1, which is only sound for the normalized Laplacian.
	res, err := core.SpectralBoundContext(ctx, g, core.Options{
		M: 1, MaxK: cfg.MaxK, Solver: cfg.Solver, Laplacian: laplacian.OutDegreeNormalized,
	})
	if err != nil {
		return nil, fmt.Errorf("spectral bound for %s: %w", g.Name(), err)
	}
	gb.eigs = res.Eigenvalues
	gb.spectralTime = obs.Since(start)

	if wantMinCut {
		if cfg.MinCutMaxN > 0 && g.N() > cfg.MinCutMaxN {
			gb.cutSkipped = true
		} else {
			mc, err := mincut.ConvexMinCutBoundContext(ctx, g, mincut.Options{M: 1, Timeout: cfg.MinCutTimeout})
			if err != nil {
				return nil, fmt.Errorf("min-cut bound for %s: %w", g.Name(), err)
			}
			gb.cut = mc.BestCut
			gb.cutTime = mc.Elapsed
			gb.cutTimedOut = mc.TimedOut
		}
	}
	return gb, nil
}

// spectralAt evaluates the Theorem 4 bound at memory size M from the
// cached eigenvalues.
func (gb *graphBounds) spectralAt(M int) float64 {
	bound, _, _ := core.BoundFromEigenvalues(gb.eigs, gb.g.N(), M, 1, 1)
	return bound
}

// mincutAt evaluates the baseline bound at memory size M from the cached
// best cut.
func (gb *graphBounds) mincutAt(M int) float64 {
	b := 2 * (float64(gb.cut) - float64(M))
	if b < 0 {
		return 0
	}
	return b
}

// feasibleCell formats a bound cell, or "-" when the graph cannot be
// evaluated at all with memory M (max in-degree exceeds M; the paper drops
// these points, §6.4).
func cell(gb *graphBounds, M int, v float64) string {
	if gb.g.MaxInDeg() > M {
		return "-"
	}
	return fnum(v)
}

func mincutCell(gb *graphBounds, M int) string {
	if gb.cutSkipped {
		return "skipped"
	}
	s := cell(gb, M, gb.mincutAt(M))
	if s != "-" && gb.cutTimedOut {
		s += "*" // sweep time-boxed: valid bound, possibly not the maximum
	}
	return s
}

// figureSweep builds the shared Figure 7/8/9/10 table shape: one row per
// graph size, one spectral and one min-cut column per memory size, plus
// the published-bound x-axis value used in the paper's linearity plots.
func figureSweep(ctx context.Context, name, title, sizeLabel, xLabel string, sizes []int, memories []int,
	build func(int) *graph.Graph, xval func(int) float64, cfg Config) (*Table, error) {

	cols := []string{sizeLabel, "n", xLabel}
	for _, M := range memories {
		cols = append(cols, fmt.Sprintf("spectral_M%d", M))
	}
	for _, M := range memories {
		cols = append(cols, fmt.Sprintf("mincut_M%d", M))
	}
	t := &Table{Name: name, Title: title, Columns: cols}

	for _, size := range sizes {
		g := build(size)
		gb, err := computeBounds(ctx, cfg, g, true)
		if err != nil {
			return nil, err
		}
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%s: %s=%d n=%d spectral=%v mincut=%v\n",
				name, sizeLabel, size, g.N(), gb.spectralTime.Round(time.Millisecond),
				gb.cutTime.Round(time.Millisecond))
		}
		row := []string{inum(size), inum(g.N()), fnum(xval(size))}
		for _, M := range memories {
			row = append(row, cell(gb, M, gb.spectralAt(M)))
		}
		for _, M := range memories {
			row = append(row, mincutCell(gb, M))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure7 regenerates the FFT sweep (paper Figure 7, both panels: bound vs
// l and bound vs l·2^l).
func Figure7(ctx context.Context, cfg Config, build func(int) *graph.Graph) (*Table, error) {
	return figureSweep(ctx, "fig7", "I/O bound vs l for 2^l-point FFT (spectral vs convex min-cut)",
		"l", "l*2^l", cfg.FFTLevels, cfg.FFTMemories, build,
		func(l int) float64 { return float64(l) * math.Exp2(float64(l)) }, cfg)
}

// Figure8 regenerates the naive matrix multiplication sweep (paper
// Figure 8: bound vs n and vs n³).
func Figure8(ctx context.Context, cfg Config, build func(int) *graph.Graph) (*Table, error) {
	return figureSweep(ctx, "fig8", "I/O bound vs n for n×n naive matmul (spectral vs convex min-cut)",
		"n", "n^3", cfg.MatMulSizes, cfg.MatMulMemories, build,
		func(n int) float64 { return math.Pow(float64(n), 3) }, cfg)
}

// Figure9 regenerates the Strassen sweep (paper Figure 9: bound vs n and
// vs n^(log2 7)).
func Figure9(ctx context.Context, cfg Config, build func(int) *graph.Graph) (*Table, error) {
	return figureSweep(ctx, "fig9", "I/O bound vs n for n×n Strassen matmul (spectral vs convex min-cut)",
		"n", "n^log2(7)", cfg.StrassenSizes, cfg.StrassenMemories, build,
		func(n int) float64 { return math.Pow(float64(n), math.Log2(7)) }, cfg)
}

// Figure10 regenerates the Bellman–Held–Karp sweep (paper Figure 10: bound
// vs l and vs 2^l/l).
func Figure10(ctx context.Context, cfg Config, build func(int) *graph.Graph) (*Table, error) {
	return figureSweep(ctx, "fig10", "I/O bound vs l for l-city Bellman-Held-Karp TSP (spectral vs convex min-cut)",
		"l", "2^l/l", cfg.BHKCities, cfg.BHKMemories, build,
		func(l int) float64 { return math.Exp2(float64(l)) / float64(l) }, cfg)
}

// Figure11 regenerates the runtime comparison (paper Figure 11: seconds to
// compute the spectral vs the convex min-cut bound on Bellman–Held–Karp).
func Figure11(ctx context.Context, cfg Config, build func(int) *graph.Graph) (*Table, error) {
	t := &Table{
		Name:    "fig11",
		Title:   "Runtime (s) for computing the lower bound on l-city Bellman-Held-Karp",
		Columns: []string{"l", "n", "spectral_s", "mincut_s", "mincut_note"},
	}
	for _, l := range cfg.BHKCities {
		g := build(l)
		gb, err := computeBounds(ctx, cfg, g, true)
		if err != nil {
			return nil, err
		}
		note := ""
		switch {
		case gb.cutSkipped:
			note = "skipped"
		case gb.cutTimedOut:
			note = "timed-out"
		}
		t.AddRow(inum(l), inum(g.N()),
			fmt.Sprintf("%.3f", gb.spectralTime.Seconds()),
			fmt.Sprintf("%.3f", gb.cutTime.Seconds()),
			note)
	}
	return t, nil
}
