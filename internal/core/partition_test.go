package core

import (
	"math"
	"math/rand"
	"testing"

	"graphio/internal/graph"
	"graphio/internal/laplacian"
)

func TestSegmentOf(t *testing.T) {
	// n=7, k=3: sizes 3,2,2 (first n mod k segments get the extra).
	seg := segmentOf(7, 3)
	want := []int32{0, 0, 0, 1, 1, 2, 2}
	for i := range want {
		if seg[i] != want[i] {
			t.Fatalf("segmentOf(7,3)=%v", seg)
		}
	}
	// k=n: singleton segments.
	seg = segmentOf(4, 4)
	for i, s := range seg {
		if int(s) != i {
			t.Fatalf("segmentOf(4,4)=%v", seg)
		}
	}
}

func TestPartitionBoundByHand(t *testing.T) {
	// Diamond 0→{1,2}→3, order 0,1,2,3, k=2 segments {0,1} and {2,3}.
	// Crossing edges: (0,2) weight 1/2 and (1,3) weight 1; each is charged
	// twice (write out of one segment, read into the other).
	g := builderDiamond()
	got, err := PartitionBound(g, []int{0, 1, 2, 3}, 2, 1, laplacian.OutDegreeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*(0.5+1.0) - 2*2*1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %g want %g", got, want)
	}
	// Original kind: 2·(2 crossing edges) / max out-degree 2 − 4M.
	got, err = PartitionBound(g, []int{0, 1, 2, 3}, 2, 1, laplacian.Original)
	if err != nil {
		t.Fatal(err)
	}
	want = 2*2.0/2 - 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("original kind: got %g want %g", got, want)
	}
}

func TestPartitionBoundValidation(t *testing.T) {
	g := builderDiamond()
	if _, err := PartitionBound(g, []int{0, 1, 2, 3}, 0, 1, laplacian.Original); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PartitionBound(g, []int{0, 1, 2, 3}, 5, 1, laplacian.Original); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := PartitionBound(g, []int{0, 1, 2, 3}, 2, 0, laplacian.Original); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := PartitionBound(g, []int{3, 2, 1, 0}, 2, 1, laplacian.Original); err == nil {
		t.Error("non-topological order accepted")
	}
}

// TestSpectralRelaxationChain ties Theorems 2-4 together: for every k and
// every topological order X, the spectral value ⌊n/k⌋·Σλ_i − 2kM is a lower
// bound on the concrete partition bound of X (the spectral bound relaxes
// the minimization over X to orthogonal matrices).
func TestSpectralRelaxationChain(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 12; trial++ {
		g := randomDAG(rng, 4+rng.Intn(24), 0.3)
		n := g.N()
		M := 1 + rng.Intn(4)
		for _, kind := range []laplacian.Kind{laplacian.OutDegreeNormalized, laplacian.Original} {
			res, err := SpectralBound(g, Options{M: M, MaxK: n, Laplacian: kind, Solver: SolverDense})
			if err != nil {
				t.Fatal(err)
			}
			for _, order := range [][]int{g.TopoOrder(), g.RandomTopoOrder(rng)} {
				for k := 1; k <= n; k += 1 + n/7 {
					pb, err := PartitionBound(g, order, k, M, kind)
					if err != nil {
						t.Fatal(err)
					}
					spectral := res.PerK[k-1]
					if spectral > pb+1e-9 {
						t.Fatalf("trial %d kind=%v k=%d: spectral %g exceeds concrete partition bound %g",
							trial, kind, k, spectral, pb)
					}
				}
			}
		}
	}
}

func TestBestPartitionBound(t *testing.T) {
	g := builderDiamond()
	best, bestK, err := BestPartitionBound(g, []int{0, 1, 2, 3}, 4, 1, laplacian.OutDegreeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	if best < 0 || (best > 0 && bestK == 0) {
		t.Errorf("best=%g k=%d", best, bestK)
	}
	// Exhaustive check against PartitionBound over all k.
	want := 0.0
	for k := 1; k <= 4; k++ {
		v, err := PartitionBound(g, []int{0, 1, 2, 3}, k, 1, laplacian.OutDegreeNormalized)
		if err != nil {
			t.Fatal(err)
		}
		if v > want {
			want = v
		}
	}
	if best != want {
		t.Errorf("best=%g want %g", best, want)
	}
}

// builderDiamond builds the 4-vertex diamond used across these tests.
func builderDiamond() *graph.Graph {
	b := graph.NewBuilder(4, 4)
	b.AddVertices(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		b.MustEdge(e[0], e[1])
	}
	return b.MustBuild()
}
