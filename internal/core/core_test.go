package core

import (
	"math"
	"math/rand"
	"testing"

	"graphio/internal/graph"
	"graphio/internal/laplacian"
)

// hypercubeDAG builds the Bellman-Held-Karp computation graph for l cities:
// the boolean l-cube with an edge from k1 to k2 when k2 sets one additional
// bit (paper §5.1, Figure 4).
func hypercubeDAG(l int) *graph.Graph {
	n := 1 << l
	b := graph.NewBuilder(n, n*l/2)
	b.SetName("hypercube")
	b.AddVertices(n)
	for k := 0; k < n; k++ {
		for bit := 0; bit < l; bit++ {
			if k&(1<<bit) == 0 {
				b.MustEdge(k, k|1<<bit)
			}
		}
	}
	return b.MustBuild()
}

// hypercubeSpectrum returns the closed-form Laplacian spectrum of Q_l:
// eigenvalue 2i with multiplicity C(l, i).
func hypercubeSpectrum(l int) []float64 {
	var vals []float64
	choose := 1
	for i := 0; i <= l; i++ {
		for c := 0; c < choose; c++ {
			vals = append(vals, 2*float64(i))
		}
		choose = choose * (l - i) / (i + 1)
	}
	return vals
}

func randomDAG(rng *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.AddVertices(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestBoundFromEigenvaluesByHand(t *testing.T) {
	// λ = [0, 1, 2], n = 10, M = 1:
	// k=1: 10·0 − 2 = −2;  k=2: 5·1 − 4 = 1;  k=3: 3·3 − 6 = 3.
	bound, bestK, perK := BoundFromEigenvalues([]float64{0, 1, 2}, 10, 1, 1, 1)
	if bound != 3 || bestK != 3 {
		t.Fatalf("bound=%g bestK=%d, want 3,3", bound, bestK)
	}
	want := []float64{-2, 1, 3}
	for i := range want {
		if perK[i] != want[i] {
			t.Errorf("perK[%d]=%g want %g", i, perK[i], want[i])
		}
	}
}

func TestBoundFromEigenvaluesClampsAtZero(t *testing.T) {
	bound, bestK, _ := BoundFromEigenvalues([]float64{0, 0.001}, 4, 100, 1, 1)
	if bound != 0 || bestK != 0 {
		t.Fatalf("bound=%g bestK=%d, want clamped 0,0", bound, bestK)
	}
}

func TestBoundFromEigenvaluesDivisorAndProcessors(t *testing.T) {
	lam := []float64{0, 2, 4}
	b1, _, _ := BoundFromEigenvalues(lam, 64, 2, 1, 1)
	b2, _, _ := BoundFromEigenvalues(lam, 64, 2, 2, 1)
	b4, _, _ := BoundFromEigenvalues(lam, 64, 2, 1, 4)
	if !(b2 <= b1) {
		t.Errorf("parallel bound %g should not exceed serial %g", b2, b1)
	}
	if !(b4 <= b1) {
		t.Errorf("divided bound %g should not exceed undivided %g", b4, b1)
	}
	// Degenerate inputs fall back to sane defaults.
	bd, _, _ := BoundFromEigenvalues(lam, 64, 2, 0, -3)
	if bd != b1 {
		t.Errorf("p=0, divisor<0 should behave like p=1, divisor=1: %g vs %g", bd, b1)
	}
	// Negative eigenvalues are clamped.
	bneg, _, _ := BoundFromEigenvalues([]float64{-1e-12, 2, 4}, 64, 2, 1, 1)
	if bneg != b1 {
		t.Errorf("tiny negative eigenvalue changed the bound: %g vs %g", bneg, b1)
	}
}

func TestSpectralBoundValidation(t *testing.T) {
	g := hypercubeDAG(3)
	if _, err := SpectralBound(g, Options{M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := SpectralBound(g, Options{M: 2, MaxK: -1}); err == nil {
		t.Error("MaxK=-1 accepted")
	}
	if _, err := SpectralBound(g, Options{M: 2, Processors: -1}); err == nil {
		t.Error("Processors=-1 accepted")
	}
	if _, err := SpectralBound(g, Options{M: 2, Solver: Solver(42)}); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestSpectralBoundEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, 0).MustBuild()
	res, err := SpectralBound(g, Options{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != 0 || res.N != 0 {
		t.Errorf("empty graph: %+v", res)
	}
}

func TestSpectralBoundHypercubeMatchesClosedFormSpectrum(t *testing.T) {
	// The computed bound with the *original* Laplacian must agree exactly
	// with the bound evaluated from the closed-form hypercube spectrum
	// divided by the max out-degree l (Theorem 5 / §5.1).
	for _, l := range []int{3, 4, 5} {
		g := hypercubeDAG(l)
		M := 2
		res, err := SpectralBound(g, Options{M: M, Laplacian: laplacian.Original, Solver: SolverDense})
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << l
		spec := hypercubeSpectrum(l)
		h := len(res.Eigenvalues)
		want, wantK, _ := BoundFromEigenvalues(spec[:h], n, M, 1, float64(l))
		if math.Abs(res.Bound-want) > 1e-8*(1+want) {
			t.Errorf("l=%d: computed %g (k=%d) vs closed form %g (k=%d)",
				l, res.Bound, res.BestK, want, wantK)
		}
	}
	// §5.1: the closed form 2^{l+1}/(l+1) − 2M(l+1) is positive only once
	// M ≤ 2^l/(l+1)^2, so positivity appears from l=6 at M=1 (k=l+1 gives
	// ⌊64/7⌋·12/6 − 14 = 4 > 0). Check the solver certifies it.
	for _, l := range []int{6, 7} {
		res, err := SpectralBound(hypercubeDAG(l), Options{M: 1, Laplacian: laplacian.Original, Solver: SolverDense})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bound <= 0 {
			t.Errorf("l=%d: hypercube bound should be positive at M=1, got %g", l, res.Bound)
		}
	}
}

func TestSpectralBoundSolversAgree(t *testing.T) {
	g := hypercubeDAG(6) // n=64, plenty of multiplicity
	M := 4
	var bounds []float64
	for _, s := range []Solver{SolverDense, SolverLanczos, SolverPower, SolverChebyshev} {
		res, err := SpectralBound(g, Options{M: M, MaxK: 20, Solver: s})
		if err != nil {
			t.Fatalf("solver %v: %v", s, err)
		}
		bounds = append(bounds, res.Bound)
		if res.SolverUsed != s {
			t.Errorf("SolverUsed=%v want %v", res.SolverUsed, s)
		}
	}
	for i := 1; i < len(bounds); i++ {
		if math.Abs(bounds[i]-bounds[0]) > 1e-3*(1+bounds[0]) {
			t.Errorf("solver disagreement: %v", bounds)
		}
	}
}

func TestSpectralBoundAutoSelectsSolver(t *testing.T) {
	g := hypercubeDAG(4)
	res, err := SpectralBound(g, Options{M: 2, DenseCutoff: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.SolverUsed != SolverChebyshev {
		t.Errorf("n=16 > cutoff 8 should use Chebyshev, got %v", res.SolverUsed)
	}
	res, err = SpectralBound(g, Options{M: 2, DenseCutoff: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.SolverUsed != SolverDense {
		t.Errorf("n=16 ≤ cutoff 64 should use dense, got %v", res.SolverUsed)
	}
}

func TestSpectralBoundMonotoneInM(t *testing.T) {
	g := hypercubeDAG(6)
	prev := math.Inf(1)
	for _, M := range []int{1, 2, 4, 8, 16, 32} {
		res, err := SpectralBound(g, Options{M: M})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bound > prev+1e-9 {
			t.Errorf("bound increased with M: M=%d gives %g > %g", M, res.Bound, prev)
		}
		prev = res.Bound
	}
}

func TestSpectralBoundParallelWeaker(t *testing.T) {
	g := hypercubeDAG(7)
	serial, err := SpectralBound(g, Options{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8} {
		par, err := SpectralBound(g, Options{M: 4, Processors: p})
		if err != nil {
			t.Fatal(err)
		}
		if par.Bound > serial.Bound+1e-9 {
			t.Errorf("p=%d bound %g exceeds serial %g", p, par.Bound, serial.Bound)
		}
	}
}

func TestNormalizedAtLeastAsTightOnRegularOutDegree(t *testing.T) {
	// For graphs where every non-sink has the same out-degree d, L̃ = L/d,
	// so Theorem 4 and Theorem 5 coincide... except Theorem 5 divides by
	// the max over *all* vertices. On the hypercube DAG out-degrees vary
	// (vertex k has out-degree l − popcount(k)), so Theorem 4 should be at
	// least as tight. This is the §4.3 motivation for keeping per-vertex
	// degrees.
	g := hypercubeDAG(6)
	t4, err := SpectralBound(g, Options{M: 4, Laplacian: laplacian.OutDegreeNormalized})
	if err != nil {
		t.Fatal(err)
	}
	t5, err := SpectralBound(g, Options{M: 4, Laplacian: laplacian.Original})
	if err != nil {
		t.Fatal(err)
	}
	if t4.Bound < t5.Bound-1e-9 {
		t.Errorf("Theorem 4 bound %g looser than Theorem 5 bound %g", t4.Bound, t5.Bound)
	}
}

func TestResultDiagnostics(t *testing.T) {
	g := hypercubeDAG(5)
	res, err := SpectralBound(g, Options{M: 2, MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Eigenvalues) != 10 || len(res.PerK) != 10 {
		t.Fatalf("diagnostics sizes: %d %d", len(res.Eigenvalues), len(res.PerK))
	}
	for i := 1; i < len(res.Eigenvalues); i++ {
		if res.Eigenvalues[i] < res.Eigenvalues[i-1] {
			t.Error("eigenvalues not ascending")
		}
	}
	if res.Eigenvalues[0] < 0 {
		t.Error("negative eigenvalue survived clamping")
	}
	if res.BestK >= 1 && res.PerK[res.BestK-1] != res.Raw {
		t.Errorf("BestK=%d inconsistent with PerK/Raw", res.BestK)
	}
	if res.N != 32 || res.M != 2 || res.Processors != 1 {
		t.Errorf("echo fields: %+v", res)
	}
}

func TestSpectralBoundRandomDAGsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		g := randomDAG(rng, 2+rng.Intn(50), 0.25)
		for _, kind := range []laplacian.Kind{laplacian.Original, laplacian.OutDegreeNormalized} {
			res, err := SpectralBound(g, Options{M: 1 + rng.Intn(8), Laplacian: kind})
			if err != nil {
				t.Fatal(err)
			}
			if res.Bound < 0 {
				t.Errorf("negative bound %g", res.Bound)
			}
			if res.Bound > 0 && res.BestK < 1 {
				t.Errorf("positive bound with BestK=%d", res.BestK)
			}
		}
	}
}

func TestSolverString(t *testing.T) {
	for s, want := range map[Solver]string{
		SolverAuto: "auto", SolverDense: "dense", SolverLanczos: "lanczos",
		SolverPower: "power", SolverChebyshev: "chebyshev",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if Solver(9).String() == "" {
		t.Error("unknown solver should stringify")
	}
}
