// Package core implements the paper's primary contribution: spectral lower
// bounds on the I/O complexity of computation graphs (Jain & Zaharia,
// SPAA 2020).
//
// For a computation graph G with n vertices evaluated on a machine with fast
// memory of size M, the optimal non-trivial I/O J*_G is bounded below, for
// every k ≤ n, by
//
//	J*_G ≥ ⌊n/k⌋ · Σ_{i=1..k} λ_i(L̃) − 2kM          (Theorem 4)
//
// where λ_1 ≤ λ_2 ≤ … are the eigenvalues of the out-degree-normalized
// Laplacian L̃. Theorem 5 trades tightness for convenience by using the
// plain Laplacian L and dividing by the maximum out-degree; Theorem 6
// extends the bound to p processors by replacing ⌊n/k⌋ with ⌊n/(kp)⌋.
// The bound is maximized over k ∈ {1..h} (the paper uses h = 100; see
// §6.1/§6.5 — the best k is empirically far below 100).
package core

import (
	"errors"
	"fmt"
	"time"

	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
	"graphio/internal/obs"
)

// Solver selects the eigenvalue backend.
type Solver int

const (
	// SolverAuto uses the dense solver below Options.DenseCutoff vertices
	// and Chebyshev-filtered subspace iteration above it.
	SolverAuto Solver = iota
	// SolverDense computes the full spectrum with the O(n^3) dense solver.
	SolverDense
	// SolverLanczos computes the h smallest eigenvalues with deflated,
	// fully reorthogonalized Lanczos — the paper's "Lanczos-Arnoldi" path.
	SolverLanczos
	// SolverPower computes the h smallest eigenvalues with deflated power
	// iteration — the paper's "computable by power iteration" remark.
	SolverPower
	// SolverChebyshev computes the h smallest eigenvalues with
	// Chebyshev-filtered subspace iteration — a block method that handles
	// the clustered, high-multiplicity spectra of structured computation
	// graphs (butterflies, hypercubes, Strassen) orders of magnitude
	// faster than single-vector Lanczos. The SolverAuto default above the
	// dense cutoff.
	SolverChebyshev
)

func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverDense:
		return "dense"
	case SolverLanczos:
		return "lanczos"
	case SolverPower:
		return "power"
	case SolverChebyshev:
		return "chebyshev"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// Options configures SpectralBound.
type Options struct {
	// M is the fast-memory size in elements. Required, ≥ 1.
	M int
	// MaxK is h, the number of smallest eigenvalues computed and the upper
	// end of the k sweep. Default 100 (paper §6.1).
	MaxK int
	// Laplacian selects Theorem 4 (OutDegreeNormalized, the default) or
	// Theorem 5 (Original, dividing by the maximum out-degree).
	Laplacian laplacian.Kind
	// Processors is p in Theorem 6. Default 1 (serial bound).
	Processors int
	// Solver selects the eigenvalue backend. Default SolverAuto.
	Solver Solver
	// DenseCutoff is the vertex count at or below which SolverAuto picks
	// the dense path. Default 1024.
	DenseCutoff int
	// Lanczos overrides the Lanczos solver options.
	Lanczos *linalg.LanczosOptions
	// Power overrides the power-iteration solver options.
	Power *linalg.PowerOptions
	// Chebyshev overrides the filtered-subspace solver options.
	Chebyshev *linalg.ChebOptions
}

func (o Options) withDefaults() Options {
	if o.MaxK == 0 {
		o.MaxK = 100
	}
	if o.Processors == 0 {
		o.Processors = 1
	}
	if o.DenseCutoff == 0 {
		o.DenseCutoff = 1024
	}
	return o
}

func (o Options) validate() error {
	if o.M < 1 {
		return errors.New("core: Options.M must be ≥ 1")
	}
	if o.MaxK < 0 {
		return errors.New("core: Options.MaxK must be ≥ 0")
	}
	if o.Processors < 0 {
		return errors.New("core: Options.Processors must be ≥ 0")
	}
	return nil
}

// Result reports a spectral lower bound and the diagnostics behind it.
type Result struct {
	// Bound is the I/O lower bound: max(0, max_k bound(k)).
	Bound float64
	// BestK is the k achieving Bound, or 0 when every k gives a
	// non-positive value (Bound == 0).
	BestK int
	// Raw is max_k bound(k) before clamping at zero; negative values mean
	// the spectral method certifies nothing for this (G, M).
	Raw float64
	// Eigenvalues holds the smallest min(h, n) Laplacian eigenvalues used,
	// ascending, after clamping round-off negatives to zero.
	Eigenvalues []float64
	// PerK[k-1] is the bound value for that k.
	PerK []float64
	// N, M, Processors, Kind and SolverUsed echo the configuration.
	N          int
	M          int
	Processors int
	Kind       laplacian.Kind
	SolverUsed Solver
}

// SpectralBound computes the paper's spectral I/O lower bound for g.
func SpectralBound(g *graph.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if n == 0 {
		return &Result{N: 0, M: opt.M, Processors: opt.Processors, Kind: opt.Laplacian, SolverUsed: opt.Solver}, nil
	}
	h := opt.MaxK
	if h > n {
		h = n
	}

	solver := opt.Solver
	if solver == SolverAuto {
		if n <= opt.DenseCutoff {
			solver = SolverDense
		} else {
			solver = SolverChebyshev
		}
	}

	sp := obs.StartSpan("core.spectral_bound")
	sp.SetInt("n", int64(n))
	sp.SetInt("h", int64(h))
	sp.SetStr("solver", solver.String())
	sp.SetStr("laplacian", opt.Laplacian.String())

	var lambda []float64
	switch solver {
	case SolverDense:
		lsp := sp.Child("laplacian")
		L := laplacian.BuildDense(g, opt.Laplacian)
		lsp.End()
		esp := sp.Child("eigensolve")
		vals, err := linalg.SymEigValues(L)
		if err != nil {
			return nil, fmt.Errorf("core: dense eigensolve: %w", err)
		}
		esp.End()
		// The dense path applies no operator products; register the matvec
		// counter anyway so the metric exists for every solver choice.
		obs.Add("linalg.matvecs", 0)
		if len(vals) > h {
			vals = vals[:h]
		}
		lambda = vals
	case SolverLanczos, SolverPower, SolverChebyshev:
		lsp := sp.Child("laplacian")
		L, err := laplacian.BuildCSR(g, opt.Laplacian)
		if err != nil {
			return nil, fmt.Errorf("core: building Laplacian: %w", err)
		}
		c := L.GershgorinUpper()
		lsp.End()
		var op linalg.Operator = L
		var cnt *linalg.CountingOperator
		if obs.Enabled() {
			cnt = &linalg.CountingOperator{A: L}
			op = cnt
		}
		esp := sp.Child("eigensolve")
		switch solver {
		case SolverLanczos:
			lambda, err = linalg.SmallestEigsPSD(op, c, h, opt.Lanczos)
		case SolverPower:
			lambda, err = linalg.PowerSmallestPSD(op, c, h, opt.Power)
		default:
			lambda, err = linalg.ChebFilteredSmallest(op, c, h, opt.Chebyshev)
		}
		if cnt != nil {
			obs.Add("linalg.matvecs", cnt.Count())
		}
		if err != nil {
			return nil, fmt.Errorf("core: %v eigensolve: %w", solver, err)
		}
		esp.End()
	default:
		return nil, fmt.Errorf("core: unknown solver %v", opt.Solver)
	}

	divisor := 1.0
	if opt.Laplacian == laplacian.Original {
		d := g.MaxOutDeg()
		if d == 0 {
			d = 1 // edgeless graph; the spectrum is all zeros anyway
		}
		divisor = float64(d)
	}

	for i, l := range lambda {
		if l < 0 {
			lambda[i] = 0 // PSD spectrum; clamp eigensolver round-off
		}
	}
	ksp := sp.Child("ksweep")
	bound, bestK, perK := BoundFromEigenvalues(lambda, n, opt.M, opt.Processors, divisor)
	ksp.End()
	sp.SetFloat("bound", bound)
	sp.SetInt("best_k", int64(bestK))
	sp.End()
	res := &Result{
		Bound:       bound,
		BestK:       bestK,
		Raw:         rawMax(perK),
		Eigenvalues: lambda,
		PerK:        perK,
		N:           n,
		M:           opt.M,
		Processors:  opt.Processors,
		Kind:        opt.Laplacian,
		SolverUsed:  solver,
	}
	return res, nil
}

// BoundFromEigenvalues evaluates the Theorem 4/5/6 bound directly from an
// ascending prefix lambda of a Laplacian spectrum, for a graph with n
// vertices, fast memory M, and p processors. divisor is 1 for the
// out-degree-normalized Laplacian (Theorem 4) and max_v d_out(v) for the
// original Laplacian (Theorem 5). It returns the clamped bound
// max(0, max_k ⌊n/(kp)⌋·Σ_{i≤k}λ_i/divisor − 2kM), the maximizing k (0 if
// the raw maximum is non-positive), and the per-k values.
//
// This entry point is what closed-form analyses use: feed it an analytic
// spectrum (e.g. the hypercube's or the butterfly's) instead of a computed
// one.
func BoundFromEigenvalues(lambda []float64, n, M, p int, divisor float64) (bound float64, bestK int, perK []float64) {
	if p < 1 {
		p = 1
	}
	if divisor <= 0 {
		divisor = 1
	}
	perK = make([]float64, len(lambda))
	sum := 0.0
	// Per-k evaluation timings feed the "core.boundk_ns" histogram when the
	// observability layer is on; each evaluation is a handful of flops, so
	// the clock reads are gated rather than unconditional.
	timed := obs.Enabled()
	for i, l := range lambda {
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		if l < 0 {
			l = 0 // eigenvalues of a PSD Laplacian; clamp round-off
		}
		sum += l
		k := i + 1
		seg := n / (k * p) // ⌊n/(kp)⌋
		perK[i] = float64(seg)*sum/divisor - 2*float64(k)*float64(M)
		if timed {
			obs.ObserveHistDuration("core.boundk_ns", time.Since(t0))
		}
	}
	raw := rawMax(perK)
	bound = raw
	if bound < 0 {
		bound = 0
	}
	bestK = 0
	if raw > 0 {
		for i, v := range perK {
			if v == raw {
				bestK = i + 1
				break
			}
		}
	}
	return bound, bestK, perK
}

func rawMax(perK []float64) float64 {
	if len(perK) == 0 {
		return 0
	}
	best := perK[0]
	for _, v := range perK[1:] {
		if v > best {
			best = v
		}
	}
	return best
}
