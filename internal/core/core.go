// Package core implements the paper's primary contribution: spectral lower
// bounds on the I/O complexity of computation graphs (Jain & Zaharia,
// SPAA 2020).
//
// For a computation graph G with n vertices evaluated on a machine with fast
// memory of size M, the optimal non-trivial I/O J*_G is bounded below, for
// every k ≤ n, by
//
//	J*_G ≥ ⌊n/k⌋ · Σ_{i=1..k} λ_i(L̃) − 2kM          (Theorem 4)
//
// where λ_1 ≤ λ_2 ≤ … are the eigenvalues of the out-degree-normalized
// Laplacian L̃. Theorem 5 trades tightness for convenience by using the
// plain Laplacian L and dividing by the maximum out-degree; Theorem 6
// extends the bound to p processors by replacing ⌊n/k⌋ with ⌊n/(kp)⌋.
// The bound is maximized over k ∈ {1..h} (the paper uses h = 100; see
// §6.1/§6.5 — the best k is empirically far below 100).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
	"graphio/internal/obs"
)

// Solver selects the eigenvalue backend.
type Solver int

const (
	// SolverAuto uses the dense solver below Options.DenseCutoff vertices
	// and Chebyshev-filtered subspace iteration above it.
	SolverAuto Solver = iota
	// SolverDense computes the full spectrum with the O(n^3) dense solver.
	SolverDense
	// SolverLanczos computes the h smallest eigenvalues with deflated,
	// fully reorthogonalized Lanczos — the paper's "Lanczos-Arnoldi" path.
	SolverLanczos
	// SolverPower computes the h smallest eigenvalues with deflated power
	// iteration — the paper's "computable by power iteration" remark.
	SolverPower
	// SolverChebyshev computes the h smallest eigenvalues with
	// Chebyshev-filtered subspace iteration — a block method that handles
	// the clustered, high-multiplicity spectra of structured computation
	// graphs (butterflies, hypercubes, Strassen) orders of magnitude
	// faster than single-vector Lanczos. The SolverAuto default above the
	// dense cutoff.
	SolverChebyshev
)

func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverDense:
		return "dense"
	case SolverLanczos:
		return "lanczos"
	case SolverPower:
		return "power"
	case SolverChebyshev:
		return "chebyshev"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// NonFiniteError reports NaN or ±Inf contamination detected at a core phase
// boundary (eigensolve output, k-sweep bound). It is the core-level
// counterpart of linalg.NonFiniteError.
type NonFiniteError struct {
	// Where locates the check that fired.
	Where string
}

func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("core: non-finite value detected at %s", e.Where)
}

// Options configures SpectralBound.
type Options struct {
	// M is the fast-memory size in elements. Required, ≥ 1.
	M int
	// MaxK is h, the number of smallest eigenvalues computed and the upper
	// end of the k sweep. Default 100 (paper §6.1).
	MaxK int
	// Laplacian selects Theorem 4 (OutDegreeNormalized, the default) or
	// Theorem 5 (Original, dividing by the maximum out-degree).
	Laplacian laplacian.Kind
	// Processors is p in Theorem 6. Default 1 (serial bound).
	Processors int
	// Solver selects the eigenvalue backend. Default SolverAuto.
	Solver Solver
	// DenseCutoff is the vertex count at or below which SolverAuto picks
	// the dense path. Default 1024.
	DenseCutoff int
	// Lanczos overrides the Lanczos solver options.
	Lanczos *linalg.LanczosOptions
	// Power overrides the power-iteration solver options.
	Power *linalg.PowerOptions
	// Chebyshev overrides the filtered-subspace solver options.
	Chebyshev *linalg.ChebOptions
	// WrapOperator, when non-nil, wraps the sparse Laplacian operator
	// before it reaches an iterative eigensolver. It is applied fresh for
	// every solver attempt, so stateful wrappers (fault injectors, probes)
	// observe each attempt independently. The dense path builds its own
	// matrix and is never wrapped.
	WrapOperator func(linalg.Operator) linalg.Operator
	// DenseFallbackCap is the largest vertex count for which the escalation
	// chain may fall back to the O(n^3) dense solver after every iterative
	// solver has failed. Default 2048; negative disables the dense fallback.
	DenseFallbackCap int
	// NoFallback disables the escalation chain entirely: the first solver
	// failure is returned as an error, matching pre-fallback behavior.
	NoFallback bool
}

func (o Options) withDefaults() Options {
	if o.MaxK == 0 {
		o.MaxK = 100
	}
	if o.Processors == 0 {
		o.Processors = 1
	}
	if o.DenseCutoff == 0 {
		o.DenseCutoff = 1024
	}
	if o.DenseFallbackCap == 0 {
		o.DenseFallbackCap = 2048
	}
	return o
}

func (o Options) validate() error {
	if o.M < 1 {
		return errors.New("core: Options.M must be ≥ 1")
	}
	if o.MaxK < 0 {
		return errors.New("core: Options.MaxK must be ≥ 0")
	}
	if o.Processors < 0 {
		return errors.New("core: Options.Processors must be ≥ 0")
	}
	return nil
}

// Result reports a spectral lower bound and the diagnostics behind it.
type Result struct {
	// Bound is the I/O lower bound: max(0, max_k bound(k)).
	Bound float64
	// BestK is the k achieving Bound, or 0 when every k gives a
	// non-positive value (Bound == 0).
	BestK int
	// Raw is max_k bound(k) before clamping at zero; negative values mean
	// the spectral method certifies nothing for this (G, M).
	Raw float64
	// Eigenvalues holds the smallest min(h, n) Laplacian eigenvalues used,
	// ascending, after clamping round-off negatives to zero.
	Eigenvalues []float64
	// PerK[k-1] is the bound value for that k.
	PerK []float64
	// N, M, Processors, Kind and SolverUsed echo the configuration; after a
	// fallback, Kind and SolverUsed report what actually produced the bound
	// (e.g. Kind == Original after the Theorem 5 route).
	N          int
	M          int
	Processors int
	Kind       laplacian.Kind
	SolverUsed Solver
	// Degraded reports that the escalation chain had to deviate from the
	// requested configuration (seed retry, solver switch, dense fallback,
	// or Theorem 5 route) to produce this bound.
	Degraded bool
	// Fallbacks lists the degradation events, in order, human-readably.
	Fallbacks []string
}

// SpectralBound computes the paper's spectral I/O lower bound for g.
func SpectralBound(g *graph.Graph, opt Options) (*Result, error) {
	return SpectralBoundContext(context.Background(), g, opt)
}

// SpectralBoundContext is SpectralBound with cancellation and graceful
// degradation. The context is threaded into every eigensolve and checked at
// iteration boundaries; cancellation aborts the solve immediately without
// attempting fallbacks. When a solver fails for any other reason and
// Options.NoFallback is unset, an escalation chain tries progressively more
// robust configurations: one retry with a perturbed start seed, the
// remaining iterative solvers (Lanczos, then Chebyshev), the dense solver
// when n ≤ Options.DenseFallbackCap, and finally the Theorem 5 route
// (original Laplacian with the max-out-degree divisor) when Theorem 4 was
// requested. Every degradation is recorded in Result.Fallbacks and counted
// under the core.fallback.* observability counters.
func SpectralBoundContext(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if n == 0 {
		return &Result{N: 0, M: opt.M, Processors: opt.Processors, Kind: opt.Laplacian, SolverUsed: opt.Solver}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: spectral bound interrupted: %w", err)
	}
	h := opt.MaxK
	if h > n {
		h = n
	}

	solver := opt.Solver
	if solver == SolverAuto {
		if n <= opt.DenseCutoff {
			solver = SolverDense
		} else {
			solver = SolverChebyshev
		}
	}
	if solver != SolverDense && solver != SolverLanczos && solver != SolverPower && solver != SolverChebyshev {
		return nil, fmt.Errorf("core: unknown solver %v", opt.Solver)
	}

	sp := obs.StartSpanCtx(ctx, "core.spectral_bound")
	sp.SetInt("n", int64(n))
	sp.SetInt("h", int64(h))
	sp.SetStr("solver", solver.String())
	sp.SetStr("laplacian", opt.Laplacian.String())
	defer sp.End()

	lambda, used, kind, events, err := solveSpectrum(ctx, g, solver, opt.Laplacian, h, opt, sp)
	if err != nil {
		return nil, err
	}
	if err := linalg.CheckFinite("core eigensolve output", lambda); err != nil {
		return nil, &NonFiniteError{Where: "eigensolve output"}
	}

	divisor := 1.0
	if kind == laplacian.Original {
		d := g.MaxOutDeg()
		if d == 0 {
			d = 1 // edgeless graph; the spectrum is all zeros anyway
		}
		divisor = float64(d)
	}

	for i, l := range lambda {
		if l < 0 {
			lambda[i] = 0 // PSD spectrum; clamp eigensolver round-off
		}
	}
	ksp := sp.Child("ksweep")
	bound, bestK, perK := BoundFromEigenvaluesContext(ctx, lambda, n, opt.M, opt.Processors, divisor)
	ksp.End()
	if math.IsNaN(bound) || math.IsInf(bound, 0) {
		return nil, &NonFiniteError{Where: "k-sweep bound"}
	}
	sp.SetFloat("bound", bound)
	sp.SetInt("best_k", int64(bestK))
	res := &Result{
		Bound:       bound,
		BestK:       bestK,
		Raw:         rawMax(perK),
		Eigenvalues: lambda,
		PerK:        perK,
		N:           n,
		M:           opt.M,
		Processors:  opt.Processors,
		Kind:        kind,
		SolverUsed:  used,
		Degraded:    len(events) > 0,
		Fallbacks:   events,
	}
	return res, nil
}

// solveSpectrum produces the ascending h smallest Laplacian eigenvalues for
// g, escalating through fallbacks when solvers fail. It returns the solver
// and Laplacian kind that actually succeeded plus the degradation events.
func solveSpectrum(ctx context.Context, g *graph.Graph, solver Solver, kind laplacian.Kind, h int, opt Options, sp *obs.Span) ([]float64, Solver, laplacian.Kind, []string, error) {
	var events []string

	if solver == SolverDense {
		lambda, err := denseSpectrum(ctx, g, kind, h, sp)
		if err == nil {
			return lambda, SolverDense, kind, nil, nil
		}
		if opt.NoFallback {
			return nil, solver, kind, nil, err
		}
		// The dense path has no iteration budget to exhaust; a failure here
		// means a degenerate matrix. The iterative chain below is still
		// worth a shot before giving up.
		events = recordFallback(ctx, events, "solver",
			fmt.Sprintf("dense solve failed (%v); escalating to iterative solvers", err))
		solver = SolverChebyshev
	}

	lambda, used, evs, err := iterativeChain(ctx, g, solver, kind, h, opt, sp)
	events = append(events, evs...)
	if err == nil {
		return lambda, used, kind, events, nil
	}
	if opt.NoFallback || isInterrupt(err) {
		return nil, used, kind, events, err
	}

	// Terminal fallback: the Theorem 5 route. The original Laplacian with
	// the max-out-degree divisor is a sound (if looser) bound whenever the
	// normalized solve cannot be completed.
	if kind == laplacian.OutDegreeNormalized {
		events = recordFallback(ctx, events, "theorem5",
			fmt.Sprintf("all solvers failed on the normalized Laplacian (%v); falling back to the Theorem 5 bound on the original Laplacian", err))
		lambda, used, evs, err5 := iterativeChain(ctx, g, SolverChebyshev, laplacian.Original, h, opt, sp)
		events = append(events, evs...)
		if err5 == nil {
			return lambda, used, laplacian.Original, events, nil
		}
		if isInterrupt(err5) {
			return nil, used, laplacian.Original, events, err5
		}
		err = errors.Join(err, err5)
	}
	return nil, used, kind, events, fmt.Errorf("core: all eigensolve fallbacks exhausted: %w", err)
}

// iterativeChain tries the requested iterative solver, a perturbed-seed
// retry of it, the remaining iterative solvers, and finally the dense
// solver when n is below Options.DenseFallbackCap.
func iterativeChain(ctx context.Context, g *graph.Graph, requested Solver, kind laplacian.Kind, h int, opt Options, sp *obs.Span) ([]float64, Solver, []string, error) {
	lsp := sp.Child("laplacian")
	L, err := laplacian.BuildCSR(g, kind)
	lsp.End()
	if err != nil {
		return nil, requested, nil, fmt.Errorf("core: building Laplacian: %w", err)
	}
	c := L.GershgorinUpper()

	attempts := []solveAttempt{{requested, false}}
	if !opt.NoFallback {
		attempts = append(attempts, solveAttempt{requested, true})
		for _, s := range []Solver{SolverLanczos, SolverChebyshev} {
			if s != requested {
				attempts = append(attempts, solveAttempt{s, false})
			}
		}
	}

	var events []string
	var firstErr error
	used := requested
	for i, at := range attempts {
		if err := ctx.Err(); err != nil {
			return nil, used, events, fmt.Errorf("core: eigensolve interrupted: %w", err)
		}
		used = at.solver
		lambda, err := attemptSolve(ctx, L, c, h, at, opt, sp)
		if err == nil {
			if ferr := linalg.CheckFinite("eigensolve output", lambda); ferr != nil {
				obs.IncCtx(ctx, "core.fallback.nonfinite")
				err = &NonFiniteError{Where: fmt.Sprintf("%v eigensolve output", at.solver)}
			} else {
				return lambda, at.solver, events, nil
			}
		}
		if isInterrupt(err) {
			if errors.Is(err, context.DeadlineExceeded) {
				obs.IncCtx(ctx, "core.deadline.hit")
			}
			return nil, used, events, fmt.Errorf("core: %v eigensolve: %w", at.solver, err)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("core: %v eigensolve: %w", at.solver, err)
		}
		if opt.NoFallback {
			return nil, used, events, firstErr
		}
		// Describe the step the chain takes next, if any.
		if i+1 < len(attempts) {
			next := attempts[i+1]
			if next.perturb {
				events = recordFallback(ctx, events, "retry",
					fmt.Sprintf("%v failed (%v); retrying with a perturbed start seed", at.solver, err))
			} else {
				events = recordFallback(ctx, events, "solver",
					fmt.Sprintf("%v failed (%v); switching to %v", at.solver, err, next.solver))
			}
		} else {
			events = append(events, fmt.Sprintf("%v failed (%v)", at.solver, err))
		}
	}

	// Dense terminal step for this Laplacian kind, size permitting.
	if opt.DenseFallbackCap >= 0 && g.N() <= opt.DenseFallbackCap {
		events = recordFallback(ctx, events, "dense",
			"all iterative solvers failed; falling back to the dense solver")
		lambda, err := denseSpectrum(ctx, g, kind, h, sp)
		if err == nil {
			if ferr := linalg.CheckFinite("dense eigensolve output", lambda); ferr != nil {
				obs.IncCtx(ctx, "core.fallback.nonfinite")
				return nil, SolverDense, events, errors.Join(firstErr, ferr)
			}
			return lambda, SolverDense, events, nil
		}
		return nil, SolverDense, events, errors.Join(firstErr, err)
	}
	return nil, used, events, firstErr
}

// solveAttempt names one step of the iterative escalation chain.
type solveAttempt struct {
	solver  Solver
	perturb bool
}

// attemptSolve runs one iterative eigensolve with a freshly wrapped operator
// and, when the attempt is a retry, a perturbed deterministic start seed.
func attemptSolve(ctx context.Context, L *linalg.CSR, c float64, h int, at solveAttempt, opt Options, sp *obs.Span) ([]float64, error) {
	var op linalg.Operator = L
	if opt.WrapOperator != nil {
		op = opt.WrapOperator(op)
	}
	var cnt *linalg.CountingOperator
	if obs.Enabled() {
		cnt = &linalg.CountingOperator{A: op, Scope: obs.FromContext(ctx)}
		op = cnt
	}
	esp := sp.Child("eigensolve")
	esp.SetStr("solver", at.solver.String())
	var lambda []float64
	var err error
	switch at.solver {
	case SolverLanczos:
		lo := opt.Lanczos
		if at.perturb {
			lo = perturbLanczos(lo)
		}
		lambda, err = linalg.SmallestEigsPSDContext(ctx, op, c, h, lo)
	case SolverPower:
		po := opt.Power
		if at.perturb {
			po = perturbPower(po)
		}
		lambda, err = linalg.PowerSmallestPSDContext(ctx, op, c, h, po)
	default:
		co := opt.Chebyshev
		if at.perturb {
			co = perturbCheb(co)
		}
		lambda, err = linalg.ChebFilteredSmallestContext(ctx, op, c, h, co)
	}
	if cnt != nil {
		obs.AddCtx(ctx, "linalg.matvecs", cnt.Count())
	}
	esp.End()
	return lambda, err
}

// denseSpectrum computes the h smallest eigenvalues with the dense solver.
func denseSpectrum(ctx context.Context, g *graph.Graph, kind laplacian.Kind, h int, sp *obs.Span) ([]float64, error) {
	lsp := sp.Child("laplacian")
	L := laplacian.BuildDense(g, kind)
	lsp.End()
	esp := sp.Child("eigensolve")
	esp.SetStr("solver", "dense")
	vals, err := linalg.SymEigValuesContext(ctx, L)
	esp.End()
	if err != nil {
		return nil, fmt.Errorf("core: dense eigensolve: %w", err)
	}
	// The dense path applies no operator products; register the matvec
	// counter anyway so the metric exists for every solver choice.
	obs.AddCtx(ctx, "linalg.matvecs", 0)
	if len(vals) > h {
		vals = vals[:h]
	}
	return vals, nil
}

// recordFallback appends a degradation event and bumps its counters,
// attributed to ctx's telemetry scope.
func recordFallback(ctx context.Context, events []string, kindName, msg string) []string {
	obs.IncCtx(ctx, "core.fallback."+kindName)
	obs.IncCtx(ctx, "core.fallback.total")
	return append(events, msg)
}

// isInterrupt reports whether err stems from context cancellation or an
// expired deadline — failures the escalation chain must not mask.
func isInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// nextSeed advances a deterministic seed for a perturbed retry: an LCG step
// so the retry explores a genuinely different start vector while the whole
// escalation chain stays reproducible.
func nextSeed(s int64) int64 {
	if s == 0 {
		s = 1 // solvers treat 0 as "use the default"
	}
	s = s*6364136223846793005 + 1442695040888963407
	if s == 0 {
		s = 7
	}
	return s
}

func perturbLanczos(o *linalg.LanczosOptions) *linalg.LanczosOptions {
	var out linalg.LanczosOptions
	if o != nil {
		out = *o
	}
	out.Seed = nextSeed(out.Seed)
	return &out
}

func perturbPower(o *linalg.PowerOptions) *linalg.PowerOptions {
	var out linalg.PowerOptions
	if o != nil {
		out = *o
	}
	out.Seed = nextSeed(out.Seed)
	return &out
}

func perturbCheb(o *linalg.ChebOptions) *linalg.ChebOptions {
	var out linalg.ChebOptions
	if o != nil {
		out = *o
	}
	out.Seed = nextSeed(out.Seed)
	return &out
}

// BoundFromEigenvalues evaluates the Theorem 4/5/6 bound directly from an
// ascending prefix lambda of a Laplacian spectrum, for a graph with n
// vertices, fast memory M, and p processors. divisor is 1 for the
// out-degree-normalized Laplacian (Theorem 4) and max_v d_out(v) for the
// original Laplacian (Theorem 5). It returns the clamped bound
// max(0, max_k ⌊n/(kp)⌋·Σ_{i≤k}λ_i/divisor − 2kM), the maximizing k (0 if
// the raw maximum is non-positive), and the per-k values.
//
// This entry point is what closed-form analyses use: feed it an analytic
// spectrum (e.g. the hypercube's or the butterfly's) instead of a computed
// one. It never panics and never returns non-finite values: NaN/Inf
// eigenvalues are treated as 0 (keeping the lower bound sound), a
// non-positive or non-finite divisor is treated as 1, and overflowing per-k
// values saturate at ±math.MaxFloat64.
func BoundFromEigenvalues(lambda []float64, n, M, p int, divisor float64) (bound float64, bestK int, perK []float64) {
	return boundFromEigenvalues(nil, lambda, n, M, p, divisor)
}

// BoundFromEigenvaluesContext is BoundFromEigenvalues with the per-k
// timing histogram attributed to ctx's telemetry scope.
func BoundFromEigenvaluesContext(ctx context.Context, lambda []float64, n, M, p int, divisor float64) (bound float64, bestK int, perK []float64) {
	return boundFromEigenvalues(obs.FromContext(ctx), lambda, n, M, p, divisor)
}

func boundFromEigenvalues(sc *obs.Scope, lambda []float64, n, M, p int, divisor float64) (bound float64, bestK int, perK []float64) {
	if p < 1 {
		p = 1
	}
	if divisor <= 0 || math.IsNaN(divisor) || math.IsInf(divisor, 0) {
		divisor = 1
	}
	perK = make([]float64, len(lambda))
	sum := 0.0
	// Per-k evaluation timings feed the "core.boundk_ns" histogram when the
	// observability layer is on; each evaluation is a handful of flops, so
	// the clock reads are gated rather than unconditional.
	timed := obs.Enabled()
	for i, l := range lambda {
		var t0 time.Time
		if timed {
			t0 = obs.Now()
		}
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			l = 0 // eigenvalues of a PSD Laplacian; drop round-off and corruption
		}
		sum += l
		if math.IsInf(sum, 1) {
			sum = math.MaxFloat64 // saturate rather than poison every later k
		}
		k := i + 1
		// ⌊n/(kp)⌋ via nested floor division: identical result for n ≥ 0,
		// and k*p cannot overflow.
		seg := (n / k) / p
		v := float64(seg)*sum/divisor - 2*float64(k)*float64(M)
		switch {
		case math.IsNaN(v):
			v = 0
		case math.IsInf(v, 1):
			v = math.MaxFloat64
		case math.IsInf(v, -1):
			v = -math.MaxFloat64
		}
		perK[i] = v
		if timed {
			sc.ObserveHistDuration("core.boundk_ns", obs.Since(t0))
		}
	}
	raw := rawMax(perK)
	bound = raw
	if bound < 0 {
		bound = 0
	}
	bestK = 0
	if raw > 0 {
		for i, v := range perK {
			//lint:ignore float-eq raw was copied out of perK above, so bit equality recovers the argmax exactly
			if v == raw {
				bestK = i + 1
				break
			}
		}
	}
	return bound, bestK, perK
}

func rawMax(perK []float64) float64 {
	if len(perK) == 0 {
		return 0
	}
	best := perK[0]
	for _, v := range perK[1:] {
		if v > best {
			best = v
		}
	}
	return best
}
