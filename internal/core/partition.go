package core

import (
	"errors"
	"fmt"

	"graphio/internal/graph"
	"graphio/internal/laplacian"
)

// PartitionBound evaluates the Theorem 2/3 machinery for a *concrete*
// evaluation order: split the order into k contiguous segments of size
// ⌊n/k⌋ or ⌈n/k⌉ (the paper's P(X,k) partition, §4.2) and charge each
// segment its weighted edge boundary,
//
//	bound(X, k) = Σ_{S ∈ P(X,k)} Σ_{(u,v) ∈ ∂S} w(u,v)  −  2kM,
//
// with w(u,v) = 1/d_out(u) for the normalized kind (Theorem 2) or 1 with a
// final division by max d_out for the original kind (Theorem 5's view).
//
// This is the quantity tr(XᵀL̃XW⁽ᵏ⁾) − 2kM of Theorem 3 evaluated at the
// permutation X of the given order. Minimized over all topological orders
// it upper-bounds nothing and lower-bounds J* — but for a *given* order it
// is a diagnostic: how much I/O does Lemma 1 already certify for this
// schedule? By the relaxation chain of §4.3, for every k:
//
//	⌊n/k⌋·Σ_{i≤k} λ_i(L̃) − 2kM  ≤  PartitionBound(order, k)
//
// which the tests exploit to tie Theorems 2, 3 and 4 together.
func PartitionBound(g *graph.Graph, order []int, k, M int, kind laplacian.Kind) (float64, error) {
	n := g.N()
	if k < 1 || k > n {
		return 0, fmt.Errorf("core: PartitionBound needs 1 ≤ k ≤ n, got k=%d n=%d", k, n)
	}
	if M < 1 {
		return 0, errors.New("core: PartitionBound needs M ≥ 1")
	}
	if !g.IsTopological(order) {
		return 0, errors.New("core: PartitionBound order is not topological")
	}
	seg := segmentOf(n, k)
	segOf := make([]int32, n) // vertex -> segment index
	for i, v := range order {
		segOf[v] = seg[i]
	}
	var total float64
	for u := 0; u < n; u++ {
		var w float64
		if kind == laplacian.OutDegreeNormalized {
			w = 1 / float64(g.OutDeg(u))
		} else {
			w = 1
		}
		for _, v := range g.Succ(u) {
			if segOf[u] != segOf[v] {
				// A crossing edge appears in the boundary of *both* its
				// segments — the producer's (a write) and the consumer's
				// (a read) — so Σ_S Σ_{∂S} charges it twice, exactly as
				// Lemma 1 sums |R_S| + |W_S|.
				total += 2 * w
			}
		}
	}
	if kind == laplacian.Original {
		d := g.MaxOutDeg()
		if d == 0 {
			d = 1
		}
		total /= float64(d)
	}
	return total - 2*float64(k)*float64(M), nil
}

// segmentOf assigns each of n order positions to one of k segments, the
// first n mod k segments getting ⌈n/k⌉ positions and the rest ⌊n/k⌋
// (paper §4.2).
func segmentOf(n, k int) []int32 {
	out := make([]int32, n)
	base := n / k
	rem := n % k
	pos := 0
	for s := 0; s < k; s++ {
		size := base
		if s < rem {
			size++
		}
		for j := 0; j < size; j++ {
			out[pos] = int32(s)
			pos++
		}
	}
	return out
}

// BestPartitionBound maximizes PartitionBound over k ∈ {1..maxK} for a
// concrete order, returning the best value and its k. This is the
// strongest certificate Lemma 1's equal-segment specialization gives for
// that schedule.
func BestPartitionBound(g *graph.Graph, order []int, maxK, M int, kind laplacian.Kind) (float64, int, error) {
	n := g.N()
	if n == 0 {
		return 0, 0, nil
	}
	if maxK > n {
		maxK = n
	}
	best, bestK := 0.0, 0
	for k := 1; k <= maxK; k++ {
		v, err := PartitionBound(g, order, k, M, kind)
		if err != nil {
			return 0, 0, err
		}
		if v > best {
			best, bestK = v, k
		}
	}
	return best, bestK, nil
}
