package core

import (
	"testing"
	"time"
)

func TestBestLowerBoundPicksMax(t *testing.T) {
	g := hypercubeDAG(7)
	rep, err := BestLowerBound(g, 8, 60, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.All) != 3 {
		t.Fatalf("methods=%d want 3", len(rep.All))
	}
	for _, lb := range rep.All {
		if lb.Bound > rep.Best.Bound {
			t.Errorf("best %v is not the maximum (%v)", rep.Best, lb)
		}
	}
	if rep.Best.Method == "" || rep.Best.Bound <= 0 {
		t.Errorf("best: %+v", rep.Best)
	}
}

func TestBestLowerBoundSkipsMinCutWhenDisabled(t *testing.T) {
	g := hypercubeDAG(5)
	rep, err := BestLowerBound(g, 4, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.All) != 2 {
		t.Fatalf("methods=%d want 2 with the baseline disabled", len(rep.All))
	}
	for _, lb := range rep.All {
		if lb.Method == "mincut" {
			t.Error("mincut ran despite a zero timeout")
		}
	}
}
