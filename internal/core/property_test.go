package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSpectrum builds a plausible ascending PSD spectrum prefix.
func randomSpectrum(rng *rand.Rand, h int) []float64 {
	out := make([]float64, h)
	acc := 0.0
	for i := range out {
		out[i] = acc
		acc += rng.Float64()
	}
	return out
}

func TestBoundMonotoneInMProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Intn(30)
		lam := randomSpectrum(rng, h)
		n := h + rng.Intn(500)
		M := 1 + rng.Intn(64)
		b1, _, _ := BoundFromEigenvalues(lam, n, M, 1, 1)
		b2, _, _ := BoundFromEigenvalues(lam, n, M+1, 1, 1)
		return b2 <= b1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundMonotoneInProcessorsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Intn(30)
		lam := randomSpectrum(rng, h)
		n := h + rng.Intn(500)
		M := 1 + rng.Intn(16)
		p := 1 + rng.Intn(8)
		b1, _, _ := BoundFromEigenvalues(lam, n, M, p, 1)
		b2, _, _ := BoundFromEigenvalues(lam, n, M, p+1, 1)
		return b2 <= b1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundMonotoneInDivisorProperty(t *testing.T) {
	// A larger divisor (larger max out-degree under Theorem 5) weakens the
	// bound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Intn(30)
		lam := randomSpectrum(rng, h)
		n := h + rng.Intn(500)
		M := 1 + rng.Intn(16)
		d := 1 + rng.Float64()*8
		b1, _, _ := BoundFromEigenvalues(lam, n, M, 1, d)
		b2, _, _ := BoundFromEigenvalues(lam, n, M, 1, d*1.5)
		return b2 <= b1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundPrefixMonotoneProperty(t *testing.T) {
	// Extending the spectrum prefix (larger h) can only improve or
	// preserve the maximized bound: the sweep considers a superset of k.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 2 + rng.Intn(30)
		lam := randomSpectrum(rng, h)
		n := h + rng.Intn(500)
		M := 1 + rng.Intn(16)
		bShort, _, _ := BoundFromEigenvalues(lam[:h-1], n, M, 1, 1)
		bFull, _, _ := BoundFromEigenvalues(lam, n, M, 1, 1)
		return bFull >= bShort-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
