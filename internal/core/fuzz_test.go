package core

// Fuzz coverage for the Theorem 4/5/6 arithmetic: BoundFromEigenvalues is
// the last stop before a number is reported as a "lower bound", so whatever
// a degraded solver hands it — NaN, ±Inf, negative round-off, absurd n/M/p
// combinations — it must neither panic nor emit a non-finite or negative
// bound.

import (
	"encoding/binary"
	"math"
	"testing"
)

func FuzzBoundFromEigenvalues(f *testing.F) {
	clean := make([]byte, 0, 4*8)
	for _, v := range []float64{0, 0.1, 0.5, 1.9} {
		clean = binary.LittleEndian.AppendUint64(clean, math.Float64bits(v))
	}
	f.Add(clean, 64, 8, 1, 1.0)
	poison := make([]byte, 0, 3*8)
	for _, v := range []float64{math.NaN(), math.Inf(1), -1e300} {
		poison = binary.LittleEndian.AppendUint64(poison, math.Float64bits(v))
	}
	f.Add(poison, 1<<40, 0, 0, math.NaN())
	f.Add([]byte{}, -5, -5, -5, -0.0)
	f.Add(clean, math.MaxInt64, math.MaxInt64, math.MaxInt64, math.MaxFloat64)

	f.Fuzz(func(t *testing.T, data []byte, n, M, p int, divisor float64) {
		const maxH = 64
		lambda := make([]float64, 0, maxH)
		for i := 0; i+8 <= len(data) && len(lambda) < maxH; i += 8 {
			lambda = append(lambda, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
		}

		bound, bestK, perK := BoundFromEigenvalues(lambda, n, M, p, divisor)

		if math.IsNaN(bound) || math.IsInf(bound, 0) {
			t.Fatalf("bound = %v, must be finite (lambda=%v n=%d M=%d p=%d divisor=%v)",
				bound, lambda, n, M, p, divisor)
		}
		if bound < 0 {
			t.Fatalf("bound = %v, must be clamped at 0", bound)
		}
		if bestK < 0 || bestK > len(lambda) {
			t.Fatalf("bestK = %d out of range [0,%d]", bestK, len(lambda))
		}
		if len(perK) != len(lambda) {
			t.Fatalf("len(perK) = %d, want %d", len(perK), len(lambda))
		}
		for i, v := range perK {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("perK[%d] = %v, must be finite", i, v)
			}
		}
		if bestK > 0 && perK[bestK-1] != bound {
			t.Fatalf("perK[bestK-1] = %v != bound %v", perK[bestK-1], bound)
		}
	})
}
