package core

// Escalation-chain coverage: forced solver failures injected through
// internal/faultinject must degrade gracefully — retry, switch solvers,
// fall back to dense or the Theorem 5 route — and every degradation must be
// visible in Result.Fallbacks and the core.fallback.* counters.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"graphio/internal/faultinject"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
	"graphio/internal/obs"
)

// failFastSolverOpts keeps the faulted iterative attempts cheap and keeps
// Lanczos's Krylov space far below the full dimension (at full dimension a
// breakdown would mark unconverged garbage as converged).
func failFastSolverOpts(o *Options) {
	o.Lanczos = &linalg.LanczosOptions{MaxRestarts: 2, Steps: 8}
	o.Chebyshev = &linalg.ChebOptions{MaxIter: 2, Degree: 6}
	o.Power = &linalg.PowerOptions{MaxIter: 30}
}

func TestFallbackChainSurvivesForcedLanczosNonConvergence(t *testing.T) {
	// Per-test scope instead of obs.Reset(): the fallback counters are read
	// from this scope, so concurrent tests (or the /progress churn suite)
	// touching the default registry cannot interfere and nothing needs a
	// destructive global reset.
	obs.Enable(true)
	defer obs.Enable(false)
	sc := obs.NewScope(t.Name())
	defer sc.Close()
	ctx := obs.WithScope(context.Background(), sc)
	// faultinject is deliberately unscoped (process-level fault counters),
	// so that one assertion uses a before/after delta on the default
	// registry instead.
	faultedBefore := obs.Default().Counter("faultinject.faulted_matvecs")
	g := hypercubeDAG(6)
	opt := Options{M: 4, MaxK: 8, Solver: SolverLanczos}
	failFastSolverOpts(&opt)
	// Noise on every matvec: each iterative attempt (Lanczos, its perturbed
	// retry, Chebyshev) produces finite garbage and fails to converge. The
	// dense fallback builds its own matrix, bypassing the wrapper.
	opt.WrapOperator = func(op linalg.Operator) linalg.Operator {
		return &faultinject.Op{A: op, NoiseFrom: 1, NoiseAmp: 5}
	}
	res, err := SpectralBoundContext(ctx, g, opt)
	if err != nil {
		t.Fatalf("bound under injected Lanczos failure: %v", err)
	}
	if !res.Degraded || len(res.Fallbacks) == 0 {
		t.Fatalf("Degraded = %v, Fallbacks = %v: degradation not reported", res.Degraded, res.Fallbacks)
	}
	if res.SolverUsed != SolverDense {
		t.Errorf("SolverUsed = %v, want dense fallback", res.SolverUsed)
	}

	// The degraded run must still produce the *correct* bound: the dense
	// fallback sees the clean Laplacian, so it must agree with an unfaulted
	// dense solve exactly.
	clean, err := SpectralBound(g, Options{M: 4, MaxK: 8, Solver: SolverDense})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Bound-clean.Bound) > 1e-9*(1+math.Abs(clean.Bound)) {
		t.Errorf("degraded bound %g != clean dense bound %g", res.Bound, clean.Bound)
	}

	if n := sc.Counter("core.fallback.retry"); n < 1 {
		t.Errorf("core.fallback.retry = %d, want ≥ 1", n)
	}
	if n := sc.Counter("core.fallback.solver"); n < 1 {
		t.Errorf("core.fallback.solver = %d, want ≥ 1", n)
	}
	if n := sc.Counter("core.fallback.dense"); n < 1 {
		t.Errorf("core.fallback.dense = %d, want ≥ 1", n)
	}
	if n := sc.Counter("core.fallback.total"); n < 3 {
		t.Errorf("core.fallback.total = %d, want ≥ 3", n)
	}
	if n := obs.Default().Counter("faultinject.faulted_matvecs") - faultedBefore; n < 1 {
		t.Errorf("faultinject.faulted_matvecs delta = %d, want ≥ 1", n)
	}
}

func TestTheorem5RouteWhenDenseFallbackDisabled(t *testing.T) {
	obs.Enable(true)
	defer obs.Enable(false)
	sc := obs.NewScope(t.Name())
	defer sc.Close()
	ctx := obs.WithScope(context.Background(), sc)
	g := hypercubeDAG(6)
	opt := Options{M: 4, MaxK: 8, Solver: SolverChebyshev, DenseFallbackCap: -1}
	failFastSolverOpts(&opt)
	// The clean Theorem 5 solve needs a real sweep budget; the faulted
	// attempts still fail fast because the noise swamps every tolerance.
	opt.Chebyshev = &linalg.ChebOptions{MaxIter: 30, Degree: 8}
	// Fault the three normalized-Laplacian attempts (Chebyshev, its retry,
	// Lanczos); the Theorem 5 route's solve on the original Laplacian is the
	// fourth wrap and runs clean.
	wraps := 0
	opt.WrapOperator = func(op linalg.Operator) linalg.Operator {
		wraps++
		if wraps <= 3 {
			return &faultinject.Op{A: op, NoiseFrom: 1, NoiseAmp: 5}
		}
		return op
	}
	res, err := SpectralBoundContext(ctx, g, opt)
	if err != nil {
		t.Fatalf("bound via Theorem 5 route: %v", err)
	}
	if res.Kind != laplacian.Original {
		t.Errorf("Kind = %v, want Original (Theorem 5 route)", res.Kind)
	}
	if !res.Degraded {
		t.Error("Degraded not set")
	}
	if n := sc.Counter("core.fallback.theorem5"); n != 1 {
		t.Errorf("core.fallback.theorem5 = %d, want 1", n)
	}

	// The Theorem 5 route must agree with directly requesting the original
	// Laplacian on a clean operator.
	clean, err := SpectralBound(g, Options{M: 4, MaxK: 8, Solver: SolverDense, Laplacian: laplacian.Original})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Bound-clean.Bound) > 1e-6*(1+math.Abs(clean.Bound)) {
		t.Errorf("Theorem 5 route bound %g != clean original-Laplacian bound %g", res.Bound, clean.Bound)
	}
}

func TestPerturbedSeedRetryRecoversTransientFault(t *testing.T) {
	g := hypercubeDAG(5)
	opt := Options{M: 4, MaxK: 6, Solver: SolverChebyshev}
	failFastSolverOpts(&opt)
	opt.Chebyshev = &linalg.ChebOptions{MaxIter: 30, Degree: 8}
	// Only the first attempt sees a poisoned operator; the retry runs clean
	// and must succeed with the originally requested solver.
	wraps := 0
	opt.WrapOperator = func(op linalg.Operator) linalg.Operator {
		wraps++
		if wraps == 1 {
			return &faultinject.Op{A: op, NaNFrom: 1}
		}
		return op
	}
	res, err := SpectralBound(g, opt)
	if err != nil {
		t.Fatalf("bound after transient fault: %v", err)
	}
	if res.SolverUsed != SolverChebyshev {
		t.Errorf("SolverUsed = %v, want chebyshev (retry, not solver switch)", res.SolverUsed)
	}
	if !res.Degraded || len(res.Fallbacks) != 1 {
		t.Errorf("Degraded = %v, Fallbacks = %v: want exactly the retry event", res.Degraded, res.Fallbacks)
	}
	if wraps != 2 {
		t.Errorf("WrapOperator invoked %d times, want 2", wraps)
	}
}

func TestNoFallbackFailsFast(t *testing.T) {
	g := hypercubeDAG(5)
	opt := Options{M: 4, MaxK: 6, Solver: SolverChebyshev, NoFallback: true}
	failFastSolverOpts(&opt)
	wraps := 0
	opt.WrapOperator = func(op linalg.Operator) linalg.Operator {
		wraps++
		return &faultinject.Op{A: op, NoiseFrom: 1, NoiseAmp: 5}
	}
	_, err := SpectralBound(g, opt)
	if err == nil {
		t.Fatal("NoFallback solve under noise succeeded")
	}
	var nc *linalg.NotConvergedError
	if !errors.As(err, &nc) {
		t.Fatalf("error = %v (%T), want *linalg.NotConvergedError", err, err)
	}
	if wraps != 1 {
		t.Errorf("WrapOperator invoked %d times, want 1 (no retries)", wraps)
	}
}

func TestCancelledContextAbortsWithoutFallbacks(t *testing.T) {
	g := hypercubeDAG(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SpectralBoundContext(ctx, g, Options{M: 4, MaxK: 6, Solver: SolverChebyshev})
	if err == nil {
		t.Fatal("cancelled bound succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in chain", err)
	}
}

func TestDeadlineDuringSolveIsNotMasked(t *testing.T) {
	g := hypercubeDAG(6)
	opt := Options{M: 4, MaxK: 8, Solver: SolverLanczos}
	opt.WrapOperator = func(op linalg.Operator) linalg.Operator {
		return &faultinject.Op{A: op, StallFrom: 1, Stall: 2 * time.Millisecond}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := SpectralBoundContext(ctx, g, opt)
	if err == nil {
		t.Fatal("stalled bound beat the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded in chain (fallbacks must not mask deadlines)", err)
	}
}
