package core_test

import (
	"fmt"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/laplacian"
)

// ExampleSpectralBound bounds the I/O of a 10-city Bellman-Held-Karp
// dynamic program on a machine with 16 fast-memory slots.
func ExampleSpectralBound() {
	g := gen.BellmanHeldKarp(10)
	res, err := core.SpectralBound(g, core.Options{M: 16})
	if err != nil {
		panic(err)
	}
	fmt.Printf("J* ≥ %.2f (best k = %d)\n", res.Bound, res.BestK)
	// Output:
	// J* ≥ 146.91 (best k = 4)
}

// ExampleBoundFromEigenvalues evaluates the Theorem 5 bound from a closed-
// form spectrum, without any eigensolver: the 8-dimensional hypercube has
// eigenvalue 2i with multiplicity C(8,i) and maximum out-degree 8.
func ExampleBoundFromEigenvalues() {
	lambda := []float64{0, 2, 2, 2, 2, 2, 2, 2, 2} // 0, then 2×C(8,1)
	bound, bestK, _ := core.BoundFromEigenvalues(lambda, 256, 1, 1, 8)
	fmt.Printf("bound %.2f at k=%d\n", bound, bestK)
	// Output:
	// bound 41.00 at k=5
}

// ExamplePartitionBound certifies the Lemma 1 I/O of a concrete schedule:
// the deterministic Kahn order of an 8-point FFT split into 4 segments.
func ExamplePartitionBound() {
	g := gen.FFT(3)
	pb, err := core.PartitionBound(g, g.TopoOrder(), 4, 2, laplacian.OutDegreeNormalized)
	if err != nil {
		panic(err)
	}
	fmt.Printf("this schedule incurs ≥ %.1f I/Os\n", pb)
	// Output:
	// this schedule incurs ≥ 32.0 I/Os
}
