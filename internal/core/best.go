package core

import (
	"context"
	"time"

	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/mincut"
	"graphio/internal/obs"
)

// LowerBound is one method's certificate inside a BestLowerBound report.
type LowerBound struct {
	Method  string
	Bound   float64
	Elapsed time.Duration
}

// BestReport aggregates every automated lower-bound method on one graph.
type BestReport struct {
	// Best is the strongest certificate.
	Best LowerBound
	// All lists every method's result (theorem4, theorem5, mincut).
	All []LowerBound
}

// BestLowerBound runs every automated lower-bound method this module has —
// the Theorem 4 and Theorem 5 spectral bounds and the convex min-cut
// baseline — and returns the strongest certificate. This is the one-call
// entry point for a user who just wants the best provable I/O floor for a
// graph; mincutTimeout bounds the baseline sweep (0 disables the baseline
// entirely, which is the right choice above ~50k vertices).
func BestLowerBound(g *graph.Graph, M int, maxK int, mincutTimeout time.Duration) (*BestReport, error) {
	return BestLowerBoundContext(context.Background(), g, M, maxK, mincutTimeout)
}

// BestLowerBoundContext is BestLowerBound with cancellation and telemetry
// attributed to ctx's scope.
func BestLowerBoundContext(ctx context.Context, g *graph.Graph, M int, maxK int, mincutTimeout time.Duration) (*BestReport, error) {
	sp := obs.StartSpanCtx(ctx, "core.best_lower_bound")
	rep := &BestReport{}
	add := func(method string, bound float64, elapsed time.Duration) {
		lb := LowerBound{Method: method, Bound: bound, Elapsed: elapsed}
		rep.All = append(rep.All, lb)
		if bound > rep.Best.Bound || rep.Best.Method == "" {
			rep.Best = lb
		}
		obs.ObserveCtx(ctx, "core.best."+method, elapsed)
		obs.LogCtx(ctx, "best: %-9s bound=%.4f in %v", method, bound, elapsed.Round(time.Microsecond))
	}

	start := obs.Now()
	t4, err := SpectralBoundContext(ctx, g, Options{M: M, MaxK: maxK})
	if err != nil {
		return nil, err
	}
	add("theorem4", t4.Bound, obs.Since(start))

	// Theorem 5 reuses nothing from Theorem 4 (different Laplacian), but
	// is cheap relative to the baseline and occasionally wins on graphs
	// whose normalized spectrum is flattened by skewed out-degrees.
	start = obs.Now()
	t5, err := SpectralBoundContext(ctx, g, Options{M: M, MaxK: maxK, Laplacian: laplacian.Original})
	if err != nil {
		return nil, err
	}
	add("theorem5", t5.Bound, obs.Since(start))

	if mincutTimeout > 0 {
		mc, err := mincut.ConvexMinCutBoundContext(ctx, g, mincut.Options{M: M, Timeout: mincutTimeout})
		if err != nil {
			return nil, err
		}
		add("mincut", mc.Bound, mc.Elapsed)
	}
	sp.SetStr("winner", rep.Best.Method)
	sp.SetFloat("bound", rep.Best.Bound)
	sp.End()
	return rep, nil
}
