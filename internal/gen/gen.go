// Package gen constructs the computation graphs the paper analyzes and
// evaluates on (§5, §6): the FFT butterfly, naive and Strassen matrix
// multiplication, the Bellman–Held–Karp hypercube, Erdős–Rényi random DAGs,
// and assorted small graphs for tests and examples. The arithmetic-based
// generators (inner product, matrix multiplication, Strassen) are built on
// the trace package, mirroring how the paper's solver extracts graphs from
// real computations.
package gen

import (
	"fmt"
	"math/rand"

	"graphio/internal/graph"
	"graphio/internal/trace"
)

// InnerProduct returns the computation graph of the inner product of two
// n-element vectors: 2n inputs, n products, and a chain of n−1 adds. With
// n = 2 this is the 7-vertex graph of the paper's Figure 1.
func InnerProduct(n int) *graph.Graph {
	if n < 1 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: InnerProduct needs n ≥ 1")
	}
	tr := trace.New()
	x := tr.Inputs("x", n)
	y := tr.Inputs("y", n)
	prods := make([]trace.Value, n)
	for i := 0; i < n; i++ {
		prods[i] = x[i].Mul(y[i])
	}
	trace.ReduceAdd(prods)
	return tr.MustGraph(fmt.Sprintf("inner-product-%d", n))
}

// FFT returns the computation graph of a 2^l-point fast Fourier transform:
// the unwrapped butterfly graph B_l with (l+1)·2^l vertices arranged in
// l+1 columns of 2^l rows (paper Figure 5). The vertex in column t, row r
// (t ≥ 1) consumes the column t−1 vertices at rows r and r XOR 2^(t−1).
func FFT(l int) *graph.Graph {
	if l < 0 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: FFT needs l ≥ 0")
	}
	rows := 1 << l
	b := graph.NewBuilder((l+1)*rows, 2*l*rows)
	b.SetName(fmt.Sprintf("fft-%d", l))
	b.AddVertices((l + 1) * rows)
	id := func(col, row int) int { return col*rows + row }
	for t := 1; t <= l; t++ {
		stride := 1 << (t - 1)
		for r := 0; r < rows; r++ {
			b.MustEdge(id(t-1, r), id(t, r))
			b.MustEdge(id(t-1, r^stride), id(t, r))
		}
	}
	return b.MustBuild()
}

// Butterfly is an alias for FFT; the literature names the graph, the
// evaluation names the computation.
func Butterfly(l int) *graph.Graph { return FFT(l) }

// NaiveMatMul returns the computation graph of the naive n×n matrix product
// C = A·B built through the tracer: C_ij = Σ_k A_ik·B_kj with a chain of
// adds, giving 2n² inputs, n³ multiplies, and n²(n−1) adds.
func NaiveMatMul(n int) *graph.Graph {
	if n < 1 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: NaiveMatMul needs n ≥ 1")
	}
	tr := trace.New()
	A := inputMatrix(tr, "a", n)
	B := inputMatrix(tr, "b", n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prods := make([]trace.Value, n)
			for k := 0; k < n; k++ {
				prods[k] = A[i][k].Mul(B[k][j])
			}
			trace.ReduceAdd(prods)
		}
	}
	return tr.MustGraph(fmt.Sprintf("matmul-%d", n))
}

// NaiveMatMulNary is NaiveMatMul with each C_ij computed by a single n-ary
// sum vertex instead of a chain of binary adds: 2n² inputs, n³ multiplies,
// n² sums, and maximum in-degree n. This mirrors the graph the paper's
// Python tracer extracts (Figure 8 notes "max in-degree n") and is what the
// Figure 8 harness uses; the binary-add variant above is the conventional
// arithmetic circuit.
func NaiveMatMulNary(n int) *graph.Graph {
	if n < 1 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: NaiveMatMulNary needs n ≥ 1")
	}
	tr := trace.New()
	A := inputMatrix(tr, "a", n)
	B := inputMatrix(tr, "b", n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prods := make([]trace.Value, n)
			for k := 0; k < n; k++ {
				prods[k] = A[i][k].Mul(B[k][j])
			}
			if n == 1 {
				continue // the single product is C_ij itself
			}
			tr.Op("sum", prods...)
		}
	}
	return tr.MustGraph(fmt.Sprintf("matmul-nary-%d", n))
}

// Strassen returns the computation graph of Strassen's recursive n×n matrix
// product (n must be a power of two). The recursion bottoms out at 1×1
// scalar multiplication, so the graph realizes the full O(n^log2 7)
// multiplication count the published bound speaks about.
func Strassen(n int) *graph.Graph {
	if n < 1 || n&(n-1) != 0 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: Strassen needs n a positive power of two")
	}
	tr := trace.New()
	A := inputMatrix(tr, "a", n)
	B := inputMatrix(tr, "b", n)
	strassenRec(A, B)
	return tr.MustGraph(fmt.Sprintf("strassen-%d", n))
}

func inputMatrix(tr *trace.Tracer, name string, n int) [][]trace.Value {
	m := make([][]trace.Value, n)
	for i := range m {
		m[i] = make([]trace.Value, n)
		for j := range m[i] {
			m[i][j] = tr.Input(fmt.Sprintf("%s%d,%d", name, i, j))
		}
	}
	return m
}

func matAdd(a, b [][]trace.Value) [][]trace.Value {
	n := len(a)
	out := make([][]trace.Value, n)
	for i := range out {
		out[i] = make([]trace.Value, n)
		for j := range out[i] {
			out[i][j] = a[i][j].Add(b[i][j])
		}
	}
	return out
}

func matSub(a, b [][]trace.Value) [][]trace.Value {
	n := len(a)
	out := make([][]trace.Value, n)
	for i := range out {
		out[i] = make([]trace.Value, n)
		for j := range out[i] {
			out[i][j] = a[i][j].Sub(b[i][j])
		}
	}
	return out
}

func quadrant(a [][]trace.Value, qi, qj int) [][]trace.Value {
	h := len(a) / 2
	out := make([][]trace.Value, h)
	for i := range out {
		out[i] = a[qi*h+i][qj*h : qj*h+h]
	}
	return out
}

func assemble(c11, c12, c21, c22 [][]trace.Value) [][]trace.Value {
	h := len(c11)
	out := make([][]trace.Value, 2*h)
	for i := 0; i < h; i++ {
		out[i] = append(append([]trace.Value{}, c11[i]...), c12[i]...)
		out[h+i] = append(append([]trace.Value{}, c21[i]...), c22[i]...)
	}
	return out
}

// strassenRec multiplies square matrices of power-of-two size with
// Strassen's seven-product recursion.
func strassenRec(a, b [][]trace.Value) [][]trace.Value {
	n := len(a)
	if n == 1 {
		return [][]trace.Value{{a[0][0].Mul(b[0][0])}}
	}
	a11, a12, a21, a22 := quadrant(a, 0, 0), quadrant(a, 0, 1), quadrant(a, 1, 0), quadrant(a, 1, 1)
	b11, b12, b21, b22 := quadrant(b, 0, 0), quadrant(b, 0, 1), quadrant(b, 1, 0), quadrant(b, 1, 1)

	m1 := strassenRec(matAdd(a11, a22), matAdd(b11, b22))
	m2 := strassenRec(matAdd(a21, a22), b11)
	m3 := strassenRec(a11, matSub(b12, b22))
	m4 := strassenRec(a22, matSub(b21, b11))
	m5 := strassenRec(matAdd(a11, a12), b22)
	m6 := strassenRec(matSub(a21, a11), matAdd(b11, b12))
	m7 := strassenRec(matSub(a12, a22), matAdd(b21, b22))

	c11 := matAdd(matSub(matAdd(m1, m4), m5), m7)
	c12 := matAdd(m3, m5)
	c21 := matAdd(m2, m4)
	c22 := matAdd(matAdd(matSub(m1, m2), m3), m6)
	return assemble(c11, c12, c21, c22)
}

// BellmanHeldKarp returns the computation graph of the Bellman–Held–Karp
// dynamic program for an l-city TSP: the boolean l-dimensional hypercube
// with an edge from subset k1 to k2 whenever k2 adds exactly one city
// (paper §5.1, Figure 4). It has 2^l vertices.
func BellmanHeldKarp(l int) *graph.Graph {
	if l < 1 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: BellmanHeldKarp needs l ≥ 1")
	}
	n := 1 << l
	b := graph.NewBuilder(n, n*l/2)
	b.SetName(fmt.Sprintf("bhk-%d", l))
	b.AddVertices(n)
	for k := 0; k < n; k++ {
		for bit := 0; bit < l; bit++ {
			if k&(1<<bit) == 0 {
				b.MustEdge(k, k|1<<bit)
			}
		}
	}
	return b.MustBuild()
}

// Hypercube is an alias for BellmanHeldKarp; the literature names the
// graph, the evaluation names the computation.
func Hypercube(l int) *graph.Graph { return BellmanHeldKarp(l) }

// ErdosRenyiDAG samples G(n, p) restricted to a DAG: each pair u < v is an
// edge u→v independently with probability p. The undirected support is
// exactly an Erdős–Rényi graph, which is what §5.3 analyzes; orienting by
// vertex order makes it a valid computation graph.
func ErdosRenyiDAG(n int, p float64, seed int64) *graph.Graph {
	if n < 0 || p < 0 || p > 1 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: ErdosRenyiDAG needs n ≥ 0 and p in [0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, int(p*float64(n)*float64(n)/2))
	b.SetName(fmt.Sprintf("er-%d-%g", n, p))
	b.AddVertices(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// RandomLayeredDAG samples a layered computation graph: `layers` layers of
// `width` vertices, each vertex in layer t > 0 consuming a uniformly
// random nonempty subset of up to maxIn vertices from layer t−1. Layered
// DAGs model pipelined computations (neural network layers, streaming
// operators) and exercise shapes the upper-triangular Erdős–Rényi sampler
// cannot: bounded depth-to-width ratios and uniform in-degrees.
func RandomLayeredDAG(layers, width, maxIn int, seed int64) *graph.Graph {
	if layers < 1 || width < 1 || maxIn < 1 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: RandomLayeredDAG needs positive dimensions")
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(layers*width, layers*width*maxIn)
	b.SetName(fmt.Sprintf("layered-%dx%d", layers, width))
	b.AddVertices(layers * width)
	for t := 1; t < layers; t++ {
		for j := 0; j < width; j++ {
			v := t*width + j
			k := 1 + rng.Intn(maxIn)
			if k > width {
				k = width
			}
			seen := map[int]bool{}
			for len(seen) < k {
				u := (t-1)*width + rng.Intn(width)
				if !seen[u] {
					seen[u] = true
					b.MustEdge(u, v)
				}
			}
		}
	}
	return b.MustBuild()
}

// Chain returns the path computation graph 0 → 1 → … → n−1.
func Chain(n int) *graph.Graph {
	b := graph.NewBuilder(n, n-1)
	b.SetName(fmt.Sprintf("chain-%d", n))
	b.AddVertices(n)
	for v := 1; v < n; v++ {
		b.MustEdge(v-1, v)
	}
	return b.MustBuild()
}

// BinaryTreeReduce returns a complete binary reduction tree with 2^depth
// leaves (inputs) and 2^depth − 1 internal vertices feeding toward a single
// root output.
func BinaryTreeReduce(depth int) *graph.Graph {
	if depth < 0 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: BinaryTreeReduce needs depth ≥ 0")
	}
	tr := trace.New()
	level := tr.Inputs("x", 1<<depth)
	for len(level) > 1 {
		next := make([]trace.Value, len(level)/2)
		for i := range next {
			next[i] = level[2*i].Add(level[2*i+1])
		}
		level = next
	}
	return tr.MustGraph(fmt.Sprintf("tree-%d", depth))
}

// Grid2D returns a rows×cols stencil DAG: vertex (i, j) consumes (i−1, j)
// and (i, j−1), the dependency structure of many dynamic programs (edit
// distance, cumulative sums).
func Grid2D(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		//lint:ignore no-panic generator parameter contract: misuse is a programmer error, mirroring stdlib constructors
		panic("gen: Grid2D needs positive dimensions")
	}
	b := graph.NewBuilder(rows*cols, 2*rows*cols)
	b.SetName(fmt.Sprintf("grid-%dx%d", rows, cols))
	b.AddVertices(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i > 0 {
				b.MustEdge(id(i-1, j), id(i, j))
			}
			if j > 0 {
				b.MustEdge(id(i, j-1), id(i, j))
			}
		}
	}
	return b.MustBuild()
}
