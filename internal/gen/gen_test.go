package gen

import (
	"testing"
)

func TestInnerProductCounts(t *testing.T) {
	// 2n inputs, n mults, n−1 adds; Figure 1 for n = 2.
	for _, n := range []int{1, 2, 5} {
		g := InnerProduct(n)
		wantN := 2*n + n + (n - 1)
		if g.N() != wantN {
			t.Errorf("n=%d: N=%d want %d", n, g.N(), wantN)
		}
		if len(g.Sources()) != 2*n || len(g.Sinks()) != 1 {
			t.Errorf("n=%d: sources=%d sinks=%d", n, len(g.Sources()), len(g.Sinks()))
		}
	}
}

func TestFFTShape(t *testing.T) {
	for _, l := range []int{0, 1, 2, 3, 6} {
		g := FFT(l)
		rows := 1 << l
		if g.N() != (l+1)*rows {
			t.Errorf("l=%d: N=%d want %d", l, g.N(), (l+1)*rows)
		}
		if g.M() != 2*l*rows {
			t.Errorf("l=%d: M=%d want %d", l, g.M(), 2*l*rows)
		}
		if len(g.Sources()) != rows || len(g.Sinks()) != rows {
			t.Errorf("l=%d: sources=%d sinks=%d want %d each", l, len(g.Sources()), len(g.Sinks()), rows)
		}
		if l > 0 {
			if g.MaxInDeg() != 2 || g.MaxOutDeg() != 2 {
				t.Errorf("l=%d: degrees in=%d out=%d want 2,2", l, g.MaxInDeg(), g.MaxOutDeg())
			}
		}
		// Every non-input vertex has exactly two distinct parents.
		for v := rows; v < g.N(); v++ {
			if g.InDeg(v) != 2 {
				t.Fatalf("l=%d: vertex %d has in-degree %d", l, v, g.InDeg(v))
			}
		}
	}
}

func TestFFT2MatchesPaperFigure5(t *testing.T) {
	// Figure 5: the 4-point FFT has 12 vertices in 3 columns of 4.
	g := FFT(2)
	if g.N() != 12 || g.M() != 16 {
		t.Fatalf("N=%d M=%d want 12,16", g.N(), g.M())
	}
}

func TestNaiveMatMulCounts(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		g := NaiveMatMul(n)
		wantN := 2*n*n + n*n*n + n*n*(n-1)
		if g.N() != wantN {
			t.Errorf("n=%d: N=%d want %d", n, g.N(), wantN)
		}
		if len(g.Sources()) != 2*n*n {
			t.Errorf("n=%d: sources=%d want %d", n, len(g.Sources()), 2*n*n)
		}
		if len(g.Sinks()) != n*n {
			t.Errorf("n=%d: sinks=%d want %d", n, len(g.Sinks()), n*n)
		}
	}
}

func TestNaiveMatMulNaryCounts(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		g := NaiveMatMulNary(n)
		wantN := 2*n*n + n*n*n + n*n
		if g.N() != wantN {
			t.Errorf("n=%d: N=%d want %d", n, g.N(), wantN)
		}
		if g.MaxInDeg() != n {
			t.Errorf("n=%d: max in-degree %d want %d", n, g.MaxInDeg(), n)
		}
	}
	// n=1: the product is the output; no sum vertex.
	if g := NaiveMatMulNary(1); g.N() != 3 {
		t.Errorf("n=1: N=%d want 3", g.N())
	}
}

func TestStrassenCounts(t *testing.T) {
	// n=1: 2 inputs + 1 multiply. For general n = 2^m the operation count
	// follows ops(n) = 7·ops(n/2) + 18·(n/2)² with ops(1) = 1, plus the
	// 2n² inputs.
	for _, n := range []int{1, 2, 4, 8} {
		g := Strassen(n)
		want := 2*n*n + opsHelper(n)
		if g.N() != want {
			t.Errorf("n=%d: N=%d want %d", n, g.N(), want)
		}
		if len(g.Sources()) != 2*n*n {
			t.Errorf("n=%d: sources=%d", n, len(g.Sources()))
		}
	}
}

func opsHelper(n int) int {
	if n == 1 {
		return 1
	}
	return 7*opsHelper(n/2) + 18*(n/2)*(n/2)
}

func TestStrassenRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Strassen(3) should panic")
		}
	}()
	Strassen(3)
}

func TestBellmanHeldKarpShape(t *testing.T) {
	for _, l := range []int{1, 3, 6} {
		g := BellmanHeldKarp(l)
		n := 1 << l
		if g.N() != n {
			t.Errorf("l=%d: N=%d", l, g.N())
		}
		if g.M() != l*n/2 {
			t.Errorf("l=%d: M=%d want %d", l, g.M(), l*n/2)
		}
		if len(g.Sources()) != 1 || g.Sources()[0] != 0 {
			t.Errorf("l=%d: sources=%v", l, g.Sources())
		}
		if len(g.Sinks()) != 1 || g.Sinks()[0] != n-1 {
			t.Errorf("l=%d: sinks=%v", l, g.Sinks())
		}
		if g.MaxOutDeg() != l || g.MaxInDeg() != l {
			t.Errorf("l=%d: degrees %d/%d", l, g.MaxOutDeg(), g.MaxInDeg())
		}
	}
}

func TestErdosRenyiDAG(t *testing.T) {
	g0 := ErdosRenyiDAG(20, 0, 1)
	if g0.M() != 0 {
		t.Errorf("p=0 produced %d edges", g0.M())
	}
	g1 := ErdosRenyiDAG(20, 1, 1)
	if g1.M() != 20*19/2 {
		t.Errorf("p=1 produced %d edges, want %d", g1.M(), 20*19/2)
	}
	a := ErdosRenyiDAG(30, 0.3, 7)
	b := ErdosRenyiDAG(30, 0.3, 7)
	if a.M() != b.M() {
		t.Error("same seed should reproduce the same graph")
	}
	c := ErdosRenyiDAG(30, 0.3, 8)
	if a.M() == c.M() && a.N() == c.N() {
		// Edge counts could coincide by chance; compare edge lists.
		ae, ce := a.Edges(), c.Edges()
		same := len(ae) == len(ce)
		if same {
			for i := range ae {
				if ae[i] != ce[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestRandomLayeredDAG(t *testing.T) {
	g := RandomLayeredDAG(5, 8, 3, 1)
	if g.N() != 40 {
		t.Fatalf("N=%d", g.N())
	}
	// Every non-input vertex has 1..3 parents, all from the previous layer.
	for v := 8; v < 40; v++ {
		in := g.InDeg(v)
		if in < 1 || in > 3 {
			t.Fatalf("vertex %d in-degree %d", v, in)
		}
		layer := v / 8
		for _, p := range g.Pred(v) {
			if int(p)/8 != layer-1 {
				t.Fatalf("vertex %d has parent %d outside the previous layer", v, p)
			}
		}
	}
	// Determinism per seed.
	a, b := RandomLayeredDAG(4, 6, 2, 7), RandomLayeredDAG(4, 6, 2, 7)
	if a.M() != b.M() {
		t.Error("same seed gave different graphs")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad dimensions should panic")
		}
	}()
	RandomLayeredDAG(0, 3, 1, 1)
}

func TestChainTreeGrid(t *testing.T) {
	c := Chain(5)
	if c.N() != 5 || c.M() != 4 {
		t.Errorf("chain: N=%d M=%d", c.N(), c.M())
	}
	tr := BinaryTreeReduce(3)
	if tr.N() != 8+7 || len(tr.Sinks()) != 1 {
		t.Errorf("tree: N=%d sinks=%d", tr.N(), len(tr.Sinks()))
	}
	gd := Grid2D(3, 4)
	if gd.N() != 12 {
		t.Errorf("grid: N=%d", gd.N())
	}
	// Edge count: (rows−1)·cols vertical + rows·(cols−1) horizontal.
	if gd.M() != 2*4+3*3 {
		t.Errorf("grid: M=%d want %d", gd.M(), 2*4+3*3)
	}
	if gd.MaxInDeg() != 2 {
		t.Errorf("grid: max in-degree %d", gd.MaxInDeg())
	}
}

func TestGeneratorsPanicOnBadInput(t *testing.T) {
	cases := []func(){
		func() { InnerProduct(0) },
		func() { FFT(-1) },
		func() { NaiveMatMul(0) },
		func() { Strassen(0) },
		func() { BellmanHeldKarp(0) },
		func() { ErdosRenyiDAG(5, -0.1, 1) },
		func() { BinaryTreeReduce(-1) },
		func() { Grid2D(0, 3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAliases(t *testing.T) {
	if Butterfly(3).N() != FFT(3).N() {
		t.Error("Butterfly should alias FFT")
	}
	if Hypercube(3).N() != BellmanHeldKarp(3).N() {
		t.Error("Hypercube should alias BellmanHeldKarp")
	}
}
