package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq forbids == and != between floating-point operands: spectra,
// bounds and residuals are the products of iterative solvers, and exact bit
// equality on them is almost always a latent bug (PR 3's fallback chain
// exists precisely because eigenvalues land within tolerances, not on
// exact values). Compare through linalg.EqTol / linalg.EqZero instead.
// The NaN self-comparison idiom (x != x) is recognized and allowed, and
// _test.go files are exempt — golden tests may assert bit-identical output
// on purpose (the resume suite does).
type FloatEq struct{}

// NewFloatEq returns the rule.
func NewFloatEq() *FloatEq { return &FloatEq{} }

func (*FloatEq) Name() string { return "float-eq" }

func (*FloatEq) Doc() string {
	return "no ==/!= on float operands; use linalg.EqTol/EqZero (NaN x!=x idiom and _test.go exempt)"
}

// Check implements Rule.
func (r *FloatEq) Check(p *Package, report Reporter) {
	for _, f := range p.Files {
		if isTestPos(p, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(p, be.X) && !isFloatExpr(p, be.Y) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // NaN idiom: x != x (or the degenerate x == x)
			}
			report(be.Pos(), "%s on floating-point operands is exact bit equality; use linalg.EqTol/EqZero or justify with //lint:ignore float-eq <why>", be.Op)
			return true
		})
	}
}

func isFloatExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
