package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags calls in statement position (plain statements and go
// statements) that silently discard an error result. The persistence PR
// made "every write can fail and says so" a load-bearing property; this
// keeps new call sites honest. Deliberate discards are written `_ = f()`
// so they survive review, or carry a //lint:ignore errcheck reason.
//
// Exempt by design: fmt.* (terminal output, conventionally unchecked),
// methods on strings.Builder and bytes.Buffer (their error results are
// documented always-nil), defer statements (read-path cleanup like
// defer f.Close() is conventional; write paths go through persist which
// checks Close), and _test.go files.
type ErrCheck struct{}

// NewErrCheck returns the rule.
func NewErrCheck() *ErrCheck { return &ErrCheck{} }

func (*ErrCheck) Name() string { return "errcheck" }

func (*ErrCheck) Doc() string {
	return "no silently discarded error results in statement position (fmt, Builder/Buffer, defer, _test.go exempt)"
}

// Check implements Rule.
func (r *ErrCheck) Check(p *Package, report Reporter) {
	for _, f := range p.Files {
		if isTestPos(p, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil || !returnsError(p, call) || r.exemptCallee(p, call) {
				return true
			}
			report(call.Pos(), "error result discarded; handle it, assign to _ explicitly, or //lint:ignore errcheck <why>")
			return true
		})
	}
}

// returnsError reports whether the call's only or final result is error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func (r *ErrCheck) exemptCallee(p *Package, call *ast.CallExpr) bool {
	obj := useOf(p, call.Fun)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
