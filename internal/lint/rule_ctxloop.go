package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLoop enforces the cancellation contract from the robustness PR: a
// function that accepts a context.Context must actually consult it inside
// each of its outermost for loops — by calling ctx.Err()/ctx.Done(), by
// selecting on it, or by passing ctx to the loop body's callees. Otherwise
// -timeout and SIGINT stop working the moment someone adds one more sweep
// loop. Two classes of loop are exempt: inner loops (a mat-vec inside a
// Lanczos restart legitimately amortizes the check into the loop above it)
// and loops that do no real work — no calls at all, or only formatting
// calls (fmt/strings/strconv/errors) — whose cancellation latency is
// bounded by straight-line arithmetic.
//
// The rule also bans time.Sleep inside any loop (outer or inner) of a
// context-taking function: a sleeping poll loop consults ctx only between
// naps, so cancellation stalls for the full sleep — and the distributed
// sweep's claim-polling and lease-renewal loops are exactly where that
// latency turns a Ctrl-C into a hung worker. A timer plus a select on
// ctx.Done() gives the same pacing with immediate cancellation.
type CtxLoop struct{}

// NewCtxLoop returns the rule.
func NewCtxLoop() *CtxLoop { return &CtxLoop{} }

func (*CtxLoop) Name() string { return "ctx-loop" }

func (*CtxLoop) Doc() string {
	return "functions taking a context.Context must consult it inside their outermost for loops"
}

// Check implements Rule.
func (r *CtxLoop) Check(p *Package, report Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if !funcTakesContext(p, fd) {
				return true
			}
			name := fd.Name.Name
			checkLoops(fd.Body, false, func(loop ast.Node) {
				if loopDoesWork(p, loop) && !mentionsContext(p, loop) {
					report(loop.Pos(), "%s accepts a context.Context but this loop never consults it; check ctx.Err()/ctx.Done() or pass ctx into the loop body", name)
				}
			})
			findLoopSleeps(p, fd.Body, false, func(pos token.Pos) {
				report(pos, "%s accepts a context.Context but time.Sleep in a loop ignores it; use a timer and select on ctx.Done() so cancellation does not stall", name)
			})
			return true
		})
	}
}

func funcTakesContext(p *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := p.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkLoops walks body and invokes visit on every outermost for/range
// statement. Loops nested inside another loop are skipped; function
// literals keep the surrounding nesting level (a loop inside a goroutine
// launched from a loop is still an inner loop).
func checkLoops(body ast.Node, inLoop bool, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if !inLoop {
				visit(n)
			}
			checkLoops(n.Body, true, visit)
			return false
		case *ast.RangeStmt:
			if !inLoop {
				visit(n)
			}
			checkLoops(n.Body, true, visit)
			return false
		case *ast.FuncDecl:
			// nested declarations don't occur; keep the walk simple
		}
		return true
	})
}

var timeSleepFuncs = map[string]bool{"Sleep": true}

// findLoopSleeps reports every time.Sleep call lexically inside a for or
// range loop of body, at any nesting depth — unlike the consult check,
// depth does not excuse a sleep: an uncancellable nap in an inner
// renewal/polling loop stalls shutdown just as surely as in the outer one.
// Function literals keep the surrounding nesting level, so a sleep in a
// goroutine launched from a loop still counts.
func findLoopSleeps(p *Package, body ast.Node, inLoop bool, report func(token.Pos)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			findLoopSleeps(p, n.Body, true, report)
			return false
		case *ast.RangeStmt:
			findLoopSleeps(p, n.Body, true, report)
			return false
		case *ast.CallExpr:
			if !inLoop {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if _, ok := isPkgFunc(p, sel, "time", timeSleepFuncs); ok {
					report(n.Pos())
				}
			}
		}
		return true
	})
}

// formattingPkgs are call targets that don't count as work: a loop whose
// only calls format strings or wrap errors finishes in bounded
// straight-line time and needs no cancellation point.
var formattingPkgs = map[string]bool{"fmt": true, "strings": true, "strconv": true, "errors": true}

// loopDoesWork reports whether loop contains at least one call that could
// be expensive: any call that is not a builtin, not a type conversion, and
// not into a pure formatting package.
func loopDoesWork(p *Package, loop ast.Node) bool {
	work := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if work {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, e.g. int32(i)
		}
		obj := useOf(p, call.Fun)
		if _, builtin := obj.(*types.Builtin); builtin {
			return true
		}
		if obj != nil && obj.Pkg() != nil && formattingPkgs[obj.Pkg().Path()] {
			return true
		}
		work = true
		return false
	})
	return work
}

// mentionsContext reports whether any expression inside loop has static
// type context.Context — an ident naming the parameter, a derived context,
// a ctx.Done() channel receive, or ctx passed as a call argument all
// qualify.
func mentionsContext(p *Package, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[e]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
