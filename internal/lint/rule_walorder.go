package lint

// wal-order: append-before-effect. In the WAL-backed packages (graphiod's
// job store, dist's coordinator), any function that journals a transition
// must write the WAL record before mutating the in-memory state it
// describes — otherwise a crash between the two leaves memory ahead of the
// journal and replay resurrects a state the process never acknowledged.
//
// The check is positional within one function: in a function that calls
// the persist Journal's Append — either directly or through a thin append
// helper (a callee that itself calls Append directly) — every mutation of
// receiver- or pointer-parameter-reachable state occurring before the
// first append call is a finding. The one-hop gate is deliberate: a
// deeply transitive appender (a handler whose first statement calls an
// expiry sweep that journals internally) is not itself the journaling
// site, and counting it would both mask later direct appends and flag
// unrelated bookkeeping. Functions that never append are out of scope —
// the store's memory-only transitions (scheduling, dedup indexes) are
// deliberate and have no record to order against. Local aliases are
// followed one assignment deep: `s := c.shards[k]; s.state = x` counts as
// receiver state. Only receiver state and parameters of program-defined
// types are considered roots: an *http.Request is the transport's state,
// not journaled state.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WalOrder is the wal-order rule.
type WalOrder struct {
	// Packages lists the import paths under the append-before-effect
	// contract (subtrees included; external test units too).
	Packages []string
}

// NewWalOrder returns the rule scoped to the WAL-backed packages.
func NewWalOrder() *WalOrder {
	return &WalOrder{Packages: []string{"graphio/internal/graphiod", "graphio/internal/dist"}}
}

// Name implements Rule.
func (r *WalOrder) Name() string { return "wal-order" }

// Doc implements Rule.
func (r *WalOrder) Doc() string {
	return "in WAL-backed packages, journaling functions must append before mutating the state the record describes"
}

// Check implements Rule.
func (r *WalOrder) Check(p *Package, report Reporter) {
	if p.Prog == nil || !pathExempt(p.Path, r.Packages) {
		return
	}
	for _, n := range p.Prog.NodesOf(p) {
		body := n.Body()
		if body == nil || isTestPos(p, body.Pos()) {
			continue
		}
		firstAppend := firstAppendPos(p.Prog, n)
		if !firstAppend.IsValid() {
			continue
		}
		rooted := rootedLocals(p, n)
		for obj := range paramObjects(p, n) {
			rooted[obj] = true
		}
		appendLine := p.Fset.Position(firstAppend).Line
		ownNodes(n, func(x ast.Node) bool {
			pos, target := mutationOf(p, rooted, x)
			if !pos.IsValid() || pos >= firstAppend {
				return true
			}
			report(pos, "%s mutates %s before its first WAL append (line %d); append-before-effect requires the journal record first",
				n.Name(), target, appendLine)
			return true
		})
	}
}

// firstAppendPos returns the position of the first call in n that is
// Journal.Append itself or a callee that directly calls it (an append
// helper), or NoPos. Deeper transitivity is intentionally NOT an append
// site — see the package comment.
func firstAppendPos(pr *Program, n *FuncNode) token.Pos {
	best := token.NoPos
	for _, e := range n.Edges {
		if e.Kind == EdgeGo {
			continue
		}
		if edgeAppends(pr, e) && (!best.IsValid() || e.Pos < best) {
			best = e.Pos
		}
	}
	return best
}

// edgeAppends reports whether the edge reaches Journal.Append in at most
// one hop: the call is Append itself, or the callee has its own direct
// Append edge.
func edgeAppends(pr *Program, e *CallEdge) bool {
	if e.Fn != nil && isJournalAppend(e.Fn, pr.PersistPath) {
		return true
	}
	for _, t := range edgeTargets(e) {
		if t.Decl != nil && isDeclJournalAppend(pr, t) {
			return true
		}
		for _, te := range t.Edges {
			if te.Kind != EdgeGo && te.Fn != nil && isJournalAppend(te.Fn, pr.PersistPath) {
				return true
			}
		}
	}
	return false
}

// isDeclJournalAppend reports whether a program node IS the persist
// Journal.Append (the persist package is itself a lint unit, so the call
// resolves to a node rather than an external func).
func isDeclJournalAppend(pr *Program, t *FuncNode) bool {
	if t.Decl == nil || t.Decl.Name.Name != "Append" {
		return false
	}
	base := pr.PersistPath
	path := t.Pkg.Path
	return path == base || path == base+"_test"
}

// rootedLocals finds local variables bound exactly once from
// receiver/param-reachable expressions: s := c.shards[k] makes s rooted.
func rootedLocals(p *Package, n *FuncNode) map[types.Object]bool {
	rooted := make(map[types.Object]bool)
	params := paramObjects(p, n)
	// Iterate to a small fixpoint so chains of single assignments resolve
	// (a := s.x; b := a.y).
	for pass := 0; pass < 3; pass++ {
		changed := false
		ownNodes(n, func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil || rooted[obj] {
					continue
				}
				if base := baseObject(p, as.Rhs[i]); base != nil && (params[base] || rooted[base]) {
					rooted[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return rooted
}

// paramObjects collects the receiver and the pointer/reference-typed
// parameters of program-defined types — the state whose mutation the WAL
// must dominate. Externally-typed params (*http.Request, io.Writer) are
// the caller's transport, not journaled state.
func paramObjects(p *Package, n *FuncNode) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	add := func(fl *ast.FieldList, receiver bool) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj == nil {
					continue
				}
				if receiver || sharedProgramStorage(p.Prog, obj.Type()) {
					objs[obj] = true
				}
			}
		}
	}
	if n.Decl != nil {
		add(n.Decl.Recv, true)
		add(n.Decl.Type.Params, false)
	} else if n.Lit != nil {
		add(n.Lit.Type.Params, false)
	}
	return objs
}

// sharedProgramStorage reports whether mutating through t reaches state
// the caller can observe (pointer, map or slice — value params are
// copies) AND that state is of a type the linted program defines.
func sharedProgramStorage(pr *Program, t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return programNamed(pr, u.Elem())
	case *types.Map:
		return programNamed(pr, u.Elem())
	case *types.Slice:
		return programNamed(pr, u.Elem())
	}
	return false
}

// programNamed reports whether t (pointers unwrapped) is a named type
// declared in one of the lint units.
func programNamed(pr *Program, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && pr.OwnsPath(obj.Pkg().Path())
}

// baseObject unwraps selector/index/star/paren chains to the base
// identifier's object.
func baseObject(p *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		default:
			return nil
		}
	}
}

// mutationOf reports a state mutation of rooted storage in x: an
// assignment or ++/-- through a selector/index rooted at the receiver, a
// pointer param, or a rooted local; delete() on a rooted map; and
// container/heap operations on rooted storage.
func mutationOf(p *Package, rooted map[types.Object]bool, x ast.Node) (token.Pos, string) {
	isRooted := func(e ast.Expr) bool {
		// A bare identifier is a local rebind, not state; require at least
		// one selector/index hop.
		switch unparen(e).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			return false
		}
		base := baseObject(p, e)
		return base != nil && rooted[base]
	}
	switch st := x.(type) {
	case *ast.AssignStmt:
		for _, l := range st.Lhs {
			if isRooted(l) {
				return st.Pos(), exprText(l)
			}
		}
	case *ast.IncDecStmt:
		if isRooted(st.X) {
			return st.Pos(), exprText(st.X)
		}
	case *ast.CallExpr:
		fun := unparen(st.Fun)
		if id, ok := fun.(*ast.Ident); ok {
			if b, isB := p.Info.Uses[id].(*types.Builtin); isB && b.Name() == "delete" && len(st.Args) > 0 {
				if isRooted(st.Args[0]) {
					return st.Pos(), exprText(st.Args[0])
				}
			}
		}
		// container/heap mutations: heap.Push(&s.queue, x), heap.Pop(&s.queue).
		if name, ok := isPkgFunc(p, fun, "container/heap", map[string]bool{"Push": true, "Pop": true, "Remove": true, "Fix": true}); ok && len(st.Args) > 0 {
			arg := unparen(st.Args[0])
			if u, isU := arg.(*ast.UnaryExpr); isU && u.Op == token.AND {
				arg = u.X
			}
			if isRooted(arg) {
				return st.Pos(), "heap." + name + "(" + exprText(arg) + ")"
			}
		}
	}
	return token.NoPos, ""
}
