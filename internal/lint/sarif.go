package lint

// Minimal SARIF 2.1.0 writer, stdlib-only. The output targets code-scanning
// uploads (one run, one tool, physical locations with region start lines)
// and round-trips the rule catalog so viewers show each rule's doc line.

import (
	"encoding/json"
	"io"
)

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
	sarifTool    = "graphiolint"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTooling  `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTooling struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// RuleInfo names one catalog entry for SARIF's rule metadata.
type RuleInfo struct {
	Name string
	Doc  string
}

// CatalogInfo renders a rule set (plus the two meta rules) as RuleInfo.
func CatalogInfo(rules []Rule) []RuleInfo {
	infos := make([]RuleInfo, 0, len(rules)+2)
	for _, r := range rules {
		infos = append(infos, RuleInfo{Name: r.Name(), Doc: r.Doc()})
	}
	infos = append(infos,
		RuleInfo{Name: DirectiveRule, Doc: "meta: malformed or unknown-rule //lint:ignore directives"},
		RuleInfo{Name: UnusedSuppRule, Doc: "meta: //lint:ignore directives that suppress nothing"},
	)
	return infos
}

// WriteSARIF renders diagnostics as a single-run SARIF 2.1.0 log. File
// paths are made module-root-relative (URI-friendly) via root; severity
// maps error->"error", warn->"warning".
func WriteSARIF(w io.Writer, root string, catalog []RuleInfo, ds []Diagnostic) error {
	rules := make([]sarifRule, 0, len(catalog))
	for _, ri := range catalog {
		rules = append(rules, sarifRule{ID: ri.Name, ShortDescription: sarifText{Text: ri.Doc}})
	}
	results := make([]sarifResult, 0, len(ds))
	for _, d := range ds {
		level := "error"
		if d.Severity == SeverityWarn {
			level = "warning"
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   level,
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(root, d.File)},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTooling{Driver: sarifDriver{Name: sarifTool, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
