package lint

import (
	"path/filepath"
	"testing"
)

// loadProgram loads one fixture package and builds its Program with
// fix/journal standing in as the persist path.
func loadProgram(t *testing.T, name string) (*Program, []*Package) {
	t.Helper()
	ld := newFixtureLoader(t)
	pkgs, err := ld.LoadDir(filepath.Join(ld.ModuleRoot, name), "fix/"+name)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("fixture %s (%s): type error: %v", name, p.Path, terr)
		}
	}
	return NewProgramWith(pkgs, "fix/journal"), pkgs
}

// nodeNamed finds the unique node whose short Name matches.
func nodeNamed(t *testing.T, pr *Program, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range pr.Funcs {
		if n.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %s: %s and %s", name, found.ID, n.ID)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

// edgesTo returns caller's edges resolved to callee (directly, not via
// devirtualization).
func edgesTo(caller, callee *FuncNode) []*CallEdge {
	var out []*CallEdge
	for _, e := range caller.Edges {
		if e.Callee == callee {
			out = append(out, e)
		}
	}
	return out
}

func TestCallGraphRecursion(t *testing.T) {
	pr, _ := loadProgram(t, "callgraph")
	loop := nodeNamed(t, pr, "loop")
	es := edgesTo(loop, loop)
	if len(es) != 1 || es[0].Kind != EdgeCall {
		t.Fatalf("loop self-edges = %v, want one EdgeCall", es)
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	pr, _ := loadProgram(t, "callgraph")
	mv := nodeNamed(t, pr, "methodValue")
	bump := nodeNamed(t, pr, "(*box).bump")
	if len(edgesTo(mv, bump)) != 1 {
		t.Fatalf("methodValue edges = %v, want one resolved to (*box).bump", mv.Edges)
	}
}

func TestCallGraphGoAndDefer(t *testing.T) {
	pr, _ := loadProgram(t, "callgraph")
	spawn := nodeNamed(t, pr, "spawnAndDefer")
	lit := nodeNamed(t, pr, "spawnAndDefer$0")
	cleanup := nodeNamed(t, pr, "cleanup")
	helper := nodeNamed(t, pr, "helper")

	goEdges := edgesTo(spawn, lit)
	if len(goEdges) != 1 || goEdges[0].Kind != EdgeGo {
		t.Errorf("spawn -> literal edges = %v, want one EdgeGo", goEdges)
	}
	deferEdges := edgesTo(spawn, cleanup)
	if len(deferEdges) != 1 || deferEdges[0].Kind != EdgeDefer {
		t.Errorf("spawn -> cleanup edges = %v, want one EdgeDefer", deferEdges)
	}
	if len(edgesTo(lit, helper)) != 1 {
		t.Errorf("literal -> helper edges = %v, want one", lit.Edges)
	}
	if lit.Parent != spawn || lit.Root() != spawn {
		t.Errorf("literal parent = %v, want spawnAndDefer", lit.Parent)
	}
}

func TestCallGraphLiteralPass(t *testing.T) {
	pr, _ := loadProgram(t, "callgraph")
	passes := nodeNamed(t, pr, "passes")
	lit := nodeNamed(t, pr, "passes$0")
	runner := nodeNamed(t, pr, "runner")

	passEdges := edgesTo(passes, lit)
	if len(passEdges) != 1 || passEdges[0].Kind != EdgePass {
		t.Errorf("passes -> literal edges = %v, want one EdgePass", passEdges)
	}
	if len(edgesTo(passes, runner)) != 1 {
		t.Errorf("passes -> runner edges = %v, want one call", passes.Edges)
	}
}

func TestCallGraphDevirtualize(t *testing.T) {
	pr, _ := loadProgram(t, "callgraph")
	announce := nodeNamed(t, pr, "announce")
	dogSpeak := nodeNamed(t, pr, "(dog).speak")
	catSpeak := nodeNamed(t, pr, "(*cat).speak")

	var iface *CallEdge
	for _, e := range announce.Edges {
		if len(e.Iface) > 0 {
			iface = e
		}
	}
	if iface == nil {
		t.Fatalf("announce has no devirtualized edge: %v", announce.Edges)
	}
	if iface.Callee != nil {
		t.Errorf("interface edge has a direct callee: %v", iface.Callee)
	}
	if len(iface.Iface) != 2 || iface.Iface[0] != catSpeak || iface.Iface[1] != dogSpeak {
		t.Errorf("devirtualized targets = %v, want [(*cat).speak (dog).speak]", iface.Iface)
	}

	// Stdlib interfaces stay opaque: connecting io.Writer to every program
	// writer would invent aliasing that does not exist.
	external := nodeNamed(t, pr, "external")
	for _, e := range external.Edges {
		if len(e.Iface) > 0 {
			t.Errorf("io.Writer call was devirtualized: %v", e.Iface)
		}
	}
}

func TestCallGraphOwnsPath(t *testing.T) {
	pr, _ := loadProgram(t, "callgraph")
	for path, want := range map[string]bool{
		"fix/callgraph":      true,
		"fix/callgraph_test": true, // external test units fold into the base path
		"io":                 false,
		"fix/journal":        false, // not a unit of this run
	} {
		if got := pr.OwnsPath(path); got != want {
			t.Errorf("OwnsPath(%q) = %v, want %v", path, got, want)
		}
	}
}
