package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids panic in library packages: the bound pipeline promises
// typed errors (NotConvergedError, NonFiniteError, SizeError, ...) all the
// way up, and a panic in a solver tears down the whole sweep instead of
// failing one experiment. Package main and _test.go files are exempt;
// genuinely unreachable invariant panics need a //lint:ignore with the
// invariant spelled out.
type NoPanic struct{}

// NewNoPanic returns the rule.
func NewNoPanic() *NoPanic { return &NoPanic{} }

func (*NoPanic) Name() string { return "no-panic" }

func (*NoPanic) Doc() string {
	return "library packages return typed errors instead of panicking (main and _test.go exempt)"
}

// Check implements Rule.
func (r *NoPanic) Check(p *Package, report Reporter) {
	if p.Types != nil && p.Types.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		if isTestPos(p, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			report(call.Pos(), "panic in library code; return a typed error (or //lint:ignore no-panic <invariant>)")
			return true
		})
	}
}
