package lint

// A baseline lets the lint gate tighten incrementally: findings recorded
// in the baseline file are filtered from the run's output, so a newly
// introduced (or newly promoted) rule can land with its existing debt
// frozen while any NEW finding still fails the build. Entries are keyed
// by (rule, module-relative file, message) — deliberately not by line, so
// unrelated edits that shift code do not resurrect baselined findings —
// and carry a count: the same message appearing more times than the
// baseline recorded fails by the excess.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineEntry is one suppressed finding class in the baseline file.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-relative, slash-separated
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// Baseline is the persisted set of accepted findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

func baselineKey(rule, relFile, message string) string {
	return rule + "\x00" + relFile + "\x00" + message
}

// relPath maps an absolute diagnostic path to the module-relative,
// slash-separated form used in baseline and SARIF output; paths outside
// root pass through unchanged.
func relPath(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// NewBaseline captures the given diagnostics as a baseline, root-relative
// and sorted for stable files under version control.
func NewBaseline(root string, ds []Diagnostic) Baseline {
	counts := make(map[string]*BaselineEntry)
	var order []string
	for _, d := range ds {
		key := baselineKey(d.Rule, relPath(root, d.File), d.Message)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{Rule: d.Rule, File: relPath(root, d.File), Message: d.Message, Count: 1}
		order = append(order, key)
	}
	sort.Strings(order)
	b := Baseline{Entries: []BaselineEntry{}}
	for _, key := range order {
		b.Entries = append(b.Entries, *counts[key])
	}
	return b
}

// WriteBaseline persists the baseline as indented JSON.
func (b Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// LoadBaseline reads a baseline file; a missing file is an error (the
// caller chose -baseline deliberately).
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	return b, nil
}

// Filter removes diagnostics covered by the baseline and returns the
// survivors plus how many were suppressed. Each entry absorbs up to Count
// matching diagnostics; the excess stays.
func (b Baseline) Filter(root string, ds []Diagnostic) (kept []Diagnostic, suppressed int) {
	budget := make(map[string]int, len(b.Entries))
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey(e.Rule, e.File, e.Message)] += n
	}
	for _, d := range ds {
		key := baselineKey(d.Rule, relPath(root, d.File), d.Message)
		if budget[key] > 0 {
			budget[key]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
