// Package obs is a miniature stand-in for graphio/internal/obs used by the
// metric-name fixture: same entry-point names, no behavior.
package obs

type Registry struct{}

func (*Registry) Inc(name string)                {}
func (*Registry) Observe(name string, v float64) {}

var def Registry

func Default() *Registry { return &def }

func Inc(name string)                {}
func Observe(name string, v float64) {}

// StartSpan's name is free-form: not a metric entry point.
func StartSpan(name string) {}

// ProbeRef mirrors the solver event-probe handle. Iter's first argument is
// an iteration number, not a metric name, so Iter is deliberately NOT a
// metric entry point.
type ProbeRef struct{}

func Probe(name string) ProbeRef { return ProbeRef{} }

func (ProbeRef) Iter(iter int64) {}
