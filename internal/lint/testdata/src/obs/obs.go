// Package obs is a miniature stand-in for graphio/internal/obs used by the
// metric-name fixture: same entry-point names, no behavior.
package obs

type Registry struct{}

func (*Registry) Inc(name string)                {}
func (*Registry) Observe(name string, v float64) {}

var def Registry

func Default() *Registry { return &def }

func Inc(name string)                {}
func Observe(name string, v float64) {}

// StartSpan's name is free-form: not a metric entry point.
func StartSpan(name string) {}
