// Package obs is a miniature stand-in for graphio/internal/obs used by the
// metric-name and scoped-obs fixtures: same entry-point names, no behavior.
package obs

import "context"

type Registry struct{}

func (*Registry) Inc(name string)                {}
func (*Registry) Observe(name string, v float64) {}

var def Registry

func Default() *Registry { return &def }

func Add(name string, v int64)       {}
func Inc(name string)                {}
func Observe(name string, v float64) {}

func AddCtx(ctx context.Context, name string, v int64)       {}
func IncCtx(ctx context.Context, name string)                {}
func ObserveCtx(ctx context.Context, name string, v float64) {}

// StartSpan's name is free-form: not a metric entry point.
func StartSpan(name string) {}

func StartSpanCtx(ctx context.Context, name string) {}

func Logf(format string, args ...any)                        {}
func LogCtx(ctx context.Context, format string, args ...any) {}

// Scope mirrors the per-task telemetry scope; its emission methods are
// scope-aware by construction.
type Scope struct{}

func (*Scope) Inc(name string)                            {}
func (*Scope) ObserveHistDuration(name string, dns int64) {}

// ProbeRef mirrors the solver event-probe handle. Iter's first argument is
// an iteration number, not a metric name, so Iter is deliberately NOT a
// metric entry point; IterCtx leads with a context.
type ProbeRef struct{}

func Probe(name string) ProbeRef { return ProbeRef{} }

func (ProbeRef) Iter(iter int64)                         {}
func (ProbeRef) IterCtx(ctx context.Context, iter int64) {}
