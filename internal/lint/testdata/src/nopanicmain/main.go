// Command nopanicmain is the no-panic fixture for package main, which is
// exempt: a CLI may die loudly.
package main

func main() {
	panic("mains may panic")
}
