// Package directive is the suppression-mechanics fixture. Its expectations
// live in TestDirectiveFixture rather than inline want comments: the
// interesting lines already end in a //lint:ignore comment, and a Go source
// line cannot carry two line comments.
package directive

func trailing() {
	panic("len < 0") //lint:ignore no-panic trailing form: the length is validated two lines up
}

func wholeLine() {
	//lint:ignore no-panic whole-line form: the caller guarantees a non-empty slice
	panic("empty slice")
}

func wholeLineSkipsBlanks() {
	//lint:ignore no-panic blank and comment lines between directive and code are skipped

	// an interleaved comment
	panic("still suppressed")
}

func missingReason() {
	//lint:ignore no-panic
	panic("not suppressed: reason missing")
}

func unknownRule() {
	//lint:ignore no-such-rule the rule name is wrong on purpose
	panic("not suppressed: unknown rule")
}

func metaRule() {
	//lint:ignore unused-suppression meta rules cannot be silenced
	panic("not suppressed: meta rule")
}

//lint:ignore
func malformed() {}

func unused(a, b int) bool {
	//lint:ignore float-eq ints compare exactly, so this suppresses nothing
	return a == b
}

//lint:ignorance of the required space means this comment is not a directive
func prose() {}
