// Fixture for the call-graph unit tests: recursion, method values, go and
// defer statements, literal passing, and interface devirtualization. It is
// loaded directly by TestCallGraph with explicit assertions, not by the
// want-comment harness.
package callgraph

import "io"

type speaker interface{ speak() }

type dog struct{}

func (dog) speak() {}

type cat struct{}

func (*cat) speak() {}

// announce calls through a program-defined interface: CHA resolves the
// edge to every implementation the run loaded.
func announce(s speaker) { s.speak() }

// external calls through a stdlib interface: CHA must leave it alone.
func external(w io.Writer) {
	_, _ = w.Write(nil)
}

// loop recurses: its edge points back at its own node.
func loop(n int) {
	if n > 0 {
		loop(n - 1)
	}
}

type box struct{ n int }

func (b *box) bump() { b.n++ }

// methodValue binds a method value to a local and calls it; one-assignment
// tracking resolves the call to (*box).bump.
func methodValue(b *box) {
	f := b.bump
	f()
}

func helper() {}

func cleanup() {}

// spawnAndDefer exercises the go and defer edge kinds; the go statement
// targets a function literal that itself calls helper.
func spawnAndDefer() {
	defer cleanup()
	go func() {
		helper()
	}()
}

func runner(f func()) { f() }

// passes hands a literal to runner: the literal gets an EdgePass from
// passes plus the ordinary call edge to runner.
func passes() {
	runner(func() { helper() })
}
