// Fixture for the ctx-flow rule: forwarding misses, library-code roots,
// and the compat-wrapper exemption.
package ctxflow

import "context"

func worker(ctx context.Context) error { return nil }

func plain() {}

// forwards is clean: the ctx reaches every ctx-accepting callee, and
// plain() takes none.
func forwards(ctx context.Context) {
	_ = worker(ctx)
	plain()
}

// derived is clean: a child context still forwards the chain.
func derived(ctx context.Context) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = worker(child)
}

// drops has a ctx but mints a fresh root for its callee.
func drops(ctx context.Context) {
	_ = worker(context.TODO()) // want `drops has a context in scope but calls worker without forwarding it` `context\.TODO\(\) in library code severs the cancellation chain`
}

// literalDrops shows the ctx scope flowing into a func literal.
func literalDrops(ctx context.Context) func() {
	return func() {
		_ = worker(context.Background()) // want `literalDrops\$0 has a context in scope but calls worker without forwarding it` `context\.Background\(\) in library code severs the cancellation chain`
	}
}

// RunContext/Run follow the repo's compat-wrapper convention: Run may mint
// the root because its one statement delegates to RunContext.
func RunContext(ctx context.Context, n int) error { return worker(ctx) }

// Run is the exempt compat wrapper.
func Run(n int) error {
	return RunContext(context.Background(), n)
}

// notAWrapper mints a root and does other work too: not exempt.
func notAWrapper(n int) error {
	n++
	return RunContext(context.Background(), n) // want `context\.Background\(\) in library code severs the cancellation chain`
}
