// Package skipped lives under an underscore directory and must be skipped.
package skipped
