// Package ignored lives under a testdata directory and must be skipped.
package ignored
