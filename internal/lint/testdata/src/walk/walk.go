// Package walk anchors the Expand pattern-walking test.
package walk
