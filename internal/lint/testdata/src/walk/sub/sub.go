// Package sub is a nested package Expand must find.
package sub
