// Fixture for the wal-order rule: in a journaling function (one that
// calls Journal.Append directly or through a one-hop helper), mutations
// of receiver/param-reachable state before the first append are findings.
// The fixture harness runs the rule with Packages = ["fix/walorder"].
package walorder

import "fix/journal"

type record struct {
	Kind string
}

type store struct {
	wal   *journal.Journal
	seq   int
	jobs  map[string]*entry
	prior []int
}

type entry struct {
	state string
	tries int
}

// accept is clean: the record is journaled before any state changes.
func (s *store) accept(id string) error {
	if err := s.wal.Append([]byte(id)); err != nil {
		return err
	}
	s.seq++
	s.jobs[id] = &entry{state: "queued"}
	return nil
}

// eager mutates the sequence before the append that describes it.
func (s *store) eager(id string) error {
	s.seq++ // want `eager mutates s\.seq before its first WAL append \(line \d+\)`
	if err := s.wal.Append([]byte(id)); err != nil {
		return err
	}
	s.jobs[id] = &entry{state: "queued"}
	return nil
}

// appendRec is a one-hop append helper; callers of it are journaling
// functions too.
func (s *store) appendRec(r record) error {
	return s.wal.Append([]byte(r.Kind))
}

// viaHelper journals through the helper; the early mutation still counts.
func (s *store) viaHelper(id string) error {
	s.jobs[id] = &entry{state: "queued"} // want `viaHelper mutates s\.jobs\[\.\.\.\] before its first WAL append \(line \d+\)`
	return s.appendRec(record{Kind: id})
}

// aliased follows a one-assignment-deep local alias back to the receiver.
func (s *store) aliased(id string) error {
	e := s.jobs[id]
	e.tries++ // want `aliased mutates e\.tries before its first WAL append \(line \d+\)`
	return s.appendRec(record{Kind: id})
}

// memoryOnly is clean: it never journals, so there is no record to order
// against (scheduling state is deliberately memory-only).
func (s *store) memoryOnly(id string) {
	s.seq++
	delete(s.jobs, id)
}

// localOnly is clean: the slice header is function-local state, not
// receiver-reachable.
func (s *store) localOnly(id string) error {
	tmp := make([]int, 0, 4)
	tmp = append(tmp, len(id))
	_ = tmp
	return s.appendRec(record{Kind: id})
}

// paramMutation mutates a program-typed pointer param before appending.
func (s *store) paramMutation(e *entry, id string) error {
	e.state = "running" // want `paramMutation mutates e\.state before its first WAL append \(line \d+\)`
	return s.appendRec(record{Kind: id})
}

// afterAppend is clean: every mutation follows the journal record.
func (s *store) afterAppend(e *entry, id string) error {
	if err := s.appendRec(record{Kind: id}); err != nil {
		return err
	}
	e.state = "running"
	s.seq++
	return nil
}
