// Package ctxloop is the ctx-loop fixture: outermost loops doing real work
// in a context-taking function must consult the context.
package ctxloop

import (
	"context"
	"strconv"
	"strings"
	"time"
)

func crunch(x int) int { return x * x }

// Bad never consults ctx even though the loop calls into real work.
func Bad(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs { // want `accepts a context.Context but this loop never consults it`
		s += crunch(x)
	}
	return s
}

// BadFor is the three-clause spelling of the same mistake.
func BadFor(ctx context.Context, n int) int {
	s := 0
	for i := 0; i < n; i++ { // want `accepts a context.Context but this loop never consults it`
		s += crunch(i)
	}
	return s
}

// ChecksErr consults ctx.Err each iteration: clean.
func ChecksErr(ctx context.Context, xs []int) (int, error) {
	s := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s += crunch(x)
	}
	return s, nil
}

// PassesCtx hands ctx to the callee, which owns the cancellation check.
func PassesCtx(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += crunchCtx(ctx, x)
	}
	return s
}

func crunchCtx(ctx context.Context, x int) int {
	if ctx.Err() != nil {
		return 0
	}
	return crunch(x)
}

// InnerLoop only needs the check in the outermost loop; the inner mat-vec
// style loop amortizes into it.
func InnerLoop(ctx context.Context, m [][]int) (int, error) {
	s := 0
	for _, row := range m {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, x := range row {
			s += crunch(x)
		}
	}
	return s, nil
}

// NoWork loops are exempt: straight-line arithmetic has bounded latency.
func NoWork(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x * x
	}
	return s
}

// FormattingOnly loops are exempt: fmt/strings/strconv/errors calls and
// conversions are not work.
func FormattingOnly(ctx context.Context, xs []int) string {
	var parts []string
	for _, x := range xs {
		parts = append(parts, strconv.Itoa(int(int64(x))))
	}
	return strings.Join(parts, ",")
}

// NoCtx takes no context, so no loop is checked.
func NoCtx(xs []int) int {
	s := 0
	for _, x := range xs {
		s += crunch(x)
	}
	return s
}

// SleepyPoll consults ctx, but the sleep itself is uncancellable — the
// claim-polling mistake: Ctrl-C stalls for the full nap.
func SleepyPoll(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		if ctx.Err() != nil {
			return s
		}
		s += crunch(x)
		time.Sleep(time.Millisecond) // want `time.Sleep in a loop ignores it`
	}
	return s
}

// SleepyInner hides the nap one loop down (a renewal loop inside a claim
// loop); depth does not excuse it.
func SleepyInner(ctx context.Context, m [][]int) (int, error) {
	s := 0
	for _, row := range m {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for range row {
			time.Sleep(time.Millisecond) // want `time.Sleep in a loop ignores it`
			s++
		}
	}
	return s, nil
}

// TimerSelect paces the same loop cancellably: clean.
func TimerSelect(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		t := time.NewTimer(time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return s
		case <-t.C:
		}
		s += crunch(x)
	}
	return s
}

// SleepOutsideLoop is allowed: a one-off settle delay before the loop is
// not a polling nap.
func SleepOutsideLoop(ctx context.Context, xs []int) (int, error) {
	time.Sleep(time.Millisecond)
	s := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s += crunch(x)
	}
	return s, nil
}

// SleeperNoCtx has no context to honour; pacing with Sleep is its business.
func SleeperNoCtx(xs []int) int {
	s := 0
	for _, x := range xs {
		time.Sleep(time.Millisecond)
		s += crunch(x)
	}
	return s
}
