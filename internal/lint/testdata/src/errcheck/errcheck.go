// Package errcheck is the errcheck fixture: error results discarded in
// statement position are flagged; fmt, Builder/Buffer, defer, and explicit
// discards are not.
package errcheck

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, nil }

func noError() int { return 1 }

func Use() {
	mayFail()    // want `error result discarded`
	twoResults() // want `error result discarded`

	go mayFail() // want `error result discarded`

	_ = mayFail() // explicit discard: clean
	if err := mayFail(); err != nil {
		_ = err
	}
	v, err := twoResults() // assigned: clean
	_, _ = v, err

	noError() // no error result: clean

	fmt.Println("terminal output is exempt")

	var b strings.Builder
	b.WriteString("always-nil error: exempt")
	var buf bytes.Buffer
	buf.WriteByte('x')

	defer mayFail() // defer is exempt (read-path cleanup convention)
}
