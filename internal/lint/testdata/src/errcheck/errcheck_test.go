package errcheck

// _test.go files are exempt from errcheck.
func sloppy() {
	mayFail()
}
