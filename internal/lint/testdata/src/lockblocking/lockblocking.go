// Fixture for the lock-blocking rule: may-block calls inside mutex
// critical sections, the *Locked caller-holds convention, and the
// deadlock cases (direct re-lock and re-lock through a callee).
package lockblocking

import (
	"sync"
	"time"

	"fix/journal"
)

type server struct {
	mu  sync.Mutex
	wal *journal.Journal
	n   int
}

// sleepy blocks (time.Sleep) while holding s.mu.
func (s *server) sleepy() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `sleepy may block while holding s\.mu \(locked at line \d+\).*time\.Sleep`
	s.mu.Unlock()
}

// walWrite reaches the persist layer under the lock; the first site is
// reported with a count of the rest.
func (s *server) walWrite() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.wal.Append(nil) // want `walWrite may block while holding s\.mu .*persist write.*\+1 more blocking site`
	_ = s.wal.Append(nil)
}

// outside is clean: the blocking work happens after the unlock.
func (s *server) outside() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
	_ = s.wal.Append(nil)
}

// chanUnderLock blocks on a channel receive inside the critical section.
func (s *server) chanUnderLock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-ch // want `chanUnderLock may block while holding s\.mu .*channel receive`
}

// guarded is clean: a select with a default never blocks.
func (s *server) guarded(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-ch:
	default:
	}
}

// flushLocked follows the *Locked convention: it is analyzed as holding
// its caller's lock, so its own blocking call is the finding — and the
// caller below is not re-reported for calling it.
func (s *server) flushLocked() {
	_ = s.wal.Append(nil) // want `flushLocked runs under its caller's lock .*persist write`
}

// flush is clean at the call site: the finding lives inside flushLocked.
func (s *server) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

// relock re-acquires the mutex it already holds.
func (s *server) relock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `relock locks s\.mu while already holding it .*guaranteed self-deadlock`
	s.n++
	s.mu.Unlock()
}

// lockedHelper takes the lock itself (no *Locked suffix: it is honest
// about locking, which is what trips its callers).
func (s *server) lockedHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// indirect deadlocks through a callee that re-acquires the held mutex.
func (s *server) indirect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockedHelper() // want `indirect calls .*lockedHelper which re-acquires s\.mu already held .*guaranteed deadlock`
}
