// Package scopedobs is the scoped-obs fixture: an instrumented package must
// emit telemetry through the ctx-scope-aware obs helpers or Scope methods,
// and may not grab the default registry. The obs package here is the
// fix/obs stand-in; the test binds the rule to this path.
package scopedobs

import (
	"context"

	"fix/obs"
)

func Use(ctx context.Context, sc *obs.Scope) {
	obs.IncCtx(ctx, "scopedobs.good.total")
	obs.AddCtx(ctx, "scopedobs.good.bytes", 1)
	obs.ObserveCtx(ctx, "scopedobs.good.wall_ns", 1.0)
	obs.StartSpanCtx(ctx, "scopedobs.phase")
	obs.LogCtx(ctx, "scoped log lines are fine")
	obs.Probe("scopedobs.sweep").IterCtx(ctx, 7)
	sc.Inc("scopedobs.scoped.total") // Scope methods name their destination: clean
	sc.ObserveHistDuration("scopedobs.lat_ns", 1)

	obs.Inc("scopedobs.total")           // want `use obs.IncCtx`
	obs.Add("scopedobs.bytes", 1)        // want `use obs.AddCtx`
	obs.Observe("scopedobs.t_ns", 1.0)   // want `use obs.ObserveCtx`
	obs.StartSpan("scopedobs.phase")     // want `use obs.StartSpanCtx`
	obs.Logf("unattributed log line")    // want `use obs.LogCtx`
	obs.Probe("scopedobs.sweep").Iter(7) // want `use IterCtx`
	obs.Default().Inc("scopedobs.raw")   // want `obs.Default\(\) outside internal/obs and CLI wiring`
}
