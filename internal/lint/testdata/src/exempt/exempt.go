// Package exempt exercises the Exempt path lists of persist-writes and
// time-now: loaded as fix/exempt, it is clean when that path is exempt and
// dirty otherwise. It deliberately carries no want annotations — the test
// asserts both configurations explicitly.
package exempt

import (
	"os"
	"time"
)

func Touch(path string) (time.Time, error) {
	stamp := time.Now()
	f, err := os.Create(path)
	if err != nil {
		return stamp, err
	}
	return stamp, f.Close()
}
