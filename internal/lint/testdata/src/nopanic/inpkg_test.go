package nopanic

// In-package test files are exempt from no-panic.
func mustPositive(n int) int {
	if n <= 0 {
		panic("test helper")
	}
	return n
}
