// Package nopanic is the no-panic fixture: the builtin panic is flagged in
// library code; shadowed identifiers named panic are not.
package nopanic

func Croak(n int) int {
	if n < 0 {
		panic("negative length") // want `panic in library code`
	}
	return n
}

func Shadowed() {
	panic := func() {}
	panic() // a local closure, not the builtin: clean
}
