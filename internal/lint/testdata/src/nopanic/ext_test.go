package nopanic_test

import "fix/nopanic"

// External test packages are exempt from no-panic too.
func mustCroak(n int) int {
	if nopanic.Croak(n) != n {
		panic("impossible")
	}
	return n
}
