package metricname

import "fix/obs"

// _test.go files are exempt: tests may register throwaway metric names.
func emit(name string) {
	obs.Inc(name)
}
