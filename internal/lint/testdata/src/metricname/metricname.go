// Package metricname is the metric-name fixture: metric names must be
// compile-time constants matching the pkg.name_unit convention. The obs
// package here is the fix/obs stand-in.
package metricname

import (
	"context"

	"fix/obs"
)

const prefix = "metricname."

func Use(name string, reg *obs.Registry) {
	UseCtx(context.Background(), name)
	obs.Inc("metricname.good.total")
	obs.Inc("core." + "folded") // constant expressions fold: clean
	obs.Inc(prefix + "hits")    // named constants fold too: clean

	obs.Inc("BadName")     // want `metric name "BadName" does not match the pkg.name_unit convention`
	obs.Inc("x.")          // want `metric name "x." does not match the pkg.name_unit convention`
	obs.Inc(name)          // want `obs.Inc metric name must be a compile-time string constant`
	obs.Observe(name, 1.0) // want `obs.Observe metric name must be a compile-time string constant`

	obs.Default().Observe("metricname.latency_ns", 1.0)
	obs.Default().Inc("Bad Name") // want `metric name "Bad Name" does not match the pkg.name_unit convention`
	reg.Inc(name)                 // want `obs.Inc metric name must be a compile-time string constant`

	obs.Probe("metricname.sweep_probe").Iter(7) // probe names share the convention; Iter's int is clean
	obs.Probe("linalg." + "lanczos")            // constant expressions fold: clean

	obs.Probe("NotAProbe") // want `metric name "NotAProbe" does not match the pkg.name_unit convention`
	obs.Probe(name)        // want `obs.Probe metric name must be a compile-time string constant`

	obs.StartSpan(name) // span names are free-form: clean
}

// UseFamily covers the bounded-family carve-out: a dynamic suffix under a
// declared family prefix is clean; anything else dynamic is not.
func UseFamily(kind string, reg *obs.Registry) {
	obs.Inc("metricname.family." + kind)       // declared family: clean
	reg.Inc("metricname.family." + kind)       // methods get the carve-out too: clean
	obs.Inc("metricname.other." + kind)        // want `obs.Inc metric name must be a compile-time string constant`
	obs.Inc("metricname.family" + kind)        // want `obs.Inc metric name must be a compile-time string constant`
	obs.Inc(kind + "metricname.family.")       // want `obs.Inc metric name must be a compile-time string constant`
	obs.Inc("metricname.family." + kind + "x") // left-leaning fold still finds the family: clean
}

// UseCtx covers the context-scoped variants: the metric name moves to
// argument index 1, after the ctx.
func UseCtx(ctx context.Context, name string) {
	obs.IncCtx(ctx, "metricname.good.total")
	obs.AddCtx(ctx, "core."+"folded", 1) // constant expressions fold: clean
	obs.ObserveCtx(ctx, prefix+"wall_ns", 1.0)

	obs.IncCtx(ctx, "BadCtxName")             // want `metric name "BadCtxName" does not match the pkg.name_unit convention`
	obs.AddCtx(ctx, name, 1)                  // want `obs.AddCtx metric name must be a compile-time string constant`
	obs.ObserveCtx(ctx, name, 1.0)            // want `obs.ObserveCtx metric name must be a compile-time string constant`
	obs.StartSpanCtx(ctx, name)               // span names are free-form: clean
	obs.Probe("metricname.s").IterCtx(ctx, 7) // IterCtx's leading args are ctx and an iteration: clean
}
