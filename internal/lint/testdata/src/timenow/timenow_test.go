package timenow

import "time"

// _test.go files are exempt: tests may time themselves.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
