// Package timenow is the time-now fixture: direct wall-clock reads are
// flagged; other time package functions are not.
package timenow

import "time"

func Stamp() time.Duration {
	start := time.Now()      // want `time.Now outside internal/obs`
	return time.Since(start) // want `time.Since outside internal/obs`
}

func Fine(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d) // non-clock time functions: clean
}
