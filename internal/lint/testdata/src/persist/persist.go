// Package persist is the persist-writes fixture: direct os write APIs are
// flagged, read-only opens are not.
package persist

import "os"

func Hit(path string, data []byte, flags int) error {
	f, err := os.Create(path) // want `os.Create bypasses internal/persist`
	if err != nil {
		return err
	}
	_ = f.Close()

	if err := os.WriteFile(path, data, 0o644); err != nil { // want `os.WriteFile bypasses internal/persist`
		return err
	}

	g, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644) // want `os.OpenFile bypasses internal/persist`
	if err != nil {
		return err
	}
	_ = g.Close()

	h, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644) // want `os.OpenFile bypasses internal/persist`
	if err != nil {
		return err
	}
	_ = h.Close()

	// Unprovable flags are conservatively treated as a write.
	u, err := os.OpenFile(path, flags, 0o644) // want `os.OpenFile bypasses internal/persist`
	if err != nil {
		return err
	}
	return u.Close()
}

func Clean(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_ = f.Close()

	r, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	return r.Close()
}
