package persist

import "os"

// _test.go files are NOT exempt from persist-writes: tests that bypass
// persist must carry a suppression with a reason.
func tamper(path string) error {
	return os.WriteFile(path, []byte("x"), 0o644) // want `os.WriteFile bypasses internal/persist`
}
