// Fixture for the goroutine-join rule: every go statement must be joined
// (WaitGroup.Done, channel send or close on some path) or cancellable (a
// ctx reaches the spawned function).
package goroutinejoin

import (
	"context"
	"sync"
)

func fire() {}

func fireCtx(ctx context.Context) {}

// orphan spawns work nothing can stop or wait for.
func orphan() {
	go fire() // want `goroutine spawned by orphan is neither joined .* nor cancellable`
}

// joined is clean: the literal signals a WaitGroup.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fire()
	}()
	wg.Wait()
}

// doneChannel is clean: closing the channel is the join signal.
func doneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fire()
	}()
	return done
}

// cancellable is clean: the ctx reaches the spawned function.
func cancellable(ctx context.Context) {
	go fireCtx(ctx)
}

// orphanLiteral spawns a literal that neither signals nor sees a ctx.
func orphanLiteral() {
	go func() { // want `goroutine spawned by orphanLiteral is neither joined .* nor cancellable`
		fire()
	}()
}
