// Package journal is the fixture stand-in for the persist package: the
// fixture harness builds its Programs with persist path "fix/journal", so
// calls into this package classify as persist writes and Journal.Append
// is the WAL append the wal-order rule keys on.
package journal

// Journal is the fixture WAL.
type Journal struct {
	n int
}

// Append journals one record.
func (j *Journal) Append(rec []byte) error {
	j.n++
	return nil
}

// Close closes the journal.
func (j *Journal) Close() error { return nil }
