// Package floateq is the float-eq fixture: raw ==/!= on float operands is
// flagged; the NaN self-comparison idiom and integer comparisons are not.
package floateq

func Cmp(a, b float64, i, j int) bool {
	if a == b { // want `== on floating-point operands is exact bit equality`
		return true
	}
	if a != b { // want `!= on floating-point operands is exact bit equality`
		return false
	}
	if a != a { // NaN idiom: clean
		return false
	}
	if a == float64(i) { // want `== on floating-point operands is exact bit equality`
		return true
	}
	return i == j // integers: clean
}

func Cmp32(x, y float32) bool {
	return x == y // want `== on floating-point operands is exact bit equality`
}
