package floateq

// _test.go files are exempt: golden tests may assert bit-identical floats.
func goldenEqual(a, b float64) bool {
	return a == b
}
