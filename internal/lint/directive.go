package lint

import (
	"go/token"
	"strings"
)

// directivePrefix is the suppression comment form:
//
//	//lint:ignore <rule> <reason>
//
// A trailing directive suppresses matching diagnostics on its own line; a
// whole-line directive suppresses them on the next source line that holds
// code. The reason is mandatory and the rule must exist in the active set.
const directivePrefix = "//lint:ignore"

type directive struct {
	rule   string
	reason string
	file   string
	line   int // line the comment starts on
	col    int
	target int // line whose diagnostics it suppresses
	used   bool
}

// applyDirectives filters raw diagnostics through the //lint:ignore
// directives of the package and appends the meta diagnostics: malformed or
// unknown-rule directives (rule "directive") and directives that suppressed
// nothing (rule "unused-suppression"). active holds the rules that ran;
// catalog holds every name a directive may legally reference. A directive
// for a cataloged rule that is not active is inert: it suppresses nothing
// and is not reported as unused (its rule never got the chance to fire).
func applyDirectives(p *Package, raw []Diagnostic, active, catalog map[string]bool) []Diagnostic {
	var out []Diagnostic
	var dirs []*directive
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		lines := p.Src[filename]
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Slash)
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignoreXY — not the directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					out = append(out, metaDiag(pos, DirectiveRule,
						"malformed directive: want //lint:ignore <rule> <reason>"))
					continue
				}
				rule := fields[0]
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), rule))
				if reason == "" {
					out = append(out, metaDiag(pos, DirectiveRule,
						"//lint:ignore "+rule+" needs a reason: //lint:ignore <rule> <reason>"))
					continue
				}
				if rule == DirectiveRule || rule == UnusedSuppRule || !catalog[rule] {
					out = append(out, metaDiag(pos, DirectiveRule,
						"//lint:ignore names unknown rule \""+rule+"\""))
					continue
				}
				if !active[rule] {
					continue
				}
				dirs = append(dirs, &directive{
					rule:   rule,
					reason: reason,
					file:   pos.Filename,
					line:   pos.Line,
					col:    pos.Column,
					target: directiveTarget(lines, pos),
				})
			}
		}
	}
	for _, d := range raw {
		suppressed := false
		for _, dir := range dirs {
			if dir.rule == d.Rule && dir.file == d.File && dir.target == d.Line {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			out = append(out, Diagnostic{
				Rule:     UnusedSuppRule,
				Severity: SeverityError,
				File:     dir.file,
				Line:     dir.line,
				Col:      dir.col,
				Message: "//lint:ignore " + dir.rule +
					" suppresses nothing — remove it or fix the directive",
			})
		}
	}
	return out
}

func metaDiag(pos token.Position, rule, msg string) Diagnostic {
	return Diagnostic{Rule: rule, Severity: SeverityError, File: pos.Filename, Line: pos.Line, Col: pos.Column, Message: msg}
}

// directiveTarget decides which source line a directive governs: its own
// line when the comment trails code, otherwise the next line that carries
// code (blank and comment-only lines are skipped).
func directiveTarget(lines []string, pos token.Position) int {
	if pos.Line-1 < len(lines) {
		before := strings.TrimSpace(lines[pos.Line-1][:pos.Column-1])
		if before != "" {
			return pos.Line
		}
	}
	for i := pos.Line; i < len(lines); i++ { // lines[i] is source line i+1
		t := strings.TrimSpace(lines[i])
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		return i + 1
	}
	return pos.Line
}
