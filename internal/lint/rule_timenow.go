package lint

import (
	"go/ast"
)

// TimeNow keeps wall-clock reads behind internal/obs: solvers and the
// harness call obs.Now/obs.Since so that every duration they record is
// visible to the metrics layer and can be driven by an injected clock in
// fault tests (obs.SetClock). Direct time.Now and time.Since anywhere else
// defeat both. _test.go files are exempt — tests may time themselves.
type TimeNow struct {
	// Exempt lists import paths (subtrees included) allowed to read the
	// real clock.
	Exempt []string
}

// NewTimeNow returns the rule with internal/obs exempt.
func NewTimeNow() *TimeNow {
	return &TimeNow{Exempt: []string{"graphio/internal/obs"}}
}

func (*TimeNow) Name() string { return "time-now" }

func (*TimeNow) Doc() string {
	return "wall-clock reads go through obs.Now/obs.Since so timing stays observable and clock-injectable"
}

var timeClockFuncs = map[string]bool{"Now": true, "Since": true}

// Check implements Rule.
func (r *TimeNow) Check(p *Package, report Reporter) {
	if pathExempt(p.Path, r.Exempt) {
		return
	}
	for _, f := range p.Files {
		if isTestPos(p, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := isPkgFunc(p, sel, "time", timeClockFuncs); ok {
				report(sel.Pos(), "time.%s outside internal/obs; use obs.%s so the reading is observable and clock-injectable", name, name)
			}
			return true
		})
	}
}
