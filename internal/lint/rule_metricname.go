package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName keeps the obs metric namespace statically enumerable: every
// counter/gauge/timer/histogram/probe name handed to internal/obs must be a
// compile-time string constant matching the pkg.name_unit convention
// (lowercase package prefix, dot-separated lowercase_snake segments, e.g.
// "linalg.matvec_ns" or "core.fallback.total"). cmd/obsreport and the
// Prometheus /metrics endpoint rely on being able to list every metric the
// binary can emit by reading the source. Constant expressions fold —
// "core." + "best" is fine; a name built from a runtime variable is not,
// with one carve-out: a dynamic name whose constant leading prefix is a
// declared bounded family ("core.best." + method) is accepted, because the
// family's members are a small closed set enumerable from the declaring
// package (solver methods, fallback kinds, job terminal states).
// The obs package itself and _test.go files are exempt.
type MetricName struct {
	// ObsPath is the import path of the metrics package.
	ObsPath string
	// Pattern is the convention names must match.
	Pattern *regexp.Regexp
	// Families lists the bounded-family prefixes (each ending in ".")
	// under which a dynamic suffix is allowed. Keep this list short and
	// each family's member set closed: every entry is namespace the
	// obsreport enumeration cannot see through.
	Families []string
}

// MetricNamePattern is the pkg.name_unit convention: at least two
// dot-separated segments, leading lowercase package segment, snake_case
// tails.
var MetricNamePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9_]+)+$`)

// MetricFamilies are the repo's declared bounded families: dynamic metric
// names are legal only under these prefixes. Members are closed sets —
// bound methods (core/best.go), escalation fallback kinds (core/core.go),
// the experiments runner registry (experiments/runall.go), and graphiod's
// job failure kinds (graphiod/job.go).
var MetricFamilies = []string{
	"core.best.",
	"core.fallback.",
	"experiments.",
	"serve.fail.",
	"serve.jobs.",
}

// NewMetricName returns the rule bound to graphio/internal/obs.
func NewMetricName() *MetricName {
	return &MetricName{ObsPath: "graphio/internal/obs", Pattern: MetricNamePattern, Families: MetricFamilies}
}

func (*MetricName) Name() string { return "metric-name" }

func (*MetricName) Doc() string {
	return "obs metric names are compile-time constants matching pkg.name_unit so obsreport can enumerate them"
}

// metricFuncs are the obs entry points that take a metric name, mapped to
// the argument index the name sits at: 0 for the classic helpers and the
// Registry/Scope methods, 1 for the context-scoped variants whose first
// argument is the ctx. Span and log names (StartSpan, Logf) are free-form
// and excluded. Probe names share the namespace — obsreport convergence
// groups events by probe — so obs.Probe is included; ProbeRef.Iter and
// IterCtx are not, their leading arguments being ctx/iteration numbers.
var metricFuncs = map[string]int{
	"Add": 0, "Inc": 0, "Counter": 0,
	"SetGauge": 0, "Gauge": 0,
	"Observe": 0, "Time": 0,
	"ObserveHist": 0, "ObserveHistDuration": 0, "TimeHist": 0, "Hist": 0,
	"Probe":  0,
	"AddCtx": 1, "IncCtx": 1, "SetGaugeCtx": 1,
	"ObserveCtx": 1, "TimeCtx": 1,
	"ObserveHistCtx": 1, "ObserveHistDurationCtx": 1, "TimeHistCtx": 1,
}

// Check implements Rule.
func (r *MetricName) Check(p *Package, report Reporter) {
	if pathExempt(p.Path, []string{r.ObsPath}) {
		return
	}
	for _, f := range p.Files {
		if isTestPos(p, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, idx, ok := r.metricCall(p, call)
			if !ok || idx >= len(call.Args) {
				return true
			}
			tv, ok := p.Info.Types[call.Args[idx]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				if prefix, ok := r.constPrefix(p, call.Args[idx]); ok && r.family(prefix) {
					return true // dynamic suffix under a declared bounded family
				}
				report(call.Pos(), "obs.%s metric name must be a compile-time string constant (or a declared bounded family prefix + suffix) so cmd/obsreport can enumerate it", name)
				return true
			}
			metric := constant.StringVal(tv.Value)
			if !r.Pattern.MatchString(metric) {
				report(call.Pos(), "metric name %q does not match the pkg.name_unit convention (%s)", metric, r.Pattern)
			}
			return true
		})
	}
}

// constPrefix returns the longest constant-folded leading prefix of a
// string concatenation: for `"serve.fail." + kind` it folds the left
// operand; a fully constant expression never reaches here (the caller
// already accepted it).
func (r *MetricName) constPrefix(p *Package, e ast.Expr) (string, bool) {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.ADD {
		return r.constPrefix(p, be.X)
	}
	return "", false
}

// family reports whether prefix exactly names a declared bounded family.
// Exact match, not HasPrefix: "serve.fail" + kind would silently merge two
// namespaces, and "serve.fail.x." + kind would hide a new family.
func (r *MetricName) family(prefix string) bool {
	for _, f := range r.Families {
		if prefix == f && strings.HasSuffix(f, ".") {
			return true
		}
	}
	return false
}

// metricCall reports whether call targets an obs metric entry point —
// either a package-level function of ObsPath or a method on its Registry
// or Scope — and returns the function name plus the metric-name argument
// index.
func (r *MetricName) metricCall(p *Package, call *ast.CallExpr) (string, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return "", 0, false
	}
	idx, known := metricFuncs[obj.Name()]
	if !known {
		return "", 0, false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == r.ObsPath {
		// Methods never take a ctx, so the name is always the receiver-side
		// first argument even when the package-level helper of the same base
		// name would look further in.
		if _, isMethod := p.Info.Selections[sel]; isMethod {
			idx = 0
		}
		return obj.Name(), idx, true
	}
	// Method on a Registry or Scope value obtained from obs (e.g.
	// obs.Default().Inc): the selection's receiver type lives in ObsPath.
	if s, ok := p.Info.Selections[sel]; ok {
		t := s.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			o := named.Obj()
			if o != nil && o.Pkg() != nil && o.Pkg().Path() == r.ObsPath {
				return obj.Name(), 0, true
			}
		}
	}
	return "", 0, false
}
