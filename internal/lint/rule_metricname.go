package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// MetricName keeps the obs metric namespace statically enumerable: every
// counter/gauge/timer/histogram/probe name handed to internal/obs must be a
// compile-time string constant matching the pkg.name_unit convention
// (lowercase package prefix, dot-separated lowercase_snake segments, e.g.
// "linalg.matvec_ns" or "core.fallback.total"). cmd/obsreport and the
// Prometheus /metrics endpoint rely on being able to list every metric the
// binary can emit by reading the source. Constant expressions fold —
// "core." + "best" is fine; a name built from a runtime variable is not.
// The obs package itself and _test.go files are exempt.
type MetricName struct {
	// ObsPath is the import path of the metrics package.
	ObsPath string
	// Pattern is the convention names must match.
	Pattern *regexp.Regexp
}

// MetricNamePattern is the pkg.name_unit convention: at least two
// dot-separated segments, leading lowercase package segment, snake_case
// tails.
var MetricNamePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9_]+)+$`)

// NewMetricName returns the rule bound to graphio/internal/obs.
func NewMetricName() *MetricName {
	return &MetricName{ObsPath: "graphio/internal/obs", Pattern: MetricNamePattern}
}

func (*MetricName) Name() string { return "metric-name" }

func (*MetricName) Doc() string {
	return "obs metric names are compile-time constants matching pkg.name_unit so obsreport can enumerate them"
}

// metricFuncs are the obs entry points whose first argument is a metric
// name. Span and log names (StartSpan, Logf) are free-form and excluded.
// Probe names share the namespace — obsreport convergence groups events by
// probe — so obs.Probe is included; ProbeRef.Iter is not, its first
// argument being an iteration number.
var metricFuncs = map[string]bool{
	"Add": true, "Inc": true, "Counter": true,
	"SetGauge": true, "Gauge": true,
	"Observe": true, "Time": true,
	"ObserveHist": true, "ObserveHistDuration": true, "TimeHist": true, "Hist": true,
	"Probe": true,
}

// Check implements Rule.
func (r *MetricName) Check(p *Package, report Reporter) {
	if pathExempt(p.Path, []string{r.ObsPath}) {
		return
	}
	for _, f := range p.Files {
		if isTestPos(p, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, ok := r.metricCall(p, call)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				report(call.Pos(), "obs.%s metric name must be a compile-time string constant so cmd/obsreport can enumerate it", name)
				return true
			}
			metric := constant.StringVal(tv.Value)
			if !r.Pattern.MatchString(metric) {
				report(call.Pos(), "metric name %q does not match the pkg.name_unit convention (%s)", metric, r.Pattern)
			}
			return true
		})
	}
}

// metricCall reports whether call targets an obs metric entry point —
// either a package-level function of ObsPath or a method on its Registry —
// and returns the function name.
func (r *MetricName) metricCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || !metricFuncs[obj.Name()] {
		return "", false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == r.ObsPath {
		return obj.Name(), true
	}
	// Method on a Registry value obtained from obs (e.g. obs.Default().Inc):
	// the selection's receiver type lives in ObsPath.
	if s, ok := p.Info.Selections[sel]; ok {
		t := s.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			o := named.Obj()
			if o != nil && o.Pkg() != nil && o.Pkg().Path() == r.ObsPath {
				return obj.Name(), true
			}
		}
	}
	return "", false
}
