// Package lint is graphiolint: a stdlib-only static analyzer that enforces
// the repo's cross-cutting correctness invariants — the rules that earlier
// PRs established by convention but nothing checked mechanically:
//
//   - persist-writes: artifact writes go through internal/persist, never
//     raw os.Create / os.WriteFile / write-mode os.OpenFile.
//   - ctx-loop: a function that accepts a context.Context must consult it
//     (ctx.Err(), ctx.Done(), or passing ctx onward) inside each of its
//     outermost for loops, so cancellation keeps working as code evolves.
//   - float-eq: no == / != on floating-point operands; spectra and bounds
//     are compared with tolerances (linalg.EqTol), never bit equality.
//   - no-panic: library packages return typed errors instead of panicking;
//     package main and _test.go files are exempt.
//   - time-now: direct time.Now / time.Since only inside internal/obs, so
//     all timing stays observable and clock-injectable (obs.Now, obs.Since).
//   - metric-name: obs metric names are compile-time constants matching the
//     pkg.name_unit convention, so cmd/obsreport can enumerate them
//     statically.
//   - errcheck: error results are not silently discarded in statement
//     position (fmt, strings.Builder/bytes.Buffer writes and deferred
//     cleanup are exempt).
//
// The analyzer is built only on go/parser, go/ast, go/types and
// go/importer: packages of this module are parsed and type-checked by a
// small loader (load.go) that resolves module-local imports from source and
// delegates the standard library to importer.ForCompiler(..., "source", ...).
//
// Findings can be silenced in place with a directive comment that must name
// the rule and carry a reason:
//
//	//lint:ignore <rule> <reason>
//
// placed either on the offending line or on its own line immediately above
// the offending statement. A directive with no reason, naming an unknown
// rule, or matching no diagnostic is itself reported (rules "directive" and
// "unused-suppression"), so suppressions cannot rot silently.
//
// cmd/graphiolint is the CLI; `make lint` runs it over the whole module.
package lint
