package lint

import (
	"go/ast"
)

// ScopedObs keeps per-task telemetry attribution sound: inside the
// instrumented solver and harness packages, every metric, span, probe
// event, and log line must flow through the context-scope-aware obs
// helpers (AddCtx, IncCtx, StartSpanCtx, IterCtx, LogCtx, ...) or a Scope
// method, never the bare package helpers that only hit the process-wide
// default registry. Otherwise a sweep's per-experiment sections silently
// undercount while the totals stay right — the worst kind of telemetry
// bug, one no test of the totals catches. obs.Default() is likewise
// restricted to the obs package itself and CLI wiring; library code
// holding the raw default registry cannot be re-scoped later.
// _test.go files are exempt everywhere: tests may pin the registry they
// assert against.
type ScopedObs struct {
	// ObsPath is the import path of the telemetry package.
	ObsPath string
	// Instrumented lists the import paths (subtrees included) whose
	// non-test code must emit via ctx-scope-aware helpers.
	Instrumented []string
	// DefaultExempt lists the import paths (subtrees included) allowed to
	// call obs.Default() directly.
	DefaultExempt []string
}

// NewScopedObs returns the rule bound to graphio's instrumented layers.
// faultinject is deliberately not instrumented: its fault counters are
// process-level by design and stay on the bare helpers.
func NewScopedObs() *ScopedObs {
	return &ScopedObs{
		ObsPath: "graphio/internal/obs",
		Instrumented: []string{
			"graphio/internal/core",
			"graphio/internal/linalg",
			"graphio/internal/maxflow",
			"graphio/internal/mincut",
			"graphio/internal/pebble",
			"graphio/internal/redblue",
			"graphio/internal/experiments",
			"graphio/internal/graphiod",
		},
		DefaultExempt: []string{
			"graphio/internal/obs",
			"graphio/cmd",
		},
	}
}

func (*ScopedObs) Name() string { return "scoped-obs" }

func (*ScopedObs) Doc() string {
	return "instrumented packages emit telemetry via ctx-scope-aware obs helpers so per-task attribution stays sound"
}

// scopedAlt maps each banned package-level helper to its scope-aware
// replacement.
var scopedAlt = map[string]string{
	"Add": "AddCtx", "Inc": "IncCtx", "SetGauge": "SetGaugeCtx",
	"Observe": "ObserveCtx", "Time": "TimeCtx",
	"ObserveHist": "ObserveHistCtx", "ObserveHistDuration": "ObserveHistDurationCtx",
	"TimeHist":  "TimeHistCtx",
	"StartSpan": "StartSpanCtx", "Logf": "LogCtx",
}

// Check implements Rule.
func (r *ScopedObs) Check(p *Package, report Reporter) {
	instrumented := pathExempt(p.Path, r.Instrumented)
	defaultOK := pathExempt(p.Path, r.DefaultExempt)
	if !instrumented && defaultOK {
		return // nothing this rule could flag
	}
	for _, f := range p.Files {
		if isTestPos(p, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != r.ObsPath {
				return true
			}
			name := obj.Name()
			if name == "Default" && !defaultOK {
				report(call.Pos(), "obs.Default() outside internal/obs and CLI wiring; emit through the ctx-scope-aware helpers (or take a *obs.Scope) so the call site stays attributable")
				return true
			}
			if !instrumented {
				return true
			}
			if _, isMethod := p.Info.Selections[sel]; isMethod {
				// Scope and Registry methods already name their destination;
				// the one method that loses attribution is the probe handle's
				// scopeless Iter.
				if name == "Iter" {
					report(call.Pos(), "ProbeRef.Iter in an instrumented package loses scope attribution; use IterCtx with the request context")
				}
				return true
			}
			if alt, banned := scopedAlt[name]; banned {
				report(call.Pos(), "obs.%s in an instrumented package bypasses scope attribution; use obs.%s with the request context", name, alt)
			}
			return true
		})
	}
}
