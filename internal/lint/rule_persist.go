package lint

import (
	"go/ast"
)

// PersistWrites enforces the durability invariant from the persistence PR:
// every artifact write routes through internal/persist so it inherits the
// temp+fsync+rename protocol and the persist.* metrics. Direct os.Create,
// os.WriteFile, and write-mode os.OpenFile calls are flagged everywhere
// except the exempt packages (persist itself and the fault injector that
// wraps its files). _test.go files are NOT exempt: tests that bypass
// persist to simulate corruption must say so with a //lint:ignore reason.
type PersistWrites struct {
	// Exempt lists import paths (subtrees included) allowed to touch the
	// raw os write API.
	Exempt []string
}

// NewPersistWrites returns the rule with the repo's standard exemptions.
func NewPersistWrites() *PersistWrites {
	return &PersistWrites{Exempt: []string{
		"graphio/internal/persist",
		"graphio/internal/faultinject",
	}}
}

func (*PersistWrites) Name() string { return "persist-writes" }

func (*PersistWrites) Doc() string {
	return "artifact writes must go through internal/persist, not raw os.Create/os.WriteFile/os.OpenFile"
}

// writeFlagNames are the os.O_* constants that make an OpenFile call a
// write; os.O_RDONLY is 0 and never appears among them.
var writeFlagNames = map[string]bool{
	"O_WRONLY": true,
	"O_RDWR":   true,
	"O_APPEND": true,
	"O_CREATE": true,
	"O_TRUNC":  true,
}

var osWriteFuncs = map[string]bool{"Create": true, "WriteFile": true, "OpenFile": true}

// Check implements Rule.
func (r *PersistWrites) Check(p *Package, report Reporter) {
	if pathExempt(p.Path, r.Exempt) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := isPkgFunc(p, call.Fun, "os", osWriteFuncs)
			if !ok {
				return true
			}
			if name == "OpenFile" {
				if len(call.Args) < 2 || !openFlagsWrite(p, call.Args[1]) {
					return true
				}
			}
			report(call.Pos(), "os.%s bypasses internal/persist; use persist.WriteFileAtomic or persist.Writer for durable artifacts", name)
			return true
		})
	}
}

// openFlagsWrite reports whether the flags expression of an os.OpenFile
// call requests write access. A flags expression naming any write-mode
// os.O_* constant is a write; one naming only os.O_RDONLY is a read; one
// with no recognizable os.O_* identifiers is treated as a write because it
// cannot be proven read-only.
func openFlagsWrite(p *Package, flags ast.Expr) bool {
	write, sawFlag := false, false
	ast.Inspect(flags, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := useOf(p, sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
			return true
		}
		sawFlag = true
		if writeFlagNames[obj.Name()] {
			write = true
		}
		return true
	})
	return write || !sawFlag
}
