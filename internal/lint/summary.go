package lint

// summary.go computes the per-function summary facts the interprocedural
// rules consume: does a function accept or see a context, may it block
// (channel ops, net/net/http calls, persist writes, sync waits,
// time.Sleep), does it spawn goroutines, does it signal
// a join (WaitGroup.Done, channel send, close), does it append to the
// persist journal, and which mutex fields does it acquire. Direct facts
// come from one AST pass per function; call-mediated facts are propagated
// over the call graph to a fixpoint. Go edges never propagate blocking:
// the spawned work runs on another goroutine.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultPersistPath is the module's durability package; calls into it are
// classified as blocking writes and its Journal.Append is the WAL append
// the wal-order rule keys on. Fixtures override it via NewProgramWith.
const DefaultPersistPath = "graphio/internal/persist"

// BlockOp is one non-call blocking operation in a function body.
type BlockOp struct {
	Pos    token.Pos
	Reason string
}

// Summary holds the interprocedural facts of one FuncNode.
type Summary struct {
	AcceptsCtx  bool // has a context.Context parameter
	CtxInScope  bool // AcceptsCtx, or a literal nested in a function that has one
	MentionsCtx bool // body references a context.Context-typed value

	Blocks      bool // may block the calling goroutine
	BlockReason string
	BlockPos    token.Pos
	BlockVia    string // callee name when blocking is call-mediated

	Spawns     bool // contains a go statement
	Signals    bool // signals a join: WaitGroup.Done, channel send, close
	AppendsWAL bool // transitively calls persist Journal.Append

	// Acquires maps mutex keys (see mutexKey) this function locks, directly
	// or transitively. Local-variable mutexes stay function-local and are
	// not propagated.
	Acquires map[string]bool

	// BlockOps lists the function's own non-call blocking operations.
	BlockOps []BlockOp
}

// summarize computes direct facts, then propagates to a fixpoint.
func (pr *Program) summarize() {
	for _, p := range pr.Packages {
		for _, n := range pr.perPkg[p] {
			pr.directFacts(n)
		}
	}
	// Context scope flows from enclosing functions into literals.
	for _, n := range pr.Funcs {
		s := &n.Summary
		s.CtxInScope = s.AcceptsCtx
		for a := n.Parent; a != nil && !s.CtxInScope; a = a.Parent {
			s.CtxInScope = a.Summary.AcceptsCtx
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range pr.Funcs {
			if pr.propagate(n) {
				changed = true
			}
		}
	}
}

// funcTypeAcceptsCtx reports whether the ast function type has a
// context.Context parameter.
func funcTypeAcceptsCtx(p *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := p.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// ownNodes visits the AST nodes belonging to n itself, stopping at nested
// function literals (they are their own nodes).
func ownNodes(n *FuncNode, visit func(ast.Node) bool) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x == nil {
			return false
		}
		return visit(x)
	})
}

// directFacts fills the facts visible in n's own body.
func (pr *Program) directFacts(n *FuncNode) {
	p := n.Pkg
	s := &n.Summary
	s.Acquires = make(map[string]bool)
	if n.Decl != nil {
		s.AcceptsCtx = funcTypeAcceptsCtx(p, n.Decl.Type)
	} else {
		s.AcceptsCtx = funcTypeAcceptsCtx(p, n.Lit.Type)
	}

	// Comm statements guarded by a select with a default clause do not
	// block; collect them so the op walk below can skip them.
	guarded := make(map[ast.Stmt]bool)
	ownNodes(n, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				guarded[cc.Comm] = true
			}
		}
		return true
	})

	addOp := func(pos token.Pos, reason string) {
		s.BlockOps = append(s.BlockOps, BlockOp{Pos: pos, Reason: reason})
	}
	ownNodes(n, func(x ast.Node) bool {
		switch op := x.(type) {
		case *ast.GoStmt:
			s.Spawns = true
		case *ast.SendStmt:
			s.Signals = true
			if !guarded[op] {
				addOp(op.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if op.Op == token.ARROW {
				if st := enclosingCommStmt(op, guarded); !st {
					addOp(op.Pos(), "channel receive")
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range op.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				addOp(op.Pos(), "blocking select")
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[op.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					addOp(op.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			pr.directCallFacts(n, op)
		case *ast.Ident:
			if obj := p.Info.Uses[x.(*ast.Ident)]; obj != nil && isContextType(obj.Type()) {
				s.MentionsCtx = true
			}
		}
		return true
	})
	if len(s.BlockOps) > 0 {
		s.Blocks = true
		s.BlockReason = s.BlockOps[0].Reason
		s.BlockPos = s.BlockOps[0].Pos
	}
}

// enclosingCommStmt reports whether the receive expr is itself (part of) a
// guarded select comm statement. A positional containment check suffices:
// guarded comm statements are single receive/send statements.
func enclosingCommStmt(e *ast.UnaryExpr, guarded map[ast.Stmt]bool) bool {
	for st := range guarded {
		if st.Pos() <= e.Pos() && e.End() <= st.End() {
			return true
		}
	}
	return false
}

// directCallFacts classifies one call in n's own body: close() and
// WaitGroup.Done are join signals; Mutex/RWMutex Lock calls record an
// acquire. External blocking calls are handled in propagate via the edges.
func (pr *Program) directCallFacts(n *FuncNode, call *ast.CallExpr) {
	p := n.Pkg
	s := &n.Summary
	fun := unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, isB := p.Info.Uses[id].(*types.Builtin); isB && b.Name() == "close" {
			s.Signals = true
		}
		return
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := selectedFunc(p, sel)
	if fn == nil {
		return
	}
	switch syncMethod(fn) {
	case "WaitGroup.Done":
		s.Signals = true
	case "Mutex.Lock", "RWMutex.Lock", "RWMutex.RLock":
		if key := mutexKey(p, sel.X); key != "" {
			s.Acquires[key] = true
		}
	}
	if isJournalAppend(fn, pr.PersistPath) {
		s.AppendsWAL = true
	}
}

// selectedFunc resolves the method or function a selector call refers to.
func selectedFunc(p *Package, sel *ast.SelectorExpr) *types.Func {
	if s, ok := p.Info.Selections[sel]; ok {
		fn, _ := s.Obj().(*types.Func)
		return fn
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	return fn
}

// syncMethod returns "Type.Method" when fn is a method of a sync package
// type, else "".
func syncMethod(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return ""
	}
	return named.Obj().Name() + "." + fn.Name()
}

// isJournalAppend reports whether fn is the persist journal's Append.
func isJournalAppend(fn *types.Func, persistPath string) bool {
	if fn.Name() != "Append" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == persistPath && obj.Name() == "Journal"
}

// extBlockReason classifies an external (outside the linted program)
// callee as blocking: net and net/http calls, os/exec, persist writes,
// time.Sleep, and sync waits. Plain mutex acquisition is deliberately NOT
// a blocking class — short critical sections are the normal case, and the
// deadlock-relevant part (re-acquiring a held mutex) is tracked separately
// through Summary.Acquires.
func extBlockReason(fn *types.Func, persistPath string) string {
	if fn.Pkg() == nil {
		return ""
	}
	switch path := fn.Pkg().Path(); {
	case path == "net" || path == "net/http" || strings.HasPrefix(path, "net/http/"):
		return "net call"
	case path == "os/exec":
		return "subprocess wait"
	case path == persistPath || strings.HasPrefix(path, persistPath+"/"):
		return "persist write"
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case path == "sync":
		switch syncMethod(fn) {
		case "WaitGroup.Wait", "Cond.Wait":
			return "sync wait"
		}
	}
	return ""
}

// persistBoundary reports whether a program node lives in the persist
// package (or a subpackage). Crossing INTO the durability layer is itself
// the blocking fact — its exported calls fsync — regardless of what the
// callee's own summary says, so callers classify as "persist write" at the
// boundary instead of inheriting whatever reason surfaced inside.
func (pr *Program) persistBoundary(t *FuncNode) bool {
	base := strings.TrimSuffix(t.Pkg.Path, "_test")
	return base == pr.PersistPath || strings.HasPrefix(base, pr.PersistPath+"/")
}

// EdgeBlocks reports whether following e may block the caller's
// goroutine, with a reason and the callee's display name. Go edges never
// block the caller.
func (pr *Program) EdgeBlocks(e *CallEdge) (reason, via string, ok bool) {
	if e.Kind == EdgeGo {
		return "", "", false
	}
	if e.Callee != nil {
		if pr.persistBoundary(e.Callee) {
			return "persist write", e.Callee.Name(), true
		}
		if cs := e.Callee.Summary; cs.Blocks {
			return cs.BlockReason, e.Callee.Name(), true
		}
		return "", "", false
	}
	for _, t := range e.Iface {
		if pr.persistBoundary(t) {
			return "persist write", t.Name(), true
		}
		if t.Summary.Blocks {
			return t.Summary.BlockReason, t.Name(), true
		}
	}
	if e.Fn != nil {
		if r := extBlockReason(e.Fn, pr.PersistPath); r != "" {
			return r, shortFuncName(funcID(e.Fn)), true
		}
	}
	return "", "", false
}

// propagate merges callee facts into n over its non-go edges; it reports
// whether anything changed.
func (pr *Program) propagate(n *FuncNode) bool {
	s := &n.Summary
	changed := false
	for _, e := range n.Edges {
		if e.Kind == EdgeGo {
			continue
		}
		if !s.Blocks {
			if reason, via, ok := pr.EdgeBlocks(e); ok {
				s.Blocks = true
				s.BlockReason = reason
				s.BlockVia = via
				s.BlockPos = e.Pos
				changed = true
			}
		}
		targets := e.Iface
		if e.Callee != nil {
			targets = []*FuncNode{e.Callee}
		}
		for _, t := range targets {
			ts := t.Summary
			if ts.Signals && !s.Signals && e.Kind != EdgePass {
				s.Signals = true
				changed = true
			}
			if ts.AppendsWAL && !s.AppendsWAL {
				s.AppendsWAL = true
				changed = true
			}
			for key := range ts.Acquires {
				if !strings.HasPrefix(key, "local:") && !s.Acquires[key] {
					s.Acquires[key] = true
					changed = true
				}
			}
		}
	}
	return changed
}

// mutexKey canonicalizes the expression a Lock call selects its mutex
// from: "(pkg.Type).field" for struct fields, "pkg.var" for package-level
// mutexes, "local:name" for function-local ones, "" when unrecognized.
func mutexKey(p *Package, recv ast.Expr) string {
	switch e := unparen(recv).(type) {
	case *ast.SelectorExpr:
		tv, ok := p.Info.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if ptr, okp := t.(*types.Pointer); okp {
			t = ptr.Elem()
		}
		if named, okn := t.(*types.Named); okn {
			obj := named.Obj()
			pkg := ""
			if obj.Pkg() != nil {
				pkg = obj.Pkg().Path()
			}
			return "(" + pkg + "." + obj.Name() + ")." + e.Sel.Name
		}
		// Qualified package-level mutex: pkg.mu.
		if obj, okb := p.Info.Uses[e.Sel]; okb && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			return ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return "local:" + e.Name
	}
	return ""
}
