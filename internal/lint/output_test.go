package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func sampleDiagnostics() []Diagnostic {
	return []Diagnostic{
		{Rule: "ctx-flow", Severity: SeverityError, File: "/mod/internal/a/a.go", Line: 10, Col: 2,
			Message: "run has a context in scope but calls step without forwarding it"},
		{Rule: "lock-blocking", Severity: SeverityWarn, File: "/mod/internal/b/b.go", Line: 42, Col: 5,
			Message: "flush may block while holding s.mu (locked at line 40): calls Sleep (time.Sleep)"},
	}
}

// TestWriteSARIFGolden pins the exact SARIF 2.1.0 bytes: code-scanning
// uploads parse this shape, so drift is a compatibility break, not a
// formatting choice. Regenerate deliberately with -update.
func TestWriteSARIFGolden(t *testing.T) {
	catalog := []RuleInfo{
		{Name: "ctx-flow", Doc: "context.Context must flow through the call graph, not be re-minted"},
		{Name: "lock-blocking", Doc: "no blocking calls while holding a mutex"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", catalog, sampleDiagnostics()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden", "sarif.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		//lint:ignore persist-writes golden regeneration is a developer action, not runtime persistence
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestCatalogInfoAppendsMetaRules(t *testing.T) {
	infos := CatalogInfo([]Rule{NewCtxFlow()})
	if len(infos) != 3 {
		t.Fatalf("CatalogInfo = %d entries, want rule + 2 meta rules", len(infos))
	}
	if infos[0].Name != "ctx-flow" || infos[1].Name != DirectiveRule || infos[2].Name != UnusedSuppRule {
		t.Errorf("catalog order = %v", infos)
	}
}

// TestBaselineRoundTrip: capture -> write -> load -> filter suppresses
// exactly the captured findings and keeps the excess.
func TestBaselineRoundTrip(t *testing.T) {
	ds := sampleDiagnostics()
	b := NewBaseline("/mod", ds)
	if len(b.Entries) != 2 {
		t.Fatalf("baseline entries = %d, want 2: %v", len(b.Entries), b.Entries)
	}
	for _, e := range b.Entries {
		if filepath.IsAbs(e.File) {
			t.Errorf("baseline entry file %q is not module-relative", e.File)
		}
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	//lint:ignore persist-writes round-trip scratch file in t.TempDir; durability machinery would only add fsync noise
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	kept, suppressed := loaded.Filter("/mod", ds)
	if suppressed != 2 || len(kept) != 0 {
		t.Errorf("filter over captured set: kept %v, suppressed %d; want all suppressed", kept, suppressed)
	}

	// A second occurrence of a baselined message exceeds its count budget.
	extra := append(append([]Diagnostic{}, ds...), ds[0])
	kept, suppressed = loaded.Filter("/mod", extra)
	if suppressed != 2 || len(kept) != 1 || kept[0].Rule != "ctx-flow" {
		t.Errorf("filter over excess: kept %v, suppressed %d; want the third finding kept", kept, suppressed)
	}

	// A new message is untouched by the baseline.
	fresh := Diagnostic{Rule: "ctx-flow", File: "/mod/internal/a/a.go", Line: 11, Col: 1, Message: "different message"}
	kept, _ = loaded.Filter("/mod", []Diagnostic{fresh})
	if len(kept) != 1 {
		t.Errorf("fresh finding was suppressed: %v", kept)
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("LoadBaseline on a missing file succeeded; -baseline is deliberate, so this must fail")
	}
}

// TestSeverityTiers: warn findings do not count toward the gate and render
// with the warning prefix.
func TestSeverityTiers(t *testing.T) {
	ds := sampleDiagnostics()
	if n := CountErrors(ds); n != 1 {
		t.Errorf("CountErrors = %d, want 1 (the warn finding is advisory)", n)
	}
	if s := ds[1].String(); !bytes.Contains([]byte(s), []byte("warning:")) {
		t.Errorf("warn diagnostic %q lacks the warning prefix", s)
	}
}
