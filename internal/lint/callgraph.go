package lint

// callgraph.go is the interprocedural layer of graphiolint v2: a
// module-local call graph built over the loaded go/types packages, with no
// dependencies outside the standard library. It resolves direct calls,
// method calls through the type info, go and defer statements, immediately
// invoked and passed function literals, and function values tracked one
// assignment deep. Interface method calls are devirtualized with class
// hierarchy analysis over the named types of the linted program, which is
// sound for a closed module: every implementation that can be behind the
// interface at runtime is one of the types the lint run loaded.
//
// Cross-unit identity is the one trap: a package type-checked as a lint
// unit and the same package type-checked for the import cache yield
// distinct types.Func objects. Nodes are therefore keyed by
// types.Func.FullName(), which is a stable string across units, never by
// object identity.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a call site transfers control.
type EdgeKind uint8

const (
	// EdgeCall is an ordinary call executed inline.
	EdgeCall EdgeKind = iota
	// EdgeDefer is a deferred call; it still runs on the caller's
	// goroutine, so blocking facts propagate across it.
	EdgeDefer
	// EdgeGo is a go statement; the callee runs on its own goroutine, so
	// blocking facts do NOT propagate, but goroutine-join inspects it.
	EdgeGo
	// EdgePass records a function literal handed to someone else (stored or
	// passed as an argument). The receiver may invoke it on this goroutine,
	// so blocking facts propagate conservatively.
	EdgePass
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDefer:
		return "defer"
	case EdgeGo:
		return "go"
	case EdgePass:
		return "pass"
	}
	return "?"
}

// CallEdge is one outgoing call site of a FuncNode.
type CallEdge struct {
	Kind EdgeKind
	Pos  token.Pos
	Call *ast.CallExpr // nil for EdgePass

	CalleeID string      // stable ID, "" when the callee could not be resolved
	Callee   *FuncNode   // node inside the program, nil for external callees
	Fn       *types.Func // declared callee object when known (external or not)
	Iface    []*FuncNode // CHA-devirtualized targets of an interface method call

	PassesCtx bool // some argument has static type context.Context
}

// FuncNode is one function, method or function literal in the program.
type FuncNode struct {
	ID     string
	Pkg    *Package
	Decl   *ast.FuncDecl // nil for literals
	Lit    *ast.FuncLit  // nil for declared functions
	Parent *FuncNode     // enclosing function for literals
	Edges  []*CallEdge

	Summary Summary
}

// Name returns a short human-readable name: the declared name, or
// parent$N for literals.
func (n *FuncNode) Name() string {
	return shortFuncName(n.ID)
}

// Body returns the function body, which may be nil for bodyless decls.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Root walks up to the enclosing declared function of a literal chain.
func (n *FuncNode) Root() *FuncNode {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Program is the interprocedural view over every lint unit of one run.
type Program struct {
	Packages []*Package
	Funcs    map[string]*FuncNode // keyed by stable ID

	// PersistPath is the durability package whose calls count as blocking
	// writes and whose Journal.Append is the WAL append.
	PersistPath string

	perPkg   map[*Package][]*FuncNode
	lits     map[*ast.FuncLit]*FuncNode
	litCount map[*FuncNode]int
	paths    map[string]bool // unit import paths ("_test" suffix trimmed)

	// rawCalls holds call sites recorded during the AST walk, resolved in a
	// second phase so forward references to function-literal values work.
	rawCalls []rawCall
}

type rawCall struct {
	p      *Package
	caller *FuncNode
	call   *ast.CallExpr
	kind   EdgeKind
}

// NewProgram builds the call graph and computes summaries to fixpoint
// with the module's default persist path.
func NewProgram(pkgs []*Package) *Program {
	return NewProgramWith(pkgs, DefaultPersistPath)
}

// NewProgramWith is NewProgram with an explicit persist package path;
// fixtures use it to stand in their own journal package.
func NewProgramWith(pkgs []*Package, persistPath string) *Program {
	pr := &Program{
		PersistPath: persistPath,
		Funcs:       make(map[string]*FuncNode),
		perPkg:      make(map[*Package][]*FuncNode),
		lits:        make(map[*ast.FuncLit]*FuncNode),
		litCount:    make(map[*FuncNode]int),
		paths:       make(map[string]bool),
	}
	for _, p := range pkgs {
		pr.Packages = append(pr.Packages, p)
		pr.paths[strings.TrimSuffix(p.Path, "_test")] = true
		pr.collect(p)
	}
	for _, rc := range pr.rawCalls {
		pr.resolve(rc)
	}
	pr.rawCalls = nil
	pr.devirtualize()
	pr.summarize()
	return pr
}

// NodesOf returns the nodes declared in package p (literals included),
// sorted by position.
func (pr *Program) NodesOf(p *Package) []*FuncNode {
	return pr.perPkg[p]
}

// LitNode returns the node for a function literal, or nil.
func (pr *Program) LitNode(lit *ast.FuncLit) *FuncNode {
	return pr.lits[lit]
}

// funcID returns the stable cross-unit identifier of a declared function.
func funcID(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// shortFuncName trims package paths out of a node ID for messages:
// "(*graphio/internal/graphiod.store).accept" -> "(*store).accept".
func shortFuncName(id string) string {
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	if strings.HasPrefix(id, "(") {
		if i := strings.Index(id, ")"); i > 0 {
			recv := id[1:i]
			star := strings.HasPrefix(recv, "*")
			recv = strings.TrimPrefix(recv, "*")
			recv = trim(recv)
			if i := strings.Index(recv, "."); i >= 0 {
				recv = recv[i+1:]
			}
			if star {
				recv = "*" + recv
			}
			return "(" + recv + ")" + id[i+1:]
		}
	}
	s := trim(id)
	if i := strings.Index(s, "."); i >= 0 && !strings.Contains(s[:i], "$") {
		s = s[i+1:]
	}
	return s
}

// --- node collection ---

func (pr *Program) collect(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{ID: funcID(obj), Pkg: p, Decl: fd}
			pr.addNode(n)
			if fd.Body != nil {
				pr.walkBody(p, n, fd.Body)
			}
		}
	}
}

func (pr *Program) addNode(n *FuncNode) {
	if _, exists := pr.Funcs[n.ID]; !exists {
		pr.Funcs[n.ID] = n
	}
	pr.perPkg[n.Pkg] = append(pr.perPkg[n.Pkg], n)
}

func (pr *Program) litNodeFor(p *Package, parent *FuncNode, lit *ast.FuncLit) *FuncNode {
	if n, ok := pr.lits[lit]; ok {
		return n
	}
	n := &FuncNode{
		ID:     parent.ID + "$" + itoa(pr.litCount[parent]),
		Pkg:    p,
		Lit:    lit,
		Parent: parent,
	}
	pr.litCount[parent]++
	pr.lits[lit] = n
	pr.addNode(n)
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// walkBody records nodes and raw call sites under the given owner node.
// Function literals open a child node; calls found inside them belong to
// the literal, not the enclosing function.
func (pr *Program) walkBody(p *Package, owner *FuncNode, body ast.Node) {
	var walk func(n ast.Node, under *FuncNode)
	visitCall := func(call *ast.CallExpr, under *FuncNode, kind EdgeKind) {
		pr.rawCalls = append(pr.rawCalls, rawCall{p: p, caller: under, call: call, kind: kind})
		if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
			ln := pr.litNodeFor(p, under, lit)
			walk(lit.Body, ln)
		} else {
			walk(call.Fun, under)
		}
		for _, arg := range call.Args {
			walk(arg, under)
		}
	}
	walk = func(n ast.Node, under *FuncNode) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			visitCall(x.Call, under, EdgeGo)
			return
		case *ast.DeferStmt:
			visitCall(x.Call, under, EdgeDefer)
			return
		case *ast.CallExpr:
			visitCall(x, under, EdgeCall)
			return
		case *ast.FuncLit:
			ln := pr.litNodeFor(p, under, x)
			under.Edges = append(under.Edges, &CallEdge{
				Kind: EdgePass, Pos: x.Pos(), CalleeID: ln.ID, Callee: ln,
			})
			walk(x.Body, ln)
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n || c == nil {
				return c == n
			}
			walk(c, under)
			return false
		})
	}
	walk(body, owner)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// --- call resolution ---

func (pr *Program) resolve(rc rawCall) {
	p, call := rc.p, rc.call
	edge := &CallEdge{Kind: rc.kind, Pos: call.Pos(), Call: call}
	edge.PassesCtx = callPassesCtx(p, call)

	fun := unparen(call.Fun)
	// Generic instantiation: f[T](...) — unwrap to the underlying operand.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := p.Info.Types[ix.X]; ok && !tv.IsType() {
			fun = unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = unparen(ix.X)
	}
	// Type conversions are not calls.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	switch f := fun.(type) {
	case *ast.FuncLit:
		ln := pr.lits[f]
		if ln != nil {
			edge.CalleeID, edge.Callee = ln.ID, ln
		}
	case *ast.Ident:
		switch obj := p.Info.Uses[f].(type) {
		case *types.Func:
			edge.Fn = obj
			edge.CalleeID = funcID(obj)
			edge.Callee = pr.Funcs[edge.CalleeID]
		case *types.Var:
			pr.resolveFuncValue(p, rc.caller, obj, edge)
		case *types.Builtin, *types.TypeName:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[f]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				// Calling a func-typed struct field: unresolved.
				break
			}
			edge.Fn = fn
			edge.CalleeID = funcID(fn)
			edge.Callee = pr.Funcs[edge.CalleeID]
		} else if obj, ok := p.Info.Uses[f.Sel].(*types.Func); ok {
			// Package-qualified call: pkg.Fun(...).
			edge.Fn = obj
			edge.CalleeID = funcID(obj)
			edge.Callee = pr.Funcs[edge.CalleeID]
		} else if _, ok := p.Info.Uses[f.Sel].(*types.Var); ok {
			// Func-typed field or package-level func variable: unresolved.
			break
		}
	}
	rc.caller.Edges = append(rc.caller.Edges, edge)
}

// resolveFuncValue tracks a called local function value one assignment
// deep: if the variable has exactly one defining assignment in the
// enclosing declared function and its RHS is a function literal, a
// function, or a method value, the call resolves to it.
func (pr *Program) resolveFuncValue(p *Package, caller *FuncNode, v *types.Var, edge *CallEdge) {
	root := caller.Root()
	body := root.Body()
	if body == nil {
		return
	}
	var rhs ast.Expr
	count := 0
	record := func(names []*ast.Ident, values []ast.Expr) {
		for i, name := range names {
			obj := p.Info.Defs[name]
			if obj == nil {
				obj = p.Info.Uses[name]
			}
			if obj != v {
				continue
			}
			count++
			if len(values) == len(names) {
				rhs = values[i]
			} else {
				rhs = nil // multi-value assignment: give up
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			ids := make([]*ast.Ident, 0, len(x.Lhs))
			ok := true
			for _, l := range x.Lhs {
				id, isIdent := l.(*ast.Ident)
				if !isIdent {
					ok = false
					break
				}
				ids = append(ids, id)
			}
			if ok {
				record(ids, x.Rhs)
			} else {
				// An assignment through a non-ident LHS never rebinds v.
				_ = x
			}
		case *ast.ValueSpec:
			record(x.Names, x.Values)
		}
		return true
	})
	if count != 1 || rhs == nil {
		return
	}
	switch r := unparen(rhs).(type) {
	case *ast.FuncLit:
		if ln := pr.lits[r]; ln != nil {
			edge.CalleeID, edge.Callee = ln.ID, ln
		}
	case *ast.Ident:
		if fn, ok := p.Info.Uses[r].(*types.Func); ok {
			edge.Fn = fn
			edge.CalleeID = funcID(fn)
			edge.Callee = pr.Funcs[edge.CalleeID]
		}
	case *ast.SelectorExpr:
		// Method value (mv := s.block) or package function.
		var fn *types.Func
		if sel, ok := p.Info.Selections[r]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else if obj, ok := p.Info.Uses[r.Sel].(*types.Func); ok {
			fn = obj
		}
		if fn != nil {
			edge.Fn = fn
			edge.CalleeID = funcID(fn)
			edge.Callee = pr.Funcs[edge.CalleeID]
		}
	}
}

// callPassesCtx reports whether any argument of the call has static type
// context.Context.
func callPassesCtx(p *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		tv, ok := p.Info.Types[arg]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		// A freshly minted root is not forwarding: f(context.TODO()) drops
		// the caller's ctx exactly as surely as not passing one.
		if inner, isCall := unparen(arg).(*ast.CallExpr); isCall {
			if _, isRoot := isPkgFunc(p, inner.Fun, "context", map[string]bool{"Background": true, "TODO": true}); isRoot {
				continue
			}
		}
		return true
	}
	return false
}

// --- class hierarchy analysis ---

// OwnsPath reports whether the import path belongs to a lint unit of this
// run (external test units count under their base path).
func (pr *Program) OwnsPath(path string) bool {
	return pr.paths[strings.TrimSuffix(path, "_test")]
}

// devirtualize resolves interface method call edges to every named type of
// the program that implements the interface. The module is closed, so the
// candidate set is exactly the named types the run loaded. Only interfaces
// DEFINED in the program are devirtualized: resolving io.Writer or
// http.Handler to every program type with the right method set would
// connect unrelated code (a log writer is not a WAL) and drown the rules
// in aliasing noise.
func (pr *Program) devirtualize() {
	type namedType struct {
		t   *types.Named
		pkg *types.Package
	}
	var named []namedType
	for _, p := range pr.Packages {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			nt, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(nt) {
				continue
			}
			named = append(named, namedType{t: nt, pkg: p.Types})
		}
	}
	for _, n := range pr.Funcs {
		for _, e := range n.Edges {
			if e.Fn == nil || e.Callee != nil {
				continue
			}
			sig, ok := e.Fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			if e.Fn.Pkg() == nil || !pr.OwnsPath(e.Fn.Pkg().Path()) {
				continue
			}
			recv := sig.Recv().Type()
			if !types.IsInterface(recv) {
				continue
			}
			iface, ok := recv.Underlying().(*types.Interface)
			if !ok {
				continue
			}
			seen := make(map[string]bool)
			for _, cand := range named {
				ptr := types.NewPointer(cand.t)
				if !types.Implements(cand.t, iface) && !types.Implements(ptr, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, cand.pkg, e.Fn.Name())
				m, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				id := funcID(m)
				if seen[id] {
					continue
				}
				seen[id] = true
				if target := pr.Funcs[id]; target != nil {
					e.Iface = append(e.Iface, target)
				}
			}
			sort.Slice(e.Iface, func(i, j int) bool { return e.Iface[i].ID < e.Iface[j].ID })
		}
	}
}
