package lint

// ctx-flow: a function that accepts a context.Context must forward it to
// every callee that accepts one — dropping the ctx on the floor severs the
// cancellation chain the rest of the repo relies on. Separately,
// context.Background() and context.TODO() outside package main and tests
// are findings: a library function that mints its own root context is
// exactly a dropped ctx in disguise. Compat wrappers of the repo's
// Foo/FooContext convention (a non-ctx function whose body delegates to
// its own Context variant with a fresh Background) are exempt — they exist
// to mint the root for callers that have none.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow is the ctx-flow rule; it needs the interprocedural program.
type CtxFlow struct{}

// NewCtxFlow returns the rule with defaults.
func NewCtxFlow() *CtxFlow { return &CtxFlow{} }

// Name implements Rule.
func (r *CtxFlow) Name() string { return "ctx-flow" }

// Doc implements Rule.
func (r *CtxFlow) Doc() string {
	return "ctx-accepting functions must forward their ctx to ctx-accepting callees; no context.Background/TODO outside main and tests"
}

// Check implements Rule.
func (r *CtxFlow) Check(p *Package, report Reporter) {
	if p.Prog == nil {
		return
	}
	for _, n := range p.Prog.NodesOf(p) {
		if !n.Summary.CtxInScope {
			continue
		}
		for _, e := range n.Edges {
			// Go edges belong to goroutine-join; pass edges are not calls.
			if e.Kind != EdgeCall && e.Kind != EdgeDefer {
				continue
			}
			if e.PassesCtx || isTestPos(p, e.Pos) {
				continue
			}
			if !calleeAcceptsCtx(e) {
				continue
			}
			report(e.Pos, "%s has a context in scope but calls %s without forwarding it",
				n.Name(), edgeCalleeName(e))
		}
	}
	r.checkRoots(p, report)
}

// calleeAcceptsCtx reports whether the resolved callee of e takes a
// context.Context parameter.
func calleeAcceptsCtx(e *CallEdge) bool {
	if e.Callee != nil {
		return e.Callee.Summary.AcceptsCtx
	}
	if e.Fn != nil {
		if sig, ok := e.Fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				if isContextType(sig.Params().At(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

func edgeCalleeName(e *CallEdge) string {
	if e.Callee != nil {
		return e.Callee.Name()
	}
	if e.Fn != nil {
		return shortFuncName(funcID(e.Fn))
	}
	return "a function value"
}

// checkRoots flags context.Background()/TODO() in library code. Package
// main and test files may mint roots; so may the Foo -> FooContext compat
// wrappers, where the Background call is an argument of the delegated call.
func (r *CtxFlow) checkRoots(p *Package, report Reporter) {
	if p.Types != nil && p.Types.Name() == "main" {
		return
	}
	rootFns := map[string]bool{"Background": true, "TODO": true}
	for _, f := range p.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := isPkgFunc(p, call.Fun, "context", rootFns)
			if !ok {
				return true
			}
			pos := call.Pos()
			if isTestPos(p, pos) {
				return true
			}
			if isCompatWrapper(p, f, pos) {
				return true
			}
			report(pos, "context.%s() in library code severs the cancellation chain; thread a ctx from the caller instead", name)
			return true
		})
	}
}

// isCompatWrapper reports whether the function declaration enclosing pos
// is a Foo -> FooContext compat wrapper: it does not itself accept a ctx
// and its body is a single statement delegating to <name>Context.
// Declarations never nest in Go, so the file-level decl containing pos is
// the enclosing function.
func isCompatWrapper(p *Package, f *ast.File, pos token.Pos) bool {
	var encl *ast.FuncDecl
	for _, d := range f.Decls {
		if fdecl, ok := d.(*ast.FuncDecl); ok && fdecl.Pos() <= pos && pos <= fdecl.End() {
			encl = fdecl
			break
		}
	}
	if encl == nil {
		return false
	}
	if funcTypeAcceptsCtx(p, encl.Type) {
		return false
	}
	if encl.Body == nil || len(encl.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch st := encl.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) == 1 {
			call, _ = unparen(st.Results[0]).(*ast.CallExpr)
		}
	case *ast.ExprStmt:
		call, _ = unparen(st.X).(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	name := calleeIdentName(call.Fun)
	return name == encl.Name.Name+"Context"
}

func calleeIdentName(e ast.Expr) string {
	switch f := unparen(e).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
