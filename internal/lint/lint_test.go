package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness: packages under testdata/src form a miniature module
// with path "fix". A line annotated
//
//	// want `regexp` `regexp` ...
//
// must produce exactly one diagnostic per regexp on that line (matched
// against the message, order-free); every other line must produce none.
// The directive fixture cannot carry want comments (its flagged lines
// already end in a comment), so TestDirectiveFixture states its
// expectations explicitly by locating marker lines.

func fixtureRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func newFixtureLoader(t *testing.T) *Loader {
	t.Helper()
	return NewLoader(fixtureRoot(t), "fix")
}

// lintFixture loads one fixture package (in-package tests and the external
// test package included) and returns the surviving diagnostics.
func lintFixture(t *testing.T, ld *Loader, rules []Rule, name string) []Diagnostic {
	t.Helper()
	dir := filepath.Join(ld.ModuleRoot, name)
	pkgs, err := ld.LoadDir(dir, "fix/"+name)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	r := &Runner{Loader: ld, Rules: rules}
	// The interprocedural rules need a Program; fix/journal stands in for
	// the persist package. Single-fixture scope is deliberate — each
	// fixture is its own closed world.
	prog := NewProgramWith(pkgs, "fix/journal")
	var got []Diagnostic
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("fixture %s (%s): type error: %v", name, p.Path, terr)
		}
		p.Prog = prog
		got = append(got, r.RunPackage(p)...)
	}
	sortDiagnostics(got)
	return got
}

var wantArgRe = regexp.MustCompile("`([^`]*)`")

// parseWants scans the .go files directly in dir for want annotations and
// returns file:line -> expected message patterns.
func parseWants(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantArgRe.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: want annotation without a `regexp`", ent.Name(), i+1)
			}
			key := ent.Name() + ":" + strconv.Itoa(i+1)
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern: %v", ent.Name(), i+1, err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

// checkDiagnostics matches got against wants one-to-one.
func checkDiagnostics(t *testing.T, fixture string, got []Diagnostic, wants map[string][]*regexp.Regexp) {
	t.Helper()
	for _, d := range got {
		key := filepath.Base(d.File) + ":" + strconv.Itoa(d.Line)
		res := wants[key]
		hit := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("%s: unexpected diagnostic %s", fixture, d)
			continue
		}
		wants[key] = append(res[:hit], res[hit+1:]...)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s: missing diagnostic at %s matching %q", fixture, key, re)
		}
	}
}

func TestRuleFixtures(t *testing.T) {
	ld := newFixtureLoader(t)
	cases := []struct {
		fixture string
		rules   []Rule
	}{
		{"persist", []Rule{NewPersistWrites()}},
		{"ctxloop", []Rule{NewCtxLoop()}},
		{"floateq", []Rule{NewFloatEq()}},
		{"nopanic", []Rule{NewNoPanic()}},
		{"nopanicmain", []Rule{NewNoPanic()}}, // package main: zero wants, zero findings
		{"timenow", []Rule{NewTimeNow()}},
		{"metricname", []Rule{&MetricName{
			ObsPath:  "fix/obs",
			Pattern:  MetricNamePattern,
			Families: []string{"metricname.family."},
		}}},
		{"errcheck", []Rule{NewErrCheck()}},
		{"scopedobs", []Rule{&ScopedObs{
			ObsPath:       "fix/obs",
			Instrumented:  []string{"fix/scopedobs"},
			DefaultExempt: []string{"fix/obs"},
		}}},
		{"ctxflow", []Rule{NewCtxFlow()}},
		{"goroutinejoin", []Rule{NewGoroutineJoin()}},
		{"lockblocking", []Rule{NewLockBlocking()}},
		{"walorder", []Rule{&WalOrder{Packages: []string{"fix/walorder"}}}},
		{"journal", []Rule{NewCtxFlow(), NewGoroutineJoin(), NewLockBlocking(), NewWalOrder()}}, // the stand-in persist package itself is clean
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			got := lintFixture(t, ld, c.rules, c.fixture)
			checkDiagnostics(t, c.fixture, got, parseWants(t, filepath.Join(ld.ModuleRoot, c.fixture)))
		})
	}
}

// TestExemptPaths checks the Exempt knob of the path-scoped rules: the same
// fixture is dirty under the default configuration and clean once its path
// is listed.
func TestExemptPaths(t *testing.T) {
	ld := newFixtureLoader(t)
	cases := []struct {
		name            string
		dirty, exempted Rule
	}{
		{"persist-writes", NewPersistWrites(), &PersistWrites{Exempt: []string{"fix/exempt"}}},
		{"time-now", NewTimeNow(), &TimeNow{Exempt: []string{"fix/exempt"}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := lintFixture(t, ld, []Rule{c.dirty}, "exempt"); len(got) != 1 {
				t.Errorf("default config: got %d diagnostics, want 1: %v", len(got), got)
			}
			if got := lintFixture(t, ld, []Rule{c.exempted}, "exempt"); len(got) != 0 {
				t.Errorf("exempted config: got %d diagnostics, want 0: %v", len(got), got)
			}
		})
	}
}

// lineWhere returns the 1-based line of the unique line in file satisfying
// match.
func lineWhere(t *testing.T, file string, desc string, match func(string) bool) int {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i, line := range strings.Split(string(data), "\n") {
		if match(line) {
			if found != 0 {
				t.Fatalf("%s: %q matches more than one line", file, desc)
			}
			found = i + 1
		}
	}
	if found == 0 {
		t.Fatalf("%s: no line matches %q", file, desc)
	}
	return found
}

func TestDirectiveFixture(t *testing.T) {
	ld := newFixtureLoader(t)
	got := lintFixture(t, ld, DefaultRules(), "directive")

	src := filepath.Join(ld.ModuleRoot, "directive", "directive.go")
	contains := func(sub string) func(string) bool {
		return func(line string) bool { return strings.Contains(line, sub) }
	}
	trimmedEq := func(want string) func(string) bool {
		return func(line string) bool { return strings.TrimSpace(line) == want }
	}

	type exp struct {
		rule  string
		line  int
		msgRe string
	}
	expected := []exp{
		{DirectiveRule, lineWhere(t, src, "missing-reason directive", trimmedEq("//lint:ignore no-panic")), `needs a reason`},
		{"no-panic", lineWhere(t, src, "missing-reason panic", contains("reason missing")), `panic in library code`},
		{DirectiveRule, lineWhere(t, src, "unknown-rule directive", contains("no-such-rule the rule name")), `unknown rule "no-such-rule"`},
		{"no-panic", lineWhere(t, src, "unknown-rule panic", contains("not suppressed: unknown rule")), `panic in library code`},
		{DirectiveRule, lineWhere(t, src, "meta-rule directive", contains("unused-suppression meta rules")), `unknown rule "unused-suppression"`},
		{"no-panic", lineWhere(t, src, "meta-rule panic", contains("not suppressed: meta rule")), `panic in library code`},
		{DirectiveRule, lineWhere(t, src, "malformed directive", trimmedEq("//lint:ignore")), `malformed directive`},
		{UnusedSuppRule, lineWhere(t, src, "unused suppression", contains("float-eq ints compare exactly")), `suppresses nothing`},
	}

	matched := make([]bool, len(expected))
outer:
	for _, d := range got {
		for i, e := range expected {
			if !matched[i] && d.Rule == e.rule && d.Line == e.line && regexp.MustCompile(e.msgRe).MatchString(d.Message) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, e := range expected {
		if !matched[i] {
			t.Errorf("missing diagnostic: rule %s at line %d matching %q", e.rule, e.line, e.msgRe)
		}
	}
}

// TestRunnerRun drives the pattern-expansion entry point end to end and
// checks the output encoders.
func TestRunnerRun(t *testing.T) {
	ld := newFixtureLoader(t)
	r := &Runner{Loader: ld, Rules: []Rule{NewFloatEq()}}
	ds, err := r.Run("./floateq")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("Run(./floateq): got %d diagnostics, want 4: %v", len(ds), ds)
	}
	for i := 1; i < len(ds); i++ {
		a, b := ds[i-1], ds[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics not sorted: %s before %s", a, b)
		}
	}

	var text bytes.Buffer
	if err := WriteText(&text, ds[:1]); err != nil {
		t.Fatal(err)
	}
	line := text.String()
	if !strings.Contains(line, "floateq.go:") || !strings.Contains(line, "(float-eq)") {
		t.Errorf("WriteText output %q lacks file position or rule tag", line)
	}

	var js bytes.Buffer
	if err := WriteJSON(&js, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(js.String()) != "[]" {
		t.Errorf("WriteJSON(nil) = %q, want []", js.String())
	}
}
