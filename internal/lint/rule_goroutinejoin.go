package lint

// goroutine-join: every go statement must be joinable or cancellable.
// A goroutine passes when (any of):
//
//   - a context.Context reaches it — as a call argument, or captured by
//     the spawned literal's body — so shutdown can cancel it;
//   - it signals a join when it finishes: the spawned function (or a
//     function it calls) does sync.WaitGroup.Done, sends on a channel, or
//     closes one — the done-channel and WaitGroup idioms;
//
// anything else is a leak: nothing can wait for it and nothing can stop
// it, which is exactly the goroutine that outlives Close() and trips the
// race detector in chaos tests. The signal check is interprocedural: a
// worker method whose `defer wg.Done()` sits three calls deep still
// counts.

// GoroutineJoin is the goroutine-join rule.
type GoroutineJoin struct{}

// NewGoroutineJoin returns the rule with defaults.
func NewGoroutineJoin() *GoroutineJoin { return &GoroutineJoin{} }

// Name implements Rule.
func (r *GoroutineJoin) Name() string { return "goroutine-join" }

// Doc implements Rule.
func (r *GoroutineJoin) Doc() string {
	return "every go statement must be joined (WaitGroup/done-channel) or cancellable via a forwarded ctx"
}

// Check implements Rule.
func (r *GoroutineJoin) Check(p *Package, report Reporter) {
	if p.Prog == nil {
		return
	}
	for _, n := range p.Prog.NodesOf(p) {
		for _, e := range n.Edges {
			if e.Kind != EdgeGo || isTestPos(p, e.Pos) {
				continue
			}
			if e.PassesCtx {
				continue
			}
			if e.Callee != nil {
				cs := e.Callee.Summary
				if cs.Signals || cs.MentionsCtx {
					continue
				}
			}
			if receiverSignals(e) {
				continue
			}
			report(e.Pos, "goroutine spawned by %s is neither joined (no WaitGroup.Done, channel send or close on any path) nor cancellable (no ctx reaches it)",
				n.Name())
		}
	}
}

// receiverSignals handles `go x.m(...)` where m is a program method whose
// node resolved (e.Callee != nil already covered) — and the unresolved
// bound-method case where only the types object is known: a method of a
// program type may still have a node under its stable ID.
func receiverSignals(e *CallEdge) bool {
	if e.Call == nil || e.Fn == nil || e.Callee != nil {
		return false
	}
	// Interface-devirtualized targets: joined if every candidate signals.
	if len(e.Iface) > 0 {
		for _, t := range e.Iface {
			if !t.Summary.Signals && !t.Summary.MentionsCtx {
				return false
			}
		}
		return true
	}
	return false
}
