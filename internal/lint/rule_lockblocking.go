package lint

// lock-blocking: no may-block call while a sync.Mutex/RWMutex is held.
// Blocking under a lock turns one slow fsync or network stall into a
// convoy: every other goroutine that needs the mutex queues behind it —
// the exact bug class PR 9's review chased by hand in graphiod/queue.go.
//
// Held regions are tracked positionally inside each function: a Lock()
// opens a region, the matching Unlock() closes it, `defer Unlock()` holds
// to the end of the function. Two extensions make the check
// interprocedural:
//
//   - the repo's *Locked naming convention: a function whose name ends in
//     "Locked" is analyzed as if its caller's mutex were held, and calls
//     TO *Locked functions are not re-reported in the caller (the finding
//     belongs inside the callee, next to the blocking call);
//   - callee summaries: a call blocks if anything it transitively reaches
//     blocks — channel ops, net/net/http, persist writes, sync waits,
//     time.Sleep. Plain lock acquisition is not a blocking class; holding
//     one lock while taking a DIFFERENT one is only reported through the
//     deadlock path when the callee re-acquires a mutex already held.
//
// Acquiring a mutex the function already holds (directly or through a
// callee summary) is reported as a deadlock, not merely a block.
//
// Per (function, mutex) only the first blocking site is reported, with a
// count of the rest: the fix is almost always structural (move the work
// out of the critical section), so one finding per lock is the actionable
// unit. The persist package itself is exempt: a durability layer's whole
// point is writing under its own lock.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockBlocking is the lock-blocking rule.
type LockBlocking struct {
	// Exempt packages are skipped entirely (subtrees included).
	Exempt []string
}

// NewLockBlocking returns the rule with the default exemptions.
func NewLockBlocking() *LockBlocking {
	return &LockBlocking{Exempt: []string{DefaultPersistPath}}
}

// Name implements Rule.
func (r *LockBlocking) Name() string { return "lock-blocking" }

// Doc implements Rule.
func (r *LockBlocking) Doc() string {
	return "no may-block call (channel ops, net, persist writes, sync waits, time.Sleep) while a mutex is held"
}

// callerHeldKey is the pseudo-mutex a *Locked function runs under.
const callerHeldKey = "caller's lock"

// Check implements Rule.
func (r *LockBlocking) Check(p *Package, report Reporter) {
	if p.Prog == nil || pathExempt(p.Path, r.Exempt) {
		return
	}
	for _, n := range p.Prog.NodesOf(p) {
		body := n.Body()
		if body == nil || isTestPos(p, body.Pos()) {
			continue
		}
		r.checkFunc(p, n, report)
	}
}

type lockEvent struct {
	pos     token.Pos
	key     string
	acquire bool
	display string // source-ish text of the mutex expr for messages
}

type blockSite struct {
	pos     token.Pos
	detail  string
	lock    string    // display of the held mutex
	lockPos token.Pos // where it was locked
}

func (r *LockBlocking) checkFunc(p *Package, n *FuncNode, report Reporter) {
	pr := p.Prog
	events, lockCalls := collectLockEvents(p, n)

	// held maps mutex key -> (lock position, display); deferHeld entries
	// never close.
	type heldLock struct {
		pos     token.Pos
		display string
	}
	held := make(map[string]heldLock)
	if n.Decl != nil && strings.HasSuffix(n.Decl.Name.Name, "Locked") {
		held[callerHeldKey] = heldLock{pos: n.Decl.Pos(), display: callerHeldKey}
	}

	// findings groups blocking sites per mutex key.
	findings := make(map[string][]blockSite)
	record := func(pos token.Pos, detail string) {
		for key, h := range held {
			findings[key] = append(findings[key], blockSite{pos: pos, detail: detail, lock: h.display, lockPos: h.pos})
		}
	}

	// Merge lock events and blocking sites into one position-ordered
	// stream, then replay it.
	type step struct {
		pos   token.Pos
		event *lockEvent
		block *blockSite
		edge  *CallEdge
	}
	var steps []step
	for i := range events {
		steps = append(steps, step{pos: events[i].pos, event: &events[i]})
	}
	for i := range n.Summary.BlockOps {
		op := n.Summary.BlockOps[i]
		steps = append(steps, step{pos: op.Pos, block: &blockSite{pos: op.Pos, detail: op.Reason}})
	}
	for _, e := range n.Edges {
		// Lock/Unlock calls are the events themselves, not blocking work.
		if e.Kind == EdgeGo || e.Call == nil || lockCalls[e.Call] {
			continue
		}
		steps = append(steps, step{pos: e.Pos, edge: e})
	}
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].pos < steps[j].pos })

	for _, st := range steps {
		switch {
		case st.event != nil:
			ev := st.event
			if ev.acquire {
				if len(held) > 0 {
					// Acquiring while already holding: deadlock if it is the
					// same mutex, lock-order risk (a block) otherwise.
					if h, same := held[ev.key]; same && !strings.HasPrefix(ev.key, "local:") {
						report(ev.pos, "%s locks %s while already holding it (locked at line %d): guaranteed self-deadlock",
							n.Name(), ev.display, p.Fset.Position(h.pos).Line)
					} else {
						record(ev.pos, "acquires "+ev.display)
					}
				}
				held[ev.key] = heldLock{pos: ev.pos, display: ev.display}
			} else {
				delete(held, ev.key)
			}
		case st.block != nil:
			record(st.block.pos, st.block.detail)
		case st.edge != nil:
			e := st.edge
			if len(held) == 0 {
				continue
			}
			// Deadlock through a callee that re-acquires a held mutex.
			for _, t := range edgeTargets(e) {
				for key := range t.Summary.Acquires {
					if h, same := held[key]; same {
						report(e.Pos, "%s calls %s which re-acquires %s already held (locked at line %d): guaranteed deadlock",
							n.Name(), t.Name(), h.display, p.Fset.Position(h.pos).Line)
					}
				}
			}
			if calleeIsLockedConvention(e) {
				continue // the finding lives inside the *Locked callee
			}
			if reason, via, ok := pr.EdgeBlocks(e); ok {
				record(e.Pos, fmt.Sprintf("calls %s (%s)", via, reason))
			}
		}
	}

	// Report the first site per mutex, with a count of the rest.
	keys := make([]string, 0, len(findings))
	for k := range findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sites := findings[key]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		first := sites[0]
		more := ""
		if len(sites) > 1 {
			more = fmt.Sprintf(" (+%d more blocking site(s) under this lock)", len(sites)-1)
		}
		if key == callerHeldKey {
			report(first.pos, "%s runs under its caller's lock (the *Locked convention) but may block: %s%s",
				n.Name(), first.detail, more)
		} else {
			report(first.pos, "%s may block while holding %s (locked at line %d): %s%s",
				n.Name(), first.lock, p.Fset.Position(first.lockPos).Line, first.detail, more)
		}
	}
}

// edgeTargets returns the program nodes an edge may reach.
func edgeTargets(e *CallEdge) []*FuncNode {
	if e.Callee != nil {
		return []*FuncNode{e.Callee}
	}
	return e.Iface
}

// calleeIsLockedConvention reports whether the edge's callee follows the
// *Locked naming convention (so it owns its own finding).
func calleeIsLockedConvention(e *CallEdge) bool {
	if e.Callee != nil && e.Callee.Decl != nil {
		return strings.HasSuffix(e.Callee.Decl.Name.Name, "Locked")
	}
	if e.Fn != nil {
		return strings.HasSuffix(e.Fn.Name(), "Locked")
	}
	return false
}

// collectLockEvents finds the Lock/RLock/Unlock/RUnlock calls in n's own
// body, in source order, plus the set of all lock-management call exprs so
// the caller can exclude them from blocking-call analysis. A deferred
// Unlock is dropped from the event stream (the lock is held to the end of
// the function); a deferred Lock would be nonsense and is ignored too.
func collectLockEvents(p *Package, n *FuncNode) ([]lockEvent, map[*ast.CallExpr]bool) {
	var events []lockEvent
	lockCalls := make(map[*ast.CallExpr]bool)
	deferred := make(map[*ast.CallExpr]bool)
	ownNodes(n, func(x ast.Node) bool {
		if d, ok := x.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	ownNodes(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := selectedFunc(p, sel)
		if fn == nil {
			return true
		}
		var acquire bool
		switch syncMethod(fn) {
		case "Mutex.Lock", "RWMutex.Lock", "RWMutex.RLock":
			acquire = true
		case "Mutex.Unlock", "RWMutex.Unlock", "RWMutex.RUnlock":
			acquire = false
		default:
			return true
		}
		lockCalls[call] = true
		if deferred[call] {
			return true
		}
		key := mutexKey(p, sel.X)
		if key == "" {
			return true
		}
		events = append(events, lockEvent{
			pos:     call.Pos(),
			key:     key,
			acquire: acquire,
			display: exprText(sel.X) + mutexSuffix(fn.Name()),
		})
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events, lockCalls
}

func mutexSuffix(method string) string {
	if method == "RLock" || method == "RUnlock" {
		return " (read)"
	}
	return ""
}

// exprText renders a selector chain for messages: s.mu, srv.store.mu.
func exprText(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	}
	return "mutex"
}
