package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFindModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "graphio" {
		t.Errorf("module path = %q, want graphio", path)
	}
	if filepath.Base(filepath.Dir(filepath.Dir(root))) == "" {
		t.Errorf("implausible module root %q", root)
	}
	if _, _, err := FindModule(t.TempDir()); err == nil {
		t.Error("FindModule outside any module succeeded, want error")
	}
}

func TestExpand(t *testing.T) {
	ld := newFixtureLoader(t)

	dirs, err := ld.Expand([]string{"./walk/..."})
	if err != nil {
		t.Fatal(err)
	}
	var rel []string
	for _, d := range dirs {
		r, err := filepath.Rel(ld.ModuleRoot, d)
		if err != nil {
			t.Fatal(err)
		}
		rel = append(rel, filepath.ToSlash(r))
	}
	want := []string{"walk", "walk/sub"}
	if strings.Join(rel, " ") != strings.Join(want, " ") {
		t.Errorf("Expand(./walk/...) = %v, want %v (testdata and _skip excluded)", rel, want)
	}

	one, err := ld.Expand([]string{"./walk/sub"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || filepath.Base(one[0]) != "sub" {
		t.Errorf("Expand(./walk/sub) = %v, want the single sub directory", one)
	}

	if _, err := ld.Expand([]string{"./no-such-dir"}); err == nil {
		t.Error("Expand of a missing directory succeeded, want error")
	}
}

func TestPathFor(t *testing.T) {
	ld := newFixtureLoader(t)
	got, err := ld.PathFor(filepath.Join(ld.ModuleRoot, "walk", "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "fix/walk/sub" {
		t.Errorf("PathFor = %q, want fix/walk/sub", got)
	}
	root, err := ld.PathFor(ld.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	if root != "fix" {
		t.Errorf("PathFor(root) = %q, want fix", root)
	}
	if _, err := ld.PathFor(filepath.Dir(ld.ModuleRoot)); err == nil {
		t.Error("PathFor outside the module root succeeded, want error")
	}
}
