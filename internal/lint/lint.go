package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// A Rule inspects one package at a time and reports findings through the
// Reporter. Rules must be stateless across packages (a Runner may reuse
// them) and must tolerate partially type-checked packages: when a
// types.Info lookup misses, skip the node rather than guessing.
type Rule interface {
	Name() string // stable identifier used in directives and output
	Doc() string  // one-line description for the rule catalog
	Check(p *Package, report Reporter)
}

// Reporter records one finding at pos. The position should be the first
// line of the offending statement so a whole-line //lint:ignore directive
// placed above it matches.
type Reporter func(pos token.Pos, format string, args ...any)

// Severity tiers. Error findings fail the lint gate; warn findings are
// advisory, letting new rules land warn-first and graduate once the
// baseline drains.
const (
	SeverityError = "error"
	SeverityWarn  = "warn"
)

// Severitied is the optional interface a Rule implements to downgrade its
// findings; rules without it report at the error tier.
type Severitied interface {
	Severity() string
}

// Diagnostic is one finding, positioned and attributed to a rule.
type Diagnostic struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	if d.Severity == SeverityWarn {
		return fmt.Sprintf("%s:%d:%d: warning: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Rule)
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// CountErrors returns how many diagnostics are at the error tier.
func CountErrors(ds []Diagnostic) int {
	n := 0
	for _, d := range ds {
		if d.Severity != SeverityWarn {
			n++
		}
	}
	return n
}

// Names of the two meta rules the runner itself emits. They cannot be
// suppressed with //lint:ignore — a broken directive must be fixed, not
// silenced.
const (
	DirectiveRule  = "directive"
	UnusedSuppRule = "unused-suppression"
)

// DefaultRules returns the full shipped rule set in catalog order.
func DefaultRules() []Rule {
	return []Rule{
		NewPersistWrites(),
		NewCtxLoop(),
		NewFloatEq(),
		NewNoPanic(),
		NewTimeNow(),
		NewMetricName(),
		NewErrCheck(),
		NewScopedObs(),
		NewCtxFlow(),
		NewGoroutineJoin(),
		NewLockBlocking(),
		NewWalOrder(),
	}
}

// Runner loads packages and applies a rule set plus the directive layer.
type Runner struct {
	Loader *Loader
	Rules  []Rule
}

// Run lints the packages matched by patterns and returns the surviving
// diagnostics (suppressions applied, directive problems appended) sorted by
// position. A non-empty return means the lint gate fails.
func (r *Runner) Run(patterns ...string) ([]Diagnostic, error) {
	dirs, err := r.Loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	// Load every unit first: the interprocedural program must span the
	// whole run before any rule fires, or cross-package facts (CHA targets,
	// transitive blocking) would be missing.
	var units []*Package
	for _, dir := range dirs {
		path, err := r.Loader.PathFor(dir)
		if err != nil {
			return nil, err
		}
		pkgs, err := r.Loader.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		units = append(units, pkgs...)
	}
	prog := NewProgram(units)
	var all []Diagnostic
	for _, p := range units {
		p.Prog = prog
		all = append(all, r.RunPackage(p)...)
	}
	sortDiagnostics(all)
	return all, nil
}

// RunPackage applies every rule to one loaded package and resolves
// suppression directives within it. Directive validation accepts any rule
// of the full shipped catalog, not just the active set, so running a rule
// subset (-rules) does not turn the other rules' suppressions into
// "unknown rule" findings; a directive for a known-but-inactive rule is
// simply inert.
func (r *Runner) RunPackage(p *Package) []Diagnostic {
	known := make(map[string]bool, len(r.Rules))
	var raw []Diagnostic
	for _, rule := range r.Rules {
		rule := rule
		known[rule.Name()] = true
		sev := SeverityError
		if s, ok := rule.(Severitied); ok && s.Severity() != "" {
			sev = s.Severity()
		}
		report := func(pos token.Pos, format string, args ...any) {
			position := p.Fset.Position(pos)
			raw = append(raw, Diagnostic{
				Rule:     rule.Name(),
				Severity: sev,
				File:     position.Filename,
				Line:     position.Line,
				Col:      position.Column,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		rule.Check(p, report)
	}
	catalog := make(map[string]bool, len(known))
	for name := range known {
		catalog[name] = true
	}
	for _, rule := range DefaultRules() {
		catalog[rule.Name()] = true
	}
	return applyDirectives(p, raw, known, catalog)
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// WriteText renders diagnostics one per line in file:line:col form.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders diagnostics as a JSON array.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// --- shared rule helpers ---

// isTestPos reports whether pos lies in a _test.go file.
func isTestPos(p *Package, pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// pathExempt reports whether the package import path is covered by any of
// the exempt paths (exact match or subtree). The "_test" suffix a Loader
// appends to external test packages is ignored, so exempting a package
// exempts its external tests too.
func pathExempt(path string, exempt []string) bool {
	base := strings.TrimSuffix(path, "_test")
	for _, e := range exempt {
		if path == e || base == e || strings.HasPrefix(path, e+"/") {
			return true
		}
	}
	return false
}

// useOf resolves the object an identifier or selector refers to, or nil.
func useOf(p *Package, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// isPkgFunc reports whether e refers to the named function of the package
// with import path pkgPath.
func isPkgFunc(p *Package, e ast.Expr, pkgPath string, names map[string]bool) (string, bool) {
	obj := useOf(p, e)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if obj.Pkg().Path() == pkgPath && names[obj.Name()] {
		return obj.Name(), true
	}
	return "", false
}
