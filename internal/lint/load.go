package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one unit of linting: the parsed and type-checked syntax of a
// single Go package (in-package _test.go files included) plus everything a
// rule needs to reason about it. External test packages (package foo_test)
// are loaded as their own unit with an importable path suffixed "_test".
type Package struct {
	Path  string              // import path, e.g. graphio/internal/core
	Dir   string              // absolute directory
	Fset  *token.FileSet      // shared across all packages of one Loader
	Files []*ast.File         // the files being linted, sorted by filename
	Src   map[string][]string // filename -> source split into lines

	Types      *types.Package
	Info       *types.Info
	TypeErrors []error // type-check problems; rules still run on what resolved

	// Prog is the interprocedural view of the whole lint run; the Runner
	// fills it in before rules execute. Rules that need the call graph must
	// tolerate a nil Prog (single-package harnesses may not build one).
	Prog *Program
}

// Loader parses and type-checks packages of a single module using only the
// standard library. Imports inside the module are resolved from source
// relative to ModuleRoot; everything else (the standard library) goes
// through go/importer's source-compiler importer. Loader is not safe for
// concurrent use.
type Loader struct {
	ModuleRoot string // absolute path of the directory containing go.mod
	ModulePath string // module path from go.mod, e.g. "graphio"
	Fset       *token.FileSet

	std     types.ImporterFrom
	imports map[string]*importEntry
}

type importEntry struct {
	pkg        *types.Package
	err        error
	inProgress bool
}

// NewLoader returns a Loader rooted at moduleRoot for modulePath.
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		imports:    make(map[string]*importEntry),
	}
}

// FindModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func FindModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages are
// type-checked from source under ModuleRoot (non-test files only, cached);
// the standard library is delegated to the source importer.
func (l *Loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importLocal(path)
	}
	return l.std.ImportFrom(path, dir, 0)
}

func (l *Loader) importLocal(path string) (*types.Package, error) {
	if e, ok := l.imports[path]; ok {
		if e.inProgress {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &importEntry{inProgress: true}
	l.imports[path] = e
	defer func() { e.inProgress = false }()

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	files, _, err := l.parseDir(dir, false)
	if err != nil {
		e.err = err
		return nil, err
	}
	if len(files) == 0 {
		e.err = fmt.Errorf("lint: no Go files in %s", dir)
		return nil, e.err
	}
	var errs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { errs = append(errs, err) },
	}
	pkg, cerr := conf.Check(path, l.Fset, files, nil)
	if cerr != nil && pkg == nil {
		e.err = cerr
		return nil, cerr
	}
	e.pkg = pkg
	return pkg, nil
}

// parseDir parses the non-test (and, when tests is true, also the _test.go)
// files of dir. It returns the parsed files and their sources keyed by
// filename.
func (l *Loader) parseDir(dir string, tests bool) ([]*ast.File, map[string][]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	src := make(map[string][]string)
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(l.Fset, full, data, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		src[full] = strings.Split(string(data), "\n")
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})
	return files, src, nil
}

// LoadDir loads the lint units of a single directory: the primary package
// (with its in-package test files) and, when present, the external test
// package. path is the import path to assign to the primary unit.
func (l *Loader) LoadDir(dir, path string) ([]*Package, error) {
	all, src, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	// Split into the primary package and an optional external test package.
	var primaryName string
	for _, f := range all {
		n := f.Name.Name
		if !strings.HasSuffix(n, "_test") {
			primaryName = n
			break
		}
	}
	var primary, external []*ast.File
	for _, f := range all {
		if primaryName != "" && f.Name.Name == primaryName {
			primary = append(primary, f)
		} else {
			external = append(external, f)
		}
	}
	var out []*Package
	if len(primary) > 0 {
		out = append(out, l.check(path, dir, primary, src))
	}
	if len(external) > 0 {
		out = append(out, l.check(path+"_test", dir, external, src))
	}
	return out, nil
}

func (l *Loader) check(path, dir string, files []*ast.File, src map[string][]string) *Package {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	fsrc := make(map[string][]string, len(files))
	for _, f := range files {
		name := l.Fset.Position(f.Pos()).Filename
		fsrc[name] = src[name]
	}
	return &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Src:        fsrc,
		Types:      tpkg,
		Info:       info,
		TypeErrors: errs,
	}
}

// Expand resolves package patterns ("./...", "./internal/core", "internal/...")
// to directories containing Go files, relative to ModuleRoot. Directories
// named testdata, hidden directories and underscore-prefixed directories are
// skipped, matching the go tool's convention.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, ent := range entries {
		name := ent.Name()
		if !ent.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// PathFor returns the import path the Loader would assign to dir.
func (l *Loader) PathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return l.ModulePath, nil
	}
	if rel == ".." || strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + rel, nil
}
