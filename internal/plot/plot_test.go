package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}},
	}, Options{Width: 20, Height: 8, Title: "demo", XLabel: "n", YLabel: "bound"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"demo", "* a", "o b", "(n)", "y: bound", "+--"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 10 {
		t.Errorf("suspiciously short chart (%d lines)", lines)
	}
}

func TestRenderLogY(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, []Series{
		{Name: "exp", X: []float64{1, 2, 3, 4}, Y: []float64{10, 100, 1000, 0}},
	}, Options{LogY: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "log scale") && !strings.Contains(buf.String(), "exp") {
		t.Error("legend missing")
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, nil, Options{}); err == nil {
		t.Error("no series accepted")
	}
	if err := Render(&buf, []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}, Options{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := Render(&buf, []Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}, Options{}); err == nil {
		t.Error("all-unplottable series accepted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, []Series{{Name: "flat", X: []float64{5}, Y: []float64{7}}}, Options{})
	if err != nil {
		t.Fatalf("single-point series: %v", err)
	}
}

func TestFromTable(t *testing.T) {
	cols := []string{"l", "n", "spectral_M4", "mincut_M4"}
	rows := [][]string{
		{"3", "32", "0", "0"},
		{"8", "2304", "32.40", "24*"},
		{"12", "53248", "1059.87", "skipped"},
	}
	series, err := FromTable(cols, rows, "l", "spectral_", "mincut_")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series=%d", len(series))
	}
	if len(series[0].X) != 3 {
		t.Errorf("spectral points=%d want 3", len(series[0].X))
	}
	// mincut: the "skipped" cell drops, the "24*" cell parses.
	if len(series[1].X) != 2 || series[1].Y[1] != 24 {
		t.Errorf("mincut series: %+v", series[1])
	}
	if _, err := FromTable(cols, rows, "zzz", "spectral_"); err == nil {
		t.Error("missing x column accepted")
	}
	if _, err := FromTable(cols, rows, "l", "nope_"); err == nil {
		t.Error("no matching y columns accepted")
	}
}
