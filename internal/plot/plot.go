// Package plot renders X-Y series as ASCII charts. The experiment harness
// regenerates the paper's figures as CSV tables; this package makes them
// figures again without leaving the terminal — `cmd/experiments -plot`
// draws each table's bound-vs-size curves directly from the results.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Options controls the canvas.
type Options struct {
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)
	LogY   bool
	Title  string
	XLabel string
	YLabel string
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series onto w as a fixed-width ASCII chart with axis
// ticks and a legend. Points with non-finite or (under LogY) non-positive
// values are skipped.
func Render(w io.Writer, series []Series, opt Options) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	tx := func(v float64) float64 { return v }
	ty := tx
	if opt.LogY {
		ty = math.Log10
	}

	// Data range across all plottable points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if !plottable(s.X[i], s.Y[i], opt.LogY) {
				continue
			}
			usable++
			x, y := tx(s.X[i]), ty(s.Y[i])
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if usable == 0 {
		return errors.New("plot: no plottable points")
	}
	//lint:ignore float-eq a degenerate axis range is an exact condition; widening near-equal ranges would distort real data
	if maxX == minX {
		maxX = minX + 1
	}
	//lint:ignore float-eq a degenerate axis range is an exact condition; widening near-equal ranges would distort real data
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if !plottable(s.X[i], s.Y[i], opt.LogY) {
				continue
			}
			c := int(math.Round((tx(s.X[i]) - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((ty(s.Y[i])-minY)/(maxY-minY)*float64(height-1)))
			if grid[r][c] == ' ' || grid[r][c] == mark {
				grid[r][c] = mark
			} else {
				grid[r][c] = '?' // overlapping series
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	yLo, yHi := minY, maxY
	if opt.LogY {
		yLo, yHi = math.Pow(10, minY), math.Pow(10, maxY)
	}
	topLabel := fmt.Sprintf("%.4g", yHi)
	botLabel := fmt.Sprintf("%.4g", yLo)
	pad := len(topLabel)
	if len(botLabel) > pad {
		pad = len(botLabel)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, topLabel)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", pad, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g", strings.Repeat(" ", pad), width/2, minX, width-width/2, maxX)
	if opt.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", opt.XLabel)
	}
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	if opt.YLabel != "" {
		fmt.Fprintf(&b, "  y: %s", opt.YLabel)
		if opt.LogY {
			b.WriteString(" (log scale)")
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func plottable(x, y float64, logY bool) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return false
	}
	if logY && y <= 0 {
		return false
	}
	return true
}
