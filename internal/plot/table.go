package plot

import (
	"fmt"
	"strconv"
	"strings"
)

// FromTable extracts plottable series from a rectangular table (header row
// plus data rows, as produced by the experiment harness' CSV output):
// xCol selects the x axis, and every column whose name has one of the
// given prefixes becomes a series. Cells that fail to parse (the
// harness' "-", "skipped", or "12*" time-box markers — the trailing
// marker is stripped first) are skipped.
func FromTable(columns []string, rows [][]string, xCol string, yPrefixes ...string) ([]Series, error) {
	xi := -1
	var yis []int
	for i, c := range columns {
		if c == xCol {
			xi = i
		}
		for _, p := range yPrefixes {
			if strings.HasPrefix(c, p) {
				yis = append(yis, i)
				break
			}
		}
	}
	if xi == -1 {
		return nil, fmt.Errorf("plot: x column %q not found in %v", xCol, columns)
	}
	if len(yis) == 0 {
		return nil, fmt.Errorf("plot: no columns match prefixes %v", yPrefixes)
	}
	var out []Series
	for _, yi := range yis {
		s := Series{Name: columns[yi]}
		for _, row := range rows {
			x, okx := parseCell(row[xi])
			y, oky := parseCell(row[yi])
			if okx && oky {
				s.X = append(s.X, x)
				s.Y = append(s.Y, y)
			}
		}
		if len(s.X) > 0 {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plot: no plottable data under %v", yPrefixes)
	}
	return out, nil
}

func parseCell(s string) (float64, bool) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "*")
	if s == "" || s == "-" || s == "skipped" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
