// Package hier extends the paper's two-level analysis to multi-level
// memory hierarchies. For levels of capacities M1 < M1+M2 < … backed by
// infinite storage, any execution induces, at each boundary i, a two-level
// execution whose "fast memory" is everything above the boundary; the
// spectral bound therefore applies per boundary with M = Σ_{j ≤ i} Mj,
// giving a vector of simultaneous lower bounds (the standard hierarchy
// argument — Hong-Kung's Corollary 1 pattern — applied to Theorem 4).
//
// The package also simulates executions on such hierarchies: values are
// computed into level 1, evictions cascade downward paying one transfer at
// each boundary they cross (free once a lower copy exists or the value is
// dead), and loads raise the nearest copy back to level 1 paying each
// crossed boundary once. Per-boundary transfer counts from any simulated
// schedule sandwich the per-boundary lower bounds exactly as in the
// two-level case.
package hier

import (
	"errors"
	"fmt"
	"math"

	"graphio/internal/core"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
)

// Bounds computes the Theorem 4 lower bound at every hierarchy boundary:
// out[i] bounds the transfers across the boundary below level i+1 (between
// levels i+1 and i+2 in 1-based terms), using cumulative capacity
// M = caps[0]+…+caps[i]. A single eigensolve serves every boundary.
// opt selects the solver/Laplacian/h; its M field is ignored (each
// boundary substitutes its own cumulative capacity).
func Bounds(g *graph.Graph, caps []int, opt core.Options) ([]float64, error) {
	if len(caps) == 0 {
		return nil, errors.New("hier: need at least one level capacity")
	}
	cum := 0
	for i, c := range caps {
		if c < 1 {
			return nil, fmt.Errorf("hier: capacity of level %d must be ≥ 1", i+1)
		}
		cum += c
	}
	opt.M = 1 // placeholder; per-boundary M applied below
	res, err := core.SpectralBound(g, opt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(caps))
	cum = 0
	for i, c := range caps {
		cum += c
		b, _, _ := core.BoundFromEigenvalues(res.Eigenvalues, g.N(), cum, maxInt(res.Processors, 1), divisorFor(res, g))
		out[i] = b
	}
	return out, nil
}

func divisorFor(res *core.Result, g *graph.Graph) float64 {
	if res.Kind == laplacian.Original {
		d := g.MaxOutDeg()
		if d == 0 {
			d = 1
		}
		return float64(d)
	}
	return 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Result reports a simulated multi-level execution.
type Result struct {
	// Transfers[i] counts movements across boundary i (between levels
	// i+1 and i+2), in both directions.
	Transfers []int
}

// Total returns the sum of all boundary transfers.
func (r Result) Total() int {
	t := 0
	for _, v := range r.Transfers {
		t += v
	}
	return t
}

// Simulate executes g in the given topological order on a hierarchy with
// the given per-level capacities (level 1 first; the level below the last
// is infinite). Eviction picks the resident value with the farthest next
// use (Belady) at every level. Operands must be in level 1 to compute.
func Simulate(g *graph.Graph, order []int, caps []int) (Result, error) {
	if len(caps) == 0 {
		return Result{}, errors.New("hier: need at least one level capacity")
	}
	for i, c := range caps {
		if c < 1 {
			return Result{}, fmt.Errorf("hier: capacity of level %d must be ≥ 1", i+1)
		}
	}
	if !g.IsTopological(order) {
		return Result{}, errors.New("hier: order is not topological")
	}
	n := g.N()
	L := len(caps) // levels 0..L-1 managed; level L infinite
	res := Result{Transfers: make([]int, L)}

	// Use positions per vertex for Belady decisions.
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	usePos := make([][]int32, n)
	useIdx := make([]int32, n)
	for v := 0; v < n; v++ {
		succ := g.Succ(v)
		uses := make([]int32, len(succ))
		for i, w := range succ {
			uses[i] = pos[w]
		}
		insertionSortI32(uses)
		usePos[v] = uses
	}
	step := int64(0)
	nextUse := func(v int) int64 {
		uses := usePos[v]
		idx := useIdx[v]
		for int(idx) < len(uses) && int64(uses[idx]) < step {
			idx++
		}
		if int(idx) == len(uses) {
			return math.MaxInt64
		}
		return int64(uses[idx])
	}

	// copyAt[v] is a bitmask of levels (0..L) holding a copy of v.
	copyAt := make([]uint32, n)
	resident := make([][]int32, L+1) // resident[l]: values with a copy at level l
	pinned := make([]bool, n)

	removeFrom := func(l int, v int) {
		lst := resident[l]
		for i, x := range lst {
			if int(x) == v {
				lst[i] = lst[len(lst)-1]
				resident[l] = lst[:len(lst)-1]
				copyAt[v] &^= 1 << uint(l)
				return
			}
		}
	}
	addTo := func(l int, v int) {
		if copyAt[v]&(1<<uint(l)) == 0 {
			resident[l] = append(resident[l], int32(v))
			copyAt[v] |= 1 << uint(l)
		}
	}

	// evictFrom frees one slot at level l by pushing its Belady victim
	// down one level (recursively making room), or dropping it free when a
	// lower copy exists or it is dead.
	// evictFrom mirrors the two-level pebble policy per level: dead values
	// drop free immediately; otherwise the Belady victim (farthest next
	// use) is chosen, dropping free when a copy already exists below and
	// paying the boundary crossing otherwise.
	var evictFrom func(l int) error
	evictFrom = func(l int) error {
		best := -1
		var bestUse int64 = -1
		for _, x := range resident[l] {
			v := int(x)
			if pinned[v] {
				continue
			}
			nu := nextUse(v)
			if nu == math.MaxInt64 {
				removeFrom(l, v) // dead: free drop
				return nil
			}
			if nu > bestUse {
				bestUse, best = nu, v
			}
		}
		if best == -1 {
			return fmt.Errorf("hier: level %d exhausted by pinned operands", l+1)
		}
		if copyAt[best]>>uint(l+1) != 0 {
			removeFrom(l, best) // duplicated below: free drop
			return nil
		}
		// Push down one level, paying the boundary crossing.
		res.Transfers[l]++
		removeFrom(l, best)
		if l+1 < L && len(resident[l+1]) >= caps[l+1] {
			if err := evictFrom(l + 1); err != nil {
				return err
			}
		}
		addTo(l+1, best)
		return nil
	}

	// raise brings v to level 1 (index 0) from its fastest copy, paying
	// each crossed boundary; copies below are retained.
	raise := func(v int) error {
		from := -1
		for l := 0; l <= L; l++ {
			if copyAt[v]&(1<<uint(l)) != 0 {
				from = l
				break
			}
		}
		if from == -1 {
			return fmt.Errorf("hier: internal: value %d lost", v)
		}
		if from == 0 {
			return nil
		}
		for b := from - 1; b >= 0; b-- {
			res.Transfers[b]++
		}
		if len(resident[0]) >= caps[0] {
			if err := evictFrom(0); err != nil {
				return err
			}
		}
		addTo(0, v)
		return nil
	}

	for i, v := range order {
		step = int64(i)
		preds := g.Pred(v)
		if len(preds) > caps[0] {
			return Result{}, fmt.Errorf("hier: vertex %d has in-degree %d > level-1 capacity %d",
				v, len(preds), caps[0])
		}
		for _, p := range preds {
			if copyAt[p]&1 != 0 {
				pinned[p] = true
			}
		}
		for _, p := range preds {
			if copyAt[p]&1 == 0 {
				if err := raise(int(p)); err != nil {
					return Result{}, err
				}
				pinned[p] = true
			}
		}
		for _, p := range preds {
			uses := usePos[p]
			for int(useIdx[p]) < len(uses) && int64(uses[useIdx[p]]) <= step {
				useIdx[p]++
			}
			pinned[p] = false
		}
		if len(resident[0]) >= caps[0] {
			if err := evictFrom(0); err != nil {
				return Result{}, err
			}
		}
		addTo(0, v)
	}
	return res, nil
}

func insertionSortI32(x []int32) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
