package hier

import (
	"math/rand"
	"testing"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/pebble"
)

func TestBoundsValidation(t *testing.T) {
	g := gen.Chain(4)
	if _, err := Bounds(g, nil, core.Options{}); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := Bounds(g, []int{2, 0}, core.Options{}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestBoundsMatchTwoLevel(t *testing.T) {
	// One level of capacity M reduces to the plain Theorem 4 bound; the
	// boundary below a second level uses the cumulative capacity.
	g := gen.FFT(8)
	bs, err := Bounds(g, []int{4, 12}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct4, err := core.SpectralBound(g, core.Options{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	direct16, err := core.SpectralBound(g, core.Options{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	if bs[0] != direct4.Bound || bs[1] != direct16.Bound {
		t.Errorf("hier bounds %v vs direct [%g %g]", bs, direct4.Bound, direct16.Bound)
	}
	if bs[1] > bs[0]+1e-9 {
		t.Error("deeper boundary bound should be weaker (larger cumulative M)")
	}
}

func TestSimulateChainNoTransfers(t *testing.T) {
	g := gen.Chain(20)
	res, err := Simulate(g, g.TopoOrder(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 0 {
		t.Errorf("chain incurred %v transfers", res.Transfers)
	}
}

func TestSimulateValidation(t *testing.T) {
	g := gen.Chain(3)
	if _, err := Simulate(g, g.TopoOrder(), nil); err == nil {
		t.Error("no levels accepted")
	}
	if _, err := Simulate(g, []int{2, 1, 0}, []int{2}); err == nil {
		t.Error("bad order accepted")
	}
	if _, err := Simulate(gen.FFT(2), gen.FFT(2).TopoOrder(), []int{1}); err == nil {
		t.Error("in-degree above level-1 capacity accepted")
	}
}

func TestSingleLevelMatchesPebbleTotals(t *testing.T) {
	// With one managed level the boundary-0 transfer count must equal the
	// two-level pebble simulator's reads+writes (same model, same Belady
	// policy, same order).
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(20)
		b := graph.NewBuilder(n, 0)
		b.AddVertices(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					b.MustEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		M := g.MaxInDeg() + 1 + rng.Intn(3)
		order := g.RandomTopoOrder(rng)
		hres, err := Simulate(g, order, []int{M})
		if err != nil {
			t.Fatal(err)
		}
		pres, err := pebble.Simulate(g, order, M, pebble.Belady)
		if err != nil {
			t.Fatal(err)
		}
		if hres.Transfers[0] != pres.Total() {
			t.Fatalf("trial %d: hier %d vs pebble %d (reads=%d writes=%d)",
				trial, hres.Transfers[0], pres.Total(), pres.Reads, pres.Writes)
		}
	}
}

func TestPerBoundarySandwich(t *testing.T) {
	// Each boundary's simulated transfers must dominate its spectral floor.
	for _, g := range []*graph.Graph{gen.FFT(6), gen.BellmanHeldKarp(6)} {
		caps := []int{g.MaxInDeg() + 2, 8, 16}
		bs, err := Bounds(g, caps, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(g, pebble.FrontierOrder(g), caps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range caps {
			if bs[i] > float64(res.Transfers[i])+1e-6 {
				t.Errorf("%s boundary %d: floor %g above simulated %d",
					g.Name(), i, bs[i], res.Transfers[i])
			}
		}
	}
}

func TestDeeperLevelsSeeFewerTransfers(t *testing.T) {
	// Not a theorem, but with nested Belady and growing capacities the
	// traffic should be (weakly) filtered level by level on structured
	// graphs — a smoke check that the cascade works at all.
	g := gen.FFT(7)
	caps := []int{4, 16, 64}
	res, err := Simulate(g, g.TopoOrder(), caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers[0] == 0 {
		t.Fatal("expected traffic at the first boundary")
	}
	if res.Transfers[2] > res.Transfers[0] {
		t.Errorf("deepest boundary (%d) saw more traffic than the first (%d)",
			res.Transfers[2], res.Transfers[0])
	}
}
