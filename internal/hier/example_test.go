package hier_test

import (
	"fmt"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/hier"
)

// ExampleBounds computes simultaneous Theorem 4 floors for a two-level
// hierarchy over a 64-point FFT: boundary 0 below the 4 fastest slots,
// boundary 1 below the cumulative 4+12.
func ExampleBounds() {
	g := gen.FFT(6)
	floors, err := hier.Bounds(g, []int{4, 12}, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("boundary floors: %.2f %.2f\n", floors[0], floors[1])
	// Output:
	// boundary floors: 0.00 0.00
}

// ExampleSimulate runs a Kahn schedule of the same FFT through the
// cascading Belady hierarchy and reports the per-boundary traffic.
func ExampleSimulate() {
	g := gen.FFT(6)
	res, err := hier.Simulate(g, g.TopoOrder(), []int{4, 12})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Transfers[0] >= res.Transfers[1], res.Total() > 0)
	// Output:
	// true true
}
