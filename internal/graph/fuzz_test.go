package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the graph parser never panics and that everything it
// accepts survives a serialize/parse round trip. `go test` exercises the
// seed corpus; `go test -fuzz=FuzzReadJSON ./internal/graph` explores.
func FuzzReadJSON(f *testing.F) {
	seeds := []string{
		`{"name":"d","n":4,"edges":[[0,1],[0,2],[1,3],[2,3]]}`,
		`{"name":"","n":0,"edges":[]}`,
		`{"n":2,"edges":[[0,1],[1,0]]}`,
		`{"n":-5}`,
		`{"n":1000000000,"edges":[]}`,
		`[]`,
		`{"n":3,"edges":[[0,1],[0,1],[0,0]]}`,
		"",
		`{"n":2,"edges":[[0,1`,
		`{"n":3,"vertices":[0,1,2],"edges":[[0,2]]}`,
		`{"n":3,"vertices":[0,1,1],"edges":[]}`,
		`{"n":3,"vertices":[0,1],"edges":[]}`,
		`{"n":2,"vertices":[0,-1],"edges":[]}`,
		`{"n":2,"edges":[[0,5]]}`,
		`{"n":2,"edges":[[-1,0]]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		g, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("serializing an accepted graph failed: %v", err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: (%d,%d) vs (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}
