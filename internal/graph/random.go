package graph

import "math/rand"

// RandomTopoOrder returns a uniformly-ish random topological order: Kahn's
// algorithm choosing uniformly among the ready vertices at each step. (This
// does not sample uniformly over all linear extensions — that problem is
// #P-hard — but it explores the order space well enough for empirical
// upper-bound search.)
func (g *Graph) RandomTopoOrder(rng *rand.Rand) []int {
	n := g.N()
	indeg := make([]int32, n)
	ready := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDeg(v))
		if indeg[v] == 0 {
			ready = append(ready, int32(v))
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		v := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, int(v))
		for _, w := range g.Succ(int(v)) {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != n {
		return nil
	}
	return order
}

// DFSTopoOrder returns the topological order produced by a depth-first
// post-order traversal from the sinks backwards (equivalently: reverse
// post-order on the transpose). DFS orders tend to have good locality and
// serve as a cheap upper-bound heuristic in the pebble simulator.
func (g *Graph) DFSTopoOrder() []int {
	n := g.N()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make([]byte, n)
	order := make([]int, 0, n)
	// Iterative DFS emitting a vertex after all of its predecessors.
	type frame struct {
		v    int32
		next int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if state[root] != white {
			continue
		}
		state[root] = gray
		stack = append(stack[:0], frame{int32(root), 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			preds := g.Pred(int(f.v))
			if f.next < len(preds) {
				p := preds[f.next]
				f.next++
				if state[p] == white {
					state[p] = gray
					stack = append(stack, frame{p, 0})
				}
				continue
			}
			state[f.v] = black
			order = append(order, int(f.v))
			stack = stack[:len(stack)-1]
		}
	}
	return order
}
