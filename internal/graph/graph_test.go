package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildDiamond returns the 4-vertex diamond 0 -> {1,2} -> 3.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	b.SetName("diamond")
	b.AddVertices(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// randomDAG builds a random DAG on n vertices where each forward pair (u,v)
// is an edge with probability p. Edges always go from lower to higher ID.
func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n, 0)
	b.SetName("random")
	b.AddVertices(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestDiamondBasics(t *testing.T) {
	g := buildDiamond(t)
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d, want 4,4", g.N(), g.M())
	}
	if got := g.Succ(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Errorf("Succ(0)=%v", got)
	}
	if got := g.Pred(3); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Errorf("Pred(3)=%v", got)
	}
	if g.OutDeg(0) != 2 || g.InDeg(3) != 2 || g.Deg(1) != 2 {
		t.Errorf("degree mismatch: out(0)=%d in(3)=%d deg(1)=%d", g.OutDeg(0), g.InDeg(3), g.Deg(1))
	}
	if got := g.Sources(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Sources=%v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Sinks=%v", got)
	}
	if g.MaxOutDeg() != 2 || g.MaxInDeg() != 2 || g.MaxDeg() != 2 {
		t.Errorf("max degrees: %d %d %d", g.MaxOutDeg(), g.MaxInDeg(), g.MaxDeg())
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddVertices(3)
	b.MustEdge(0, 1)
	b.MustEdge(1, 2)
	b.MustEdge(2, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a cyclic graph")
	}
}

func TestBuilderRejectsSelfLoopAndBadIndex(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddVertices(2)
	if err := b.AddEdge(0, 0); err == nil {
		t.Error("AddEdge accepted a self-loop")
	}
	if err := b.AddEdge(0, 5); err == nil {
		t.Error("AddEdge accepted an out-of-range vertex")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("AddEdge accepted a negative vertex")
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	b := NewBuilder(2, 4)
	b.AddVertices(2)
	b.MustEdge(0, 1)
	b.MustEdge(0, 1)
	b.MustEdge(0, 1)
	g := b.MustBuild()
	if g.M() != 1 {
		t.Fatalf("M=%d after dedup, want 1", g.M())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, 0).MustBuild()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if order := g.TopoOrder(); len(order) != 0 {
		t.Fatalf("TopoOrder on empty graph: %v", order)
	}
	if !g.IsTopological(nil) {
		t.Error("empty order should be topological for empty graph")
	}
}

func TestSingleVertex(t *testing.T) {
	b := NewBuilder(1, 0)
	b.AddVertex()
	g := b.MustBuild()
	if got := g.TopoOrder(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("TopoOrder=%v", got)
	}
	if g.Sources()[0] != 0 || g.Sinks()[0] != 0 {
		t.Error("isolated vertex should be both source and sink")
	}
}

func TestTopoOrderDeterministicAndValid(t *testing.T) {
	g := buildDiamond(t)
	want := []int{0, 1, 2, 3}
	if got := g.TopoOrder(); !reflect.DeepEqual(got, want) {
		t.Errorf("TopoOrder=%v want %v", got, want)
	}
	if !g.IsTopological(g.TopoOrder()) {
		t.Error("TopoOrder not topological")
	}
}

func TestIsTopologicalRejectsBadOrders(t *testing.T) {
	g := buildDiamond(t)
	cases := [][]int{
		{3, 1, 2, 0},    // reversed
		{0, 1, 2},       // too short
		{0, 1, 2, 3, 3}, // too long
		{0, 1, 1, 3},    // duplicate
		{0, 1, 2, 4},    // out of range
		{1, 0, 2, 3},    // 1 before its parent 0
	}
	for _, c := range cases {
		if g.IsTopological(c) {
			t.Errorf("IsTopological(%v) = true, want false", c)
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := buildDiamond(t)
	anc := g.Ancestors(3)
	if !anc[0] || !anc[1] || !anc[2] || anc[3] {
		t.Errorf("Ancestors(3)=%v", anc)
	}
	desc := g.Descendants(0)
	if !desc[1] || !desc[2] || !desc[3] || desc[0] {
		t.Errorf("Descendants(0)=%v", desc)
	}
	if anc := g.Ancestors(0); anc[0] || anc[1] || anc[2] || anc[3] {
		t.Errorf("Ancestors(0)=%v, want none", anc)
	}
}

func TestUndirectedComponents(t *testing.T) {
	b := NewBuilder(5, 2)
	b.AddVertices(5)
	b.MustEdge(0, 1)
	b.MustEdge(3, 4)
	g := b.MustBuild()
	label, count := g.UndirectedComponents()
	if count != 3 {
		t.Fatalf("count=%d want 3", count)
	}
	if label[0] != label[1] || label[3] != label[4] || label[0] == label[2] || label[2] == label[3] {
		t.Errorf("labels=%v", label)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g2.Name() != g.Name() || g2.N() != g.N() || !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Errorf("round trip mismatch: %v vs %v", g2.Edges(), g.Edges())
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	for _, s := range []string{
		`{"name":"x","n":-1,"edges":[]}`,
		`{"name":"x","n":2,"edges":[[0,5]]}`,
		`{"name":"x","n":2,"edges":[[0,1],[1,0]]}`, // cycle
		`not json`,
	} {
		if _, err := ReadJSON(strings.NewReader(s)); err == nil {
			t.Errorf("ReadJSON(%q) succeeded, want error", s)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	s := buf.String()
	for _, frag := range []string{"digraph", "0 -> 1", "2 -> 3"} {
		if !strings.Contains(s, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, s)
		}
	}
}

func TestRandomTopoOrderValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 2+rng.Intn(40), 0.2)
		order := g.RandomTopoOrder(rng)
		if !g.IsTopological(order) {
			t.Fatalf("trial %d: random order invalid: %v", trial, order)
		}
	}
}

func TestDFSTopoOrderValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 2+rng.Intn(40), 0.25)
		if !g.IsTopological(g.DFSTopoOrder()) {
			t.Fatalf("trial %d: DFS order invalid", trial)
		}
	}
}

func TestEdgeCountsConsistent(t *testing.T) {
	// Property: sum of out-degrees == sum of in-degrees == M, on random DAGs.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 1+r.Intn(30), 0.3)
		sumOut, sumIn := 0, 0
		for v := 0; v < g.N(); v++ {
			sumOut += g.OutDeg(v)
			sumIn += g.InDeg(v)
		}
		return sumOut == g.M() && sumIn == g.M()
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSuccPredMirror(t *testing.T) {
	// Property: w in Succ(v) iff v in Pred(w).
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 1+r.Intn(30), 0.3)
		fwd := map[[2]int]bool{}
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Succ(v) {
				fwd[[2]int{v, int(w)}] = true
			}
		}
		back := map[[2]int]bool{}
		for w := 0; w < g.N(); w++ {
			for _, v := range g.Pred(w) {
				back[[2]int{int(v), w}] = true
			}
		}
		return reflect.DeepEqual(fwd, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAncestorsDescendantsDuality(t *testing.T) {
	// Property: u is an ancestor of v iff v is a descendant of u.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 2+rng.Intn(25), 0.25)
		n := g.N()
		u, v := rng.Intn(n), rng.Intn(n)
		if g.Ancestors(v)[u] != g.Descendants(u)[v] {
			t.Fatalf("duality violated for u=%d v=%d", u, v)
		}
	}
}
