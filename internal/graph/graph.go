// Package graph provides the directed computation-graph substrate used by
// every other package in this module.
//
// A computation graph is a DAG: each vertex is a single operation (inputs and
// outputs included), and an edge (u, v) means operation v consumes the result
// of operation u. Graphs are immutable once built; construct them with a
// Builder. Adjacency is stored in flattened compressed form so that graphs
// with hundreds of thousands of vertices stay cache-friendly.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable directed acyclic computation graph. Vertices are
// identified by dense integer IDs in [0, N()).
type Graph struct {
	name string

	// Flattened adjacency: successors of v are succ[succPtr[v]:succPtr[v+1]],
	// predecessors are pred[predPtr[v]:predPtr[v+1]]. Both are sorted and
	// deduplicated.
	succPtr []int32
	succ    []int32
	predPtr []int32
	pred    []int32

	m int // number of (deduplicated) directed edges
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	name  string
	edges [][2]int32
	n     int
}

// NewBuilder returns a Builder with capacity hints for n vertices and m edges.
func NewBuilder(n, m int) *Builder {
	b := &Builder{}
	if m > 0 {
		b.edges = make([][2]int32, 0, m)
	}
	if n > 0 {
		b.n = 0
	}
	return b
}

// SetName sets the human-readable name recorded on the built graph.
func (b *Builder) SetName(name string) { b.name = name }

// AddVertex allocates a fresh vertex and returns its ID.
func (b *Builder) AddVertex() int {
	id := b.n
	b.n++
	return id
}

// AddVertices allocates k fresh vertices and returns the first ID; the
// allocated IDs are contiguous.
func (b *Builder) AddVertices(k int) int {
	if k < 0 {
		//lint:ignore no-panic builder misuse is a programmer error; builders have no error channel by design
		panic("graph: AddVertices with negative count")
	}
	id := b.n
	b.n += k
	return id
}

// NumVertices reports the number of vertices allocated so far.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the directed edge (u, v): operation v consumes u's result.
// Self-loops are rejected immediately; duplicate edges are deduplicated at
// Build time (an operation that uses the same operand twice, such as x*x,
// contributes a single graph edge).
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) references vertex outside [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
	return nil
}

// MustEdge is AddEdge but panics on error; intended for generators whose
// indices are correct by construction.
func (b *Builder) MustEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		//lint:ignore no-panic Must* contract: the panicking variant exists for generators whose indices are correct by construction
		panic(err)
	}
}

// Build validates acyclicity and returns the immutable graph. The builder
// may be reused afterwards (its accumulated state is unchanged).
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	// Sort and deduplicate edges.
	edges := make([][2]int32, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	w := 0
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		edges[w] = e
		w++
	}
	edges = edges[:w]

	g := &Graph{name: b.name, m: len(edges)}
	g.succPtr = make([]int32, n+1)
	g.predPtr = make([]int32, n+1)
	for _, e := range edges {
		g.succPtr[e[0]+1]++
		g.predPtr[e[1]+1]++
	}
	for v := 0; v < n; v++ {
		g.succPtr[v+1] += g.succPtr[v]
		g.predPtr[v+1] += g.predPtr[v]
	}
	g.succ = make([]int32, len(edges))
	g.pred = make([]int32, len(edges))
	sNext := make([]int32, n)
	pNext := make([]int32, n)
	for _, e := range edges { // edges sorted by (u,v): succ lists come out sorted
		u, v := e[0], e[1]
		g.succ[g.succPtr[u]+sNext[u]] = v
		sNext[u]++
		g.pred[g.predPtr[v]+pNext[v]] = u
		pNext[v]++
	}
	for v := 0; v < n; v++ { // pred lists need their own sort
		s := g.pred[g.predPtr[v]:g.predPtr[v+1]]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}

	if order := g.TopoOrder(); order == nil {
		return nil, fmt.Errorf("graph: %q contains a cycle", b.name)
	}
	return g, nil
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		//lint:ignore no-panic Must* contract: the panicking variant exists for generators whose indices are correct by construction
		panic(err)
	}
	return g
}

// Name returns the graph's human-readable name.
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.succPtr) - 1 }

// M returns the number of directed edges.
func (g *Graph) M() int { return g.m }

// Succ returns the successors (consumers) of v in increasing order. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) Succ(v int) []int32 { return g.succ[g.succPtr[v]:g.succPtr[v+1]] }

// Pred returns the predecessors (operands) of v in increasing order. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) Pred(v int) []int32 { return g.pred[g.predPtr[v]:g.predPtr[v+1]] }

// OutDeg returns the out-degree of v.
func (g *Graph) OutDeg(v int) int { return int(g.succPtr[v+1] - g.succPtr[v]) }

// InDeg returns the in-degree of v.
func (g *Graph) InDeg(v int) int { return int(g.predPtr[v+1] - g.predPtr[v]) }

// Deg returns the total (in + out) degree of v.
func (g *Graph) Deg(v int) int { return g.OutDeg(v) + g.InDeg(v) }

// MaxOutDeg returns the maximum out-degree over all vertices (0 for the
// empty graph).
func (g *Graph) MaxOutDeg() int {
	best := 0
	for v := 0; v < g.N(); v++ {
		if d := g.OutDeg(v); d > best {
			best = d
		}
	}
	return best
}

// MaxInDeg returns the maximum in-degree over all vertices.
func (g *Graph) MaxInDeg() int {
	best := 0
	for v := 0; v < g.N(); v++ {
		if d := g.InDeg(v); d > best {
			best = d
		}
	}
	return best
}

// MaxDeg returns the maximum total degree over all vertices.
func (g *Graph) MaxDeg() int {
	best := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Deg(v); d > best {
			best = d
		}
	}
	return best
}

// Sources returns the vertices with in-degree zero (the computation's
// inputs), in increasing order.
func (g *Graph) Sources() []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if g.InDeg(v) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns the vertices with out-degree zero (the computation's
// outputs), in increasing order.
func (g *Graph) Sinks() []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if g.OutDeg(v) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// TopoOrder returns a deterministic topological order (Kahn's algorithm with
// a smallest-ID-first tie break), or nil if the graph has a cycle. Builders
// reject cyclic graphs, so for built graphs the result is always non-nil.
func (g *Graph) TopoOrder() []int {
	n := g.N()
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDeg(v))
	}
	// Min-heap over ready vertices for determinism.
	heap := make([]int32, 0, n)
	push := func(x int32) {
		heap = append(heap, x)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() int32 {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < last && heap[l] < heap[s] {
				s = l
			}
			if r < last && heap[r] < heap[s] {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			push(int32(v))
		}
	}
	order := make([]int, 0, n)
	for len(heap) > 0 {
		v := pop()
		order = append(order, int(v))
		for _, w := range g.Succ(int(v)) {
			indeg[w]--
			if indeg[w] == 0 {
				push(w)
			}
		}
	}
	if len(order) != n {
		return nil
	}
	return order
}

// IsTopological reports whether order is a permutation of the vertices that
// places every vertex after all of its predecessors.
func (g *Graph) IsTopological(order []int) bool {
	n := g.N()
	if len(order) != n {
		return false
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || v >= n || pos[v] != -1 {
			return false
		}
		pos[v] = i
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Succ(v) {
			if pos[v] >= pos[int(w)] {
				return false
			}
		}
	}
	return true
}

// Ancestors returns a boolean mask of the vertices from which v is reachable
// (v itself excluded).
func (g *Graph) Ancestors(v int) []bool {
	mask := make([]bool, g.N())
	stack := []int32{}
	for _, p := range g.Pred(v) {
		if !mask[p] {
			mask[p] = true
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Pred(int(u)) {
			if !mask[p] {
				mask[p] = true
				stack = append(stack, p)
			}
		}
	}
	return mask
}

// Descendants returns a boolean mask of the vertices reachable from v
// (v itself excluded).
func (g *Graph) Descendants(v int) []bool {
	mask := make([]bool, g.N())
	stack := []int32{}
	for _, s := range g.Succ(v) {
		if !mask[s] {
			mask[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succ(int(u)) {
			if !mask[s] {
				mask[s] = true
				stack = append(stack, s)
			}
		}
	}
	return mask
}

// UndirectedComponents labels each vertex with the ID of its weakly
// connected component and returns (labels, componentCount). Component IDs
// are dense, in order of smallest contained vertex.
func (g *Graph) UndirectedComponents() ([]int, int) {
	n := g.N()
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	var stack []int32
	for v := 0; v < n; v++ {
		if label[v] != -1 {
			continue
		}
		label[v] = next
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Succ(int(u)) {
				if label[w] == -1 {
					label[w] = next
					stack = append(stack, w)
				}
			}
			for _, w := range g.Pred(int(u)) {
				if label[w] == -1 {
					label[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return label, next
}

// Edges returns a copy of the edge list in sorted order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succ(u) {
			out = append(out, [2]int{u, int(v)})
		}
	}
	return out
}
