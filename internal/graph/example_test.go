package graph_test

import (
	"fmt"
	"os"

	"graphio/internal/graph"
)

// Example builds the paper's Figure 2 seven-vertex graph by hand and
// inspects its structure.
func Example() {
	b := graph.NewBuilder(7, 8)
	b.SetName("figure-2")
	b.AddVertices(7)
	for _, e := range [][2]int{{0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 6}, {5, 6}} {
		b.MustEdge(e[0], e[1])
	}
	g := b.MustBuild()
	fmt.Printf("n=%d m=%d sources=%v sinks=%v\n", g.N(), g.M(), g.Sources(), g.Sinks())
	fmt.Println("order:", g.TopoOrder())
	// Output:
	// n=7 m=8 sources=[0 1] sinks=[6]
	// order: [0 1 2 3 4 5 6]
}

// ExampleGraph_WriteDOT emits Graphviz for visual inspection.
func ExampleGraph_WriteDOT() {
	b := graph.NewBuilder(2, 1)
	b.SetName("edge")
	b.AddVertices(2)
	b.MustEdge(0, 1)
	b.MustBuild().WriteDOT(os.Stdout)
	// Output:
	// digraph "edge" {
	//   rankdir=TB;
	//   node [shape=circle];
	//   0 -> 1;
	// }
}
