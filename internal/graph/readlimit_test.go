package graph

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestReadJSONLimitTypedSizeError(t *testing.T) {
	// A graph whose serialization exceeds the limit must fail with
	// *SizeError, not a generic decode error.
	var sb strings.Builder
	sb.WriteString(`{"n":50,"edges":[`)
	for i := 0; i < 49; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "[%d,%d]", i, i+1)
	}
	sb.WriteString("]}")
	input := sb.String()

	if _, err := ReadJSONLimit(strings.NewReader(input), int64(len(input))); err != nil {
		t.Fatalf("input exactly at the limit rejected: %v", err)
	}
	_, err := ReadJSONLimit(strings.NewReader(input), int64(len(input))-1)
	var se *SizeError
	if !errors.As(err, &se) {
		t.Fatalf("over-limit input: err = %v, want *SizeError", err)
	}
	if se.Limit != int64(len(input))-1 {
		t.Errorf("SizeError.Limit = %d, want %d", se.Limit, len(input)-1)
	}
	// Truncated input under the limit stays a decode error.
	_, err = ReadJSONLimit(strings.NewReader(input[:20]), 1<<20)
	if errors.As(err, &se) {
		t.Error("ordinary truncation misreported as a size-limit hit")
	}
	if err == nil {
		t.Error("truncated input accepted")
	}
}

func TestReadJSONDuplicateVertexTypedError(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"n":3,"vertices":[0,1,1],"edges":[]}`))
	var de *DuplicateVertexError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DuplicateVertexError", err)
	}
	if de.ID != 1 {
		t.Errorf("DuplicateVertexError.ID = %d, want 1", de.ID)
	}
	// A valid explicit vertex list is accepted.
	g, err := ReadJSON(strings.NewReader(`{"n":3,"vertices":[2,0,1],"edges":[[0,1]]}`))
	if err != nil {
		t.Fatalf("valid vertex list rejected: %v", err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Errorf("graph shape = (%d,%d), want (3,1)", g.N(), g.M())
	}
	// Wrong-length and out-of-range lists are rejected (untyped).
	for _, bad := range []string{
		`{"n":3,"vertices":[0,1],"edges":[]}`,
		`{"n":3,"vertices":[0,1,7],"edges":[]}`,
		`{"n":2,"vertices":[0,-1],"edges":[]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted invalid vertex list %s", bad)
		}
	}
}

func TestReadJSONUnknownVertexEdgeTypedError(t *testing.T) {
	for _, tc := range []struct {
		input string
		u, v  int
	}{
		{`{"n":2,"edges":[[0,5]]}`, 0, 5},
		{`{"n":2,"edges":[[-1,0]]}`, -1, 0},
		{`{"n":0,"edges":[[0,0]]}`, 0, 0},
	} {
		_, err := ReadJSON(strings.NewReader(tc.input))
		var ee *EdgeVertexError
		if !errors.As(err, &ee) {
			t.Fatalf("%s: err = %v, want *EdgeVertexError", tc.input, err)
		}
		if ee.U != tc.u || ee.V != tc.v {
			t.Errorf("%s: edge = (%d,%d), want (%d,%d)", tc.input, ee.U, ee.V, tc.u, tc.v)
		}
	}
}
