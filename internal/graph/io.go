package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation: a name, a vertex count, and an
// edge list. It is deliberately simple so that graphs can be produced and
// consumed by other tools.
type jsonGraph struct {
	Name  string   `json:"name"`
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// WriteJSON serializes g to w in the module's JSON graph format.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.name, N: g.N(), Edges: g.Edges()}
	enc := json.NewEncoder(w)
	return enc.Encode(&jg)
}

// ReadJSON parses a graph in the module's JSON format and validates it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decoding JSON: %w", err)
	}
	if jg.N < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", jg.N)
	}
	// Refuse absurd counts before allocating: a hand-written header could
	// otherwise demand gigabytes for a graph with no edges.
	const maxN = 1 << 28
	if jg.N > maxN {
		return nil, fmt.Errorf("graph: vertex count %d exceeds the parser limit %d", jg.N, maxN)
	}
	b := NewBuilder(jg.N, len(jg.Edges))
	b.SetName(jg.Name)
	b.AddVertices(jg.N)
	for _, e := range jg.Edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// WriteDOT emits the graph in Graphviz DOT format for visual inspection.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", g.name)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succ(u) {
			fmt.Fprintf(bw, "  %d -> %d;\n", u, v)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
