package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// DefaultReadLimit caps how many input bytes ReadJSON will consume: 64 MiB,
// comfortably above the largest graph the experiments serialize while
// keeping a hostile or corrupt stream from ballooning memory. Callers with
// bigger graphs use ReadJSONLimit.
const DefaultReadLimit int64 = 64 << 20

// SizeError reports input that exceeded the parser's byte limit.
type SizeError struct {
	Limit int64
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("graph: input exceeds the %d-byte read limit", e.Limit)
}

// DuplicateVertexError reports an explicit vertex list naming the same
// vertex ID twice.
type DuplicateVertexError struct {
	ID int
}

func (e *DuplicateVertexError) Error() string {
	return fmt.Sprintf("graph: duplicate vertex id %d in vertex list", e.ID)
}

// EdgeVertexError reports an edge referencing a vertex outside [0, N).
type EdgeVertexError struct {
	U, V int // the offending edge
	N    int // the declared vertex count
}

func (e *EdgeVertexError) Error() string {
	return fmt.Sprintf("graph: edge (%d,%d) references vertex outside [0,%d)", e.U, e.V, e.N)
}

// jsonGraph is the on-disk representation: a name, a vertex count, and an
// edge list. It is deliberately simple so that graphs can be produced and
// consumed by other tools. Vertices, when present, lists explicit vertex
// IDs and must be a permutation of 0..n-1; it exists so external producers
// that emit ID lists get duplicate/range validation instead of silent
// acceptance.
type jsonGraph struct {
	Name     string   `json:"name"`
	N        int      `json:"n"`
	Vertices []int    `json:"vertices,omitempty"`
	Edges    [][2]int `json:"edges"`
}

// WriteJSON serializes g to w in the module's JSON graph format.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.name, N: g.N(), Edges: g.Edges()}
	enc := json.NewEncoder(w)
	return enc.Encode(&jg)
}

// ReadJSON parses a graph in the module's JSON format and validates it,
// reading at most DefaultReadLimit bytes (*SizeError beyond that).
func ReadJSON(r io.Reader) (*Graph, error) {
	return ReadJSONLimit(r, DefaultReadLimit)
}

// ReadJSONLimit is ReadJSON with an explicit byte limit (non-positive
// limits fall back to DefaultReadLimit). Malformed input fails with a
// decode error; input over the limit with *SizeError; a duplicate ID in an
// explicit vertex list with *DuplicateVertexError; an edge naming an
// unknown vertex with *EdgeVertexError.
func ReadJSONLimit(r io.Reader, limit int64) (*Graph, error) {
	if limit <= 0 {
		limit = DefaultReadLimit
	}
	// Read one byte past the limit so "exactly at the cap" stays legal and
	// anything larger is distinguishable from genuine truncation.
	cr := &countingReader{r: io.LimitReader(r, limit+1)}
	var jg jsonGraph
	dec := json.NewDecoder(cr)
	if err := dec.Decode(&jg); err != nil {
		if cr.n > limit {
			return nil, &SizeError{Limit: limit}
		}
		return nil, fmt.Errorf("graph: decoding JSON: %w", err)
	}
	if cr.n > limit {
		return nil, &SizeError{Limit: limit}
	}
	if jg.N < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", jg.N)
	}
	// Refuse absurd counts before allocating: a hand-written header could
	// otherwise demand gigabytes for a graph with no edges.
	const maxN = 1 << 28
	if jg.N > maxN {
		return nil, fmt.Errorf("graph: vertex count %d exceeds the parser limit %d", jg.N, maxN)
	}
	if jg.Vertices != nil {
		if len(jg.Vertices) != jg.N {
			return nil, fmt.Errorf("graph: vertex list has %d entries, n is %d", len(jg.Vertices), jg.N)
		}
		seen := make([]bool, jg.N)
		for _, id := range jg.Vertices {
			if id < 0 || id >= jg.N {
				return nil, fmt.Errorf("graph: vertex id %d outside [0,%d)", id, jg.N)
			}
			if seen[id] {
				return nil, &DuplicateVertexError{ID: id}
			}
			seen[id] = true
		}
	}
	b := NewBuilder(jg.N, len(jg.Edges))
	b.SetName(jg.Name)
	b.AddVertices(jg.N)
	for _, e := range jg.Edges {
		if e[0] < 0 || e[0] >= jg.N || e[1] < 0 || e[1] >= jg.N {
			return nil, &EdgeVertexError{U: e[0], V: e[1], N: jg.N}
		}
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// countingReader tracks how many bytes the decoder actually consumed, so
// a limit hit can be told apart from ordinarily truncated input.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// WriteDOT emits the graph in Graphviz DOT format for visual inspection.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", g.name)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succ(u) {
			fmt.Fprintf(bw, "  %d -> %d;\n", u, v)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
