package graph

import (
	"errors"
	"testing"
)

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 8 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriteJSONPropagatesWriterErrors(t *testing.T) {
	g := buildDiamond(t)
	if err := g.WriteJSON(&failWriter{}); err == nil {
		t.Error("writer failure not propagated")
	}
}

func TestWriteDOTPropagatesWriterErrors(t *testing.T) {
	g := buildDiamond(t)
	if err := g.WriteDOT(&failWriter{}); err == nil {
		t.Error("writer failure not propagated")
	}
}
