package graph

import (
	"reflect"
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	g := buildDiamond(t)
	sub, err := g.InducedSubgraph([]int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 {
		t.Fatalf("N=%d", sub.N())
	}
	// Edges kept: 0→1 (new 0→1), 1→3 (new 1→2). Edge 0→2 and 2→3 dropped.
	want := [][2]int{{0, 1}, {1, 2}}
	if got := sub.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("edges=%v want %v", got, want)
	}
}

func TestInducedSubgraphReordersIDs(t *testing.T) {
	g := buildDiamond(t)
	sub, err := g.InducedSubgraph([]int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.M() != 0 {
		t.Errorf("no edge between 0 and 3, got %v", sub.Edges())
	}
}

func TestInducedSubgraphRejectsBadInput(t *testing.T) {
	g := buildDiamond(t)
	if _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if _, err := g.InducedSubgraph([]int{7}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if sub, err := g.InducedSubgraph(nil); err != nil || sub.N() != 0 {
		t.Error("empty selection should give the empty graph")
	}
}
