package graph

import "fmt"

// InducedSubgraph returns the subgraph induced by the given vertices. The
// i-th entry of vs becomes vertex i of the result; the returned graph keeps
// only edges with both endpoints in vs. Duplicate or out-of-range vertices
// are rejected.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, error) {
	newID := make(map[int]int, len(vs))
	for i, v := range vs {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("graph: induced subgraph vertex %d out of range", v)
		}
		if _, dup := newID[v]; dup {
			return nil, fmt.Errorf("graph: induced subgraph vertex %d duplicated", v)
		}
		newID[v] = i
	}
	b := NewBuilder(len(vs), 0)
	b.SetName(g.name + "-induced")
	b.AddVertices(len(vs))
	for _, u := range vs {
		for _, w := range g.Succ(u) {
			if j, ok := newID[int(w)]; ok {
				b.MustEdge(newID[u], j)
			}
		}
	}
	return b.Build()
}
