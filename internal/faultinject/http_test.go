package faultinject_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphio/internal/faultinject"
)

func transportClient(t *testing.T, tr *faultinject.Transport) (*http.Client, *httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		_, _ = io.WriteString(w, "0123456789abcdef")
	}))
	t.Cleanup(srv.Close)
	return &http.Client{Transport: tr}, srv, &served
}

// Drop must deliver the request to the server (the half-open case) and
// destroy only the client's view of the response.
func TestTransportDropLosesResponseNotRequest(t *testing.T) {
	tr := &faultinject.Transport{DropFrom: 2, Until: 2}
	client, srv, served := transportClient(t, tr)

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("call 1: %v, want clean", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()

	if _, err := client.Get(srv.URL); err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("call 2: err = %v, want wrapped ErrInjected", err)
	}
	if got := served.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (drop loses the response, not the request)", got)
	}

	// Past the Until window the transport is transparent again: a retry
	// succeeds, which is the transient-fault contract.
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatalf("call 3 (past window): %v, want clean", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || string(body) != "0123456789abcdef" {
		t.Fatalf("call 3 body = %q, %v; want full body", body, err)
	}
	if tr.Faults() != 1 {
		t.Errorf("Faults = %d, want 1", tr.Faults())
	}
}

// Truncate must yield the prefix and then a read error, never a clean EOF.
func TestTransportTruncateTearsBody(t *testing.T) {
	tr := &faultinject.Transport{TruncateFrom: 1, TruncateBytes: 4}
	client, srv, _ := transportClient(t, tr)

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("read err = %v, want wrapped ErrInjected", err)
	}
	if string(body) != "0123" {
		t.Fatalf("torn body = %q, want the 4-byte prefix", body)
	}
}

// A truncation allowance larger than the body is not a fault the client
// can observe: the body ends with a normal EOF inside the allowance.
func TestTransportTruncateBeyondBodyIsClean(t *testing.T) {
	tr := &faultinject.Transport{TruncateFrom: 1, TruncateBytes: 1 << 20}
	client, srv, _ := transportClient(t, tr)

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || string(body) != "0123456789abcdef" {
		t.Fatalf("body = %q, %v; want full body, nil error", body, err)
	}
}

// Delay holds the response back but delivers it intact.
func TestTransportDelayDeliversLate(t *testing.T) {
	tr := &faultinject.Transport{DelayFrom: 1, Delay: 30 * time.Millisecond}
	client, srv, _ := transportClient(t, tr)

	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || !strings.HasPrefix(string(body), "0123") {
		t.Fatalf("delayed body = %q, %v; want intact", body, err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("response in %v, want ≥ the injected 30ms delay", elapsed)
	}
}

// A delay injected past the client's deadline must surface as the client's
// own context.DeadlineExceeded — the failure mode deadline-handling code
// actually sees from a slow network, distinct from a dropped response.
func TestTransportDelayPastDeadlineExpiresContext(t *testing.T) {
	tr := &faultinject.Transport{DelayFrom: 1, Delay: 200 * time.Millisecond}
	client, srv, served := transportClient(t, tr)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		t.Fatal("delayed call succeeded, want the client deadline to expire first")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed >= 200*time.Millisecond {
		t.Fatalf("client blocked %v, want release at its own ~20ms deadline, not the full injected delay", elapsed)
	}
	// The request still reached the server — like Drop, the delay destroys
	// only the client's view, so retry logic must tolerate double delivery.
	if got := served.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// The zero value (plus a Base) must be a transparent pass-through, and the
// call counter must tick regardless.
func TestTransportZeroValuePassesThrough(t *testing.T) {
	tr := &faultinject.Transport{}
	client, srv, _ := transportClient(t, tr)
	for i := 0; i < 3; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("call %d: %v", i+1, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	if tr.Calls() != 3 || tr.Faults() != 0 {
		t.Fatalf("Calls, Faults = %d, %d; want 3, 0", tr.Calls(), tr.Faults())
	}
}
