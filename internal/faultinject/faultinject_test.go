package faultinject

import (
	"math"
	"testing"
	"time"
)

// ident is a 3-dimensional identity operator.
type ident struct{}

func (ident) Dim() int { return 3 }
func (ident) MatVec(dst, src []float64) {
	copy(dst, src)
}

func apply(op *Op) []float64 {
	dst := make([]float64, 3)
	op.MatVec(dst, []float64{1, 2, 3})
	return dst
}

func TestThresholdsAreOneBasedAndCounted(t *testing.T) {
	op := &Op{A: ident{}, NaNFrom: 2}
	if out := apply(op); math.IsNaN(out[0]) || math.IsNaN(out[1]) || math.IsNaN(out[2]) {
		t.Fatalf("call 1 faulted before NaNFrom=2: %v", out)
	}
	out := apply(op)
	nans := 0
	for _, v := range out {
		if math.IsNaN(v) {
			nans++
		}
	}
	if nans != 1 {
		t.Fatalf("call 2 injected %d NaNs, want exactly 1: %v", nans, out)
	}
	if op.Calls() != 2 || op.Faults() != 1 {
		t.Errorf("Calls = %d, Faults = %d, want 2 and 1", op.Calls(), op.Faults())
	}
}

func TestUntilWindowCloses(t *testing.T) {
	op := &Op{A: ident{}, InfFrom: 1, Until: 2}
	for i := 0; i < 2; i++ {
		out := apply(op)
		if !math.IsInf(out[int(op.Calls())%3], 1) {
			t.Fatalf("call %d inside the window not poisoned: %v", i+1, out)
		}
	}
	out := apply(op)
	for i, v := range out {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("call 3 is past Until=2 but out[%d] = %v", i, v)
		}
	}
	if op.Faults() != 2 {
		t.Errorf("Faults = %d, want 2", op.Faults())
	}
}

func TestNoiseIsDeterministicAndFinite(t *testing.T) {
	a := &Op{A: ident{}, NoiseFrom: 1, NoiseAmp: 5}
	b := &Op{A: ident{}, NoiseFrom: 1, NoiseAmp: 5}
	for call := 0; call < 4; call++ {
		outA, outB := apply(a), apply(b)
		for i := range outA {
			if outA[i] != outB[i] {
				t.Fatalf("call %d element %d differs across identical injectors: %v vs %v",
					call+1, i, outA[i], outB[i])
			}
			if math.IsNaN(outA[i]) || math.IsInf(outA[i], 0) {
				t.Fatalf("noise produced a non-finite value: %v", outA[i])
			}
			clean := float64(i + 1)
			if d := math.Abs(outA[i] - clean); d == 0 || d > 5 {
				t.Fatalf("noise delta %v outside (0, NoiseAmp]", d)
			}
		}
	}
}

func TestStallSleepsPerCall(t *testing.T) {
	op := &Op{A: ident{}, StallFrom: 1, Stall: 5 * time.Millisecond}
	start := time.Now()
	apply(op)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("stalled call returned in %v, want ≥ 5ms", elapsed)
	}
}
