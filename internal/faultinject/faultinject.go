// Package faultinject wraps a linalg.Operator to deterministically inject
// numerical and timing faults into eigensolves: NaN/Inf poisoning, additive
// noise that forces non-convergence, and per-call stalls that exercise
// deadline and cancellation paths. Everything is driven by call counts, so
// a faulted run is exactly reproducible — the same solve sees the same
// faults at the same matvec applications every time.
//
// The package exists so the escalation chain in internal/core and the
// cancellation plumbing across the pipeline can be tested end to end
// without contriving pathological graphs: wrap the operator (e.g. via
// core.Options.WrapOperator), dial in a fault window, and assert on how the
// pipeline degrades. It is stdlib-only and safe for concurrent use.
package faultinject

import (
	"math"
	"sync/atomic"
	"time"

	"graphio/internal/linalg"
	"graphio/internal/obs"
)

// Op wraps an Operator and injects faults into MatVec by call number.
// Call numbers are 1-based; a threshold field of 0 disables that fault.
// The zero window (Until == 0) keeps a fault active forever once it starts.
type Op struct {
	// A is the wrapped operator. Required.
	A linalg.Operator

	// NaNFrom, when > 0, overwrites one output element with NaN on every
	// MatVec call numbered ≥ NaNFrom (within the Until window).
	NaNFrom int64
	// InfFrom, when > 0, overwrites one output element with +Inf likewise.
	InfFrom int64
	// NoiseFrom, when > 0, adds deterministic pseudo-random noise of
	// amplitude NoiseAmp to every output element on calls ≥ NoiseFrom.
	// Noise large enough to swamp the residual tolerance forces iterative
	// solvers into non-convergence without ever producing a non-finite
	// value — the "plausible garbage" failure mode.
	NoiseFrom int64
	// NoiseAmp is the noise amplitude. Default 1.0 when NoiseFrom is set.
	NoiseAmp float64
	// StallFrom, when > 0, sleeps Stall on every call ≥ StallFrom —
	// simulating an operator that has slowed to a crawl so deadlines and
	// cancellation fire mid-solve.
	StallFrom int64
	// Stall is the per-call sleep for StallFrom. Default 1ms when
	// StallFrom is set.
	Stall time.Duration
	// Until, when > 0, is the last call number (inclusive) at which any
	// fault fires; later calls pass through untouched. This models
	// transient faults: early attempts fail, a retry succeeds.
	Until int64

	calls  atomic.Int64
	faults atomic.Int64
}

// Dim implements linalg.Operator.
func (o *Op) Dim() int { return o.A.Dim() }

// MatVec implements linalg.Operator, applying the wrapped operator and then
// whatever faults are armed for this call number.
func (o *Op) MatVec(dst, src []float64) {
	n := o.calls.Add(1)
	o.A.MatVec(dst, src)
	if o.Until > 0 && n > o.Until {
		return
	}
	faulted := false
	if o.StallFrom > 0 && n >= o.StallFrom {
		d := o.Stall
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
		faulted = true
	}
	if o.NoiseFrom > 0 && n >= o.NoiseFrom && len(dst) > 0 {
		amp := o.NoiseAmp
		if linalg.EqZero(amp) {
			amp = 1.0
		}
		for i := range dst {
			dst[i] += amp * unitNoise(uint64(n), uint64(i))
		}
		faulted = true
	}
	if o.NaNFrom > 0 && n >= o.NaNFrom && len(dst) > 0 {
		dst[int(n)%len(dst)] = math.NaN()
		faulted = true
	}
	if o.InfFrom > 0 && n >= o.InfFrom && len(dst) > 0 {
		dst[int(n)%len(dst)] = math.Inf(1)
		faulted = true
	}
	if faulted {
		o.faults.Add(1)
		obs.Inc("faultinject.faulted_matvecs")
	}
}

// Calls returns how many MatVec applications the wrapped operator has seen.
func (o *Op) Calls() int64 { return o.calls.Load() }

// Faults returns how many MatVec applications had at least one fault
// injected.
func (o *Op) Faults() int64 { return o.faults.Load() }

// unitNoise maps (call, index) to a deterministic value in [-1, 1) with a
// splitmix64-style mix — no shared RNG state, so concurrent solvers and
// repeated attempts see identical noise for identical call numbers.
func unitNoise(call, idx uint64) float64 {
	z := call*0x9E3779B97F4A7C15 + idx + 0x632BE59BD9B4E019
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	// Top 53 bits → [0,1), then shift to [-1,1).
	return float64(z>>11)/float64(1<<53)*2 - 1
}
