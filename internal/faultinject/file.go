package faultinject

import (
	"errors"
	"fmt"
	"io"

	"graphio/internal/obs"
)

// ErrInjected is the default error every injected filesystem fault
// returns; tests assert on it with errors.Is.
var ErrInjected = errors.New("faultinject: injected filesystem fault")

// File wraps a file handle (anything with Write/Sync/Close — the surface
// internal/persist stages its atomic writes through) and fails
// deterministically, modeling a disk that dies partway through an
// artifact write. Thresholds are fixed at construction, so a faulted run
// is exactly reproducible:
//
//   - FailWriteAfter > 0: the write that would carry the cumulative byte
//     count past the threshold is truncated at the threshold and fails —
//     a torn write, the exact shape a crash or full disk produces.
//   - FailOnSync > 0: the n-th Sync call fails without syncing, the
//     moment a commit sequence discovers the data never reached the
//     platter.
//   - FailOnClose: every Close fails (after closing the underlying file,
//     so tests do not leak descriptors).
//
// Wire it into persist via persist.WrapFile to drive crash-consistency
// tests of every artifact writer in the module.
type File struct {
	// F is the wrapped handle. Required.
	F interface {
		io.Writer
		Sync() error
		Close() error
	}

	FailWriteAfter int64 // cumulative byte threshold; 0 = writes never fail
	FailOnSync     int   // 1-based Sync call that fails; 0 = never
	FailOnClose    bool
	Err            error // returned by injected failures; default ErrInjected

	written int64
	syncs   int
	faults  int
}

func (f *File) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// Write implements io.Writer. Once the cumulative byte count would pass
// FailWriteAfter, the write is truncated at the threshold (the prefix
// still reaches the underlying file — torn, like a real partial write)
// and the injected error is returned.
func (f *File) Write(p []byte) (int, error) {
	if f.FailWriteAfter > 0 && f.written+int64(len(p)) > f.FailWriteAfter {
		keep := f.FailWriteAfter - f.written
		if keep < 0 {
			keep = 0
		}
		n := 0
		if keep > 0 {
			n, _ = f.F.Write(p[:keep])
		}
		f.written += int64(n)
		f.fault()
		return n, fmt.Errorf("write of %d bytes cut at %d: %w", len(p), n, f.err())
	}
	n, err := f.F.Write(p)
	f.written += int64(n)
	return n, err
}

// Sync implements the persist.File surface, failing on call FailOnSync.
func (f *File) Sync() error {
	f.syncs++
	if f.FailOnSync > 0 && f.syncs == f.FailOnSync {
		f.fault()
		return fmt.Errorf("sync %d: %w", f.syncs, f.err())
	}
	return f.F.Sync()
}

// Close closes the underlying file and, when FailOnClose is set, reports
// the injected error anyway — the data's fate is unknown, which is the
// point.
func (f *File) Close() error {
	err := f.F.Close()
	if f.FailOnClose {
		f.fault()
		return fmt.Errorf("close: %w", f.err())
	}
	return err
}

// Faults returns how many faults this wrapper injected.
func (f *File) Faults() int { return f.faults }

func (f *File) fault() {
	f.faults++
	obs.Inc("faultinject.fs_faults")
}
