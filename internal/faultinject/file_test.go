package faultinject

import (
	"bytes"
	"errors"
	"testing"
)

// memFile is an in-memory stand-in for *os.File.
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closed = true; return nil }

func TestFileTornWrite(t *testing.T) {
	m := &memFile{}
	f := &File{F: m, FailWriteAfter: 10}
	if n, err := f.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("under-threshold write: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("6789012345"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("over-threshold write err = %v", err)
	}
	if n != 5 {
		t.Fatalf("torn write passed %d bytes through, want 5 (cut at the threshold)", n)
	}
	if got := m.buf.String(); got != "1234567890" {
		t.Fatalf("underlying saw %q, want exactly the first 10 bytes", got)
	}
	if f.Faults() != 1 {
		t.Errorf("faults = %d", f.Faults())
	}
	// Every later write fails too: the disk stays dead.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("write after threshold = %v", err)
	}
}

func TestFileSyncAndCloseFaults(t *testing.T) {
	m := &memFile{}
	f := &File{F: m, FailOnSync: 2, FailOnClose: true}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync = %v, want injected", err)
	}
	if m.syncs != 1 {
		t.Errorf("underlying syncs = %d: the failing sync must not reach the file", m.syncs)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync: %v (only the configured call fails)", err)
	}
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close = %v, want injected", err)
	}
	if !m.closed {
		t.Error("underlying file left open by failing Close")
	}
}

func TestFileCustomError(t *testing.T) {
	custom := errors.New("ENOSPC at last")
	f := &File{F: &memFile{}, FailOnSync: 1, Err: custom}
	if err := f.Sync(); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom", err)
	}
}
