package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"graphio/internal/obs"
)

// Transport wraps an http.RoundTripper and injects network faults into
// responses, deterministically by request count — the HTTP sibling of Op
// (operator faults) and File (filesystem faults), so distributed-sweep
// failure modes are testable with the same call-window idiom as solver and
// disk failures. Request numbers are 1-based; a threshold of 0 disables
// that fault; Until, when > 0, is the last request (inclusive) any fault
// fires on, modeling transient network trouble that a retry outlasts.
//
// Faults model the three ways a result upload tears in practice:
//
//   - DropFrom: the request is still delivered to the server, but the
//     response is discarded and an error returned — the ACK was lost. This
//     is the nasty half-open case: the server may have committed the work,
//     so a client that retries will double-submit, exactly what
//     last-write-wins merge semantics must absorb.
//   - DelayFrom/Delay: the response is held back Delay before returning —
//     a slow network that pushes clients into their deadline handling. A
//     request context that expires mid-delay aborts the wait: the response
//     is discarded and the context's error returned, exactly what a real
//     transport reports when the peer is too slow for the caller's
//     deadline (the server still did the work — the half-open hazard
//     again).
//   - TruncateFrom/TruncateBytes: the response body is cut after
//     TruncateBytes bytes and the read fails with ErrInjected — a torn
//     transfer mid-body.
//
// A Transport is safe for concurrent use; the zero thresholds make the
// zero value (with a Base) a transparent pass-through.
type Transport struct {
	// Base handles the real round trip. nil means http.DefaultTransport.
	Base http.RoundTripper

	DropFrom      int64         // requests ≥ DropFrom lose their response
	DelayFrom     int64         // requests ≥ DelayFrom are delayed...
	Delay         time.Duration // ...by this much (default 1ms when armed)
	TruncateFrom  int64         // requests ≥ TruncateFrom get a cut body...
	TruncateBytes int64         // ...after this many bytes (default 0: immediately)
	Until         int64         // last faulted request; 0 = forever

	calls  atomic.Int64
	faults atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.calls.Add(1)
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if t.Until > 0 && n > t.Until {
		return resp, nil
	}
	if t.DelayFrom > 0 && n >= t.DelayFrom {
		d := t.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		t.fault()
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			// The caller's deadline beat the network: it never sees the
			// response the server already produced.
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			return nil, fmt.Errorf("response to %s %s delayed past the caller's deadline: %w", req.Method, req.URL.Path, req.Context().Err())
		}
	}
	if t.DropFrom > 0 && n >= t.DropFrom {
		// The server already saw and handled the request; only the client's
		// view of the outcome is destroyed.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		t.fault()
		return nil, fmt.Errorf("response to %s %s dropped: %w", req.Method, req.URL.Path, ErrInjected)
	}
	if t.TruncateFrom > 0 && n >= t.TruncateFrom {
		resp.Body = &truncatedBody{rc: resp.Body, remain: t.TruncateBytes}
		t.fault()
	}
	return resp, nil
}

// Calls returns how many requests the transport has carried.
func (t *Transport) Calls() int64 { return t.calls.Load() }

// Faults returns how many requests had at least one fault injected.
func (t *Transport) Faults() int64 { return t.faults.Load() }

func (t *Transport) fault() {
	t.faults.Add(1)
	obs.Inc("faultinject.http_faults")
}

// truncatedBody delivers at most remain bytes of the wrapped body, then
// fails the read with ErrInjected — a transfer torn mid-body rather than
// cleanly ended, so clients see an error, not a short-but-valid response.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("response body cut: %w", ErrInjected)
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == io.EOF {
		// The wrapped body ended inside the allowance: nothing to tear.
		return n, err
	}
	if b.remain <= 0 && err == nil {
		err = fmt.Errorf("response body cut after %d bytes: %w", n, ErrInjected)
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
