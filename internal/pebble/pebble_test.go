package pebble

import (
	"math/rand"
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
)

func randomDAG(rng *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.AddVertices(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestChainNeedsNoIO(t *testing.T) {
	g := gen.Chain(20)
	for _, M := range []int{1, 2, 5} {
		for _, pol := range []Policy{LRU, Belady} {
			res, err := SimulateNatural(g, M, pol)
			if err != nil {
				t.Fatalf("M=%d %v: %v", M, pol, err)
			}
			if res.Total() != 0 {
				t.Errorf("M=%d %v: chain incurred %d I/O", M, pol, res.Total())
			}
		}
	}
}

func TestDiamondSmallMemory(t *testing.T) {
	b := graph.NewBuilder(4, 4)
	b.AddVertices(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		b.MustEdge(e[0], e[1])
	}
	g := b.MustBuild()
	// M=2: order 0,1,2,3 — hold 0 while computing 1 costs an eviction of
	// either 0 or 1 before computing 2... check exact counts.
	res, err := SimulateNatural(g, 2, Belady)
	if err != nil {
		t.Fatal(err)
	}
	// With M=2 and Belady: after computing 1, memory {0,1}; computing 2
	// needs 0 (resident) plus a slot: evict 1 (write, still needed) or 0
	// (dead after this use). Consuming 0's use first lets 0 be dropped
	// free, so total I/O should be 0... but 1 is needed by 3 and stays.
	// Memory {1,2} → compute 3: both parents resident. Zero I/O.
	if res.Total() != 0 {
		t.Errorf("diamond M=2 Belady: %d I/O, want 0 (reads=%d writes=%d)", res.Total(), res.Reads, res.Writes)
	}
	// M=1 cannot hold the two operands of vertex 3.
	if _, err := SimulateNatural(g, 1, Belady); err == nil {
		t.Error("M=1 should be infeasible for in-degree 2")
	}
}

func TestSimulateValidation(t *testing.T) {
	g := gen.Chain(3)
	if _, err := Simulate(g, []int{0, 1, 2}, 0, LRU); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Simulate(g, []int{2, 1, 0}, 2, LRU); err == nil {
		t.Error("non-topological order accepted")
	}
}

func TestReadsRequireWrites(t *testing.T) {
	// Every read re-loads a previously written value, and every written
	// value is read at least once afterwards: writes ≤ reads.
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 3+rng.Intn(25), 0.3)
		M := g.MaxInDeg() + 1 + rng.Intn(3)
		for _, pol := range []Policy{LRU, Belady} {
			res, err := Simulate(g, g.RandomTopoOrder(rng), M, pol)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if res.Writes > res.Reads {
				t.Errorf("trial %d %v: writes %d > reads %d", trial, pol, res.Writes, res.Reads)
			}
		}
	}
}

func TestLargeMemoryMeansNoIO(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 2+rng.Intn(30), 0.3)
		res, err := SimulateNatural(g, g.N()+1, LRU)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total() != 0 {
			t.Errorf("trial %d: M > n incurred %d I/O", trial, res.Total())
		}
	}
}

func TestBeladyNoWorseThanLRUOnFFT(t *testing.T) {
	g := gen.FFT(5)
	order := g.TopoOrder()
	lru, err := Simulate(g, order, 4, LRU)
	if err != nil {
		t.Fatal(err)
	}
	bel, err := Simulate(g, order, 4, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if bel.Total() > lru.Total() {
		t.Errorf("Belady %d worse than LRU %d on the same order", bel.Total(), lru.Total())
	}
	if bel.Total() == 0 {
		t.Error("FFT(5) at M=4 should incur I/O")
	}
}

func TestBestOrderPicksFeasibleMinimum(t *testing.T) {
	g := gen.FFT(3)
	res, order, name, err := BestOrder(g, 4, Belady, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTopological(order) {
		t.Error("best order not topological")
	}
	if name == "" {
		t.Error("winner label empty")
	}
	// Re-simulating the returned order reproduces the reported result.
	again, err := Simulate(g, order, 4, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if again != res {
		t.Errorf("re-simulation %+v != reported %+v", again, res)
	}
}

func TestBestOrderInfeasible(t *testing.T) {
	g := gen.BellmanHeldKarp(3) // max in-degree 3
	if _, _, _, err := BestOrder(g, 2, LRU, 3, 1); err == nil {
		t.Error("M below max in-degree should fail")
	}
}

func TestExhaustiveBestTinyGraphs(t *testing.T) {
	g := gen.InnerProduct(2)
	best, order, err := ExhaustiveBest(g, 2, Belady, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTopological(order) {
		t.Error("exhaustive best order invalid")
	}
	// Heuristic search can never beat the exhaustive minimum.
	heur, _, _, err := BestOrder(g, 2, Belady, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Total() > heur.Total() {
		t.Errorf("exhaustive %d worse than heuristic %d", best.Total(), heur.Total())
	}
}

func TestExhaustiveBestOverflow(t *testing.T) {
	g := gen.ErdosRenyiDAG(12, 0.05, 3) // sparse: many linear extensions
	if _, _, err := ExhaustiveBest(g, 4, Belady, 10); err == nil {
		t.Error("order-count cap not enforced")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || Belady.String() != "belady" || Policy(7).String() == "" {
		t.Error("Policy.String mismatch")
	}
}

func TestInDegreeEqualsMIsFeasible(t *testing.T) {
	// Vertex 3 of the diamond has in-degree 2; M=2 must work because the
	// result slot can reuse a consumed operand's slot.
	b := graph.NewBuilder(4, 4)
	b.AddVertices(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		b.MustEdge(e[0], e[1])
	}
	g := b.MustBuild()
	if _, err := SimulateNatural(g, 2, LRU); err != nil {
		t.Errorf("M = max in-degree should be feasible: %v", err)
	}
}
