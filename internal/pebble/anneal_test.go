package pebble

import (
	"math/rand"
	"testing"

	"graphio/internal/gen"
)

func TestAnnealNeverWorseAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 8; trial++ {
		g := randomDAG(rng, 8+rng.Intn(20), 0.3)
		M := g.MaxInDeg() + 1
		start := g.TopoOrder()
		startRes, err := Simulate(g, start, M, Belady)
		if err != nil {
			t.Fatal(err)
		}
		order, res, err := Anneal(g, start, M, AnnealOptions{Iters: 300, Seed: rng.Int63(), Policy: Belady})
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsTopological(order) {
			t.Fatal("annealed order invalid")
		}
		if res.Total() > startRes.Total() {
			t.Errorf("trial %d: anneal worsened %d -> %d", trial, startRes.Total(), res.Total())
		}
		// The reported result must reproduce on re-simulation.
		again, err := Simulate(g, order, M, Belady)
		if err != nil {
			t.Fatal(err)
		}
		if again != res {
			t.Errorf("reported %+v but re-simulation gives %+v", res, again)
		}
	}
}

func TestAnnealImprovesFFTSchedule(t *testing.T) {
	g := gen.FFT(4)
	M := 4
	start := g.TopoOrder()
	startRes, err := Simulate(g, start, M, Belady)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := Anneal(g, start, M, AnnealOptions{Iters: 3000, Seed: 3, Policy: Belady})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() >= startRes.Total() {
		t.Errorf("anneal found nothing on FFT(4): %d vs %d", res.Total(), startRes.Total())
	}
}

func TestAnnealValidation(t *testing.T) {
	g := gen.Chain(4)
	if _, _, err := Anneal(g, []int{3, 2, 1, 0}, 2, AnnealOptions{}); err == nil {
		t.Error("non-topological start accepted")
	}
	// Single-vertex graph: trivial return.
	g1 := gen.Chain(1)
	order, res, err := Anneal(g1, []int{0}, 1, AnnealOptions{})
	if err != nil || len(order) != 1 || res.Total() != 0 {
		t.Errorf("trivial graph: %v %v %v", order, res, err)
	}
}
