package pebble

import (
	"math/rand"
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
)

func TestAffinityOrderIsTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 15; trial++ {
		g := randomDAG(rng, 2+rng.Intn(50), 0.2)
		order, err := AffinityOrder(g, 1+rng.Intn(16))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsTopological(order) {
			t.Fatalf("trial %d: affinity order invalid", trial)
		}
	}
	for _, g := range []*graph.Graph{gen.FFT(5), gen.Grid2D(8, 8), gen.Strassen(4)} {
		order, err := AffinityOrder(g, 32)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsTopological(order) {
			t.Fatalf("%s: affinity order invalid", g.Name())
		}
	}
}

func TestAffinityOrderDefaultPartSize(t *testing.T) {
	g := gen.Chain(10)
	order, err := AffinityOrder(g, 0)
	if err != nil || !g.IsTopological(order) {
		t.Fatalf("default part size: %v %v", order, err)
	}
}

func TestBestOrderIncludesAffinity(t *testing.T) {
	// The reported best can never be worse than the affinity order alone.
	g := gen.FFT(5)
	M := 8
	best, _, _, err := BestOrder(g, M, Belady, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	aff, err := AffinityOrder(g, 4*M)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(g, aff, M, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if best.Total() > res.Total() {
		t.Errorf("BestOrder %d worse than affinity %d", best.Total(), res.Total())
	}
}
