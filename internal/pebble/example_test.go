package pebble_test

import (
	"fmt"

	"graphio/internal/gen"
	"graphio/internal/pebble"
)

// ExampleSimulate counts the I/O a row-major schedule of an 8×8 stencil
// incurs with 4 fast-memory slots under Belady eviction.
func ExampleSimulate() {
	g := gen.Grid2D(8, 8)
	res, err := pebble.Simulate(g, g.TopoOrder(), 4, pebble.Belady)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reads=%d writes=%d\n", res.Reads, res.Writes)
	// Output:
	// reads=36 writes=36
}

// ExampleFrontierOrder compares schedules and policies on a 32-point FFT
// with 4 fast-memory slots: clairvoyant eviction beats LRU on the same
// order, and the frontier-minimizing schedule beats both.
func ExampleFrontierOrder() {
	g := gen.FFT(5)
	lru, _ := pebble.Simulate(g, g.TopoOrder(), 4, pebble.LRU)
	bel, _ := pebble.Simulate(g, g.TopoOrder(), 4, pebble.Belady)
	fr, _ := pebble.Simulate(g, pebble.FrontierOrder(g), 4, pebble.Belady)
	fmt.Printf("kahn+lru=%d kahn+belady=%d frontier+belady=%d\n",
		lru.Total(), bel.Total(), fr.Total())
	// Output:
	// kahn+lru=430 kahn+belady=394 frontier+belady=334
}
