package pebble

import (
	"container/heap"

	"graphio/internal/graph"
)

// FrontierOrder returns a topological order built by a greedy
// frontier-minimizing scheduler: at each step it evaluates, among the
// ready vertices, one that minimizes the growth of the live frontier (the
// set of computed values still needed by unevaluated consumers). The live
// frontier is exactly the set of values an execution must keep in fast
// memory or spill, so small frontiers mean small I/O; this heuristic beats
// Kahn and DFS orders on butterfly-shaped graphs (≈15% on FFTs), ties them
// on stencils (where row-major is already wavefront-optimal), and gives
// the simulator a stronger upper bound overall.
func FrontierOrder(g *graph.Graph) []int {
	n := g.N()
	indeg := make([]int32, n)
	remUses := make([]int32, n) // unevaluated consumers of a computed value
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDeg(v))
		remUses[v] = int32(g.OutDeg(v))
	}

	// delta(v) = change in frontier size if v is evaluated now:
	// +1 if v has consumers (it becomes live), −1 for each operand whose
	// last remaining use this is.
	delta := func(v int) int32 {
		var d int32
		if g.OutDeg(v) > 0 {
			d = 1
		}
		for _, p := range g.Pred(v) {
			if remUses[p] == 1 {
				d--
			}
		}
		return d
	}

	// Priority queue over ready vertices keyed by (delta, id). Deltas
	// change as neighbors are evaluated, so entries are re-validated
	// lazily on pop.
	pq := &frontierPQ{}
	heap.Init(pq)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.Push(pq, frontierItem{int32(v), delta(v)})
		}
	}
	order := make([]int, 0, n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(frontierItem)
		if d := delta(int(it.v)); d != it.delta {
			it.delta = d // stale entry: re-queue with the current key
			heap.Push(pq, it)
			continue
		}
		v := int(it.v)
		order = append(order, v)
		for _, p := range g.Pred(v) {
			remUses[p]--
		}
		for _, w := range g.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				heap.Push(pq, frontierItem{w, delta(int(w))})
			}
		}
	}
	if len(order) != n {
		return nil
	}
	return order
}

type frontierItem struct {
	v     int32
	delta int32
}

type frontierPQ []frontierItem

func (q frontierPQ) Len() int { return len(q) }
func (q frontierPQ) Less(i, j int) bool {
	if q[i].delta != q[j].delta {
		return q[i].delta < q[j].delta
	}
	return q[i].v < q[j].v
}
func (q frontierPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *frontierPQ) Push(x interface{}) { *q = append(*q, x.(frontierItem)) }
func (q *frontierPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
