package pebble

import (
	"container/heap"

	"graphio/internal/graph"
	"graphio/internal/partition"
)

// AffinityOrder returns a topological order biased toward spatial
// locality: vertices are grouped by recursive spectral bisection into
// parts of at most partSize, and a Kahn sweep prefers ready vertices from
// the part it is currently draining (smallest part ID first among ties).
// Unlike ordering parts outright — whose quotient dependencies may be
// cyclic — the bias never violates the topological constraint; it only
// steers the ready-set choice, so the order is always valid. Good
// partitions put tightly coupled subcomputations together, which keeps
// their intermediate values co-resident in fast memory.
func AffinityOrder(g *graph.Graph, partSize int) ([]int, error) {
	if partSize < 1 {
		partSize = 64
	}
	parts, err := partition.RecursiveBisection(g, partSize)
	if err != nil {
		return nil, err
	}
	n := g.N()
	partOf := make([]int32, n)
	for pid, part := range parts {
		for _, v := range part {
			partOf[v] = int32(pid)
		}
	}

	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDeg(v))
	}
	pq := &affinityPQ{}
	heap.Init(pq)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.Push(pq, affinityItem{int32(v), partOf[v]})
		}
	}
	order := make([]int, 0, n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(affinityItem)
		v := int(it.v)
		order = append(order, v)
		for _, w := range g.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				heap.Push(pq, affinityItem{w, partOf[w]})
			}
		}
	}
	if len(order) != n {
		return nil, errNotTopo
	}
	return order, nil
}

var errNotTopo = graphCycleError{}

type graphCycleError struct{}

func (graphCycleError) Error() string { return "pebble: graph contains a cycle" }

type affinityItem struct {
	v    int32
	part int32
}

type affinityPQ []affinityItem

func (q affinityPQ) Len() int { return len(q) }
func (q affinityPQ) Less(i, j int) bool {
	if q[i].part != q[j].part {
		return q[i].part < q[j].part
	}
	return q[i].v < q[j].v
}
func (q affinityPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *affinityPQ) Push(x interface{}) { *q = append(*q, x.(affinityItem)) }
func (q *affinityPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
