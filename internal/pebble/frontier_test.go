package pebble

import (
	"math/rand"
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
)

func TestFrontierOrderIsTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 2+rng.Intn(40), 0.25)
		order := FrontierOrder(g)
		if !g.IsTopological(order) {
			t.Fatalf("trial %d: frontier order invalid", trial)
		}
	}
	for _, g := range []*graph.Graph{
		gen.FFT(4), gen.BellmanHeldKarp(4), gen.Grid2D(5, 7), gen.Strassen(4),
	} {
		if !g.IsTopological(FrontierOrder(g)) {
			t.Fatalf("%s: frontier order invalid", g.Name())
		}
	}
}

func TestFrontierOrderBeatsKahnOnGrid(t *testing.T) {
	// On square stencils row-major Kahn is already wavefront-optimal, so
	// the frontier scheduler ties it; the invariant worth pinning is that
	// it never loses (its wins show up on butterfly-shaped graphs — see
	// ExampleFrontierOrder).
	g := gen.Grid2D(16, 16)
	M := 8
	kahn, err := Simulate(g, g.TopoOrder(), M, Belady)
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := Simulate(g, FrontierOrder(g), M, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if frontier.Total() > kahn.Total() {
		t.Errorf("frontier order %d I/Os worse than kahn %d", frontier.Total(), kahn.Total())
	}
}

func TestFrontierOrderOnChainIsPerfect(t *testing.T) {
	g := gen.Chain(50)
	res, err := Simulate(g, FrontierOrder(g), 2, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 0 {
		t.Errorf("chain under frontier order incurred %d I/Os", res.Total())
	}
}

func TestFrontierOrderEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, 0).MustBuild()
	if order := FrontierOrder(g); len(order) != 0 {
		t.Errorf("empty graph order: %v", order)
	}
}

func TestBestOrderIncludesFrontier(t *testing.T) {
	// BestOrder must consider the frontier heuristic; on the grid it
	// should usually be the winner, but at minimum the reported best can
	// never be worse than the frontier order alone.
	g := gen.Grid2D(12, 12)
	M := 6
	best, _, _, err := BestOrder(g, M, Belady, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Simulate(g, FrontierOrder(g), M, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if best.Total() > fr.Total() {
		t.Errorf("BestOrder %d worse than frontier %d", best.Total(), fr.Total())
	}
}
