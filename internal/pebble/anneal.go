package pebble

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"graphio/internal/graph"
	"graphio/internal/obs"
)

// AnnealOptions tunes the local-search schedule optimizer.
type AnnealOptions struct {
	// Iters is the number of proposed moves. Default 2000.
	Iters int
	// InitialTemp scales the acceptance of uphill moves, in I/O units.
	// Default 2.0; temperature decays geometrically to ~0.01 over the run.
	InitialTemp float64
	// Seed drives the proposal sequence. Default 1.
	Seed int64
	// Policy is the eviction policy simulated for every candidate
	// (the zero value is LRU).
	Policy Policy
}

// Anneal improves an evaluation order by simulated annealing over adjacent
// transpositions: a random position i is proposed for swapping with i+1,
// which preserves topological validity exactly when order[i] is not an
// operand of order[i+1]. Every candidate is re-simulated, so the search is
// only practical on small and medium graphs; it exists to tighten the
// upper bounds that sandwich the lower-bound methods. Returns the best
// order found and its I/O.
func Anneal(g *graph.Graph, start []int, M int, opt AnnealOptions) ([]int, Result, error) {
	return AnnealContext(context.Background(), g, start, M, opt)
}

// AnnealContext is Anneal with cancellation, checked once per proposed move.
func AnnealContext(ctx context.Context, g *graph.Graph, start []int, M int, opt AnnealOptions) ([]int, Result, error) {
	if !g.IsTopological(start) {
		return nil, Result{}, errors.New("pebble: Anneal start order is not topological")
	}
	iters := opt.Iters
	if iters <= 0 {
		iters = 2000
	}
	temp := opt.InitialTemp
	if temp <= 0 {
		temp = 2.0
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	cur := make([]int, len(start))
	copy(cur, start)
	curRes, err := SimulateContext(ctx, g, cur, M, opt.Policy)
	if err != nil {
		return nil, Result{}, err
	}
	best := make([]int, len(cur))
	copy(best, cur)
	bestRes := curRes

	n := len(cur)
	if n < 2 {
		return best, bestRes, nil
	}
	decay := math.Pow(0.01/temp, 1/float64(iters))
	isParent := func(u, v int) bool {
		//lint:ignore ctx-loop O(in-degree) parent test invoked from the annealing loop, which checks ctx every iteration
		for _, p := range g.Pred(v) {
			if int(p) == u {
				return true
			}
		}
		return false
	}
	proposed, accepted := 0, 0
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, Result{}, fmt.Errorf("pebble: annealing interrupted: %w", err)
		}
		i := rng.Intn(n - 1)
		if isParent(cur[i], cur[i+1]) {
			temp *= decay
			continue // swap would violate the dependency
		}
		proposed++
		cur[i], cur[i+1] = cur[i+1], cur[i]
		res, err := SimulateContext(ctx, g, cur, M, opt.Policy)
		if err != nil {
			return nil, Result{}, err
		}
		delta := float64(res.Total() - curRes.Total())
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			accepted++
			curRes = res
			if res.Total() < bestRes.Total() {
				bestRes = res
				copy(best, cur)
			}
		} else {
			cur[i], cur[i+1] = cur[i+1], cur[i] // reject: undo
		}
		temp *= decay
	}
	if obs.Enabled() {
		obs.AddCtx(ctx, "pebble.anneal.proposed", int64(proposed))
		obs.AddCtx(ctx, "pebble.anneal.accepted", int64(accepted))
	}
	return best, bestRes, nil
}
