// Package pebble simulates evaluations of computation graphs under the
// paper's two-level memory model (§3) and counts the non-trivial I/O they
// incur. It provides empirical *upper* bounds on J*_G, which every lower
// bound in this module (spectral, convex min-cut, closed forms) can be
// sandwich-validated against.
//
// Model recap: fast memory holds M values; evaluating v needs all of v's
// operands in fast memory plus a slot for the result; a value's first
// materialization is free (inputs stream in from the user, computed values
// appear in place); evicting a value that is still needed and has no copy
// in slow memory costs one write; re-loading a previously evicted value
// costs one read; outputs are reported to the user on computation, never
// written; recomputation is disallowed.
package pebble

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"graphio/internal/graph"
	"graphio/internal/obs"
)

// Policy selects the eviction policy.
type Policy int

const (
	// LRU evicts the least-recently-touched value.
	LRU Policy = iota
	// Belady evicts the value whose next use is farthest in the future
	// (the clairvoyant policy; optimal for uniform miss costs).
	Belady
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Belady:
		return "belady"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Result reports the I/O of one simulated evaluation.
type Result struct {
	Reads  int
	Writes int
}

// Total returns reads + writes, the quantity J_G(X) of §3.1.
func (r Result) Total() int { return r.Reads + r.Writes }

const never = math.MaxInt64

// state tracks one simulation run.
type state struct {
	g      *graph.Graph
	order  []int
	m      int
	policy Policy

	usePos  [][]int32 // for each vertex, ascending positions of its uses
	useIdx  []int32   // next unconsumed use index
	slot    []int32   // resident slot of vertex, -1 if not in fast memory
	dirty   []bool    // resident and not backed by a slow-memory copy
	slowCpy []bool    // a copy exists in slow memory
	touched []int64   // last touch step (for LRU)
	present []int32   // resident vertices (unordered)
	pinned  []bool
	step    int64

	res Result
}

// Simulate evaluates g in the given topological order with fast memory M
// and the given eviction policy, returning the non-trivial I/O incurred.
// It fails if order is not a topological order of g or if M is too small
// to hold some vertex's operands (M must be at least the in-degree of
// every vertex; the result slot may reuse a dead operand's slot).
func Simulate(g *graph.Graph, order []int, M int, policy Policy) (Result, error) {
	return SimulateContext(context.Background(), g, order, M, policy)
}

// SimulateContext is Simulate with cancellation: the context is checked
// every few thousand evaluation steps, and a cancelled or expired context
// aborts the simulation with the wrapped ctx error.
func SimulateContext(ctx context.Context, g *graph.Graph, order []int, M int, policy Policy) (Result, error) {
	if M < 1 {
		return Result{}, errors.New("pebble: M must be ≥ 1")
	}
	if !g.IsTopological(order) {
		return Result{}, errors.New("pebble: order is not topological")
	}
	n := g.N()
	s := &state{
		g: g, order: order, m: M, policy: policy,
		usePos:  make([][]int32, n),
		useIdx:  make([]int32, n),
		slot:    make([]int32, n),
		dirty:   make([]bool, n),
		slowCpy: make([]bool, n),
		touched: make([]int64, n),
		pinned:  make([]bool, n),
	}
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	//lint:ignore ctx-loop O(V+E) use-position precompute; the simulation loop below checks ctx every 4096 nodes
	for _, v := range order {
		succ := s.g.Succ(v)
		uses := make([]int32, len(succ))
		for i, w := range succ {
			uses[i] = pos[w]
		}
		insertionSortInt32(uses)
		s.usePos[v] = uses
	}
	for i := range s.slot {
		s.slot[i] = -1
	}

	simDone := obs.TimeHistCtx(ctx, "pebble.simulate_ns")
	for i, v := range order {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				simDone()
				return Result{}, fmt.Errorf("pebble: simulation interrupted: %w", err)
			}
			if obs.EventsEnabled() {
				// Sampled at the existing cancellation boundary so the
				// per-step hot path stays event-free between checkpoints.
				obs.Probe("pebble.simulate").IterCtx(ctx, int64(i),
					obs.FI("reads", int64(s.res.Reads)),
					obs.FI("writes", int64(s.res.Writes)))
			}
		}
		s.step = int64(i)
		if err := s.evaluate(v); err != nil {
			return Result{}, err
		}
	}
	simDone()
	if obs.Enabled() {
		obs.IncCtx(ctx, "pebble.simulations")
		obs.AddCtx(ctx, "pebble.reads", int64(s.res.Reads))
		obs.AddCtx(ctx, "pebble.writes", int64(s.res.Writes))
		// Per-simulation I/O distribution: the order search's spread between
		// lucky and unlucky topological orders at this (graph, M).
		obs.ObserveHistCtx(ctx, "pebble.io_per_sim", int64(s.res.Reads+s.res.Writes))
	}
	return s.res, nil
}

func (s *state) nextUse(v int) int64 {
	uses := s.usePos[v]
	idx := s.useIdx[v]
	// Skip stale entries strictly before the current step; a use *at* the
	// current step stays visible until evaluate() consumes it explicitly.
	for int(idx) < len(uses) && int64(uses[idx]) < s.step {
		idx++
	}
	if int(idx) == len(uses) {
		return never
	}
	return int64(uses[idx])
}

// evict removes one unpinned resident value chosen by the policy, paying a
// write if it is dirty and still needed. Returns an error when everything
// is pinned.
func (s *state) evict() error {
	bestIdx := -1
	var bestKey int64
	// Pass 1: a dead value (no future use) is free to drop — always prefer.
	for i, v := range s.present {
		if s.pinned[v] {
			continue
		}
		nu := s.nextUse(int(v))
		if nu == never {
			s.drop(i)
			return nil
		}
		var key int64
		switch s.policy {
		case Belady:
			key = nu // farthest next use
		default:
			key = -s.touched[v] // least recently used
		}
		if bestIdx == -1 || key > bestKey {
			bestIdx, bestKey = i, key
		}
	}
	if bestIdx == -1 {
		return fmt.Errorf("pebble: fast memory of %d exhausted by pinned operands", s.m)
	}
	v := s.present[bestIdx]
	if s.dirty[v] && !s.slowCpy[v] {
		s.res.Writes++
		s.slowCpy[v] = true
	}
	s.drop(bestIdx)
	return nil
}

// drop removes present[i] from fast memory without any I/O accounting.
func (s *state) drop(i int) {
	v := s.present[i]
	s.slot[v] = -1
	s.dirty[v] = false
	last := len(s.present) - 1
	s.present[i] = s.present[last]
	if s.present[i] != v {
		// fix the moved vertex's slot index
		s.slot[s.present[i]] = int32(i)
	}
	s.present = s.present[:last]
}

// insert places v into fast memory, evicting as needed.
func (s *state) insert(v int, freshlyComputed bool) error {
	for len(s.present) >= s.m {
		if err := s.evict(); err != nil {
			return err
		}
	}
	s.slot[v] = int32(len(s.present))
	s.present = append(s.present, int32(v))
	s.dirty[v] = freshlyComputed
	s.touched[v] = s.step
	return nil
}

func (s *state) evaluate(v int) error {
	preds := s.g.Pred(v)
	if len(preds) > s.m {
		return fmt.Errorf("pebble: vertex %d has in-degree %d > M=%d", v, len(preds), s.m)
	}
	// Pin the operands already resident before loading the missing ones,
	// so the loads can never evict a sibling operand.
	for _, pi := range preds {
		if s.slot[pi] >= 0 {
			s.pinned[pi] = true
			s.touched[pi] = s.step
		}
	}
	for _, pi := range preds {
		p := int(pi)
		if s.slot[p] < 0 {
			if !s.slowCpy[p] {
				return fmt.Errorf("pebble: internal: operand %d evicted without slow copy", p)
			}
			s.res.Reads++
			if err := s.insert(p, false); err != nil {
				return err
			}
			s.pinned[p] = true
			s.touched[p] = s.step
		}
	}
	// Consume this use: advance each operand's use pointer past this step.
	for _, pi := range preds {
		p := int(pi)
		uses := s.usePos[p]
		for int(s.useIdx[p]) < len(uses) && int64(uses[s.useIdx[p]]) <= s.step {
			s.useIdx[p]++
		}
		s.pinned[p] = false
	}
	// The result takes a slot; consumed dead operands may be evicted free.
	return s.insert(v, true)
}

func insertionSortInt32(x []int32) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// SimulateNatural runs Simulate with the graph's deterministic topological
// order.
func SimulateNatural(g *graph.Graph, M int, policy Policy) (Result, error) {
	return Simulate(g, g.TopoOrder(), M, policy)
}

// BestOrder searches for a low-I/O evaluation order: the deterministic
// Kahn order, the DFS order, and `samples` random topological orders, all
// simulated under the given policy. It returns the best result, the order
// achieving it, and a short label describing which heuristic won.
func BestOrder(g *graph.Graph, M int, policy Policy, samples int, seed int64) (Result, []int, string, error) {
	return BestOrderContext(context.Background(), g, M, policy, samples, seed)
}

// BestOrderContext is BestOrder with cancellation, checked between
// candidate simulations and threaded into each one.
func BestOrderContext(ctx context.Context, g *graph.Graph, M int, policy Policy, samples int, seed int64) (Result, []int, string, error) {
	sp := obs.StartSpanCtx(ctx, "pebble.best_order")
	sp.SetInt("n", int64(g.N()))
	sp.SetInt("M", int64(M))
	sp.SetStr("policy", policy.String())
	type candidate struct {
		name  string
		order []int
	}
	cands := []candidate{
		{"kahn", g.TopoOrder()},
		{"dfs", g.DFSTopoOrder()},
		{"frontier", FrontierOrder(g)},
	}
	if aff, err := AffinityOrder(g, 4*M); err == nil {
		cands = append(cands, candidate{"affinity", aff})
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, nil, "", err
		}
		cands = append(cands, candidate{fmt.Sprintf("random-%d", i), g.RandomTopoOrder(rng)})
	}
	best := Result{Reads: math.MaxInt32, Writes: math.MaxInt32}
	var bestOrder []int
	bestName := ""
	var firstErr error
	for ci, c := range cands {
		if err := ctx.Err(); err != nil {
			sp.End()
			return Result{}, nil, "", fmt.Errorf("pebble: order search interrupted: %w", err)
		}
		res, err := SimulateContext(ctx, g, c.order, M, policy)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if res.Total() < best.Total() {
			best, bestOrder, bestName = res, c.order, c.name
		}
		if obs.EventsEnabled() {
			obs.Probe("pebble.best_order").IterCtx(ctx, int64(ci),
				obs.FI("reads", int64(res.Reads)),
				obs.FI("writes", int64(res.Writes)),
				obs.FI("io", int64(res.Total())),
				obs.FI("best_io", int64(best.Total())))
		}
	}
	if bestOrder == nil {
		sp.End()
		return Result{}, nil, "", fmt.Errorf("pebble: no feasible order: %w", firstErr)
	}
	sp.SetInt("candidates", int64(len(cands)))
	sp.SetStr("winner", bestName)
	sp.SetInt("io", int64(best.Total()))
	sp.End()
	return best, bestOrder, bestName, nil
}

// ExhaustiveBest enumerates every topological order of a small graph (up
// to maxOrders linear extensions; it fails beyond that) and returns the
// minimum-I/O result under the given policy. Because the policy is applied
// greedily this is an upper bound on J*_G — but a very tight one on tiny
// graphs, which is what the validation tests need.
func ExhaustiveBest(g *graph.Graph, M int, policy Policy, maxOrders int) (Result, []int, error) {
	return ExhaustiveBestContext(context.Background(), g, M, policy, maxOrders)
}

// ExhaustiveBestContext is ExhaustiveBest with cancellation, checked once
// per completed linear extension.
func ExhaustiveBestContext(ctx context.Context, g *graph.Graph, M int, policy Policy, maxOrders int) (Result, []int, error) {
	if maxOrders <= 0 {
		maxOrders = 100000
	}
	n := g.N()
	indeg := make([]int, n)
	//lint:ignore ctx-loop O(V) in-degree snapshot before the search; rec checks ctx at every completed order
	for v := 0; v < n; v++ {
		indeg[v] = g.InDeg(v)
	}
	order := make([]int, 0, n)
	best := Result{Reads: math.MaxInt32, Writes: math.MaxInt32}
	var bestOrder []int
	count := 0
	var overflow bool
	var rec func() error
	rec = func() error {
		if overflow {
			return nil
		}
		if len(order) == n {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("pebble: exhaustive search interrupted: %w", err)
			}
			count++
			if count > maxOrders {
				overflow = true
				return nil
			}
			res, err := Simulate(g, order, M, policy)
			if err != nil {
				return err
			}
			if res.Total() < best.Total() {
				best = res
				bestOrder = append(bestOrder[:0], order...)
			}
			return nil
		}
		//lint:ignore ctx-loop rec closes over ctx and checks it at every completed order
		for v := 0; v < n; v++ {
			if indeg[v] != 0 || isIn(order, v) {
				continue
			}
			order = append(order, v)
			for _, w := range g.Succ(v) {
				indeg[w]--
			}
			if err := rec(); err != nil {
				return err
			}
			for _, w := range g.Succ(v) {
				indeg[w]++
			}
			order = order[:len(order)-1]
		}
		return nil
	}
	if err := rec(); err != nil {
		return Result{}, nil, err
	}
	if overflow {
		return Result{}, nil, fmt.Errorf("pebble: more than %d topological orders", maxOrders)
	}
	if bestOrder == nil {
		return Result{}, nil, errors.New("pebble: no feasible order")
	}
	return best, bestOrder, nil
}

func isIn(order []int, v int) bool {
	for _, o := range order {
		if o == v {
			return true
		}
	}
	return false
}
