package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// A Journal is an append-only JSONL log with a CRC32-C checksum on every
// record. Each line is a self-contained JSON object
//
//	{"crc":"xxxxxxxx","rec":<payload>}
//
// where crc is the checksum of the payload bytes exactly as they appear.
// Appends are fsynced, so a record that Append returned nil for survives
// a crash. A crash *during* an append leaves a torn final line (no
// newline, or a half-written record); OpenJournal discards it and
// truncates the file back to the last good record, which is the
// crash-consistency contract sweep manifests rely on. A bad record
// anywhere before the final line cannot be produced by an append crash
// and is reported as a *CorruptError instead of silently dropped.
type Journal struct {
	f    File
	path string
}

// CorruptError reports a journal record that failed validation somewhere
// other than the (tolerated) torn tail.
type CorruptError struct {
	Path   string
	Line   int    // 1-based line number of the bad record
	Reason string // what failed: framing, checksum, ...
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("persist: corrupt journal %s: line %d: %s", e.Path, e.Line, e.Reason)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func crcHex(payload []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(payload, crcTable))
}

// journalLine is the on-disk framing of one record.
type journalLine struct {
	CRC string          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// OpenJournal opens (creating if absent) the journal at path, replays its
// records, and returns the journal positioned for appending plus the
// replayed payloads in append order. A torn final record is discarded and
// counted under persist.journal.torn; earlier corruption returns a
// *CorruptError and no journal.
func OpenJournal(path string) (*Journal, [][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	records, goodLen, repErr := replay(path, data)
	if repErr != nil {
		return nil, nil, repErr
	}
	if int64(goodLen) < int64(len(data)) {
		// Torn tail from a crash mid-append: drop it so the next append
		// starts on a record boundary.
		if err := os.Truncate(path, int64(goodLen)); err != nil {
			return nil, nil, fmt.Errorf("persist: truncating torn journal %s: %w", path, err)
		}
		Count("persist.journal.torn")
	}
	osf, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: wrap(osf), path: path}, records, nil
}

// replay validates data as journal content and returns the record
// payloads plus the byte length of the good prefix. Only the final line
// may be bad (torn); a bad earlier line is a *CorruptError.
func replay(path string, data []byte) (records [][]byte, goodLen int, err error) {
	off := 0
	line := 0
	for off < len(data) {
		line++
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No terminating newline: torn tail, tolerated.
			return records, off, nil
		}
		raw := data[off : off+nl]
		payload, perr := parseLine(raw)
		if perr != nil {
			if off+nl+1 >= len(data) {
				// Bad final line (e.g. the crash raced the newline out but
				// not the record body): tolerated like a missing newline.
				return records, off, nil
			}
			return nil, 0, &CorruptError{Path: path, Line: line, Reason: perr.Error()}
		}
		records = append(records, payload)
		off += nl + 1
	}
	return records, off, nil
}

// ReadJournal replays the journal at path without opening it for append
// and without mutating it: a torn final record is discarded (and counted
// under persist.journal.torn) but the file is left exactly as found, so
// report tools can inspect a journal another process may still own.
// Earlier corruption is a *CorruptError, as in OpenJournal. A missing
// file reads as an empty journal.
func ReadJournal(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	records, goodLen, repErr := replay(path, data)
	if repErr != nil {
		return nil, repErr
	}
	if goodLen < len(data) {
		Count("persist.journal.torn")
	}
	return records, nil
}

// FrameRecord wraps rec (which must be a single line of valid JSON) in
// the journal's on-disk framing — {"crc":"xxxxxxxx","rec":<payload>} plus
// a trailing newline. It is exported so collectors that buffer records in
// memory (internal/obs event logs) can emit journal-compatible files
// through WriteTo instead of paying a per-record fsync.
func FrameRecord(rec []byte) ([]byte, error) {
	if !json.Valid(rec) {
		return nil, fmt.Errorf("persist: journal record is not valid JSON")
	}
	if bytes.IndexByte(rec, '\n') >= 0 {
		return nil, fmt.Errorf("persist: journal record contains a newline")
	}
	frame, err := json.Marshal(journalLine{CRC: crcHex(rec), Rec: json.RawMessage(rec)})
	if err != nil {
		return nil, err
	}
	return append(frame, '\n'), nil
}

// parseLine unframes one journal line and verifies its checksum.
func parseLine(raw []byte) ([]byte, error) {
	var jl journalLine
	if err := json.Unmarshal(raw, &jl); err != nil {
		return nil, fmt.Errorf("unparseable frame: %v", err)
	}
	if jl.Rec == nil {
		return nil, fmt.Errorf("frame missing rec field")
	}
	if got := crcHex(jl.Rec); got != jl.CRC {
		return nil, fmt.Errorf("checksum mismatch: frame says %s, payload is %s", jl.CRC, got)
	}
	return jl.Rec, nil
}

// Append frames rec (which must be a single line of valid JSON), writes
// it, and fsyncs. When Append returns nil the record is durable.
func (j *Journal) Append(rec []byte) error {
	frame, err := FrameRecord(rec)
	if err != nil {
		return fmt.Errorf("%w (journal %s)", err, j.path)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("persist: appending to journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("persist: syncing journal %s: %w", j.path, err)
	}
	Count("persist.journal.append")
	return nil
}

// Close closes the journal's file handle. Records already appended remain
// durable; the journal can be reopened with OpenJournal.
func (j *Journal) Close() error { return j.f.Close() }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }
