package persist_test

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"graphio/internal/persist"
)

// A bounded wait must outlast a transient hold: the owner releases shortly
// after the waiter starts polling, and the waiter walks away with the lock
// instead of the immediate ErrLocked AcquireLock reports.
func TestAcquireLockWaitOutlastsTransientHold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.lock")
	l, err := persist.AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		if err := l.Release(); err != nil {
			t.Errorf("release: %v", err)
		}
	}()
	l2, err := persist.AcquireLockWait(context.Background(), path, 5*time.Second)
	wg.Wait()
	if err != nil {
		t.Fatalf("AcquireLockWait = %v, want acquired after owner released", err)
	}
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}
}

// When the owner never releases, the wait must give up within its bound
// and still report a typed ErrLocked so callers branch as before.
func TestAcquireLockWaitGivesUpTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.lock")
	l, err := persist.AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.Release(); err != nil {
			t.Error(err)
		}
	}()
	start := time.Now()
	if _, err := persist.AcquireLockWait(context.Background(), path, 80*time.Millisecond); !errors.Is(err, persist.ErrLocked) {
		t.Fatalf("AcquireLockWait = %v, want ErrLocked", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("gave up after %v, want well under the test budget", elapsed)
	}
}

// Cancelling the context cuts the wait short immediately — a worker told
// to shut down must not block out its full lock-wait budget.
func TestAcquireLockWaitHonorsCancel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.lock")
	l, err := persist.AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.Release(); err != nil {
			t.Error(err)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := persist.AcquireLockWait(ctx, path, time.Hour)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, persist.ErrLocked) {
			t.Fatalf("cancelled wait = %v, want ErrLocked", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AcquireLockWait did not return after cancel")
	}
}

// A non-positive wait is a single immediate attempt: held → ErrLocked now.
func TestAcquireLockWaitZeroIsImmediate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.lock")
	l, err := persist.AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.Release(); err != nil {
			t.Error(err)
		}
	}()
	if _, err := persist.AcquireLockWait(context.Background(), path, 0); !errors.Is(err, persist.ErrLocked) {
		t.Fatalf("zero-wait acquire = %v, want ErrLocked", err)
	}
}
