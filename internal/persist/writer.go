package persist

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Writer is an io.WriteCloser that stages output in a temp file and
// publishes it at path only on Commit. The intended shape is
//
//	w, err := persist.NewWriter(path)
//	if err != nil { ... }
//	defer w.Close() // no-op after a successful Commit
//	... stream into w ...
//	return w.Commit()
//
// Close before Commit aborts: the temp file is removed and path is
// untouched, so every error return between NewWriter and Commit leaves
// the destination exactly as it was. Commit syncs the file, renames it
// over path, and syncs the directory; afterwards Close is a no-op, so
// the defer/Commit pairing above is safe on all paths.
type Writer struct {
	f         File
	tmp       string
	path      string
	perm      fs.FileMode
	writeErr  error
	committed bool
	closed    bool
}

// NewWriter stages an atomic write of path with permissions 0o644.
func NewWriter(path string) (*Writer, error) {
	return NewWriterPerm(path, 0o644)
}

// NewWriterPerm stages an atomic write of path with the given final
// permissions (the staging temp file is 0o600 until Commit).
func NewWriterPerm(path string, perm fs.FileMode) (*Writer, error) {
	osf, err := tempIn(path)
	if err != nil {
		return nil, err
	}
	return &Writer{f: wrap(osf), tmp: osf.Name(), path: path, perm: perm}, nil
}

// Write implements io.Writer, streaming into the staged temp file. The
// first write error sticks: later writes and Commit refuse with it, so a
// caller that checks only Commit's error still cannot publish a torn file.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed || w.committed {
		return 0, fmt.Errorf("persist: write to %s after close", w.path)
	}
	if w.writeErr != nil {
		return 0, w.writeErr
	}
	n, err := w.f.Write(p)
	if err != nil {
		w.writeErr = fmt.Errorf("persist: writing %s: %w", w.path, err)
		return n, w.writeErr
	}
	return n, nil
}

// Commit makes the staged content durable and visible at path: fsync the
// temp file, set final permissions, close, rename over path, fsync the
// directory. On any failure the temp file is removed, path keeps its
// previous content, and the error is returned.
func (w *Writer) Commit() error {
	if w.committed {
		return nil
	}
	if w.closed {
		return fmt.Errorf("persist: commit of %s after close", w.path)
	}
	if err := w.writeErr; err != nil {
		_ = w.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		w.abort()
		return fmt.Errorf("persist: syncing %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		w.abort()
		return fmt.Errorf("persist: closing %s: %w", w.path, err)
	}
	if err := os.Chmod(w.tmp, w.perm); err != nil {
		w.abort()
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		w.abort()
		return fmt.Errorf("persist: publishing %s: %w", w.path, err)
	}
	w.committed = true
	w.closed = true
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return fmt.Errorf("persist: syncing directory of %s: %w", w.path, err)
	}
	Count("persist.commit")
	return nil
}

// Close without a prior Commit aborts the write: the temp file is
// removed and the destination is untouched. After Commit it is a no-op,
// so it can be deferred unconditionally.
func (w *Writer) Close() error {
	if w.closed || w.committed {
		return nil
	}
	_ = w.f.Close()
	w.abort()
	return nil
}

// abort discards the temp file and marks the writer dead. Any error from
// closing or removing the temp is intentionally dropped — the write is
// being thrown away, and the destination was never touched.
func (w *Writer) abort() {
	_ = os.Remove(w.tmp)
	w.closed = true
	Count("persist.abort")
}
