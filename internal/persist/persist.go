// Package persist provides crash-safe file primitives for every artifact
// the module writes: CSV tables, reports, telemetry dumps, profiles, and
// the sweep manifest. The invariant throughout is that a reader never sees
// a torn file — an artifact either has its complete previous content or
// its complete new content, no matter where a crash, OOM kill, or SIGKILL
// lands.
//
// Three primitives:
//
//   - WriteFileAtomic writes a byte slice via a temp file in the target
//     directory, fsyncs it, renames it over the destination, and fsyncs
//     the directory — the classic atomic-replace sequence.
//   - Writer is the streaming version: an io.WriteCloser whose output
//     becomes visible only on Commit; Close before Commit aborts and
//     removes the temp file, so error paths cannot leak partial output.
//   - Journal is an append-only JSONL log with a CRC32-C checksum per
//     record. Replay tolerates a truncated or torn final record (the
//     signature of a crash mid-append) by discarding it; corruption
//     anywhere earlier is reported as a *CorruptError.
//
// AcquireLock adds single-writer mutual exclusion for directories that
// hold journals (a sweep's outDir): the lock file records the owner PID,
// and a lock left behind by a dead process is stolen rather than wedging
// every restart after a crash.
//
// The package is stdlib-only and imports nothing else from this module,
// so anything (including internal/obs) can build on it. Metrics are
// reported through the Count hook, which internal/obs points at its
// counter registry.
package persist

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// Count receives one call per notable event ("persist.commit",
// "persist.abort", "persist.journal.append", "persist.journal.torn",
// "persist.stale_temp"). It is a hook rather than a direct dependency so
// the package stays import-free; internal/obs wires it to its counter
// registry at init. The default is a no-op.
var Count = func(name string) {}

// File is the subset of *os.File the writer and journal need. Crash
// consistency is tested by substituting failing implementations (see
// internal/faultinject.File) through WrapFile.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// WrapFile, when non-nil, wraps every temp or journal file the package
// opens. It exists so fault-injection tests can make writes, syncs, and
// closes fail deterministically; production code leaves it nil.
var WrapFile func(File) File

// Temp files follow this CreateTemp pattern so RemoveStaleTemps can
// recognize and sweep the debris a SIGKILL between create and rename
// leaves behind.
const (
	tmpPrefix = ".persist-"
	tmpSuffix = ".tmp"
)

func wrap(f File) File {
	if WrapFile != nil {
		return WrapFile(f)
	}
	return f
}

// WriteFileAtomic writes data to path with the atomic-replace sequence:
// temp file in path's directory, write, fsync, rename over path, fsync
// the directory. On any failure the temp file is removed and path keeps
// its previous content (or stays absent).
func WriteFileAtomic(path string, data []byte, perm fs.FileMode) error {
	w, err := NewWriterPerm(path, perm)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		_ = w.Close()
		return err
	}
	return w.Commit()
}

// WriteTo streams write's output to path atomically: the callback writes
// into a temp file, and the result replaces path only if the callback and
// the commit sequence both succeed.
func WriteTo(path string, write func(io.Writer) error) error {
	w, err := NewWriter(path)
	if err != nil {
		return err
	}
	if err := write(w); err != nil {
		_ = w.Close()
		return err
	}
	return w.Commit()
}

// RemoveStaleTemps deletes temp files a previous crashed commit left in
// dir (created but never renamed) and returns how many were removed. Call
// it when taking ownership of an artifact directory — after AcquireLock,
// before writing — so a killed run's debris does not accumulate.
func RemoveStaleTemps(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, err
		}
		removed++
		Count("persist.stale_temp")
	}
	return removed, nil
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Filesystems that cannot sync directories make this a no-op rather
// than an error: the rename itself already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && isSyncUnsupported(err) {
		return nil
	}
	return err
}

// isSyncUnsupported reports whether err means the filesystem rejects
// directory fsync (EINVAL/ENOTSUP on some network and FUSE mounts).
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

// tempIn creates a temp file next to path (same directory, so the final
// rename never crosses a filesystem boundary).
func tempIn(path string) (*os.File, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPrefix+"*"+tmpSuffix)
	if err != nil {
		return nil, fmt.Errorf("persist: creating temp for %s: %w", path, err)
	}
	return f, nil
}
