package persist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// ErrLocked is wrapped by AcquireLock when the lock file is held by a
// process that is still alive. Callers branch on it with errors.Is.
var ErrLocked = errors.New("persist: lock held by a live process")

// Lock is a held directory lock; Release removes it.
type Lock struct {
	path string
}

// AcquireLock takes the single-writer lock at path by creating the file
// exclusively with the owner's PID inside. If the file already exists and
// its recorded PID is still alive, the returned error wraps ErrLocked. A
// lock whose owner is dead — the aftermath of a crash or SIGKILL — is
// stolen, so restarting after a kill never needs manual cleanup.
func AcquireLock(path string) (*Lock, error) {
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%d\n", os.Getpid())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				_ = os.Remove(path)
				return nil, werr
			}
			return &Lock{path: path}, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		pid, readErr := readLockPID(path)
		if readErr == nil && pid > 0 && pidAlive(pid) {
			return nil, fmt.Errorf("%w: %s (pid %d)", ErrLocked, path, pid)
		}
		// Owner is gone (or the lock is unreadable garbage): steal it and
		// retry the exclusive create. The remove/create window is racy
		// against another stealer, which is why we loop instead of
		// assuming the next create succeeds.
		if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
			return nil, rmErr
		}
	}
	return nil, fmt.Errorf("persist: lock %s: could not acquire after retries", path)
}

// AcquireLockWait is AcquireLock with a bounded wait: while the lock is
// held by a live process, it retries with doubling backoff until the lock
// frees up, wait elapses, or ctx is cancelled — whichever comes first. A
// wait of zero or less degrades to a single AcquireLock attempt. The final
// error still wraps ErrLocked when the wait ran out with the owner alive,
// so callers keep branching with errors.Is exactly as before.
//
// It exists for the coordinated-sweep topology: a distributed worker or a
// restarted coordinator briefly overlaps the previous owner of an outDir
// (two-stage SIGINT wind-down, a dying predecessor mid-release) and should
// queue for a few seconds rather than fail the whole run on a transient
// hold. Waiting uses a timer select, not time.Sleep, so cancellation cuts
// the wait short immediately.
func AcquireLockWait(ctx context.Context, path string, wait time.Duration) (*Lock, error) {
	if wait <= 0 {
		return AcquireLock(path)
	}
	wctx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	delay := 10 * time.Millisecond
	const maxDelay = 500 * time.Millisecond
	for {
		l, err := AcquireLock(path)
		if err == nil || !errors.Is(err, ErrLocked) {
			return l, err
		}
		Count("persist.lock.wait")
		t := time.NewTimer(delay)
		select {
		case <-wctx.Done():
			t.Stop()
			return nil, fmt.Errorf("%w (gave up waiting after %v: %v)", err, wait, wctx.Err())
		case <-t.C:
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// Release drops the lock. Releasing twice is a no-op.
func (l *Lock) Release() error {
	if err := os.Remove(l.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Path returns the lock file's path.
func (l *Lock) Path() string { return l.path }

func readLockPID(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(string(b)))
}

// pidAlive reports whether a process with this PID exists. Signal 0
// probes without delivering anything; EPERM still means "exists".
func pidAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}
