package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRecordRoundTrips(t *testing.T) {
	frame, err := FrameRecord([]byte(`{"probe":"x.y","iter":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if frame[len(frame)-1] != '\n' {
		t.Fatal("frame missing trailing newline")
	}
	payload, err := parseLine(bytes.TrimSuffix(frame, []byte("\n")))
	if err != nil {
		t.Fatalf("framed record fails its own checksum: %v", err)
	}
	if string(payload) != `{"probe":"x.y","iter":3}` {
		t.Errorf("payload = %s", payload)
	}
}

func TestFrameRecordRejectsBadPayloads(t *testing.T) {
	if _, err := FrameRecord([]byte("not json")); err == nil {
		t.Error("non-JSON record accepted")
	}
	if _, err := FrameRecord([]byte("{\n}")); err == nil {
		t.Error("multi-line record accepted")
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from a missing file", len(recs))
	}
}

// ReadJournal must tolerate a torn tail exactly like OpenJournal, but
// without truncating: report tools read journals they do not own.
func TestReadJournalTornTailLeavesFileIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf(`{"seq":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a frame, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":"0000`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if string(recs[2]) != `{"seq":2}` {
		t.Errorf("last record = %s", recs[2])
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("ReadJournal mutated the journal file")
	}
}

func TestReadJournalEarlierCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	frame, err := FrameRecord([]byte(`{"ok":true}`))
	if err != nil {
		t.Fatal(err)
	}
	content := append([]byte("garbage line\n"), frame...)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReadJournal(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Line != 1 {
		t.Errorf("corrupt line = %d, want 1", ce.Line)
	}
}
