// Crash-consistency coverage for the atomic write primitives: every
// failure mode a dying disk or killed process can produce must leave the
// destination either absent or with its previous complete content, and
// must leave no stray temp files behind after cleanup. Faults are driven
// deterministically through faultinject.File via the WrapFile hook, which
// is why this lives in package persist_test (faultinject depends on obs,
// which depends on persist).
package persist_test

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphio/internal/faultinject"
	"graphio/internal/persist"
)

// withFaultyFiles routes every file persist opens through a fresh
// faultinject.File configured by mk, restoring the hook on cleanup.
func withFaultyFiles(t *testing.T, mk func(f persist.File) *faultinject.File) {
	t.Helper()
	persist.WrapFile = func(f persist.File) persist.File { return mk(f) }
	t.Cleanup(func() { persist.WrapFile = nil })
}

func mustReadFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// noTemps asserts the directory holds no staged temp files.
func noTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stray temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := persist.WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := mustReadFile(t, path); got != "first" {
		t.Fatalf("content = %q", got)
	}
	// Overwrite: the replace must be total.
	if err := persist.WriteFileAtomic(path, []byte("second, longer than before"), 0o600); err != nil {
		t.Fatal(err)
	}
	if got := mustReadFile(t, path); got != "second, longer than before" {
		t.Fatalf("content after replace = %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Errorf("perm = %o, want 600", perm)
	}
	noTemps(t, dir)
}

func TestWriterAbortOnCloseLeavesDestinationUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := persist.WriteFileAtomic(path, []byte("previous good content"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := persist.NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(w, "half of the new con")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := mustReadFile(t, path); got != "previous good content" {
		t.Fatalf("abort clobbered destination: %q", got)
	}
	if err := w.Commit(); err == nil {
		t.Error("Commit after Close succeeded")
	}
	noTemps(t, dir)
}

func TestWriterTornWriteNeverPublishes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if err := persist.WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	withFaultyFiles(t, func(f persist.File) *faultinject.File {
		return &faultinject.File{F: f, FailWriteAfter: 8}
	})
	w, err := persist.NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Write([]byte("this is far more than eight bytes")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn write error = %v, want injected fault", err)
	}
	// The sticky write error must also poison Commit.
	if err := w.Commit(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Commit after torn write = %v, want injected fault", err)
	}
	if got := mustReadFile(t, path); got != "old" {
		t.Fatalf("destination changed after torn write: %q", got)
	}
	noTemps(t, dir)
}

func TestWriterSyncFailureAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	withFaultyFiles(t, func(f persist.File) *faultinject.File {
		return &faultinject.File{F: f, FailOnSync: 1}
	})
	w, err := persist.NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(w, "data that never becomes durable")
	if err := w.Commit(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Commit with failing sync = %v, want injected fault", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("destination exists after failed commit")
	}
	noTemps(t, dir)
}

func TestWriteToAbortsOnCallbackError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.txt")
	boom := errors.New("renderer blew up")
	err := persist.WriteTo(path, func(w io.Writer) error {
		fmt.Fprint(w, "partial render")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("destination exists after failed render")
	}
	noTemps(t, dir)
}

func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	// Simulate a SIGKILL between create and rename: a staged temp with no
	// owner, plus files that must survive the sweep.
	for _, name := range []string{".persist-123456.tmp", ".persist-zz.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("debris"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.csv"), []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := persist.RemoveStaleTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("removed %d temps, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.csv")); err != nil {
		t.Error("sweep removed a real artifact")
	}
	if n, _ := persist.RemoveStaleTemps(filepath.Join(dir, "no-such-dir")); n != 0 {
		t.Error("sweep of a missing directory removed something")
	}
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	j, recs, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []string{`{"seq":1}`, `{"seq":2,"x":"y"}`, `{"seq":3}`}
	for _, r := range want {
		if err := j.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append([]byte("not json")); err == nil {
		t.Error("non-JSON record accepted")
	}
	if err := j.Append([]byte("{\n}")); err == nil {
		t.Error("record with embedded newline accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if string(r) != want[i] {
			t.Errorf("record %d = %s, want %s", i, r, want[i])
		}
	}
}

func TestJournalToleratesTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	j, _, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf(`{"seq":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tail := range []string{
		`{"crc":"00000000","rec":{"seq`,             // cut mid-record, no newline
		`{"crc":"deadbeef","rec":{"seq":9}}` + "\n", // full line, wrong checksum
		"garbage\n", // full line, not a frame
		"{",         // single byte of the next frame
	} {
		if err := os.WriteFile(path, append(append([]byte{}, good...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := persist.OpenJournal(path)
		if err != nil {
			t.Fatalf("tail %q: replay failed: %v", tail, err)
		}
		if len(recs) != 3 {
			t.Fatalf("tail %q: replayed %d records, want 3", tail, len(recs))
		}
		// The torn tail must be gone: appending and replaying again stays clean.
		if err := j2.Append([]byte(`{"seq":99}`)); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		_, recs, err = persist.OpenJournal(path)
		if err != nil {
			t.Fatalf("tail %q: replay after repair failed: %v", tail, err)
		}
		if len(recs) != 4 || string(recs[3]) != `{"seq":99}` {
			t.Fatalf("tail %q: post-repair records = %d", tail, len(recs))
		}
		// Reset for the next tail shape.
		if err := os.WriteFile(path, good, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalMidFileCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	j, _, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf(`{"seq":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload: checksum mismatch in
	// the middle of the file, which append crashes cannot produce.
	idx := strings.Index(string(data), `"seq":0`)
	data[idx+6] = '7'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = persist.OpenJournal(path)
	var ce *persist.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption error = %v, want *CorruptError", err)
	}
	if ce.Line != 1 {
		t.Errorf("corrupt line = %d, want 1", ce.Line)
	}
}

func TestLockExcludesLiveOwnerAndStealsDeadOne(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.lock")
	l, err := persist.AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	// Held by this (live) process: a second acquire must fail typed.
	if _, err := persist.AcquireLock(path); !errors.Is(err, persist.ErrLocked) {
		t.Fatalf("second acquire = %v, want ErrLocked", err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("lock file survives Release")
	}
	// A lock whose owner died (SIGKILL aftermath) must be stolen. PID from
	// a long-dead range: max pid on this box is far below 4 million.
	if err := os.WriteFile(path, []byte("4194000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := persist.AcquireLock(path)
	if err != nil {
		t.Fatalf("stale lock not stolen: %v", err)
	}
	l2.Release()
	// Garbage contents count as stale too.
	if err := os.WriteFile(path, []byte("not a pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	l3, err := persist.AcquireLock(path)
	if err != nil {
		t.Fatalf("garbage lock not stolen: %v", err)
	}
	l3.Release()
}
