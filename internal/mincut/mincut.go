// Package mincut implements the convex min-cut lower bound of Elango,
// Rastello, Pouchet, Ramanujam and Sadayappan (the paper's automated
// baseline, [13] in §6.3):
//
//	J*_G ≥ max_v max(0, 2·(C(v, G) − M))
//
// where C(v, G) is the minimum, over every evaluation prefix possible at
// the moment v is computed — a down-set S with Anc(v) ∪ {v} ⊆ S and
// S ∩ Desc(v) = ∅ — of the frontier size |W_S| = |{u ∈ S : ∃(u,w) ∈ E,
// w ∉ S}|. Every frontier value beyond the M that fit in fast memory must
// be written out and later read back, hence the 2·(C − M).
//
// C(v, G) is computed as a minimum vertex s-t cut on a split-node flow
// network (Dinic's algorithm, package maxflow): each vertex u becomes
// u_in→u_out with capacity 1; each DAG edge (x, y) becomes x_out→y_in with
// infinite capacity (a frontier vertex must be cut before the set can end)
// plus the reverse closure arc y_in→x_in (membership of y forces its
// operand x — this is what keeps S a *down-set*, i.e. an actually
// realizable evaluation prefix); v is wired to the source (its ancestors
// follow by closure) and every descendant of v to the sink. The whole-graph
// variant below is the one the paper plots; the partitioned variant the
// original authors suggested is in partitioned.go. Worst-case cost is the
// paper's O(n^5).
package mincut

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphio/internal/graph"
	"graphio/internal/maxflow"
	"graphio/internal/obs"
)

// Options configures ConvexMinCutBound.
type Options struct {
	// M is the fast-memory size. Required, ≥ 1.
	M int
	// Timeout, when positive, stops the per-vertex sweep once exceeded;
	// the result is then a valid but possibly weaker bound with TimedOut
	// set (the paper time-boxed this baseline at one day).
	Timeout time.Duration
	// MaxVertices, when positive, caps how many vertices are evaluated
	// (in decreasing order of the cheap frontier upper bound, so the most
	// promising vertices go first).
	MaxVertices int
	// Workers sets the number of concurrent max-flow evaluations.
	// Default GOMAXPROCS. The reported bound is deterministic regardless
	// (pruning only ever skips vertices that cannot beat the maximum);
	// Evaluated may vary with scheduling.
	Workers int
}

// Result reports the baseline bound and its diagnostics.
type Result struct {
	// Bound is max over evaluated v of max(0, 2·(C(v,G) − M)).
	Bound float64
	// BestVertex attains the maximum cut (−1 when no vertex was evaluated).
	BestVertex int
	// BestCut is C(BestVertex, G).
	BestCut int64
	// Evaluated counts the vertices for which a max-flow was run.
	Evaluated int
	// TimedOut reports whether the sweep stopped on Options.Timeout.
	TimedOut bool
	// Interrupted reports whether the sweep stopped on context
	// cancellation. Like TimedOut, the bound over the vertices evaluated so
	// far is still valid, just possibly weaker.
	Interrupted bool
	// Elapsed is the total sweep time.
	Elapsed time.Duration
}

// ConvexCut computes C(v, G): the minimum frontier over realizable
// evaluation prefixes at the moment v fires. It returns 0 when v has no
// descendants (the prefix can simply be the whole graph).
func ConvexCut(g *graph.Graph, v int) (int64, error) {
	return ConvexCutContext(context.Background(), g, v)
}

// ConvexCutContext is ConvexCut with the underlying max-flow's telemetry
// attributed to ctx's scope.
func ConvexCutContext(ctx context.Context, g *graph.Graph, v int) (int64, error) {
	n := g.N()
	if v < 0 || v >= n {
		return 0, errors.New("mincut: vertex out of range")
	}
	desc := g.Descendants(v)
	hasDesc := false
	for _, d := range desc {
		if d {
			hasDesc = true
			break
		}
	}
	if !hasDesc {
		return 0, nil
	}
	// Split-node network: u_in = 2u, u_out = 2u+1, s = 2n, t = 2n+1.
	net := maxflow.NewNetwork(2*n + 2)
	s, t := 2*n, 2*n+1
	//lint:ignore ctx-loop O(n+m) network construction; ctx exists for telemetry attribution, cancellation is handled by the sweep around each ConvexCut
	for u := 0; u < n; u++ {
		if err := net.AddEdge(2*u, 2*u+1, 1); err != nil {
			return 0, err
		}
	}
	//lint:ignore ctx-loop O(n+m) network construction; ctx exists for telemetry attribution, cancellation is handled by the sweep around each ConvexCut
	for x := 0; x < n; x++ {
		for _, yi := range g.Succ(x) {
			y := int(yi)
			if err := net.AddEdge(2*x+1, 2*y, maxflow.Inf); err != nil {
				return 0, err
			}
			// Reverse closure: y in S forces its operand x into S.
			if err := net.AddEdge(2*y, 2*x, maxflow.Inf); err != nil {
				return 0, err
			}
		}
	}
	if err := net.AddEdge(s, 2*v, maxflow.Inf); err != nil {
		return 0, err
	}
	//lint:ignore ctx-loop O(n) sink wiring; ctx exists for telemetry attribution, cancellation is handled by the sweep around each ConvexCut
	for u, isDesc := range desc {
		if isDesc {
			// Wire the *in* node to the sink: a descendant may neither be
			// in S nor serve as a cut vertex itself (W_S ⊆ S), so its
			// membership node must be unreachable on the source side.
			if err := net.AddEdge(2*u, t, maxflow.Inf); err != nil {
				return 0, err
			}
		}
	}
	return net.MaxFlowContext(ctx, s, t)
}

// frontierUpperBound returns |W_S| for the minimal prefix S = Anc(v) ∪ {v},
// a cheap upper bound on C(v, G) used to order and prune the sweep.
func frontierUpperBound(g *graph.Graph, v int) int64 {
	anc := g.Ancestors(v)
	anc[v] = true
	var w int64
	for u := 0; u < g.N(); u++ {
		if !anc[u] {
			continue
		}
		for _, c := range g.Succ(u) {
			if !anc[c] {
				w++
				break
			}
		}
	}
	return w
}

// ConvexMinCutBound computes the whole-graph convex min-cut lower bound,
// maximizing over vertices. Vertices are visited in decreasing order of a
// cheap frontier upper bound and pruned once that upper bound cannot beat
// the best cut found, so typical runs evaluate far fewer than n flows while
// returning the same maximum.
func ConvexMinCutBound(g *graph.Graph, opt Options) (*Result, error) {
	return ConvexMinCutBoundContext(context.Background(), g, opt)
}

// ConvexMinCutBoundContext is ConvexMinCutBound with cancellation: a
// cancelled or expired context stops the sweep like Options.Timeout does,
// returning the (valid, possibly weaker) bound over the vertices evaluated
// so far with Result.Interrupted set rather than an error.
func ConvexMinCutBoundContext(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	if opt.M < 1 {
		return nil, errors.New("mincut: Options.M must be ≥ 1")
	}
	start := obs.Now()
	sp := obs.StartSpanCtx(ctx, "mincut.sweep")
	n := g.N()
	res := &Result{BestVertex: -1}
	if n == 0 {
		sp.End()
		return res, nil
	}

	type cand struct {
		v  int
		ub int64
	}
	cands := make([]cand, 0, n)
	for v := 0; v < n; v++ {
		if g.OutDeg(v) == 0 {
			continue // sinks have no descendants: C = 0
		}
		// The upper-bound pass is itself O(n·(n+m)); honour the time box
		// and the context here too, and rank whatever prefix was scored.
		if v%256 == 0 {
			if opt.Timeout > 0 && obs.Since(start) > opt.Timeout/2 {
				res.TimedOut = true
				break
			}
			if ctx.Err() != nil {
				res.Interrupted = true
				break
			}
		}
		cands = append(cands, cand{v, frontierUpperBound(g, v)})
	}
	// Sort by decreasing upper bound, ties by vertex ID for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ub != cands[j].ub {
			return cands[i].ub > cands[j].ub
		}
		return cands[i].v < cands[j].v
	})

	limit := len(cands)
	if opt.MaxVertices > 0 && opt.MaxVertices < limit {
		limit = opt.MaxVertices
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > limit {
		workers = limit
	}
	if workers < 1 {
		workers = 1
	}

	// Workers pull candidates in UB order and share the running maximum:
	// a candidate whose cheap upper bound cannot beat it is skipped (the
	// skip can never change the maximum, so the Bound stays deterministic;
	// which vertex attains it is tie-broken by smallest ID below).
	var (
		mu       sync.Mutex
		bestCut  int64 = -1
		bestV          = -1
		next     int32
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= limit {
					return
				}
				if opt.Timeout > 0 && obs.Since(start) > opt.Timeout {
					mu.Lock()
					res.TimedOut = true
					mu.Unlock()
					return
				}
				if ctx.Err() != nil {
					mu.Lock()
					res.Interrupted = true
					mu.Unlock()
					return
				}
				c := cands[i]
				mu.Lock()
				done := c.ub <= bestCut || firstErr != nil
				mu.Unlock()
				if done {
					// Candidates are sorted by decreasing upper bound, so
					// nothing after this one can improve the maximum.
					return
				}
				flowDone := obs.TimeHistCtx(ctx, "mincut.flow_ns")
				cut, err := ConvexCutContext(ctx, g, c.v)
				flowDone()
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				res.Evaluated++
				if cut > bestCut || (cut == bestCut && (bestV == -1 || c.v < bestV)) {
					bestCut = cut
					bestV = c.v
				}
				bestAfter := bestCut
				mu.Unlock()
				if obs.EventsEnabled() && err == nil {
					// One event per evaluated flow, in candidate (UB) order;
					// emitted concurrently by the worker pool.
					obs.Probe("mincut.sweep").IterCtx(ctx, int64(i),
						obs.FI("vertex", int64(c.v)),
						obs.FI("ub", c.ub),
						obs.FI("cut", cut),
						obs.FI("best", bestAfter))
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.BestCut = bestCut
	res.BestVertex = bestV
	if bestCut < 0 {
		res.BestCut = 0
	}
	if bestCut > 0 {
		if b := 2 * (float64(bestCut) - float64(opt.M)); b > 0 {
			res.Bound = b
		}
	}
	res.Elapsed = obs.Since(start)
	if obs.Enabled() {
		obs.AddCtx(ctx, "mincut.flows", int64(res.Evaluated))
		// Everything the upper-bound ordering let the sweep skip: candidates
		// whose cheap frontier bound could not beat the running maximum.
		obs.AddCtx(ctx, "mincut.pruned", int64(limit-res.Evaluated))
		if res.TimedOut {
			obs.IncCtx(ctx, "mincut.timeouts")
		}
		if res.Interrupted {
			obs.IncCtx(ctx, "mincut.interrupts")
		}
	}
	if res.TimedOut {
		obs.LogCtx(ctx, "mincut: timed out after %v with %d/%d flows evaluated (bound is valid but possibly weaker)",
			res.Elapsed.Round(time.Millisecond), res.Evaluated, limit)
	}
	if res.Interrupted {
		obs.LogCtx(ctx, "mincut: interrupted after %v with %d/%d flows evaluated (bound is valid but possibly weaker)",
			res.Elapsed.Round(time.Millisecond), res.Evaluated, limit)
	}
	sp.SetInt("evaluated", int64(res.Evaluated))
	sp.SetInt("candidates", int64(limit))
	sp.SetFloat("bound", res.Bound)
	sp.End()
	return res, nil
}
