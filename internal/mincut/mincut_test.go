package mincut

import (
	"math/rand"
	"testing"
	"time"

	"graphio/internal/gen"
	"graphio/internal/graph"
)

// bruteConvexCut enumerates every subset of V for small graphs, keeps the
// realizable prefixes (down-sets S with Anc(v) ∪ {v} ⊆ S and
// S ∩ Desc(v) = ∅) and returns the minimum frontier |W_S|.
func bruteConvexCut(g *graph.Graph, v int) int64 {
	n := g.N()
	anc := g.Ancestors(v)
	desc := g.Descendants(v)
	hasDesc := false
	for _, d := range desc {
		if d {
			hasDesc = true
			break
		}
	}
	if !hasDesc {
		return 0
	}
	best := int64(1) << 60
subsets:
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<v) == 0 {
			continue
		}
		for u := 0; u < n; u++ {
			inS := mask&(1<<u) != 0
			if anc[u] && !inS {
				continue subsets
			}
			if desc[u] && inS {
				continue subsets
			}
			if inS {
				// Down-set: all parents of u must be in S.
				for _, p := range g.Pred(u) {
					if mask&(1<<p) == 0 {
						continue subsets
					}
				}
			}
		}
		var w int64
		for u := 0; u < n; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			for _, c := range g.Succ(u) {
				if mask&(1<<c) == 0 {
					w++
					break
				}
			}
		}
		if w < best {
			best = w
		}
	}
	return best
}

func randomDAG(rng *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.AddVertices(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestConvexCutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 3+rng.Intn(9), 0.35)
		for v := 0; v < g.N(); v++ {
			got, err := ConvexCut(g, v)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteConvexCut(g, v)
			if got != want {
				t.Fatalf("trial %d vertex %d: flow cut %d != brute %d (edges %v)",
					trial, v, got, want, g.Edges())
			}
		}
	}
}

func TestConvexCutStructuredGraphs(t *testing.T) {
	// Chain: every prefix frontier is exactly the last vertex.
	chain := gen.Chain(6)
	for v := 0; v < 5; v++ {
		cut, err := ConvexCut(chain, v)
		if err != nil {
			t.Fatal(err)
		}
		if cut != 1 {
			t.Errorf("chain vertex %d: cut %d want 1", v, cut)
		}
	}
	// Sink: no descendants, no cut.
	cut, err := ConvexCut(chain, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Errorf("sink cut %d want 0", cut)
	}
	// Grid: the frontier of any prefix through the middle is an
	// anti-chain staircase; verify against brute force.
	grid := gen.Grid2D(3, 4)
	for _, v := range []int{0, 5, 6} {
		got, err := ConvexCut(grid, v)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteConvexCut(grid, v); got != want {
			t.Errorf("grid vertex %d: %d want %d", v, got, want)
		}
	}
}

func TestConvexCutBadVertex(t *testing.T) {
	if _, err := ConvexCut(gen.Chain(3), 9); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestConvexMinCutBoundMatchesExhaustiveSweep(t *testing.T) {
	// The upper-bound pruning must not change the maximum.
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		g := randomDAG(rng, 4+rng.Intn(10), 0.3)
		M := 1 + rng.Intn(3)
		res, err := ConvexMinCutBound(g, Options{M: M})
		if err != nil {
			t.Fatal(err)
		}
		var bestCut int64
		for v := 0; v < g.N(); v++ {
			c, err := ConvexCut(g, v)
			if err != nil {
				t.Fatal(err)
			}
			if c > bestCut {
				bestCut = c
			}
		}
		wantBound := 2 * (float64(bestCut) - float64(M))
		if wantBound < 0 {
			wantBound = 0
		}
		if res.Bound != wantBound {
			t.Fatalf("trial %d: pruned bound %g != exhaustive %g (bestCut=%d)",
				trial, res.Bound, wantBound, bestCut)
		}
	}
}

func TestConvexMinCutBoundOnFFT(t *testing.T) {
	// Paper Figure 7: the baseline is nontrivial on the FFT for small M.
	g := gen.FFT(4)
	res, err := ConvexMinCutBound(g, Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound <= 0 {
		t.Errorf("FFT(4), M=2: baseline bound %g should be positive (best cut %d at %d)",
			res.Bound, res.BestCut, res.BestVertex)
	}
	if res.Evaluated == 0 || res.BestVertex < 0 {
		t.Errorf("diagnostics: %+v", res)
	}
}

func TestConvexMinCutBoundValidation(t *testing.T) {
	if _, err := ConvexMinCutBound(gen.Chain(3), Options{M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	empty := graph.NewBuilder(0, 0).MustBuild()
	res, err := ConvexMinCutBound(empty, Options{M: 2})
	if err != nil || res.Bound != 0 {
		t.Errorf("empty graph: %+v, %v", res, err)
	}
}

func TestConvexMinCutTimeout(t *testing.T) {
	g := gen.FFT(5)
	res, err := ConvexMinCutBound(g, Options{M: 2, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("nanosecond timeout not reported")
	}
	if res.Bound < 0 {
		t.Error("timed-out bound must still be valid (≥ 0)")
	}
}

func TestConvexMinCutMaxVertices(t *testing.T) {
	g := gen.FFT(3)
	res, err := ConvexMinCutBound(g, Options{M: 2, MaxVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated > 3 {
		t.Errorf("evaluated %d > cap 3", res.Evaluated)
	}
}

func TestPartitionedBoundBadParts(t *testing.T) {
	g := gen.Chain(4)
	if _, err := PartitionedBound(g, [][]int{{0, 0}}, 2); err == nil {
		t.Error("duplicated vertex in a part accepted")
	}
	if _, err := PartitionedBound(g, [][]int{{9}}, 2); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	res, err := PartitionedBound(g, nil, 2)
	if err != nil || res.Bound != 0 {
		t.Errorf("empty partition: %+v, %v", res, err)
	}
}

func TestConvexCutSymmetricVertices(t *testing.T) {
	// FFT columns are symmetric: all vertices in the same column have the
	// same convex cut value.
	g := gen.FFT(3)
	rows := 8
	for col := 0; col < 3; col++ {
		want, err := ConvexCut(g, col*rows)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r < rows; r++ {
			got, err := ConvexCut(g, col*rows+r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("column %d: vertex %d cut %d != %d", col, col*rows+r, got, want)
			}
		}
	}
}

func TestPartitionedBound(t *testing.T) {
	g := gen.FFT(3)
	// One part per column pair: any disjoint cover works for the API.
	var parts [][]int
	n := g.N()
	for lo := 0; lo < n; lo += 8 {
		hi := lo + 8
		if hi > n {
			hi = n
		}
		part := make([]int, 0, 8)
		for v := lo; v < hi; v++ {
			part = append(part, v)
		}
		parts = append(parts, part)
	}
	res, err := PartitionedBound(g, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound < 0 {
		t.Errorf("bound %g", res.Bound)
	}
	// Whole-graph variant dominates on complex graphs (the paper's reason
	// for plotting it): with tiny parts the partitioned bound collapses.
	whole, err := ConvexMinCutBound(g, Options{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound > whole.Bound {
		t.Logf("note: partitioned %g exceeded whole-graph %g (legal, both are lower bounds)",
			res.Bound, whole.Bound)
	}
	if _, err := PartitionedBound(g, parts, 0); err == nil {
		t.Error("M=0 accepted")
	}
}
