package mincut

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"graphio/internal/graph"
	"graphio/internal/obs"
)

// PartitionedBound computes the partitioned convex min-cut variant the
// baseline's original authors suggested for scalability: partition V, run
// the per-vertex convex cut inside each induced subgraph, and sum
//
//	J*_G ≥ Σ_P max_{v ∈ P} max(0, 2·(C(v, G_P) − M)).
//
// The paper found this variant trivial (zero) on complex computation
// graphs because the suggested 2M-vertex parts are too small; it is
// provided for completeness and for the ablation in the experiment
// harness. parts must cover disjoint vertex sets (e.g. from
// partition.RecursiveBisection).
func PartitionedBound(g *graph.Graph, parts [][]int, M int) (*Result, error) {
	if M < 1 {
		return nil, errors.New("mincut: M must be ≥ 1")
	}
	start := obs.Now()
	res := &Result{BestVertex: -1}
	// Parts are independent subproblems: fan them out to a worker pool.
	subResults := make([]*Result, len(parts))
	errs := make([]error, len(parts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers < 1 {
		workers = 1
	}
	var next int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= len(parts) {
					return
				}
				sub, err := g.InducedSubgraph(parts[i])
				if err != nil {
					errs[i] = err
					continue
				}
				subResults[i], errs[i] = ConvexMinCutBound(sub, Options{M: M, Workers: 1})
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		subRes := subResults[i]
		res.Evaluated += subRes.Evaluated
		res.Bound += subRes.Bound
		if subRes.BestCut > res.BestCut {
			res.BestCut = subRes.BestCut
			if subRes.BestVertex >= 0 {
				res.BestVertex = parts[i][subRes.BestVertex]
			}
		}
	}
	res.Elapsed = obs.Since(start)
	return res, nil
}
