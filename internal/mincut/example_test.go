package mincut_test

import (
	"fmt"

	"graphio/internal/gen"
	"graphio/internal/mincut"
)

// ExampleConvexMinCutBound runs the baseline on a 16-point FFT with two
// fast-memory slots: the best vertex's convex cut certifies unavoidable
// traffic around the butterfly's waist.
func ExampleConvexMinCutBound() {
	g := gen.FFT(4)
	res, err := mincut.ConvexMinCutBound(g, mincut.Options{M: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("J* ≥ %.0f (C(v*)=%d)\n", res.Bound, res.BestCut)
	// Output:
	// J* ≥ 4 (C(v*)=4)
}

// ExampleConvexCut inspects one vertex: right after the first product of
// an inner product fires, only that product needs to be live (its inputs
// are dead and the second half is untouched).
func ExampleConvexCut() {
	g := gen.InnerProduct(2)
	cut, err := mincut.ConvexCut(g, 4) // the first product vertex
	if err != nil {
		panic(err)
	}
	fmt.Println(cut)
	// Output:
	// 1
}
