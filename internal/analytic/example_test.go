package analytic_test

import (
	"fmt"

	"graphio/internal/analytic"
)

// ExampleButterflySpectrum prints the smallest Laplacian eigenvalues of
// the 8-point-FFT butterfly, straight from the Theorem 7 closed form.
func ExampleButterflySpectrum() {
	spec := analytic.ButterflySpectrum(3)
	for _, v := range spec[:4] {
		fmt.Printf("%.4f ", v)
	}
	fmt.Println()
	// Output:
	// 0.0000 0.3961 0.3961 0.7639
}

// ExampleHypercubeBoundOptimal evaluates the §5.1 closed-form I/O bound
// for a 12-city Bellman-Held-Karp instance with 16 fast-memory slots —
// no eigensolver involved.
func ExampleHypercubeBoundOptimal() {
	bound, k := analytic.HypercubeBoundOptimal(12, 16)
	fmt.Printf("J* ≥ %.1f (k=%d)\n", bound, k)
	// Output:
	// J* ≥ 386.0 (k=5)
}

// ExampleGridSpectrum shows the stencil extension: the 3×3 grid's
// spectrum is the pairwise sums of two path spectra.
func ExampleGridSpectrum() {
	spec := analytic.GridSpectrum(3, 3)
	fmt.Printf("%.4f %.4f ... %.4f\n", spec[0], spec[1], spec[8])
	// Output:
	// 0.0000 1.0000 ... 6.0000
}
