// Package analytic provides the paper's closed-form results: exact
// Laplacian spectra for the hypercube and the unwrapped butterfly graph
// (Theorem 7 — the multiplicity result the paper derives in Appendix A),
// the §5.1/§5.2 closed-form I/O bounds built on them, the §5.3 Erdős–Rényi
// bounds, and the previously published bounds the evaluation compares
// against (Hong–Kung FFT, Irony–Toledo–Tiskin matrix multiplication,
// Ballard et al. Strassen).
package analytic

import (
	"math"
	"sort"

	"graphio/internal/core"
)

// Binomial returns C(n, k) as an exact int64. It panics on overflow-prone
// inputs (n > 62), which are far beyond any graph this module constructs.
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if n > 62 {
		//lint:ignore no-panic domain limit: int64 Binomial is exact only for n ≤ 62; callers pass graph levels far below it
		panic("analytic: Binomial overflow range")
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}

// HypercubeSpectrum returns the Laplacian spectrum of the boolean l-cube
// Q_l, ascending with multiplicity: eigenvalue 2i repeated C(l, i) times
// (paper §5.1). The slice has 2^l entries.
func HypercubeSpectrum(l int) []float64 {
	vals := make([]float64, 0, 1<<uint(l))
	for i := 0; i <= l; i++ {
		mult := Binomial(l, i)
		for c := int64(0); c < mult; c++ {
			vals = append(vals, 2*float64(i))
		}
	}
	return vals
}

// ButterflySpectrum returns the Laplacian spectrum of the unwrapped
// butterfly graph B_l ((l+1)·2^l vertices), ascending with multiplicity,
// per Theorem 7 / Appendix A:
//
//   - 4 − 4cos(πj/(l+1)) for j = 0..l, each once
//     (the theorem statement prints πj/l, but the derivation — Lemma 11
//     applied to the weight-2 path P_{l+1} — and the §5.2 usage give
//     πj/(l+1); only that version makes the multiplicities sum to
//     (l+1)·2^l, which this function's tests check against the dense
//     eigensolver);
//   - 4 − 4cos(π(2j+1)/(2i+1)) for i = 1..l, j = 0..i−1, each 2^(l−i+1)
//     times (the paths P'_i with one weighted endpoint);
//   - 4 − 4cos(πj/(i+1)) for i = 1..l−1, j = 1..i, each (l−i)·2^(l−i−1)
//     times (the paths P”_i with two weighted endpoints).
func ButterflySpectrum(l int) []float64 {
	n := (l + 1) << uint(l)
	vals := make([]float64, 0, n)
	push := func(v float64, mult int64) {
		for c := int64(0); c < mult; c++ {
			vals = append(vals, v)
		}
	}
	for j := 0; j <= l; j++ {
		push(4-4*math.Cos(math.Pi*float64(j)/float64(l+1)), 1)
	}
	for i := 1; i <= l; i++ {
		mult := int64(1) << uint(l-i+1)
		for j := 0; j < i; j++ {
			push(4-4*math.Cos(math.Pi*float64(2*j+1)/float64(2*i+1)), mult)
		}
	}
	for i := 1; i <= l-1; i++ {
		mult := int64(l-i) << uint(l-i-1)
		for j := 1; j <= i; j++ {
			push(4-4*math.Cos(math.Pi*float64(j)/float64(i+1)), mult)
		}
	}
	sort.Float64s(vals)
	return vals
}

// HypercubeBoundSimple evaluates the §5.1 α = 1 closed form for the
// Bellman–Held–Karp hypercube: J* ≥ 2^(l+1)/(l+1) − 2M(l+1). Nontrivial
// only once M ≤ 2^l/(l+1)².
func HypercubeBoundSimple(l, M int) float64 {
	return math.Exp2(float64(l+1))/float64(l+1) - 2*float64(M)*float64(l+1)
}

// HypercubeBoundOptimal evaluates the §5.1 closed form optimized over α:
// the Theorem 5 bound fed with the exact hypercube spectrum and divided by
// the maximal out-degree l. Returns the clamped bound and the best k.
func HypercubeBoundOptimal(l, M int) (float64, int) {
	return HypercubeBoundOptimalK(l, M, 1<<uint(l))
}

// HypercubeBoundOptimalK is HypercubeBoundOptimal with the k sweep (and
// the spectrum prefix) truncated at maxK, matching a solver run with
// h = maxK for apples-to-apples comparisons.
func HypercubeBoundOptimalK(l, M, maxK int) (float64, int) {
	n := 1 << uint(l)
	if maxK > n {
		maxK = n
	}
	spec := HypercubeSpectrum(l)[:maxK]
	bound, bestK, _ := core.BoundFromEigenvalues(spec, n, M, 1, float64(l))
	return bound, bestK
}

// FFTClosedForm evaluates the §5.2 closed form for the 2^l-point FFT
// butterfly, maximized over the cut level α ∈ {0..l−1}:
//
//	J* ≥ (l+1)·2^l·(1 − cos(π/(2(l−α)+1))) − 2^(α+2)·M
//
// (k = 2^(α+1) smallest eigenvalues, of which the 2^α copies at i = l−α are
// kept and the rest dropped to zero; maximal out-degree 2). Returns the
// clamped bound and the maximizing α.
func FFTClosedForm(l, M int) (float64, int) {
	best, bestAlpha := 0.0, -1
	for alpha := 0; alpha <= l-1; alpha++ {
		v := FFTClosedFormAt(l, M, alpha)
		if v > best {
			best, bestAlpha = v, alpha
		}
	}
	return best, bestAlpha
}

// FFTClosedFormAt evaluates the §5.2 closed form at a specific α.
func FFTClosedFormAt(l, M, alpha int) float64 {
	lam := 1 - math.Cos(math.Pi/float64(2*(l-alpha)+1))
	return float64(l+1)*math.Exp2(float64(l))*lam - math.Exp2(float64(alpha+2))*float64(M)
}

// FFTClosedFormPaperAlpha evaluates the closed form at the paper's choice
// α = l − log2 M (clamped into range), the setting behind the
// Ω(l·2^l/log²M) comparison with Hong–Kung.
func FFTClosedFormPaperAlpha(l, M int) float64 {
	alpha := l - int(math.Round(math.Log2(float64(M))))
	if alpha < 0 {
		alpha = 0
	}
	if alpha > l-1 {
		alpha = l - 1
	}
	return FFTClosedFormAt(l, M, alpha)
}

// HongKungFFT evaluates the published asymptotically tight FFT lower bound
// Ω(l·2^l / log M) (Hong & Kung 1981), as the plain expression value with
// log base 2. Like every Ω-form here it is a growth-shape reference, not an
// absolute count.
func HongKungFFT(l, M int) float64 {
	if M < 2 {
		M = 2
	}
	return float64(l) * math.Exp2(float64(l)) / math.Log2(float64(M))
}

// MatMulPublished evaluates the published naive matrix multiplication bound
// Ω(n³/√M) (Irony, Toledo & Tiskin 2004).
func MatMulPublished(n, M int) float64 {
	return math.Pow(float64(n), 3) / math.Sqrt(float64(M))
}

// StrassenPublished evaluates the published Strassen bound
// Ω((n/√M)^(log2 7)·M) (Ballard, Demmel, Holtz & Schwartz 2012).
func StrassenPublished(n, M int) float64 {
	return math.Pow(float64(n)/math.Sqrt(float64(M)), math.Log2(7)) * float64(M)
}

// BHKPublished evaluates the bound the paper itself derives for the
// Bellman–Held–Karp hypercube, Ω(2^l/l − 2Ml) (§6.2), used as the growth
// reference in Figure 10.
func BHKPublished(l, M int) float64 {
	return math.Exp2(float64(l))/float64(l) - 2*float64(M)*float64(l)
}

// GridSpectrum returns the Laplacian spectrum of the rows×cols 2-D stencil
// DAG (gen.Grid2D), ascending with multiplicity. The undirected support is
// the Cartesian product of two paths, so the spectrum is the pairwise-sum
// set {λ_i(P_rows) + λ_j(P_cols)} with λ_k(P_m) = 2 − 2cos(πk/m) — a new
// closed-form application of the paper's machinery beyond its own §5
// examples, demonstrated in TableGrid.
func GridSpectrum(rows, cols int) []float64 {
	out := make([]float64, 0, rows*cols)
	for i := 0; i < rows; i++ {
		li := 2 - 2*math.Cos(math.Pi*float64(i)/float64(rows))
		for j := 0; j < cols; j++ {
			out = append(out, li+2-2*math.Cos(math.Pi*float64(j)/float64(cols)))
		}
	}
	sort.Float64s(out)
	return out
}

// GridBound evaluates the Theorem 5 bound for the rows×cols stencil DAG
// from its closed-form spectrum (max out-degree 2). Returns the clamped
// bound and the best k; maxK truncates the sweep (0 = full spectrum).
func GridBound(rows, cols, M, maxK int) (float64, int) {
	n := rows * cols
	if maxK <= 0 || maxK > n {
		maxK = n
	}
	spec := GridSpectrum(rows, cols)[:maxK]
	bound, bestK, _ := core.BoundFromEigenvalues(spec, n, M, 1, 2)
	return bound, bestK
}

// ErdosRenyiSparseBound evaluates the §5.3 sparse-regime closed form for
// G(n, p) with p = p0·log n/(n−1), p0 > 6, dropping the vanishing O(·)
// terms:
//
//	J* ≥ n/(1+√(6/p0)) · (1 − √(2/p0)) − 4M
//
// (Theorem 5 with k = 2, λ2 from Kolokolnikov et al., dmax concentrated by
// Chernoff.) Valid with high probability as n → ∞.
func ErdosRenyiSparseBound(n int, p0 float64, M int) float64 {
	if p0 <= 6 {
		return 0
	}
	return float64(n)/(1+math.Sqrt(6/p0))*(1-math.Sqrt(2/p0)) - 4*float64(M)
}

// ErdosRenyiDenseBound evaluates the §5.3 dense-regime closed form
// (np/log n → ∞): J* ≥ n/2 − 4M, again dropping vanishing terms.
func ErdosRenyiDenseBound(n, M int) float64 {
	return float64(n)/2 - 4*float64(M)
}
