package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestButterflySpectrumTraceProperty(t *testing.T) {
	// Σλ equals the Laplacian trace, which is twice the edge count:
	// B_l has 2l·2^l edges, so the spectrum must sum to 4l·2^l.
	f := func(seed int64) bool {
		l := 1 + int(seed%8)
		if l < 1 {
			l = 1
		}
		spec := ButterflySpectrum(l)
		sum := 0.0
		for _, v := range spec {
			sum += v
		}
		want := 4 * float64(l) * math.Exp2(float64(l))
		return math.Abs(sum-want) < 1e-6*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHypercubeSpectrumTraceProperty(t *testing.T) {
	// Q_l has l·2^(l-1) edges: spectrum sums to l·2^l.
	f := func(seed int64) bool {
		l := 1 + int(seed%10)
		if l < 1 {
			l = 1
		}
		spec := HypercubeSpectrum(l)
		sum := 0.0
		for _, v := range spec {
			sum += v
		}
		want := float64(l) * math.Exp2(float64(l))
		return math.Abs(sum-want) < 1e-6*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestClosedFormsMonotoneInM(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 30; trial++ {
		l := 6 + rng.Intn(8)
		M := 1 + rng.Intn(32)
		if v1, _ := FFTClosedForm(l, M); true {
			v2, _ := FFTClosedForm(l, M+1)
			if v2 > v1+1e-9 {
				t.Errorf("FFT closed form increased with M: l=%d M=%d: %g -> %g", l, M, v1, v2)
			}
		}
		h1, _ := HypercubeBoundOptimal(l, M)
		h2, _ := HypercubeBoundOptimal(l, M+1)
		if h2 > h1+1e-9 {
			t.Errorf("hypercube closed form increased with M: l=%d M=%d", l, M)
		}
	}
}

func TestHypercubeBoundOptimalKTruncation(t *testing.T) {
	// Truncating the sweep can only weaken (or preserve) the bound.
	for _, l := range []int{7, 9} {
		for _, M := range []int{1, 2} {
			full, _ := HypercubeBoundOptimal(l, M)
			trunc, _ := HypercubeBoundOptimalK(l, M, 10)
			if trunc > full+1e-9 {
				t.Errorf("l=%d M=%d: truncated %g above full %g", l, M, trunc, full)
			}
		}
	}
}
