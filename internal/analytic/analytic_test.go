package analytic

import (
	"math"
	"testing"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
)

func TestBinomial(t *testing.T) {
	cases := map[[2]int]int64{
		{0, 0}: 1, {5, 0}: 1, {5, 5}: 1, {5, 2}: 10, {10, 3}: 120,
		{5, 6}: 0, {5, -1}: 0, {30, 15}: 155117520,
	}
	for in, want := range cases {
		if got := Binomial(in[0], in[1]); got != want {
			t.Errorf("Binomial(%d,%d)=%d want %d", in[0], in[1], got, want)
		}
	}
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestHypercubeSpectrumMatchesDenseSolver(t *testing.T) {
	for _, l := range []int{1, 2, 3, 4, 5, 6} {
		want := HypercubeSpectrum(l)
		if len(want) != 1<<l {
			t.Fatalf("l=%d: spectrum has %d entries", l, len(want))
		}
		g := gen.BellmanHeldKarp(l)
		got, err := linalg.SymEigValues(laplacian.BuildDense(g, laplacian.Original))
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("l=%d: computed hypercube spectrum deviates by %g", l, d)
		}
	}
}

func TestButterflySpectrumMatchesDenseSolver(t *testing.T) {
	// This is the Theorem 7 / Appendix A verification: the closed-form
	// multiset (including multiplicities) must equal the numerically
	// computed Laplacian spectrum of the generated butterfly graph.
	for _, l := range []int{1, 2, 3, 4} {
		want := ButterflySpectrum(l)
		n := (l + 1) << l
		if len(want) != n {
			t.Fatalf("l=%d: closed-form multiplicities sum to %d, want %d", l, len(want), n)
		}
		g := gen.FFT(l)
		got, err := linalg.SymEigValues(laplacian.BuildDense(g, laplacian.Original))
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("l=%d: butterfly spectrum deviates by %g\n got[:8]=%v\nwant[:8]=%v",
				l, d, got[:min(8, n)], want[:min(8, n)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestButterflySpectrumBasics(t *testing.T) {
	spec := ButterflySpectrum(5)
	if spec[0] != 0 {
		t.Errorf("smallest eigenvalue %g, want 0", spec[0])
	}
	for i := 1; i < len(spec); i++ {
		if spec[i] < spec[i-1] {
			t.Fatal("spectrum not ascending")
		}
	}
	if spec[len(spec)-1] > 8 {
		t.Errorf("butterfly eigenvalues must lie in [0,8], got %g", spec[len(spec)-1])
	}
	// Exactly one zero eigenvalue: the butterfly is connected.
	if spec[1] <= 1e-12 {
		t.Errorf("second eigenvalue %g should be positive", spec[1])
	}
}

func TestHypercubeClosedFormsConsistent(t *testing.T) {
	for _, l := range []int{6, 8, 10} {
		for _, M := range []int{1, 2, 4} {
			simple := HypercubeBoundSimple(l, M)
			opt, bestK := HypercubeBoundOptimal(l, M)
			if opt < 0 {
				t.Errorf("l=%d M=%d: optimal bound negative: %g", l, M, opt)
			}
			// The optimal-α bound dominates the clamped α = 1 form. The
			// simple form uses exact division n/k while the optimal uses
			// the Theorem 5 floor ⌊n/k⌋; with k = l+1 dividing is not
			// exact, so allow the floor slack of one eigenvalue sum unit.
			slack := 2 * float64(l) // Σλ/dmax ≤ 2l per segment unit
			if simple > 0 && opt < simple-slack {
				t.Errorf("l=%d M=%d: optimal %g (k=%d) below simple %g", l, M, opt, bestK, simple)
			}
		}
	}
}

func TestFFTClosedFormAgainstComputedBound(t *testing.T) {
	// The §5.2 closed form keeps only one eigenvalue family and drops the
	// rest to zero, so the computed Theorem 5 bound with the true spectrum
	// must dominate it wherever the closed form's k = 2^(α+1) is inside the
	// computed sweep.
	for _, l := range []int{4, 5, 6} {
		for _, M := range []int{2, 4} {
			g := gen.FFT(l)
			res, err := core.SpectralBound(g, core.Options{
				M: M, MaxK: g.N(), Laplacian: laplacian.Original, Solver: core.SolverDense,
			})
			if err != nil {
				t.Fatal(err)
			}
			cf, alpha := FFTClosedForm(l, M)
			if cf > res.Bound+1e-6 {
				t.Errorf("l=%d M=%d: closed form %g (α=%d) exceeds computed bound %g",
					l, M, cf, alpha, res.Bound)
			}
		}
	}
}

func TestFFTClosedFormPaperAlphaClamps(t *testing.T) {
	if v := FFTClosedFormPaperAlpha(4, 1<<10); math.IsNaN(v) {
		t.Error("large M should clamp α, not NaN")
	}
	if v := FFTClosedFormPaperAlpha(10, 1); math.IsNaN(v) {
		t.Error("M=1 should clamp α")
	}
}

func TestPublishedBoundShapes(t *testing.T) {
	// Growth sanity: each published bound increases in its size parameter
	// and decreases (weakly) in M.
	if !(HongKungFFT(11, 4) > HongKungFFT(10, 4)) {
		t.Error("HongKungFFT not increasing in l")
	}
	if !(HongKungFFT(10, 16) < HongKungFFT(10, 4)) {
		t.Error("HongKungFFT not decreasing in M")
	}
	if !(MatMulPublished(16, 32) > MatMulPublished(8, 32)) {
		t.Error("MatMulPublished not increasing in n")
	}
	if !(StrassenPublished(16, 8) > StrassenPublished(8, 8)) {
		t.Error("StrassenPublished not increasing in n")
	}
	if !(BHKPublished(12, 16) > BHKPublished(10, 16)) {
		t.Error("BHKPublished not increasing in l")
	}
	if HongKungFFT(10, 1) <= 0 {
		t.Error("HongKungFFT should guard M<2")
	}
}

func TestErdosRenyiBounds(t *testing.T) {
	if ErdosRenyiSparseBound(1000, 5, 4) != 0 {
		t.Error("p0 ≤ 6 must return the trivial bound")
	}
	v := ErdosRenyiSparseBound(1000, 12, 4)
	if v <= 0 || v >= 1000 {
		t.Errorf("sparse bound out of range: %g", v)
	}
	if d := ErdosRenyiDenseBound(1000, 4); d != 500-16 {
		t.Errorf("dense bound %g", d)
	}
}

func TestGridSpectrumMatchesDenseSolver(t *testing.T) {
	for _, dims := range [][2]int{{2, 3}, {4, 4}, {5, 7}} {
		r, c := dims[0], dims[1]
		want := GridSpectrum(r, c)
		g := gen.Grid2D(r, c)
		got, err := linalg.SymEigValues(laplacian.BuildDense(g, laplacian.Original))
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("%dx%d: grid spectrum deviates by %g", r, c, d)
		}
	}
}

func TestGridBoundMatchesComputed(t *testing.T) {
	r, c, M := 12, 12, 2
	g := gen.Grid2D(r, c)
	res, err := core.SpectralBound(g, core.Options{
		M: M, MaxK: 40, Laplacian: laplacian.Original, Solver: core.SolverDense,
	})
	if err != nil {
		t.Fatal(err)
	}
	closed, _ := GridBound(r, c, M, 40)
	if math.Abs(closed-res.Bound) > 1e-8*(1+closed) {
		t.Errorf("closed %g vs computed %g", closed, res.Bound)
	}
}

func TestFFTClosedFormOptimizesOverAlpha(t *testing.T) {
	l, M := 10, 4
	best, alpha := FFTClosedForm(l, M)
	if alpha < 0 || alpha > l-1 {
		t.Fatalf("alpha=%d out of range", alpha)
	}
	for a := 0; a <= l-1; a++ {
		if v := FFTClosedFormAt(l, M, a); v > best+1e-9 {
			t.Errorf("α=%d gives %g > reported best %g", a, v, best)
		}
	}
}
