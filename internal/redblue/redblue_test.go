package redblue

import (
	"math/rand"
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/pebble"
)

func randomDAG(rng *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.AddVertices(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestChainIsFree(t *testing.T) {
	for _, M := range []int{1, 2, 4} {
		res, err := Optimal(gen.Chain(8), M, Options{})
		if err != nil {
			t.Fatalf("M=%d: %v", M, err)
		}
		if res.IO != 0 {
			t.Errorf("M=%d: chain J*=%d, want 0", M, res.IO)
		}
	}
}

func TestDiamondExact(t *testing.T) {
	b := graph.NewBuilder(4, 4)
	b.AddVertices(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		b.MustEdge(e[0], e[1])
	}
	g := b.MustBuild()
	res, err := Optimal(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 0 {
		t.Errorf("diamond at M=2: J*=%d, want 0", res.IO)
	}
}

func TestValidation(t *testing.T) {
	g := gen.Chain(3)
	if _, err := Optimal(g, 0, Options{}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Optimal(gen.FFT(2), 1, Options{}); err == nil {
		t.Error("in-degree 2 at M=1 accepted")
	}
	if _, err := Optimal(gen.BellmanHeldKarp(5), 8, Options{}); err == nil {
		t.Error("32-vertex graph should exceed the 20-vertex limit")
	}
	empty := graph.NewBuilder(0, 0).MustBuild()
	if res, err := Optimal(empty, 1, Options{}); err != nil || res.IO != 0 {
		t.Errorf("empty graph: %v, %v", res, err)
	}
}

func TestStateCapAborts(t *testing.T) {
	g := gen.FFT(2) // 12 vertices
	if _, err := Optimal(g, 2, Options{MaxStates: 10}); err == nil {
		t.Error("state cap not enforced")
	}
}

func TestOptimalAtMostSimulated(t *testing.T) {
	// J* cannot exceed any simulated schedule's I/O, and the best
	// exhaustive schedule under Belady is usually exactly optimal on tiny
	// graphs — J* must be ≤ it in all cases.
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 12; trial++ {
		g := randomDAG(rng, 4+rng.Intn(7), 0.35)
		M := g.MaxInDeg() + rng.Intn(2)
		if M < 2 {
			M = 2
		}
		exact, err := Optimal(g, M, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sim, _, err := pebble.ExhaustiveBest(g, M, pebble.Belady, 50000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if exact.IO > sim.Total() {
			t.Errorf("trial %d: exact J*=%d exceeds simulated %d", trial, exact.IO, sim.Total())
		}
	}
}

func TestFFT2Exact(t *testing.T) {
	// 4-point FFT (12 vertices) at M=2: non-trivial I/O is forced.
	g := gen.FFT(2)
	exact, err := Optimal(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.IO <= 0 {
		t.Errorf("FFT(2) at M=2 should need I/O, got %d", exact.IO)
	}
	// More memory can only help.
	exact4, err := Optimal(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact4.IO > exact.IO {
		t.Errorf("J* increased with memory: M=2 %d, M=4 %d", exact.IO, exact4.IO)
	}
}

func TestInDegreeEqualsMFeasible(t *testing.T) {
	// Vertex with in-degree M: the overwrite move must make it solvable.
	b := graph.NewBuilder(3, 2)
	b.AddVertices(3)
	b.MustEdge(0, 2)
	b.MustEdge(1, 2)
	g := b.MustBuild()
	res, err := Optimal(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 0 {
		t.Errorf("J*=%d, want 0", res.IO)
	}
}
