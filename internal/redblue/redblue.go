// Package redblue solves the red-blue pebble game exactly on small graphs:
// the true optimal non-trivial I/O J*_G under the paper's §3 memory model
// (no recomputation, M fast slots, outputs reported on computation). The
// paper dismisses exact approaches as intractable in general — the 2S
// partition needs an ILP — and this solver is indeed exponential; its role
// here is ground truth: on graphs of a dozen vertices it pins J* exactly,
// so every lower bound can be validated against the real optimum rather
// than a heuristic schedule's cost, and every simulated schedule can be
// measured for how far from optimal it is.
//
// The search is uniform-cost (Dijkstra) over states
// (computed, fast, written): which values have been computed, which sit in
// fast memory, and which have copies in slow memory. Moves:
//
//   - compute v: operands in fast, a free fast slot (or one freed by
//     dropping); cost 0 (computation is free, only I/O counts);
//   - write u:  u in fast, no slow copy yet; cost 1;
//   - read u:   slow copy exists, u not in fast, free slot; cost 1;
//   - drop u:   u in fast and either written or dead; cost 0 (dropping an
//     unwritten value that is still needed would lose it forever — the
//     model forbids recomputation).
package redblue

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"graphio/internal/graph"
	"graphio/internal/obs"
)

// Result reports the exact optimum.
type Result struct {
	// IO is J*_G: the minimum total reads+writes over all executions.
	IO int
	// States is the number of distinct states expanded by the search.
	States int
}

type state struct {
	computed uint32
	fast     uint32
	written  uint32
}

type item struct {
	st   state
	cost int32
	idx  int
}

type pq []*item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x interface{}) { it := x.(*item); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Options bounds the exact search.
type Options struct {
	// MaxStates aborts the search beyond this many distinct states.
	// Default 5 million (~hundreds of MB at the default n ≤ 20 packing).
	MaxStates int
	// CountTrivial switches to the classic Hong-Kung accounting: inputs
	// start in slow memory (each use of an input begins with a paid read)
	// and every output must end written to slow memory (one paid write
	// per sink). The default — the paper's §3 convention — makes both
	// free. Trivial-I/O results are comparable to Hong-Kung-style bounds;
	// non-trivial results to the spectral and min-cut bounds.
	CountTrivial bool
}

// Optimal computes the exact minimum I/O for evaluating g with fast memory
// M. Graphs are limited to 20 vertices (the state packs three bitmasks).
func Optimal(g *graph.Graph, M int, opt Options) (*Result, error) {
	return OptimalContext(context.Background(), g, M, opt)
}

// OptimalContext is Optimal with cancellation: the context is checked every
// few thousand expanded states, and a cancelled or expired context aborts
// the search with the wrapped ctx error (the exact search has no meaningful
// partial result — a prefix of a Dijkstra run certifies nothing).
func OptimalContext(ctx context.Context, g *graph.Graph, M int, opt Options) (*Result, error) {
	n := g.N()
	if n > 20 {
		return nil, fmt.Errorf("redblue: exact solver limited to 20 vertices, graph has %d", n)
	}
	if M < 1 {
		return nil, errors.New("redblue: M must be ≥ 1")
	}
	if n == 0 {
		return &Result{}, nil
	}
	if g.MaxInDeg() > M {
		return nil, fmt.Errorf("redblue: max in-degree %d exceeds M=%d", g.MaxInDeg(), M)
	}
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = 5_000_000
	}

	all := uint32(1)<<n - 1
	preds := make([]uint32, n)
	succs := make([]uint32, n)
	//lint:ignore ctx-loop n ≤ 32 bitmask precompute; the state search below checks ctx per expansion
	for v := 0; v < n; v++ {
		for _, p := range g.Pred(v) {
			preds[v] |= 1 << uint(p)
		}
		for _, s := range g.Succ(v) {
			succs[v] |= 1 << uint(s)
		}
	}

	popcount := func(x uint32) int {
		c := 0
		for x != 0 {
			x &= x - 1
			c++
		}
		return c
	}

	// Trivial accounting: inputs begin computed-and-written (blue), so
	// their first appearance in fast memory is a paid read; each sink
	// costs one final write, added as a constant at the end (the write can
	// always happen right after computation with no interaction with the
	// rest of the schedule).
	start := state{}
	sinkCost := 0
	if opt.CountTrivial {
		for v := 0; v < n; v++ {
			if preds[v] == 0 {
				bit := uint32(1) << uint(v)
				start.computed |= bit
				start.written |= bit
			}
			if succs[v] == 0 {
				sinkCost++
			}
		}
	}

	dist := make(map[state]int32, 1<<12)
	dist[start] = 0
	q := &pq{}
	heap.Push(q, &item{st: start, cost: 0})

	// State-space telemetry for the exact search, reported however the
	// search ends (optimum found, state cap exceeded, or exhausted).
	sp := obs.StartSpanCtx(ctx, "redblue.search")
	sp.SetInt("n", int64(n))
	sp.SetInt("M", int64(M))
	defer func() {
		if obs.Enabled() {
			obs.AddCtx(ctx, "redblue.states", int64(len(dist)))
			obs.IncCtx(ctx, "redblue.searches")
			// Distribution of state-space sizes across searches: the exact
			// solver's expansion rate per (graph, M) instance.
			obs.ObserveHistCtx(ctx, "redblue.states_per_search", int64(len(dist)))
		}
		sp.SetInt("states", int64(len(dist)))
		sp.End()
	}()

	pops := 0
	for q.Len() > 0 {
		if pops%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("redblue: search interrupted: %w", err)
			}
		}
		pops++
		cur := heap.Pop(q).(*item)
		st, cost := cur.st, cur.cost
		if d, ok := dist[st]; ok && d < cost {
			continue // stale entry
		}
		if st.computed == all {
			return &Result{IO: int(cost) + sinkCost, States: len(dist)}, nil
		}
		if len(dist) > maxStates {
			return nil, fmt.Errorf("redblue: state space exceeded %d states", maxStates)
		}

		relax := func(ns state, nc int32) {
			if d, ok := dist[ns]; !ok || nc < d {
				dist[ns] = nc
				heap.Push(q, &item{st: ns, cost: nc})
			}
		}

		fastCount := popcount(st.fast)
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			inFast := st.fast&bit != 0
			isComputed := st.computed&bit != 0
			// dead: computed and no uncomputed consumer remains
			dead := isComputed && succs[v]&^st.computed == 0

			switch {
			case !isComputed:
				if st.fast&preds[v] == preds[v] {
					if fastCount < M {
						// compute v into a free slot.
						relax(state{st.computed | bit, st.fast | bit, st.written}, cost)
					} else {
						// Memory full: the result may overwrite a resident
						// value that is written or dead *after* this
						// computation — including an operand whose last
						// consumer is v itself (this is what makes
						// in-degree == M feasible).
						newComputed := st.computed | bit
						for u := 0; u < n; u++ {
							ubit := uint32(1) << uint(u)
							if st.fast&ubit == 0 {
								continue
							}
							if st.written&ubit != 0 || succs[u]&^newComputed == 0 {
								relax(state{newComputed, st.fast&^ubit | bit, st.written}, cost)
							}
						}
					}
				}
			case inFast:
				// write v (once).
				if st.written&bit == 0 && !dead {
					relax(state{st.computed, st.fast, st.written | bit}, cost+1)
				}
				// drop v: free only when written or dead.
				if st.written&bit != 0 || dead {
					relax(state{st.computed, st.fast &^ bit, st.written}, cost)
				}
			default:
				// read v back from its slow copy.
				if st.written&bit != 0 && fastCount < M && !dead {
					relax(state{st.computed, st.fast | bit, st.written}, cost+1)
				}
			}
		}
	}
	return nil, errors.New("redblue: search exhausted without completing the computation")
}
