package redblue

import (
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
)

func TestTrivialChainKnownValue(t *testing.T) {
	// Chain of 2 under Hong-Kung accounting: one read of the input, one
	// write of the output — exactly 2 I/Os at any M ≥ 1.
	g := gen.Chain(2)
	res, err := Optimal(g, 1, Options{CountTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 2 {
		t.Errorf("chain-2 total J*=%d, want 2", res.IO)
	}
	// Chain of k: still one input read and one output write — the
	// intermediate values never leave fast memory.
	res, err = Optimal(gen.Chain(6), 2, Options{CountTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 2 {
		t.Errorf("chain-6 total J*=%d, want 2", res.IO)
	}
}

func TestTrivialInnerProductKnownValue(t *testing.T) {
	// Inner product of 2-vectors at M=2: 4 input reads + 1 output write
	// are unavoidable; with only 2 slots the partial products force extra
	// traffic. Total must be ≥ 5 and ≥ the non-trivial optimum + 5.
	g := gen.InnerProduct(2)
	total, err := Optimal(g, 2, Options{CountTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	nontrivial, err := Optimal(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if total.IO < 5 {
		t.Errorf("total J*=%d, want ≥ 5 (4 inputs + 1 output)", total.IO)
	}
	if total.IO < nontrivial.IO {
		t.Errorf("total J*=%d below non-trivial J*=%d", total.IO, nontrivial.IO)
	}
}

func TestTrivialDominatesNontrivialProperty(t *testing.T) {
	// Counting strictly more events can never reduce the optimum.
	for _, g := range []*graph.Graph{
		gen.FFT(2), gen.Grid2D(3, 3), gen.BinaryTreeReduce(2), gen.InnerProduct(3),
	} {
		for _, M := range []int{2, 3} {
			if g.MaxInDeg() > M {
				continue
			}
			tot, err := Optimal(g, M, Options{CountTrivial: true})
			if err != nil {
				t.Fatal(err)
			}
			nt, err := Optimal(g, M, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if tot.IO < nt.IO {
				t.Errorf("%s M=%d: total %d < non-trivial %d", g.Name(), M, tot.IO, nt.IO)
			}
			// Inputs+outputs is a floor on the total-I/O optimum whenever
			// fast memory cannot hold the whole computation.
			if g.N() > M {
				floor := len(g.Sources()) + len(g.Sinks())
				if tot.IO < floor {
					t.Errorf("%s M=%d: total %d below trivial floor %d", g.Name(), M, tot.IO, floor)
				}
			}
		}
	}
}
