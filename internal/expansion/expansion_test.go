package expansion

import (
	"math"
	"math/rand"
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
)

func randomConnectedDAG(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	b.AddVertices(n)
	for v := 1; v < n; v++ {
		b.MustEdge(rng.Intn(v), v) // random spanning arborescence: connected
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.2 {
				b.MustEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestExactKnownGraphs(t *testing.T) {
	// Chain of n: the best cut takes half the path, boundary 1: h = 1/⌊n/2⌋.
	h, err := Exact(gen.Chain(8))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.25) > 1e-12 {
		t.Errorf("chain-8: h=%g want 0.25", h)
	}
	// Complete DAG on 6 vertices (ER p=1): S of size 3 has boundary 3·3.
	h, err = Exact(gen.ErdosRenyiDAG(6, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-3) > 1e-12 {
		t.Errorf("K6: h=%g want 3", h)
	}
}

func TestExactValidation(t *testing.T) {
	if _, err := Exact(graph.NewBuilder(0, 0).MustBuild()); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Exact(gen.FFT(3)); err == nil {
		t.Error("32-vertex graph should exceed the enumeration limit")
	}
}

func TestCheegerSandwich(t *testing.T) {
	// λ2/2 ≤ h(G) ≤ sweep cut ≤ sqrt(2·dmax·λ2) on small connected graphs.
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 15; trial++ {
		g := randomConnectedDAG(rng, 6+rng.Intn(12))
		hExact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := Lambda2(g)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := CheegerInterval(l2, g.MaxDeg())
		if hExact < lo-1e-8 {
			t.Errorf("trial %d: h=%g below Cheeger lower %g", trial, hExact, lo)
		}
		if hExact > hi+1e-8 {
			t.Errorf("trial %d: h=%g above Cheeger upper %g", trial, hExact, hi)
		}
		sweep, err := SweepCut(g)
		if err != nil {
			t.Fatal(err)
		}
		if sweep < hExact-1e-8 {
			t.Errorf("trial %d: sweep cut %g below exact %g", trial, sweep, hExact)
		}
		if sweep > hi+1e-6 {
			t.Errorf("trial %d: sweep cut %g above Cheeger upper %g", trial, sweep, hi)
		}
	}
}

func TestSweepCutOnChainFindsMiddle(t *testing.T) {
	sweep, err := SweepCut(gen.Chain(32))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sweep-1.0/16) > 1e-9 {
		t.Errorf("chain sweep cut %g, want 1/16", sweep)
	}
}

func TestLambda2LargeGraphUsesIterativeSolver(t *testing.T) {
	g := gen.FFT(7) // 1024 vertices: above the dense path
	l2, err := Lambda2(g)
	if err != nil {
		t.Fatal(err)
	}
	if l2 <= 0 || l2 > 1 {
		t.Errorf("butterfly λ2=%g out of plausible range", l2)
	}
}

func TestSweepCutValidation(t *testing.T) {
	if _, err := SweepCut(gen.Chain(1)); err == nil {
		t.Error("single vertex accepted")
	}
	b := graph.NewBuilder(3, 0)
	b.AddVertices(3)
	if _, err := SweepCut(b.MustBuild()); err == nil {
		t.Error("edgeless graph accepted")
	}
}
