package expansion_test

import (
	"fmt"

	"graphio/internal/expansion"
	"graphio/internal/gen"
)

// Example brackets the edge expansion of the 4-cube: Cheeger's inequality
// from λ2 = 2, an exact enumeration, and a concrete sweep cut.
func Example() {
	g := gen.BellmanHeldKarp(4)
	l2, err := expansion.Lambda2(g)
	if err != nil {
		panic(err)
	}
	lo, _ := expansion.CheegerInterval(l2, g.MaxDeg())
	h, err := expansion.Exact(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("lambda2=%.1f cheeger_lo=%.1f exact_h=%.1f\n", l2, lo, h)
	// Output:
	// lambda2=2.0 cheeger_lo=1.0 exact_h=1.0
}
