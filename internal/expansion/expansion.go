// Package expansion computes edge-expansion (isoperimetric) quantities for
// computation graphs. The spectral I/O method descends from edge-expansion
// arguments — Ballard et al. bound Strassen's I/O through the expansion of
// its computation graph (paper §2, §4.1) — and Cheeger's inequality ties
// expansion to the same λ2 the spectral bound uses with k = 2:
//
//	λ2/2  ≤  h(G)  ≤  sqrt(2·dmax·λ2)
//
// with h(G) = min_{|S| ≤ n/2} |∂S|/|S| over the undirected support. The
// package provides the exact h(G) by enumeration for tiny graphs, the
// Cheeger interval from a computed λ2, and the classic Fiedler sweep cut
// as a practical upper bound — quantifying, in the experiment tables, how
// much the k-eigenvalue machinery gains over expansion alone.
package expansion

import (
	"errors"
	"math"

	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
	"graphio/internal/partition"
)

// Exact computes h(G) = min over nonempty S with |S| ≤ n/2 of |∂S|/|S| by
// subset enumeration on the undirected support; limited to 22 vertices.
// Returns an error for empty or oversized graphs.
func Exact(g *graph.Graph) (float64, error) {
	n := g.N()
	if n == 0 {
		return 0, errors.New("expansion: empty graph")
	}
	if n > 22 {
		return 0, errors.New("expansion: exact enumeration limited to 22 vertices")
	}
	best := math.Inf(1)
	for mask := 1; mask < 1<<n; mask++ {
		size := popcount(uint32(mask))
		if 2*size > n {
			continue
		}
		boundary := 0
		for u := 0; u < n; u++ {
			inS := mask&(1<<u) != 0
			for _, v := range g.Succ(u) {
				if inS != (mask&(1<<v) != 0) {
					boundary++
				}
			}
		}
		if h := float64(boundary) / float64(size); h < best {
			best = h
		}
	}
	return best, nil
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// CheegerInterval returns the Cheeger bounds [λ2/2, sqrt(2·dmax·λ2)]
// enclosing h(G), from the algebraic connectivity λ2 of the unweighted
// Laplacian and the maximum undirected degree.
func CheegerInterval(lambda2 float64, dmax int) (lo, hi float64) {
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2 / 2, math.Sqrt(2 * float64(dmax) * lambda2)
}

// Lambda2 computes the algebraic connectivity of g's undirected support.
func Lambda2(g *graph.Graph) (float64, error) {
	L, err := laplacian.BuildCSR(g, laplacian.Original)
	if err != nil {
		return 0, err
	}
	if g.N() <= 512 {
		vals, err := linalg.SymEigValues(L.ToDense())
		if err != nil {
			return 0, err
		}
		if len(vals) < 2 {
			return 0, errors.New("expansion: graph too small for λ2")
		}
		return vals[1], nil
	}
	vals, err := linalg.ChebFilteredSmallest(L, L.GershgorinUpper(), 2, nil)
	if err != nil {
		return 0, err
	}
	return vals[1], nil
}

// SweepCut orders vertices by their Fiedler-vector entry and returns the
// best expansion |∂S|/|S| over all prefixes with |S| ≤ n/2 — the classic
// spectral-partitioning sweep, an upper bound on h(G) that Cheeger's proof
// guarantees is within sqrt(2·dmax·λ2).
func SweepCut(g *graph.Graph) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, errors.New("expansion: graph too small for a sweep cut")
	}
	L, err := laplacian.BuildCSR(g, laplacian.Original)
	if err != nil {
		return 0, err
	}
	f := partition.FiedlerVector(L, 2000, 1e-8, 1)
	if f == nil {
		return 0, errors.New("expansion: no Fiedler vector (edgeless graph?)")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by Fiedler entry (simple insertion; sweep sizes are modest).
	for i := 1; i < n; i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && f[idx[j]] > f[v] {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
	inS := make([]bool, n)
	boundary := 0
	best := math.Inf(1)
	for i := 0; i < n/2; i++ {
		v := idx[i]
		inS[v] = true
		// Adding v flips the crossing status of each incident edge.
		for _, w := range g.Succ(v) {
			if inS[w] {
				boundary--
			} else {
				boundary++
			}
		}
		for _, w := range g.Pred(v) {
			if inS[w] {
				boundary--
			} else {
				boundary++
			}
		}
		if h := float64(boundary) / float64(i+1); h < best {
			best = h
		}
	}
	return best, nil
}
