package graphiod

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"graphio/internal/core"
	"graphio/internal/gen"
	"graphio/internal/graph"
)

// Job states. A job is terminal in StateDone, StateFailed, or StateShed;
// failures carry a typed kind (deadline, solver, input, ...) so clients
// can branch without parsing messages.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	StateShed    = "shed"
)

// Failure kinds for StateFailed.
const (
	// KindDeadline: the job hit its per-job deadline (e.g. a stalled
	// eigensolve); the rest of the queue keeps completing.
	KindDeadline = "deadline"
	// KindSolver: every bound method failed even after the escalation
	// chain; the artifact would certify nothing.
	KindSolver = "solver"
	// KindInput: the job's graph could not be materialized (upload vanished
	// from the data dir, generator spec invalid at run time).
	KindInput = "input"
	// KindInternal: the daemon could not commit the result durably.
	KindInternal = "internal"
)

// SpecError reports a generator spec the daemon cannot serve.
type SpecError struct {
	Spec   string
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("graphiod: bad spec %q: %s", e.Spec, e.Reason)
}

// specGens maps generator names accepted in "name:size" specs to their
// constructors plus a vertex-count estimator used to refuse absurd sizes
// before allocating. Aliases (butterfly, hypercube) normalize to the
// canonical name so equivalent specs share one cache key.
var specGens = map[string]struct {
	canonical string
	build     func(size int) *graph.Graph
	vertices  func(size int) int
	maxSize   int
}{
	"fft":       {"fft", gen.FFT, func(l int) int { return (l + 1) << uint(l) }, 24},
	"butterfly": {"fft", gen.FFT, func(l int) int { return (l + 1) << uint(l) }, 24},
	"bhk":       {"bhk", gen.BellmanHeldKarp, func(l int) int { return 1 << uint(l) }, 24},
	"hypercube": {"bhk", gen.BellmanHeldKarp, func(l int) int { return 1 << uint(l) }, 24},
	"matmul":    {"matmul", gen.NaiveMatMulNary, func(n int) int { return 2*n*n + n*n*n + n*n*(n-1) }, 256},
	"strassen":  {"strassen", gen.Strassen, func(n int) int { return 8 * n * n }, 128},
	"inner":     {"inner", gen.InnerProduct, func(n int) int { return 3*n + 1 }, 1 << 20},
	"chain":     {"chain", gen.Chain, func(n int) int { return n }, 1 << 24},
	"tree":      {"tree", gen.BinaryTreeReduce, func(d int) int { return 1<<uint(d+1) - 1 }, 24},
	"grid":      {"grid", func(n int) *graph.Graph { return gen.Grid2D(n, n) }, func(n int) int { return n * n }, 4096},
}

// ParseSpec validates a "name:size" generator spec and returns its
// canonical form, without building the graph. Canonicalization makes
// equivalent specs ("FFT:10", "butterfly:10") share one cache key.
func ParseSpec(spec string, maxVertices int) (string, error) {
	name, sizeStr, ok := strings.Cut(strings.TrimSpace(strings.ToLower(spec)), ":")
	if !ok {
		return "", &SpecError{Spec: spec, Reason: "want name:size, e.g. fft:10"}
	}
	g, known := specGens[name]
	if !known {
		names := make([]string, 0, len(specGens))
		for n := range specGens {
			names = append(names, n)
		}
		return "", &SpecError{Spec: spec, Reason: "unknown generator (have " + strings.Join(sortedStrings(names), ", ") + ")"}
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil {
		return "", &SpecError{Spec: spec, Reason: "size is not an integer"}
	}
	if size < 1 {
		return "", &SpecError{Spec: spec, Reason: "size must be ≥ 1"}
	}
	if size > g.maxSize {
		return "", &SpecError{Spec: spec, Reason: fmt.Sprintf("size %d exceeds the %s cap %d", size, g.canonical, g.maxSize)}
	}
	if n := g.vertices(size); maxVertices > 0 && n > maxVertices {
		return "", &SpecError{Spec: spec, Reason: fmt.Sprintf("graph would have %d vertices, over the daemon's %d cap", n, maxVertices)}
	}
	return fmt.Sprintf("%s:%d", g.canonical, size), nil
}

// BuildSpec materializes a canonical generator spec. The spec must have
// passed ParseSpec; an unknown spec here is an input fault, not a panic.
func BuildSpec(spec string) (*graph.Graph, error) {
	name, sizeStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, &SpecError{Spec: spec, Reason: "not a name:size spec"}
	}
	g, known := specGens[name]
	if !known {
		return nil, &SpecError{Spec: spec, Reason: "unknown generator"}
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size < 1 || size > g.maxSize {
		return nil, &SpecError{Spec: spec, Reason: "bad size"}
	}
	return g.build(size), nil
}

// Solver names accepted on the wire, mapped to core's enum.
var solverNames = map[string]core.Solver{
	"":          core.SolverAuto,
	"auto":      core.SolverAuto,
	"dense":     core.SolverDense,
	"lanczos":   core.SolverLanczos,
	"power":     core.SolverPower,
	"chebyshev": core.SolverChebyshev,
}

func parseSolver(name string) (core.Solver, string, error) {
	s, ok := solverNames[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return 0, "", fmt.Errorf("graphiod: unknown solver %q (want auto, dense, lanczos, power, or chebyshev)", name)
	}
	return s, s.String(), nil
}

// JobRequest is the POST /v1/jobs body. Exactly one of Spec or Graph
// selects the graph; M is required. Priority, Client, and TimeoutMS are
// operational and excluded from the cache key.
type JobRequest struct {
	// Spec is a generator spec like "fft:10" or "hypercube:12".
	Spec string `json:"spec,omitempty"`
	// Graph is an inline graph upload in the module's JSON format.
	Graph json.RawMessage `json:"graph,omitempty"`
	// M is the fast-memory size in elements. Required, ≥ 1.
	M int `json:"m"`
	// MaxK is h, the eigenvalue budget. Default 60, capped at 512.
	MaxK int `json:"max_k,omitempty"`
	// Solver picks the eigensolver backend: auto (default), dense,
	// lanczos, power, chebyshev.
	Solver string `json:"solver,omitempty"`
	// Priority orders the queue (higher first; default 0). Under memory
	// pressure the lowest-priority queued jobs are shed first.
	Priority int `json:"priority,omitempty"`
	// Client identifies the submitter for per-client in-flight limits
	// (default: the remote address).
	Client string `json:"client,omitempty"`
	// TimeoutMS deadlines this job (default and cap come from the daemon's
	// -job-timeout / -max-job-timeout flags).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// jobSpec is the canonical, result-affecting core of a job: what the cache
// key hashes. Operational fields (priority, client, deadline) are
// deliberately excluded — they cannot change the artifact, so two requests
// differing only in them share one result.
type jobSpec struct {
	// V bumps to invalidate every cached artifact on a format change,
	// mirroring experiments.Config.Hash.
	V int `json:"v"`
	// Spec is the canonical generator spec, "" for uploads.
	Spec string `json:"spec,omitempty"`
	// GraphSHA is the SHA-256 of the canonical graph JSON, "" for specs.
	GraphSHA string `json:"graph_sha,omitempty"`
	M        int    `json:"m"`
	MaxK     int    `json:"max_k"`
	Solver   string `json:"solver"`
}

// Key returns the content-addressed cache key: a stable hex digest over
// the canonical job spec, so repeated queries for the same
// (graph, M, MaxK, solver) are free and replays are byte-identical.
func (s jobSpec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A struct of ints and strings cannot fail to marshal; if it ever
		// does, an unforgeable key disables caching rather than risking a
		// stale artifact (same posture as Config.Hash).
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// job is one admitted request and its lifecycle.
type job struct {
	ID       string
	Key      string
	Spec     jobSpec
	Priority int
	Client   string
	// Host is the submitter's remote address, kept separately from the
	// request-supplied Client so per-address admission caps cannot be
	// dodged by varying the client string.
	Host    string
	Timeout time.Duration
	seq     int // admission order; FIFO tiebreak within a priority

	State       string
	Cached      bool
	ErrKind     string
	ErrMsg      string
	ArtifactSHA string
	WallMS      int64
}

// JobInfo is a job's wire representation (GET /v1/jobs responses).
type JobInfo struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Spec     string `json:"spec,omitempty"`
	GraphSHA string `json:"graph_sha,omitempty"`
	M        int    `json:"m"`
	MaxK     int    `json:"max_k"`
	Solver   string `json:"solver"`
	Priority int    `json:"priority,omitempty"`
	Client   string `json:"client,omitempty"`
	Status   string `json:"status"`
	Cached   bool   `json:"cached,omitempty"`
	// ArtifactSHA is the completed artifact's SHA-256; the chaos gate
	// compares it across crash/restart/cache-hit to prove byte-identity.
	ArtifactSHA string `json:"artifact_sha,omitempty"`
	WallMS      int64  `json:"wall_ms,omitempty"`
	Error       *Fault `json:"error,omitempty"`
}

// Fault is the typed error detail carried on failed jobs and structured
// HTTP error responses.
type Fault struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Limit rides on size/admission faults: the byte cap a 413 enforced,
	// or the queue/client cap behind a 429.
	Limit int64 `json:"limit,omitempty"`
}

func (j *job) info() JobInfo {
	info := JobInfo{
		ID: j.ID, Key: j.Key,
		Spec: j.Spec.Spec, GraphSHA: j.Spec.GraphSHA,
		M: j.Spec.M, MaxK: j.Spec.MaxK, Solver: j.Spec.Solver,
		Priority: j.Priority, Client: j.Client,
		Status: j.State, Cached: j.Cached, ArtifactSHA: j.ArtifactSHA, WallMS: j.WallMS,
	}
	if j.State == StateFailed {
		info.Error = &Fault{Kind: j.ErrKind, Message: j.ErrMsg}
	}
	if j.State == StateShed {
		info.Error = &Fault{Kind: "shed", Message: "dropped under memory pressure; resubmit when the daemon has headroom"}
	}
	return info
}

func sortedStrings(s []string) []string {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// isContentKey reports whether s has the only shape job keys and graph
// hashes ever take: a lowercase-hex SHA-256 digest. Everything that turns a
// client-supplied key into a filesystem path must check this first — a key
// like "../secrets" would otherwise escape the data dir via filepath.Join.
func isContentKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
