package graphiod

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphio/internal/faultinject"
	"graphio/internal/gen"
	"graphio/internal/linalg"
	"graphio/internal/persist"
)

// newTestServer builds a daemon on a temp data dir and an httptest front
// end for it. Returned cleanup order matters: the HTTP server dies first,
// then Close hard-stops the workers.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 15 * time.Second
	}
	cfg.Log = t.Logf
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(hs.Close)
	return srv, hs.URL
}

// stallWrap wraps every iterative solve of every job in a per-call stall so
// jobs stay in flight long enough for admission and shutdown assertions.
func stallWrap(d time.Duration) func(string, linalg.Operator) linalg.Operator {
	return func(_ string, op linalg.Operator) linalg.Operator {
		return &faultinject.Op{A: op, StallFrom: 1, Stall: d}
	}
}

// submitRaw posts a request body and returns the status plus decoded body.
func submitRaw(t *testing.T, url, token string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fields map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&fields); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, fields
}

// submit posts a JobRequest and decodes the SubmitResponse, failing the
// test on any status other than want.
func submit(t *testing.T, url string, req JobRequest, want int) SubmitResponse {
	t.Helper()
	status, fields := submitRaw(t, url, "", req)
	if status != want {
		t.Fatalf("submit %+v: status %d, want %d (body %v)", req, status, want, fields)
	}
	raw, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	var resp SubmitResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// compactJSON canonicalizes whitespace so artifacts decoded out of indented
// response envelopes compare against the stored bytes.
func compactJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact %q: %v", raw, err)
	}
	return buf.String()
}

// faultOf decodes the error envelope of a non-2xx response.
func faultOf(t *testing.T, fields map[string]json.RawMessage) Fault {
	t.Helper()
	var f Fault
	if err := json.Unmarshal(fields["error"], &f); err != nil {
		t.Fatalf("no structured error in %v: %v", fields, err)
	}
	return f
}

// waitState polls a job until it reaches one of the wanted states.
func waitState(t *testing.T, srv *Server, id string, states ...string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := srv.store.get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		for _, s := range states {
			if info.Status == s {
				return info
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	info, _ := srv.store.get(id)
	t.Fatalf("job %s stuck in %q, want one of %v", id, info.Status, states)
	return JobInfo{}
}

func TestParseSpecCanonicalizes(t *testing.T) {
	cases := []struct {
		in, want, wantErr string
		maxV              int
	}{
		{"fft:10", "fft:10", "", 1 << 20},
		{" FFT:10 ", "fft:10", "", 1 << 20},
		{"butterfly:10", "fft:10", "", 1 << 20},
		{"hypercube:12", "bhk:12", "", 1 << 20},
		{"grid:64", "grid:64", "", 1 << 20},
		{"fft", "", "want name:size", 1 << 20},
		{"warp:9", "", "unknown generator", 1 << 20},
		{"fft:x", "", "not an integer", 1 << 20},
		{"fft:0", "", "must be ≥ 1", 1 << 20},
		{"fft:99", "", "exceeds the fft cap", 1 << 20},
		{"chain:5000", "", "over the daemon's", 4096},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in, c.maxV)
		if c.wantErr == "" {
			if err != nil || got != c.want {
				t.Errorf("ParseSpec(%q) = %q, %v; want %q", c.in, got, err, c.want)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseSpec(%q) err = %v, want containing %q", c.in, err, c.wantErr)
		}
	}
}

// Cache keys must depend on exactly the result-affecting fields: aliases of
// one generator share a key, operational knobs never enter it (they are not
// jobSpec fields at all), and every semantic field separates keys.
func TestJobKeyStability(t *testing.T) {
	base := jobSpec{V: 1, Spec: "fft:10", M: 64, MaxK: 8, Solver: "auto"}
	if base.Key() != (jobSpec{V: 1, Spec: "fft:10", M: 64, MaxK: 8, Solver: "auto"}).Key() {
		t.Fatal("identical specs produced different keys")
	}
	variants := []jobSpec{
		{V: 2, Spec: "fft:10", M: 64, MaxK: 8, Solver: "auto"},
		{V: 1, Spec: "fft:11", M: 64, MaxK: 8, Solver: "auto"},
		{V: 1, Spec: "fft:10", M: 65, MaxK: 8, Solver: "auto"},
		{V: 1, Spec: "fft:10", M: 64, MaxK: 9, Solver: "auto"},
		{V: 1, Spec: "fft:10", M: 64, MaxK: 8, Solver: "dense"},
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		if seen[v.Key()] {
			t.Fatalf("spec %+v collides with an earlier key", v)
		}
		seen[v.Key()] = true
	}
}

// The basic service loop: submit, poll to done, fetch the artifact, and a
// resubmission of the same work is served from the cache byte-identically.
func TestSubmitCompleteAndCacheHit(t *testing.T) {
	srv, url := newTestServer(t, Config{Workers: 2})
	// §5.1 of the paper: the hypercube (BHK) bound is positive from l=6 at
	// M=1, so this job must certify a nontrivial bound via theorem5.
	req := JobRequest{Spec: "bhk:6", M: 1, MaxK: 8, Solver: "dense"}
	first := submit(t, url, req, http.StatusAccepted)
	if first.Status != StateQueued || first.Cached {
		t.Fatalf("first submit = %+v, want fresh queued job", first.JobInfo)
	}
	done := waitState(t, srv, first.ID, StateDone, StateFailed)
	if done.Status != StateDone {
		t.Fatalf("job finished as %+v, want done", done)
	}
	art, err := srv.store.readArtifact(done.Key)
	if err != nil {
		t.Fatalf("artifact missing after done: %v", err)
	}
	var parsed Artifact
	if err := json.Unmarshal(art, &parsed); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if parsed.Best.Bound <= 0 || parsed.N != 1<<6 || len(parsed.Methods) != 2 {
		t.Fatalf("artifact = %+v, want a positive bound with both methods attempted on bhk:6", parsed)
	}

	second := submit(t, url, req, http.StatusOK)
	if !second.Cached || second.Status != StateDone {
		t.Fatalf("resubmit = %+v, want an immediate cache hit", second.JobInfo)
	}
	if second.ArtifactSHA != done.ArtifactSHA {
		t.Fatalf("cache hit sha %s != original %s", second.ArtifactSHA, done.ArtifactSHA)
	}
	// The envelope encoder re-indents the embedded raw artifact, so compare
	// the JSON values, not the whitespace; ArtifactSHA above already pinned
	// exact byte identity of the stored artifact.
	if compactJSON(t, second.Result) != compactJSON(t, art) {
		t.Fatal("cache hit served a different artifact than the stored one")
	}
}

// Semantically identical uploads (differing only in JSON whitespace) must
// canonicalize to the same content address and thus the same cache key.
func TestUploadCanonicalization(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})
	var buf bytes.Buffer
	if err := gen.Chain(8).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	compact := buf.Bytes()
	var indented bytes.Buffer
	if err := json.Indent(&indented, compact, "", "    "); err != nil {
		t.Fatal(err)
	}
	a := submit(t, url, JobRequest{Graph: compact, M: 4, MaxK: 2, Solver: "dense"}, http.StatusAccepted)
	b := submitRawStatusAny(t, url, JobRequest{Graph: indented.Bytes(), M: 4, MaxK: 2, Solver: "dense"})
	if a.Key != b.Key || a.GraphSHA != b.GraphSHA {
		t.Fatalf("reformatted upload got key %s / sha %s, want %s / %s", b.Key, b.GraphSHA, a.Key, a.GraphSHA)
	}
}

// submitRawStatusAny submits and decodes without pinning the status: the
// second canonicalization submit may race the first to done (cache hit 200)
// or still find it queued (202).
func submitRawStatusAny(t *testing.T, url string, req JobRequest) SubmitResponse {
	t.Helper()
	status, fields := submitRaw(t, url, "", req)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit: status %d (body %v)", status, fields)
	}
	raw, _ := json.Marshal(fields)
	var resp SubmitResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// A SIGKILL-shaped stop (Close without Drain) mid-job must leave the WAL
// replayable: the running job and the queued one behind it both restart and
// complete on the next daemon, and the artifact a crash interrupted is
// recomputed to the same bytes.
func TestHardStopReplaysUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	srv1, url := newTestServer(t, Config{
		DataDir: dir, Workers: 1,
		WrapOperator: stallWrap(30 * time.Millisecond),
	})
	running := submit(t, url, JobRequest{Spec: "chain:48", M: 8, MaxK: 4, Solver: "lanczos"}, http.StatusAccepted)
	queued := submit(t, url, JobRequest{Spec: "chain:24", M: 8, MaxK: 4, Solver: "dense"}, http.StatusAccepted)
	waitState(t, srv1, running.ID, StateRunning)
	srv1.Close() // hard stop: the running job must NOT reach a terminal WAL state

	srv2, err := New(Config{DataDir: dir, DefaultTimeout: 15 * time.Second, Log: t.Logf})
	if err != nil {
		t.Fatalf("reopen after hard stop: %v", err)
	}
	defer srv2.Close()
	if srv2.store.replayed != 2 {
		t.Fatalf("replayed %d jobs, want 2 (one interrupted, one queued)", srv2.store.replayed)
	}
	for _, id := range []string{running.ID, queued.ID} {
		if info := waitState(t, srv2, id, StateDone, StateFailed); info.Status != StateDone {
			t.Fatalf("replayed job %s ended %+v, want done", id, info)
		}
	}
}

// A completed job whose artifact file is lost must be re-queued on replay
// (the done record no longer verifies) and recomputed byte-identically —
// the determinism the content-addressed cache rests on.
func TestReplayRecomputesLostArtifactIdentically(t *testing.T) {
	dir := t.TempDir()
	srv1, url := newTestServer(t, Config{DataDir: dir, Workers: 1})
	job := submit(t, url, JobRequest{Spec: "chain:32", M: 8, MaxK: 4, Solver: "dense"}, http.StatusAccepted)
	done := waitState(t, srv1, job.ID, StateDone, StateFailed)
	if done.Status != StateDone {
		t.Fatalf("job ended %+v, want done", done)
	}
	srv1.Close()
	if err := os.Remove(artifactPath(dir, done.Key)); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{DataDir: dir, DefaultTimeout: 15 * time.Second, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	redone := waitState(t, srv2, job.ID, StateDone, StateFailed)
	if redone.Status != StateDone {
		t.Fatalf("recomputed job ended %+v, want done", redone)
	}
	if redone.ArtifactSHA != done.ArtifactSHA {
		t.Fatalf("recomputed artifact sha %s != original %s; artifacts are not deterministic", redone.ArtifactSHA, done.ArtifactSHA)
	}
}

// A torn final WAL record — the crash-during-append case — must be dropped
// silently, keeping every durably appended record (including the result
// cache) intact.
func TestTornWALTailIsTolerated(t *testing.T) {
	dir := t.TempDir()
	srv1, url := newTestServer(t, Config{DataDir: dir, Workers: 1})
	job := submit(t, url, JobRequest{Spec: "chain:16", M: 4, MaxK: 2, Solver: "dense"}, http.StatusAccepted)
	waitState(t, srv1, job.ID, StateDone)
	srv1.Close()

	//lint:ignore persist-writes simulating a torn WAL tail requires a raw append
	f, err := os.OpenFile(walPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":"00000000","rec":{"kind":"acc`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, url2 := newTestServer(t, Config{DataDir: dir, Workers: 1})
	_ = srv2
	hit := submit(t, url2, JobRequest{Spec: "chain:16", M: 4, MaxK: 2, Solver: "dense"}, http.StatusOK)
	if !hit.Cached {
		t.Fatalf("resubmit after torn tail = %+v, want cache hit", hit.JobInfo)
	}
}

// A CRC-valid record that is not a walRecord means a writer bug, not a torn
// tail; the daemon must refuse to open rather than guess at queue state.
func TestCorruptWALRecordRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	srv1, _ := newTestServer(t, Config{DataDir: dir, Workers: 1})
	srv1.Close()

	frame, err := persist.FrameRecord([]byte(`[1,2]`))
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore persist-writes simulating WAL corruption requires a raw append
	f, err := os.OpenFile(walPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := New(Config{DataDir: dir}); err == nil || !strings.Contains(err.Error(), "corrupt WAL record") {
		t.Fatalf("New on corrupt WAL = %v, want corrupt-record refusal", err)
	}
}

// A stalled eigensolve must hit its per-job deadline as a typed failure
// while an unaffected sibling job completes: one bad job cannot take the
// daemon down with it.
func TestStalledSolverHitsDeadlineSiblingCompletes(t *testing.T) {
	srv, url := newTestServer(t, Config{
		Workers: 2,
		WrapOperator: func(jobID string, op linalg.Operator) linalg.Operator {
			if jobID == "j000000" {
				return &faultinject.Op{A: op, StallFrom: 1, Stall: 30 * time.Millisecond}
			}
			return op
		},
	})
	stalled := submit(t, url, JobRequest{Spec: "chain:48", M: 8, MaxK: 4, Solver: "lanczos", TimeoutMS: 250}, http.StatusAccepted)
	healthy := submit(t, url, JobRequest{Spec: "chain:24", M: 8, MaxK: 4, Solver: "dense"}, http.StatusAccepted)

	if info := waitState(t, srv, healthy.ID, StateDone, StateFailed); info.Status != StateDone {
		t.Fatalf("healthy sibling ended %+v, want done", info)
	}
	info := waitState(t, srv, stalled.ID, StateDone, StateFailed)
	if info.Status != StateFailed || info.Error == nil || info.Error.Kind != KindDeadline {
		t.Fatalf("stalled job ended %+v, want typed %q failure", info, KindDeadline)
	}
}

// Admission control: the per-client cap fires before the global queue cap,
// and both come back as structured 429s with Retry-After.
func TestAdmissionControl(t *testing.T) {
	srv, url := newTestServer(t, Config{
		Workers: 1, QueueCap: 1, ClientInFlight: 1,
		WrapOperator: stallWrap(30 * time.Millisecond),
	})
	running := submit(t, url, JobRequest{Spec: "chain:48", M: 8, MaxK: 4, Solver: "lanczos", Client: "alice"}, http.StatusAccepted)
	waitState(t, srv, running.ID, StateRunning) // queue empty again

	submit(t, url, JobRequest{Spec: "chain:40", M: 8, MaxK: 4, Solver: "lanczos", Client: "bob"}, http.StatusAccepted)

	status, fields := submitRaw(t, url, "", JobRequest{Spec: "chain:36", M: 8, MaxK: 4, Client: "alice"})
	if f := faultOf(t, fields); status != http.StatusTooManyRequests || f.Kind != "client_limit" {
		t.Fatalf("over-cap client submit = %d %+v, want 429 client_limit", status, f)
	}

	status, fields = submitRaw(t, url, "", JobRequest{Spec: "chain:44", M: 8, MaxK: 4, Client: "carol"})
	if f := faultOf(t, fields); status != http.StatusTooManyRequests || f.Kind != "queue_full" {
		t.Fatalf("full-queue submit = %d %+v, want 429 queue_full", status, f)
	}
}

// Under memory pressure the daemon sheds exactly the lowest-priority queued
// job, journaled and typed so the client learns to resubmit.
func TestMemoryPressureShedsLowestPriority(t *testing.T) {
	var highChecks atomic.Int64
	srv, url := newTestServer(t, Config{
		Workers: 1, MemSoftLimit: 50,
		MemUsage: func() int64 {
			if highChecks.Add(-1) >= 0 {
				return 100
			}
			return 0
		},
		WrapOperator: stallWrap(30 * time.Millisecond),
	})
	running := submit(t, url, JobRequest{Spec: "chain:48", M: 8, MaxK: 4, Solver: "lanczos", Priority: 9}, http.StatusAccepted)
	waitState(t, srv, running.ID, StateRunning)
	mid := submit(t, url, JobRequest{Spec: "chain:40", M: 8, MaxK: 4, Solver: "lanczos", Priority: 5}, http.StatusAccepted)
	low := submit(t, url, JobRequest{Spec: "chain:36", M: 8, MaxK: 4, Solver: "lanczos", Priority: 1}, http.StatusAccepted)

	highChecks.Store(1) // exactly one over-limit reading: shed exactly one job
	trigger := submit(t, url, JobRequest{Spec: "chain:44", M: 8, MaxK: 4, Solver: "lanczos", Priority: 7}, http.StatusAccepted)

	if info, _ := srv.store.get(low.ID); info.Status != StateShed || info.Error == nil || info.Error.Kind != "shed" {
		t.Fatalf("lowest-priority job = %+v, want typed shed", info)
	}
	for _, id := range []string{mid.ID, trigger.ID} {
		if info, _ := srv.store.get(id); info.Status == StateShed {
			t.Fatalf("job %s shed, want only the lowest-priority one dropped", id)
		}
	}
}

// Bearer auth guards every API endpoint but leaves the health probes open
// for load balancers.
func TestAuthToken(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1, AuthToken: "sekrit"})

	get := func(path, token string) int {
		req, err := http.NewRequest(http.MethodGet, url+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/v1/jobs", ""); got != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", got)
	}
	if got := get("/v1/jobs", "wrong"); got != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d, want 401", got)
	}
	if got := get("/v1/jobs", "sekrit"); got != http.StatusOK {
		t.Fatalf("right token: %d, want 200", got)
	}
	if got := get("/healthz", ""); got != http.StatusOK {
		t.Fatalf("unauthenticated /healthz: %d, want 200 (probe exemption)", got)
	}

	status, fields := submitRaw(t, url, "", JobRequest{Spec: "chain:16", M: 4})
	if f := faultOf(t, fields); status != http.StatusUnauthorized || f.Kind != "auth" {
		t.Fatalf("unauthenticated submit = %d %+v, want typed 401", status, f)
	}
	if status, _ := submitRaw(t, url, "sekrit", JobRequest{Spec: "chain:16", M: 4, Solver: "dense"}); status != http.StatusAccepted {
		t.Fatalf("authenticated submit = %d, want 202", status)
	}
}

// An oversized graph upload must come back as a structured 413 naming the
// configured byte cap, not a connection reset or generic 400.
func TestOversizedUploadIs413(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1, MaxGraphBytes: 512})
	big := "[" + strings.Repeat("0,", 600) + "0]"
	status, fields := submitRaw(t, url, "", JobRequest{Graph: json.RawMessage(big), M: 4})
	f := faultOf(t, fields)
	if status != http.StatusRequestEntityTooLarge || f.Kind != "size" || f.Limit != 512 {
		t.Fatalf("oversized upload = %d %+v, want 413 size fault with limit 512", status, f)
	}
}

// Input validation rejections are typed 400s.
func TestSubmitValidation(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		req  JobRequest
		want string
	}{
		{JobRequest{M: 4}, "exactly one of spec or graph"},
		{JobRequest{Spec: "chain:16"}, "must be ≥ 1"},
		{JobRequest{Spec: "chain:16", M: 4, MaxK: 1 << 20}, "max_k must be in"},
		{JobRequest{Spec: "chain:16", M: 4, Solver: "quantum"}, "unknown solver"},
		{JobRequest{Spec: "warp:4", M: 4}, "unknown generator"},
	}
	for _, c := range cases {
		status, fields := submitRaw(t, url, "", c.req)
		f := faultOf(t, fields)
		if status != http.StatusBadRequest || f.Kind != "input" || !strings.Contains(f.Message, c.want) {
			t.Errorf("submit %+v = %d %+v, want 400 input fault containing %q", c.req, status, f, c.want)
		}
	}
}

// Drain flips readiness and refuses new work with a typed 503 while letting
// the in-flight job finish; queued jobs stay journaled for the next start.
func TestDrainRefusesNewWork(t *testing.T) {
	srv, url := newTestServer(t, Config{
		Workers: 1, WrapOperator: stallWrap(20 * time.Millisecond),
	})
	running := submit(t, url, JobRequest{Spec: "chain:48", M: 8, MaxK: 4, Solver: "lanczos"}, http.StatusAccepted)
	waitState(t, srv, running.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	status, fields := submitRaw(t, url, "", JobRequest{Spec: "chain:16", M: 4})
	if f := faultOf(t, fields); status != http.StatusServiceUnavailable || f.Kind != "draining" {
		t.Fatalf("submit during drain = %d %+v, want typed 503", status, f)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if info, _ := srv.store.get(running.ID); info.Status != StateDone {
		t.Fatalf("in-flight job after drain = %+v, want done (drain waits for it)", info)
	}
}

// fetchJob exercises the GET endpoints end to end.
func TestJobAndResultEndpoints(t *testing.T) {
	srv, url := newTestServer(t, Config{Workers: 1})
	job := submit(t, url, JobRequest{Spec: "chain:16", M: 4, MaxK: 2, Solver: "dense"}, http.StatusAccepted)
	done := waitState(t, srv, job.ID, StateDone)

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", url, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Status != StateDone || len(got.Result) == 0 {
		t.Fatalf("GET job = %+v, want done with inline result", got.JobInfo)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/results/%s", url, done.Key))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || compactJSON(t, body.Bytes()) != compactJSON(t, got.Result) {
		t.Fatalf("GET result: status %d, artifact mismatch with the inline job result", resp.StatusCode)
	}

	if resp, err := http.Get(url + "/v1/jobs/j999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET missing job = %d, want 404", resp.StatusCode)
		}
	}
}

// A result key is a URL path segment the client controls; anything that is
// not a SHA-256 hex digest — in particular "../" traversals aimed at JSON
// files outside the results dir — must 404 without touching the filesystem.
func TestResultKeyTraversalRejected(t *testing.T) {
	dir := t.TempDir()
	srv, url := newTestServer(t, Config{DataDir: dir, Workers: 1})
	// A decoy the traversal would reach if the key went straight into
	// filepath.Join: data dir root, one level above results/.
	//lint:ignore persist-writes planting a traversal decoy, not a durable artifact
	if err := os.WriteFile(dir+"/secret.json", []byte(`{"leak":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"..%2Fsecret",
		"..%2F..%2Fsecret",
		"%2E%2E%2Fsecret",
		"not-a-key",
		strings.Repeat("a", 63),
		strings.Repeat("A", 64), // uppercase hex is not a key either
	} {
		resp, err := http.Get(url + "/v1/results/" + key)
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		_, _ = body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /v1/results/%s = %d, want 404", key, resp.StatusCode)
		}
		if strings.Contains(body.String(), "leak") {
			t.Fatalf("GET /v1/results/%s leaked a file outside the results dir", key)
		}
	}
	// Defense in depth: the store rejects malformed keys even when called
	// directly, so no future endpoint can reintroduce the traversal.
	if _, err := srv.store.readArtifact("../secret"); err == nil {
		t.Fatal("store.readArtifact accepted a traversal key")
	}
	if _, err := srv.store.loadGraph("../secret"); err == nil {
		t.Fatal("store.loadGraph accepted a traversal hash")
	}
}

// freshLimits returns admission caps high enough to never trip, for tests
// exercising other store behavior.
func freshLimits() admitLimits {
	return admitLimits{ClientInFlight: 1 << 20, HostInFlight: 1 << 20, QueueCap: 1 << 20}
}

// The WAL and the job table must stay proportional to live state, not to
// every job ever accepted: terminal jobs past the retention cap are pruned,
// the journal compacts after enough appends, and a compacted journal still
// replays the result cache and never reissues a pruned job's ID.
func TestWALCompactionBoundsJournalAndJobTable(t *testing.T) {
	dir := t.TempDir()
	s, err := openStore(dir, 4, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	s.compactEvery = 8
	spec := jobSpec{V: 1, Spec: "chain:4", M: 2, MaxK: 1, Solver: "dense"}
	artifact := []byte(`{"fake":"artifact"}`)
	var lastID string
	for i := 0; i < 50; i++ {
		j, err := s.accept(spec, 0, "c", "h", time.Second, freshLimits())
		if err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		lastID = j.ID
		if j.Cached {
			continue
		}
		if got := s.next(); got == nil || got.ID != j.ID {
			t.Fatalf("accept %d: job not queued", i)
		}
		sha, err := s.commitArtifact(j.Key, artifact)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.complete(j, sha, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.list()); n > 4 {
		t.Fatalf("job table holds %d terminal jobs, want ≤ retain (4)", n)
	}
	recs, err := persist.ReadJournal(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Live state is ~10 records (meta + 1 result + ≤4 jobs × 2); anything
	// near the 100 appends means compaction never ran.
	if len(recs) > s.liveRecordsLocked()+s.compactEvery {
		t.Fatalf("WAL holds %d records after 50 jobs, want ≤ live+compactEvery (%d)", len(recs), s.liveRecordsLocked()+s.compactEvery)
	}
	wantSHA, ok := s.cachedSHA(spec.Key())
	if !ok {
		t.Fatal("result cache lost the completed key")
	}
	s.close()

	// Reopen: the compacted journal must replay the cache (resubmission is
	// an immediate hit) and the meta record must keep IDs monotonic even
	// though every prior job row was pruned.
	s2, err := openStore(dir, 4, t.Logf)
	if err != nil {
		t.Fatalf("reopen compacted WAL: %v", err)
	}
	defer s2.close()
	if sha, ok := s2.cachedSHA(spec.Key()); !ok || sha != wantSHA {
		t.Fatalf("reopened cache = %q, %v; want %q", sha, ok, wantSHA)
	}
	j, err := s2.accept(spec, 0, "c", "h", time.Second, freshLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !j.Cached {
		t.Fatalf("resubmit after reopen = %+v, want cache hit", j)
	}
	if j.ID <= lastID {
		t.Fatalf("job ID %s reissued at or below pruned ID %s; meta record lost the counter", j.ID, lastID)
	}
}

// Admission caps are enforced atomically with acceptance: N racing
// submissions against a queue with room for one must admit exactly one.
func TestAdmissionAtomicUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	s, err := openStore(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	lim := admitLimits{ClientInFlight: 64, HostInFlight: 64, QueueCap: 1}
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := jobSpec{V: 1, Spec: fmt.Sprintf("chain:%d", i+2), M: 2, MaxK: 1, Solver: "dense"}
			if _, err := s.accept(spec, 0, "c", "h", time.Second, lim); err == nil {
				admitted.Add(1)
			} else {
				rejected.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if admitted.Load() != 1 || rejected.Load() != 15 {
		t.Fatalf("QueueCap=1 admitted %d of 16 concurrent submissions, want exactly 1", admitted.Load())
	}
}

// The per-client cap keys off a request-supplied string; the per-host cap
// backstops it so varying that string cannot buy unbounded queue share.
func TestHostCapStopsClientNameBypass(t *testing.T) {
	srv, url := newTestServer(t, Config{
		Workers: 1, ClientInFlight: 1, HostInFlight: 3,
		WrapOperator: stallWrap(30 * time.Millisecond),
	})
	running := submit(t, url, JobRequest{Spec: "chain:48", M: 8, MaxK: 4, Solver: "lanczos", Client: "alias-0"}, http.StatusAccepted)
	waitState(t, srv, running.ID, StateRunning)
	for i := 1; i < 3; i++ {
		submit(t, url, JobRequest{Spec: fmt.Sprintf("chain:%d", 20+i), M: 8, MaxK: 4, Solver: "lanczos", Client: fmt.Sprintf("alias-%d", i)}, http.StatusAccepted)
	}
	status, fields := submitRaw(t, url, "", JobRequest{Spec: "chain:28", M: 8, MaxK: 4, Client: "alias-3"})
	if f := faultOf(t, fields); status != http.StatusTooManyRequests || f.Kind != "host_limit" {
		t.Fatalf("4th client alias from one address = %d %+v, want 429 host_limit", status, f)
	}
}

// Two daemons must not share a data dir: the persist lock refuses the
// second opener.
func TestDataDirLockIsExclusive(t *testing.T) {
	dir := t.TempDir()
	srv1, _ := newTestServer(t, Config{DataDir: dir, Workers: 1})
	defer srv1.Close()
	if _, err := New(Config{DataDir: dir}); err == nil {
		t.Fatal("second daemon opened an already-locked data dir")
	}
}
