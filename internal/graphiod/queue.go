package graphiod

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphio/internal/graph"
	"graphio/internal/persist"
)

// walRecord is one frame in the daemon's job WAL. "accept" carries the full
// canonical spec so replay needs nothing but the WAL and the content
// directories; "done"/"fail"/"shed" are terminal transitions referencing
// the accept by ID. Every record is appended (and fsynced, via
// persist.Journal) before the transition it describes takes effect.
type walRecord struct {
	Kind      string   `json:"kind"` // accept | done | fail | shed
	ID        string   `json:"id"`
	Spec      *jobSpec `json:"spec,omitempty"`
	Priority  int      `json:"priority,omitempty"`
	Client    string   `json:"client,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
	Cached    bool     `json:"cached,omitempty"`
	// SHA is the artifact's SHA-256 on "done" records; replay re-hashes the
	// artifact file and re-queues the job if the bytes do not match.
	SHA     string `json:"sha,omitempty"`
	WallMS  int64  `json:"wall_ms,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
	Error   string `json:"error,omitempty"`
}

// store is the daemon's durable heart: the WAL-journaled job table, the
// priority queue over it, and the content-addressed graph/artifact
// directories, all rooted in one data dir guarded by a persist lock.
type store struct {
	dir  string
	lock *persist.Lock
	wal  *persist.Journal

	mu      sync.Mutex
	jobs    map[string]*job
	queue   jobHeap
	seq     int
	nextID  int
	results map[string]string // cache: job key -> verified artifact SHA-256
	// replayed counts jobs re-queued from the WAL on open (crash recovery).
	replayed int
}

func walPath(dir string) string    { return filepath.Join(dir, "jobs.jsonl") }
func lockPath(dir string) string   { return filepath.Join(dir, "graphiod.lock") }
func graphsDir(dir string) string  { return filepath.Join(dir, "graphs") }
func resultsDir(dir string) string { return filepath.Join(dir, "results") }
func graphPath(dir, sha string) string {
	return filepath.Join(graphsDir(dir), sha+".json")
}
func artifactPath(dir, key string) string {
	return filepath.Join(resultsDir(dir), key+".json")
}

// openStore locks dir, replays the WAL, verifies every completed job's
// artifact by content hash, and re-queues everything accepted but never
// durably resolved — the restart half of append-before-effect.
func openStore(dir string) (*store, error) {
	if err := os.MkdirAll(graphsDir(dir), 0o755); err != nil {
		return nil, fmt.Errorf("graphiod: data dir: %w", err)
	}
	if err := os.MkdirAll(resultsDir(dir), 0o755); err != nil {
		return nil, fmt.Errorf("graphiod: data dir: %w", err)
	}
	lock, err := persist.AcquireLock(lockPath(dir))
	if err != nil {
		return nil, fmt.Errorf("graphiod: %w", err)
	}
	if _, err := persist.RemoveStaleTemps(resultsDir(dir)); err != nil {
		_ = lock.Release()
		return nil, err
	}
	wal, recs, err := persist.OpenJournal(walPath(dir))
	if err != nil {
		_ = lock.Release()
		return nil, fmt.Errorf("graphiod: open WAL: %w", err)
	}
	s := &store{
		dir:     dir,
		lock:    lock,
		wal:     wal,
		jobs:    make(map[string]*job),
		results: make(map[string]string),
	}
	for _, raw := range recs {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A CRC-valid frame that is not JSON means a writer bug, not a
			// torn tail; refuse to guess at the queue state.
			s.close()
			return nil, fmt.Errorf("graphiod: corrupt WAL record: %w", err)
		}
		s.applyReplay(rec)
	}
	// Rebuild the run queue from whatever the WAL left unresolved.
	for _, j := range s.jobs {
		if j.State == StateQueued {
			s.replayed++
			heap.Push(&s.queue, j)
		}
	}
	return s, nil
}

// applyReplay folds one WAL record into the in-memory job table. Terminal
// records for unknown IDs are ignored (the accept lived in a torn tail).
func (s *store) applyReplay(rec walRecord) {
	switch rec.Kind {
	case "accept":
		if rec.Spec == nil {
			return
		}
		j := &job{
			ID:       rec.ID,
			Key:      rec.Spec.Key(),
			Spec:     *rec.Spec,
			Priority: rec.Priority,
			Client:   rec.Client,
			Timeout:  time.Duration(rec.TimeoutMS) * time.Millisecond,
			seq:      s.seq,
			State:    StateQueued,
			Cached:   rec.Cached,
		}
		s.seq++
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "j")); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		s.jobs[j.ID] = j
	case "done":
		j, ok := s.jobs[rec.ID]
		if !ok {
			return
		}
		// Trust, but verify: the artifact must exist with the journaled
		// hash, or the job runs again. A crash between the artifact rename
		// and the WAL append leaves a valid orphan artifact; the reverse
		// order cannot happen (artifact commits before the done record).
		if s.verifyArtifact(j.Key, rec.SHA) {
			j.State = StateDone
			j.ArtifactSHA = rec.SHA
			j.WallMS = rec.WallMS
			s.results[j.Key] = rec.SHA
		}
	case "fail":
		if j, ok := s.jobs[rec.ID]; ok {
			j.State = StateFailed
			j.ErrKind = rec.ErrKind
			j.ErrMsg = rec.Error
			j.WallMS = rec.WallMS
		}
	case "shed":
		if j, ok := s.jobs[rec.ID]; ok {
			j.State = StateShed
		}
	}
}

func (s *store) verifyArtifact(key, wantSHA string) bool {
	data, err := os.ReadFile(artifactPath(s.dir, key))
	if err != nil {
		return false
	}
	return sha256Hex(data) == wantSHA
}

func (s *store) close() {
	_ = s.wal.Close()
	_ = s.lock.Release()
}

// append journals rec durably; the caller applies the effect only after a
// nil return (append-before-effect).
func (s *store) append(rec walRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("graphiod: marshal WAL record: %w", err)
	}
	return s.wal.Append(b)
}

// accept admits a new job: WAL first, then the job table and run queue.
// When the result cache already holds the key, the job is journaled as
// accept+done and returned already terminal — the caller serves it
// immediately and no worker ever sees it.
func (s *store) accept(spec jobSpec, priority int, client string, timeout time.Duration) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := &job{
		ID:       fmt.Sprintf("j%06d", s.nextID),
		Key:      spec.Key(),
		Spec:     spec,
		Priority: priority,
		Client:   client,
		Timeout:  timeout,
		seq:      s.seq,
		State:    StateQueued,
	}
	cachedSHA, hit := s.results[j.Key]
	j.Cached = hit
	rec := walRecord{
		Kind: "accept", ID: j.ID, Spec: &spec,
		Priority: priority, Client: client,
		TimeoutMS: timeout.Milliseconds(), Cached: hit,
	}
	if err := s.append(rec); err != nil {
		return nil, err
	}
	if hit {
		if err := s.append(walRecord{Kind: "done", ID: j.ID, SHA: cachedSHA}); err != nil {
			return nil, err
		}
		j.State = StateDone
		j.ArtifactSHA = cachedSHA
	}
	s.nextID++
	s.seq++
	s.jobs[j.ID] = j
	if !hit {
		heap.Push(&s.queue, j)
	}
	return j, nil
}

// next pops the highest-priority queued job and marks it running. Running
// state is memory-only on purpose: a crash mid-run leaves the WAL at
// "accept", which is exactly the record that re-queues it on restart.
func (s *store) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queue.Len() == 0 {
		return nil
	}
	j := heap.Pop(&s.queue).(*job)
	j.State = StateRunning
	return j
}

// complete journals and applies a successful terminal transition.
func (s *store) complete(j *job, artifactSHA string, wall time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	wallMS := wall.Milliseconds()
	if err := s.append(walRecord{Kind: "done", ID: j.ID, SHA: artifactSHA, WallMS: wallMS}); err != nil {
		return err
	}
	j.State = StateDone
	j.ArtifactSHA = artifactSHA
	j.WallMS = wallMS
	s.results[j.Key] = artifactSHA
	return nil
}

// fail journals and applies a typed failure.
func (s *store) fail(j *job, kind, msg string, wall time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	wallMS := wall.Milliseconds()
	if err := s.append(walRecord{Kind: "fail", ID: j.ID, ErrKind: kind, Error: msg, WallMS: wallMS}); err != nil {
		return err
	}
	j.State = StateFailed
	j.ErrKind = kind
	j.ErrMsg = msg
	j.WallMS = wallMS
	return nil
}

// shedLowest drops the lowest-priority queued job (newest first within a
// priority) and journals the drop. Returns nil when the queue is empty.
func (s *store) shedLowest() (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queue.Len() == 0 {
		return nil, nil
	}
	worst := 0
	for i := 1; i < s.queue.Len(); i++ {
		a, b := s.queue[i], s.queue[worst]
		if a.Priority < b.Priority || (a.Priority == b.Priority && a.seq > b.seq) {
			worst = i
		}
	}
	j := s.queue[worst]
	if err := s.append(walRecord{Kind: "shed", ID: j.ID}); err != nil {
		return nil, err
	}
	heap.Remove(&s.queue, worst)
	j.State = StateShed
	return j, nil
}

// depth returns the number of queued (not yet running) jobs.
func (s *store) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// get returns a snapshot of one job's wire info.
func (s *store) get(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return j.info(), true
}

// list returns every job's wire info, in submission order.
func (s *store) list() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.info())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// inFlight counts a client's non-terminal jobs, for per-client admission.
func (s *store) inFlight(client string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.Client == client && (j.State == StateQueued || j.State == StateRunning) {
			n++
		}
	}
	return n
}

// cachedSHA returns the verified artifact hash for a key, if completed.
func (s *store) cachedSHA(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sha, ok := s.results[key]
	return sha, ok
}

// storeGraph content-addresses an uploaded graph's canonical JSON under
// graphs/<sha>.json, before the WAL record that references it is appended.
// Re-uploading identical bytes is a no-op.
func (s *store) storeGraph(canonical []byte) (string, error) {
	sha := sha256Hex(canonical)
	path := graphPath(s.dir, sha)
	if existing, err := os.ReadFile(path); err == nil && sha256Hex(existing) == sha {
		return sha, nil
	}
	if err := persist.WriteFileAtomic(path, canonical, 0o644); err != nil {
		return "", fmt.Errorf("graphiod: store graph: %w", err)
	}
	return sha, nil
}

// loadGraph rereads a stored upload and verifies it still hashes to sha.
func (s *store) loadGraph(sha string) (*graph.Graph, error) {
	data, err := os.ReadFile(graphPath(s.dir, sha))
	if err != nil {
		return nil, fmt.Errorf("graphiod: stored graph %s: %w", sha, err)
	}
	if got := sha256Hex(data); got != sha {
		return nil, fmt.Errorf("graphiod: stored graph %s corrupted (hashes to %s)", sha, got)
	}
	g, err := graph.ReadJSONLimit(strings.NewReader(string(data)), int64(len(data))+1)
	if err != nil {
		return nil, fmt.Errorf("graphiod: stored graph %s: %w", sha, err)
	}
	return g, nil
}

// commitArtifact durably publishes a result under its cache key and
// returns the content hash the WAL's done record carries.
func (s *store) commitArtifact(key string, data []byte) (string, error) {
	if err := persist.WriteFileAtomic(artifactPath(s.dir, key), data, 0o644); err != nil {
		return "", fmt.Errorf("graphiod: commit artifact: %w", err)
	}
	return sha256Hex(data), nil
}

// readArtifact returns the raw artifact bytes for a key.
func (s *store) readArtifact(key string) ([]byte, error) {
	return os.ReadFile(artifactPath(s.dir, key))
}

// jobHeap orders queued jobs by (priority desc, admission order asc).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*job)) }

func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
