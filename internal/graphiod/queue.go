package graphiod

import (
	"bytes"
	"container/heap"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphio/internal/graph"
	"graphio/internal/obs"
	"graphio/internal/persist"
)

// walRecord is one frame in the daemon's job WAL. "accept" carries the full
// canonical spec so replay needs nothing but the WAL and the content
// directories; "done"/"fail"/"shed" are terminal transitions referencing
// the accept by ID. Every record is appended (and fsynced, via
// persist.Journal) before the transition it describes takes effect.
// Compaction adds two snapshot kinds: "result" pins one result-cache entry
// (key → artifact hash) independent of any job, and "meta" pins the ID
// counter so pruned jobs' IDs are never reissued after a restart.
type walRecord struct {
	Kind      string   `json:"kind"` // accept | done | fail | shed | result | meta
	ID        string   `json:"id,omitempty"`
	Spec      *jobSpec `json:"spec,omitempty"`
	Priority  int      `json:"priority,omitempty"`
	Client    string   `json:"client,omitempty"`
	Host      string   `json:"host,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
	Cached    bool     `json:"cached,omitempty"`
	// SHA is the artifact's SHA-256 on "done" records; replay re-hashes the
	// artifact file and re-queues the job if the bytes do not match.
	SHA     string `json:"sha,omitempty"`
	WallMS  int64  `json:"wall_ms,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
	Error   string `json:"error,omitempty"`
	// Key is the cache key a "result" snapshot record pins.
	Key string `json:"key,omitempty"`
	// NextID is the ID counter a "meta" snapshot record pins.
	NextID int `json:"next_id,omitempty"`
}

// store is the daemon's durable heart: the WAL-journaled job table, the
// priority queue over it, and the content-addressed graph/artifact
// directories, all rooted in one data dir guarded by a persist lock.
type store struct {
	dir  string
	lock *persist.Lock
	wal  *persist.Journal
	logf func(format string, args ...interface{})

	mu      sync.Mutex
	jobs    map[string]*job
	queue   jobHeap
	seq     int
	nextID  int
	results map[string]string // cache: job key -> verified artifact SHA-256
	// replayed counts jobs re-queued from the WAL on open (crash recovery).
	replayed int
	// retain bounds the terminal jobs kept in the job table (and hence the
	// WAL after compaction); the oldest beyond it are pruned. Their
	// artifacts and result-cache entries survive — only the status row goes.
	retain int
	// compactEvery triggers a WAL rewrite after that many appends, so the
	// journal (and restart replay time) stays proportional to live state,
	// not to every job ever accepted.
	compactEvery     int
	recsSinceCompact int
}

func walPath(dir string) string    { return filepath.Join(dir, "jobs.jsonl") }
func lockPath(dir string) string   { return filepath.Join(dir, "graphiod.lock") }
func graphsDir(dir string) string  { return filepath.Join(dir, "graphs") }
func resultsDir(dir string) string { return filepath.Join(dir, "results") }
func graphPath(dir, sha string) string {
	return filepath.Join(graphsDir(dir), sha+".json")
}
func artifactPath(dir, key string) string {
	return filepath.Join(resultsDir(dir), key+".json")
}

// walCompactSlack is how many dead WAL records openStore tolerates before
// rewriting the journal on open (appends during a run are governed by
// compactEvery instead).
const walCompactSlack = 64

// openStore locks dir, replays the WAL, verifies every completed job's
// artifact by content hash, and re-queues everything accepted but never
// durably resolved — the restart half of append-before-effect. retain
// bounds the terminal jobs kept (≤ 0 means a default); logf may be nil.
func openStore(dir string, retain int, logf func(format string, args ...interface{})) (*store, error) {
	if err := os.MkdirAll(graphsDir(dir), 0o755); err != nil {
		return nil, fmt.Errorf("graphiod: data dir: %w", err)
	}
	if err := os.MkdirAll(resultsDir(dir), 0o755); err != nil {
		return nil, fmt.Errorf("graphiod: data dir: %w", err)
	}
	lock, err := persist.AcquireLock(lockPath(dir))
	if err != nil {
		return nil, fmt.Errorf("graphiod: %w", err)
	}
	if _, err := persist.RemoveStaleTemps(resultsDir(dir)); err != nil {
		_ = lock.Release()
		return nil, err
	}
	wal, recs, err := persist.OpenJournal(walPath(dir))
	if err != nil {
		_ = lock.Release()
		return nil, fmt.Errorf("graphiod: open WAL: %w", err)
	}
	if retain <= 0 {
		retain = 4096
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	s := &store{
		dir:          dir,
		lock:         lock,
		wal:          wal,
		logf:         logf,
		jobs:         make(map[string]*job),
		results:      make(map[string]string),
		retain:       retain,
		compactEvery: 1024,
	}
	for _, raw := range recs {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A CRC-valid frame that is not JSON means a writer bug, not a
			// torn tail; refuse to guess at the queue state.
			s.close()
			return nil, fmt.Errorf("graphiod: corrupt WAL record: %w", err)
		}
		s.applyReplay(rec)
	}
	// Rebuild the run queue from whatever the WAL left unresolved.
	for _, j := range s.jobs {
		if j.State == StateQueued {
			s.replayed++
			heap.Push(&s.queue, j)
		}
	}
	// A WAL dominated by dead records (terminal jobs past retention, stale
	// cache entries) is rewritten to live state before serving, so replay
	// cost stays bounded across restarts.
	s.pruneLocked()
	if len(recs) > s.liveRecordsLocked()+walCompactSlack {
		if err := s.compactLocked(); err != nil {
			s.close()
			return nil, err
		}
	}
	return s, nil
}

// applyReplay folds one WAL record into the in-memory job table. Terminal
// records for unknown IDs are ignored (the accept lived in a torn tail).
func (s *store) applyReplay(rec walRecord) {
	switch rec.Kind {
	case "accept":
		if rec.Spec == nil {
			return
		}
		j := &job{
			ID:       rec.ID,
			Key:      rec.Spec.Key(),
			Spec:     *rec.Spec,
			Priority: rec.Priority,
			Client:   rec.Client,
			Host:     rec.Host,
			Timeout:  time.Duration(rec.TimeoutMS) * time.Millisecond,
			seq:      s.seq,
			State:    StateQueued,
			Cached:   rec.Cached,
		}
		s.seq++
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "j")); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		s.jobs[j.ID] = j
	case "done":
		j, ok := s.jobs[rec.ID]
		if !ok {
			return
		}
		// Trust, but verify: the artifact must exist with the journaled
		// hash, or the job runs again. A crash between the artifact rename
		// and the WAL append leaves a valid orphan artifact; the reverse
		// order cannot happen (artifact commits before the done record).
		if s.verifyArtifact(j.Key, rec.SHA) {
			j.State = StateDone
			j.ArtifactSHA = rec.SHA
			j.WallMS = rec.WallMS
			s.results[j.Key] = rec.SHA
		}
	case "fail":
		if j, ok := s.jobs[rec.ID]; ok {
			j.State = StateFailed
			j.ErrKind = rec.ErrKind
			j.ErrMsg = rec.Error
			j.WallMS = rec.WallMS
		}
	case "shed":
		if j, ok := s.jobs[rec.ID]; ok {
			j.State = StateShed
		}
	case "result":
		// Compaction snapshot of one result-cache entry; same trust-but-
		// verify rule as "done" records.
		if s.verifyArtifact(rec.Key, rec.SHA) {
			s.results[rec.Key] = rec.SHA
		}
	case "meta":
		if rec.NextID > s.nextID {
			s.nextID = rec.NextID
		}
	}
}

func (s *store) verifyArtifact(key, wantSHA string) bool {
	data, err := s.readArtifact(key)
	if err != nil {
		return false
	}
	return sha256Hex(data) == wantSHA
}

func (s *store) close() {
	_ = s.wal.Close()
	_ = s.lock.Release()
}

// append journals rec durably; the caller applies the effect only after a
// nil return (append-before-effect). Callers hold s.mu.
func (s *store) append(rec walRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("graphiod: marshal WAL record: %w", err)
	}
	if err := s.wal.Append(b); err != nil {
		return err
	}
	s.recsSinceCompact++
	return nil
}

// admitLimits are the admission caps accept enforces atomically with the
// acceptance itself, so concurrent submissions cannot overshoot them. A
// cap ≤ 0 is unenforced.
type admitLimits struct {
	// ClientInFlight caps one client name's queued+running jobs.
	ClientInFlight int
	// HostInFlight caps one remote address's queued+running jobs across
	// every client name it claims — the client field is request-supplied,
	// so without this a submitter could dodge its cap by varying it.
	HostInFlight int
	// QueueCap caps queued (not yet running) jobs.
	QueueCap int
}

// admitError is a typed admission rejection; the HTTP layer maps it to a
// structured 429 with the Retry-After hint.
type admitError struct {
	Fault      Fault
	RetryAfter int
}

func (e *admitError) Error() string { return "graphiod: " + e.Fault.Message }

// admitLocked checks the caps for one prospective job. Caller holds s.mu.
func (s *store) admitLocked(client, host string, lim admitLimits) error {
	clientN, hostN := 0, 0
	for _, j := range s.jobs {
		if j.State != StateQueued && j.State != StateRunning {
			continue
		}
		if j.Client == client {
			clientN++
		}
		if host != "" && j.Host == host {
			hostN++
		}
	}
	// Per-client cap first: a hogging client must not be able to convert
	// its own backlog into queue_full 429s for everyone.
	if lim.ClientInFlight > 0 && clientN >= lim.ClientInFlight {
		return &admitError{RetryAfter: 10, Fault: Fault{
			Kind: "client_limit", Limit: int64(lim.ClientInFlight),
			Message: fmt.Sprintf("client %q already has %d jobs in flight", client, clientN),
		}}
	}
	if lim.HostInFlight > 0 && host != "" && hostN >= lim.HostInFlight {
		return &admitError{RetryAfter: 10, Fault: Fault{
			Kind: "host_limit", Limit: int64(lim.HostInFlight),
			Message: fmt.Sprintf("address %q already has %d jobs in flight", host, hostN),
		}}
	}
	if lim.QueueCap > 0 && s.queue.Len() >= lim.QueueCap {
		return &admitError{RetryAfter: 30, Fault: Fault{
			Kind: "queue_full", Limit: int64(lim.QueueCap),
			Message: fmt.Sprintf("queue at capacity (%d jobs)", s.queue.Len()),
		}}
	}
	return nil
}

// accept admits a new job: admission caps, then WAL, then the job table and
// run queue, all under one lock acquisition so N racing submissions cannot
// collectively overshoot the caps. When the result cache already holds the
// key, the job is journaled as accept+done and returned already terminal —
// the caller serves it immediately, no worker ever sees it, and the caps
// are not charged (a cache hit consumes no queue or solver capacity).
func (s *store) accept(spec jobSpec, priority int, client, host string, timeout time.Duration, lim admitLimits) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := &job{
		ID:       fmt.Sprintf("j%06d", s.nextID),
		Key:      spec.Key(),
		Spec:     spec,
		Priority: priority,
		Client:   client,
		Host:     host,
		Timeout:  timeout,
		seq:      s.seq,
		State:    StateQueued,
	}
	cachedSHA, hit := s.results[j.Key]
	j.Cached = hit
	if !hit {
		if err := s.admitLocked(client, host, lim); err != nil {
			return nil, err
		}
	}
	rec := walRecord{
		Kind: "accept", ID: j.ID, Spec: &spec,
		Priority: priority, Client: client, Host: host,
		TimeoutMS: timeout.Milliseconds(), Cached: hit,
	}
	//lint:ignore lock-blocking append-before-effect: admission, the accept record, and the table/queue insert must be one atomic section under s.mu or racing submissions overshoot the caps
	if err := s.append(rec); err != nil {
		return nil, err
	}
	if hit {
		if err := s.append(walRecord{Kind: "done", ID: j.ID, SHA: cachedSHA}); err != nil {
			return nil, err
		}
		j.State = StateDone
		j.ArtifactSHA = cachedSHA
	}
	s.nextID++
	s.seq++
	s.jobs[j.ID] = j
	if !hit {
		heap.Push(&s.queue, j)
	}
	s.pruneLocked()
	s.maybeCompactLocked()
	return j, nil
}

// next pops the highest-priority queued job and marks it running. Running
// state is memory-only on purpose: a crash mid-run leaves the WAL at
// "accept", which is exactly the record that re-queues it on restart.
func (s *store) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queue.Len() == 0 {
		return nil
	}
	j := heap.Pop(&s.queue).(*job)
	j.State = StateRunning
	return j
}

// complete journals and applies a successful terminal transition.
func (s *store) complete(j *job, artifactSHA string, wall time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	wallMS := wall.Milliseconds()
	//lint:ignore lock-blocking append-before-effect: the done record must be durable before the terminal transition it describes, atomically under s.mu
	if err := s.append(walRecord{Kind: "done", ID: j.ID, SHA: artifactSHA, WallMS: wallMS}); err != nil {
		return err
	}
	j.State = StateDone
	j.ArtifactSHA = artifactSHA
	j.WallMS = wallMS
	s.results[j.Key] = artifactSHA
	s.pruneLocked()
	s.maybeCompactLocked()
	return nil
}

// fail journals and applies a typed failure.
func (s *store) fail(j *job, kind, msg string, wall time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	wallMS := wall.Milliseconds()
	//lint:ignore lock-blocking append-before-effect: the fail record must be durable before the terminal transition it describes, atomically under s.mu
	if err := s.append(walRecord{Kind: "fail", ID: j.ID, ErrKind: kind, Error: msg, WallMS: wallMS}); err != nil {
		return err
	}
	j.State = StateFailed
	j.ErrKind = kind
	j.ErrMsg = msg
	j.WallMS = wallMS
	s.pruneLocked()
	s.maybeCompactLocked()
	return nil
}

// pruneLocked bounds the in-memory job table (and, via compaction, the
// WAL): beyond retain terminal jobs, the oldest are forgotten. Their
// artifacts and result-cache entries survive — only the /v1/jobs status
// row goes away. Caller holds s.mu.
func (s *store) pruneLocked() {
	var term []*job
	for _, j := range s.jobs {
		switch j.State {
		case StateDone, StateFailed, StateShed:
			term = append(term, j)
		}
	}
	if len(term) <= s.retain {
		return
	}
	sort.Slice(term, func(i, k int) bool { return term[i].seq < term[k].seq })
	for _, j := range term[:len(term)-s.retain] {
		delete(s.jobs, j.ID)
	}
}

// liveRecordsLocked counts the WAL records a compacted journal would hold:
// one meta record, one per cache entry, and one or two per retained job.
func (s *store) liveRecordsLocked() int {
	n := 1 + len(s.results)
	for _, j := range s.jobs {
		n++
		switch j.State {
		case StateDone, StateFailed, StateShed:
			n++
		}
	}
	return n
}

// maybeCompactLocked rewrites the WAL once enough records have accumulated
// since the last rewrite. Compaction failing must not fail the journaled
// transition that triggered it (that transition is already durable), so
// errors are logged and retried on a later trigger. Caller holds s.mu.
func (s *store) maybeCompactLocked() {
	if s.recsSinceCompact < s.compactEvery {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.logf("WAL compaction failed (will retry): %v", err)
	}
}

// compactLocked atomically replaces the WAL with live state only: a meta
// record pinning the ID counter, the verified result-cache index, and an
// accept (plus terminal) record for every retained job in admission order.
// Replaying the rewritten journal reproduces the current tables exactly —
// including re-queueing jobs that are queued or running right now, which is
// the same contract crash replay already relies on. Caller holds s.mu.
func (s *store) compactLocked() error {
	var buf bytes.Buffer
	frame := func(rec walRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("graphiod: marshal WAL record: %w", err)
		}
		f, err := persist.FrameRecord(b)
		if err != nil {
			return err
		}
		buf.Write(f)
		return nil
	}
	//lint:ignore lock-blocking compaction must snapshot and swap the journal against a frozen table; it runs under s.mu by contract and is amortized by compactEvery
	if err := frame(walRecord{Kind: "meta", NextID: s.nextID}); err != nil {
		return err
	}
	keys := make([]string, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := frame(walRecord{Kind: "result", Key: k, SHA: s.results[k]}); err != nil {
			return err
		}
	}
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	for _, j := range jobs {
		spec := j.Spec
		if err := frame(walRecord{
			Kind: "accept", ID: j.ID, Spec: &spec,
			Priority: j.Priority, Client: j.Client, Host: j.Host,
			TimeoutMS: j.Timeout.Milliseconds(), Cached: j.Cached,
		}); err != nil {
			return err
		}
		var terminal *walRecord
		switch j.State {
		case StateDone:
			terminal = &walRecord{Kind: "done", ID: j.ID, SHA: j.ArtifactSHA, WallMS: j.WallMS}
		case StateFailed:
			terminal = &walRecord{Kind: "fail", ID: j.ID, ErrKind: j.ErrKind, Error: j.ErrMsg, WallMS: j.WallMS}
		case StateShed:
			terminal = &walRecord{Kind: "shed", ID: j.ID}
		}
		if terminal != nil {
			if err := frame(*terminal); err != nil {
				return err
			}
		}
	}
	// Swap the journal: close, atomic-replace, reopen. WriteFileAtomic's
	// temp+rename keeps the old journal intact on failure, so a failed
	// rewrite degrades to an uncompacted (still correct) WAL.
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("graphiod: compact WAL: %w", err)
	}
	writeErr := persist.WriteFileAtomic(walPath(s.dir), buf.Bytes(), 0o644)
	wal, _, openErr := persist.OpenJournal(walPath(s.dir))
	if openErr != nil {
		return fmt.Errorf("graphiod: reopen WAL after compaction: %w", openErr)
	}
	s.wal = wal
	if writeErr != nil {
		return fmt.Errorf("graphiod: compact WAL: %w", writeErr)
	}
	s.recsSinceCompact = 0
	return nil
}

// shedLowest drops the lowest-priority queued job (newest first within a
// priority) and journals the drop. Returns nil when the queue is empty.
func (s *store) shedLowest() (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queue.Len() == 0 {
		return nil, nil
	}
	worst := 0
	for i := 1; i < s.queue.Len(); i++ {
		a, b := s.queue[i], s.queue[worst]
		if a.Priority < b.Priority || (a.Priority == b.Priority && a.seq > b.seq) {
			worst = i
		}
	}
	j := s.queue[worst]
	//lint:ignore lock-blocking append-before-effect: the shed record must be durable before the job leaves the queue, atomically under s.mu
	if err := s.append(walRecord{Kind: "shed", ID: j.ID}); err != nil {
		return nil, err
	}
	heap.Remove(&s.queue, worst)
	j.State = StateShed
	s.pruneLocked()
	s.maybeCompactLocked()
	return j, nil
}

// depth returns the number of queued (not yet running) jobs.
func (s *store) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// get returns a snapshot of one job's wire info.
func (s *store) get(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return j.info(), true
}

// list returns every job's wire info, in submission order.
func (s *store) list() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.info())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// cachedSHA returns the verified artifact hash for a key, if completed.
func (s *store) cachedSHA(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sha, ok := s.results[key]
	return sha, ok
}

// storeGraph content-addresses an uploaded graph's canonical JSON under
// graphs/<sha>.json, before the WAL record that references it is appended.
// Re-uploading identical bytes is a no-op.
func (s *store) storeGraph(canonical []byte) (string, error) {
	sha := sha256Hex(canonical)
	path := graphPath(s.dir, sha)
	if existing, err := os.ReadFile(path); err == nil && sha256Hex(existing) == sha {
		return sha, nil
	}
	if err := persist.WriteFileAtomic(path, canonical, 0o644); err != nil {
		return "", fmt.Errorf("graphiod: store graph: %w", err)
	}
	return sha, nil
}

// loadGraph rereads a stored upload and verifies it still hashes to sha.
func (s *store) loadGraph(sha string) (*graph.Graph, error) {
	if !isContentKey(sha) {
		return nil, fmt.Errorf("graphiod: invalid graph hash %q", sha)
	}
	data, err := os.ReadFile(graphPath(s.dir, sha))
	if err != nil {
		return nil, fmt.Errorf("graphiod: stored graph %s: %w", sha, err)
	}
	if got := sha256Hex(data); got != sha {
		return nil, fmt.Errorf("graphiod: stored graph %s corrupted (hashes to %s)", sha, got)
	}
	g, err := graph.ReadJSONLimit(strings.NewReader(string(data)), int64(len(data))+1)
	if err != nil {
		return nil, fmt.Errorf("graphiod: stored graph %s: %w", sha, err)
	}
	return g, nil
}

// commitArtifact durably publishes a result under its cache key and
// returns the content hash the WAL's done record carries.
func (s *store) commitArtifact(key string, data []byte) (string, error) {
	if err := persist.WriteFileAtomic(artifactPath(s.dir, key), data, 0o644); err != nil {
		return "", fmt.Errorf("graphiod: commit artifact: %w", err)
	}
	return sha256Hex(data), nil
}

// readArtifact returns the raw artifact bytes for a key. Keys reach here
// from the URL path, so anything that is not a content hash is rejected
// before it can touch the filesystem — "../" in a key must never resolve
// to a path outside the results dir.
func (s *store) readArtifact(key string) ([]byte, error) {
	if !isContentKey(key) {
		return nil, fmt.Errorf("graphiod: invalid artifact key %q", key)
	}
	return os.ReadFile(artifactPath(s.dir, key))
}

// sweepArtifacts deletes cached artifacts whose file is older than ttl and
// whose key no retained job row references. Rows pin their artifacts:
// expiring an artifact a "done" record still names would make WAL replay
// re-queue (and re-run) that job, so the TTL only reaps artifacts that
// outlived their status row — the ones retention explicitly left behind as
// cache. The matching result-cache entry is evicted in the same critical
// section, and the unlink happens under s.mu too: a concurrent accept for
// the same key then strictly either hits the cache before the sweep or
// misses after it, never reads a half-expired entry. (Worst case after a
// crash, up to walCompactSlack dead records can still name a reaped
// artifact; replay then re-runs those jobs, the same contract as a missing
// or corrupt artifact.)
func (s *store) sweepArtifacts(ttl time.Duration) (int, error) {
	if ttl <= 0 {
		return 0, nil
	}
	entries, err := os.ReadDir(resultsDir(s.dir))
	if err != nil {
		return 0, err
	}
	cutoff := obs.Now().Add(-ttl)
	var stale []string
	for _, ent := range entries {
		name := ent.Name()
		key := strings.TrimSuffix(name, ".json")
		if ent.IsDir() || key == name || !isContentKey(key) {
			continue
		}
		info, err := ent.Info()
		if err != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		stale = append(stale, key)
	}
	if len(stale) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pinned := make(map[string]bool, len(s.jobs))
	for _, j := range s.jobs {
		pinned[j.Key] = true
	}
	removed := 0
	for _, key := range stale {
		if pinned[key] {
			continue
		}
		if err := os.Remove(artifactPath(s.dir, key)); err != nil && !os.IsNotExist(err) {
			s.logf("artifact GC: %v", err)
			continue
		}
		delete(s.results, key)
		removed++
	}
	return removed, nil
}

// jobHeap orders queued jobs by (priority desc, admission order asc).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*job)) }

func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
