package graphiod

// Tests for the artifact-store TTL sweep: unpinned artifacts past the TTL
// go, pinned or fresh ones stay, and New runs the sweep at startup.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"os"
	"testing"
	"time"
)

// plantArtifact writes a fake artifact with a deterministic content key
// and backdates its mtime by age. It returns the key.
func plantArtifact(t *testing.T, dir, seed string, age time.Duration) string {
	t.Helper()
	if err := os.MkdirAll(resultsDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(seed))
	key := hex.EncodeToString(sum[:])
	path := artifactPath(dir, key)
	//lint:ignore persist-writes plants a fake artifact fixture in t.TempDir for the sweeper to find
	if err := os.WriteFile(path, []byte(`{"seed":"`+seed+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if age > 0 {
		old := time.Now().Add(-age)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}
	return key
}

func artifactExists(t *testing.T, dir, key string) bool {
	t.Helper()
	_, err := os.Stat(artifactPath(dir, key))
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return err == nil
}

func TestSweepArtifactsTTL(t *testing.T) {
	dir := t.TempDir()
	oldOrphan := plantArtifact(t, dir, "old-orphan", 48*time.Hour)
	freshOrphan := plantArtifact(t, dir, "fresh-orphan", 0)

	st, err := openStore(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	// A cache entry for the old orphan must be evicted along with the file.
	st.mu.Lock()
	st.results[oldOrphan] = "whatever"
	st.mu.Unlock()

	if removed, err := st.sweepArtifacts(0); err != nil || removed != 0 {
		t.Fatalf("sweep with ttl 0 = (%d, %v), want a no-op", removed, err)
	}
	removed, err := st.sweepArtifacts(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("sweep removed %d artifact(s), want 1", removed)
	}
	if artifactExists(t, dir, oldOrphan) {
		t.Error("expired orphan artifact survived the sweep")
	}
	if !artifactExists(t, dir, freshOrphan) {
		t.Error("fresh artifact was reaped")
	}
	st.mu.Lock()
	_, cached := st.results[oldOrphan]
	st.mu.Unlock()
	if cached {
		t.Error("result-cache entry for the reaped artifact survived")
	}
}

// TestSweepArtifactsPinsJobRows: an artifact a retained job row references
// is never reaped, however old — expiring it would make WAL replay re-run
// the job.
func TestSweepArtifactsPinsJobRows(t *testing.T) {
	srv, url := newTestServer(t, Config{Workers: 1})
	resp := submit(t, url, JobRequest{Spec: "chain:32", M: 8, MaxK: 4, Solver: "dense"}, http.StatusAccepted)
	info := waitState(t, srv, resp.ID, StateDone)

	path := artifactPath(srv.cfg.DataDir, info.Key)
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	removed, err := srv.store.sweepArtifacts(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("sweep reaped %d pinned artifact(s)", removed)
	}
	if !artifactExists(t, srv.cfg.DataDir, info.Key) {
		t.Error("artifact pinned by a live job row was deleted")
	}
}

// TestNewSweepsOnStartup: a daemon configured with a TTL reaps expired
// orphans before serving.
func TestNewSweepsOnStartup(t *testing.T) {
	dir := t.TempDir()
	orphan := plantArtifact(t, dir, "startup-orphan", 48*time.Hour)

	srv, _ := newTestServer(t, Config{DataDir: dir, Workers: 1, ArtifactTTL: 24 * time.Hour})
	if artifactExists(t, dir, orphan) {
		t.Error("expired orphan survived the startup sweep")
	}
	// The sweeper goroutine must not block Drain or Close (joined via wg).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain with sweeper running: %v", err)
	}
}
