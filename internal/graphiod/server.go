package graphiod

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphio/internal/graph"
	"graphio/internal/linalg"
	"graphio/internal/obs"
)

// Config tunes a Server. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// DataDir roots the WAL, the graph content store, and the artifact
	// cache. Required.
	DataDir string
	// Workers sizes the bound-computation pool. Default 2.
	Workers int
	// QueueCap caps queued (not yet running) jobs; past it submissions get
	// 429 + Retry-After. Default 256.
	QueueCap int
	// ClientInFlight caps one client's queued+running jobs. Default 16.
	ClientInFlight int
	// HostInFlight caps one remote address's queued+running jobs across
	// every client name it claims (the client field is request-supplied and
	// must not be a way around the cap). Default 4 × ClientInFlight.
	HostInFlight int
	// RetainJobs bounds the terminal jobs kept in the status table and the
	// compacted WAL; beyond it the oldest are forgotten (their cached
	// artifacts survive). Default 4096.
	RetainJobs int
	// ArtifactTTL, when > 0, expires the artifact cache: result files older
	// than the TTL whose job row retention already pruned are deleted on
	// startup and then hourly. Rows pin their artifacts, so a TTL shorter
	// than a job's lifetime in the status table has no effect on it.
	// 0 (the default) keeps artifacts forever.
	ArtifactTTL time.Duration
	// MaxGraphBytes caps an uploaded graph's JSON size; oversized uploads
	// get a structured 413. Default graph.DefaultReadLimit (64 MiB).
	MaxGraphBytes int64
	// MaxVertices caps generated and uploaded graph sizes. Default 1<<22.
	MaxVertices int
	// DefaultTimeout is the per-job deadline when the request names none;
	// MaxTimeout caps what a request may ask for. Defaults 2m / 10m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// AuthToken, when non-empty, requires "Authorization: Bearer <token>"
	// on every endpoint except /healthz and /readyz.
	AuthToken string
	// MemSoftLimit, when > 0, sheds the lowest-priority queued jobs while
	// MemUsage() exceeds it. MemUsage is injectable for tests; nil means
	// runtime heap usage.
	MemSoftLimit int64
	MemUsage     func() int64
	// WrapOperator, when non-nil, wraps the Laplacian operator each
	// iterative solve sees, per job — the fault-injection seam the chaos
	// tests use to stall one specific job.
	WrapOperator func(jobID string, op linalg.Operator) linalg.Operator
	// Log receives daemon log lines; nil discards them.
	Log func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.ClientInFlight <= 0 {
		c.ClientInFlight = 16
	}
	if c.HostInFlight <= 0 {
		c.HostInFlight = 4 * c.ClientInFlight
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.MaxGraphBytes <= 0 {
		c.MaxGraphBytes = graph.DefaultReadLimit
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 1 << 22
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MemUsage == nil {
		c.MemUsage = func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.HeapAlloc)
		}
	}
	return c
}

// defaultMaxK and maxMaxK bound the eigenvalue budget a request may ask
// for; h much past the paper's sweep sizes only buys wall time.
const (
	defaultMaxK = 60
	maxMaxK     = 512
)

// Server is the bound-as-a-service daemon: a WAL-backed job queue, a
// bounded worker pool, and the HTTP API over them. Construct with New,
// serve with Start or Handler, stop with Drain then Close.
type Server struct {
	cfg   Config
	store *store
	scope *obs.Scope

	// hard is the worker pool's lifetime: cancelled only on Close, so an
	// aborted job is left non-terminal for WAL replay. dispatch gates
	// picking up new queued jobs and dies first, on Drain.
	hard           context.Context
	cancelHard     context.CancelFunc
	dispatch       context.Context
	cancelDispatch context.CancelFunc

	wake     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool

	httpSrv   *http.Server
	ln        net.Listener
	serveDone chan struct{} // closed when the Serve goroutine exits
}

// New opens (or recovers) the data dir and starts the worker pool. Jobs
// the WAL shows accepted but unresolved — the daemon was SIGKILLed with
// them queued or running — are re-queued and start executing immediately,
// before any listener exists.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("graphiod: Config.DataDir is required")
	}
	st, err := openStore(cfg.DataDir, cfg.RetainJobs, cfg.Log)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg:   cfg,
		store: st,
		scope: obs.NewScope("serve"),
		wake:  make(chan struct{}, 1),
	}
	//lint:ignore ctx-flow the daemon's hard-deadline context is a process root: New is the top of the ownership tree, there is no caller ctx to thread
	srv.hard, srv.cancelHard = context.WithCancel(context.Background())
	srv.dispatch, srv.cancelDispatch = context.WithCancel(srv.hard)
	for i := 0; i < cfg.Workers; i++ {
		srv.wg.Add(1)
		go srv.worker()
	}
	if st.replayed > 0 {
		srv.log("recovered %d unresolved job(s) from the WAL", st.replayed)
		srv.scope.Add("serve.jobs.replayed", int64(st.replayed))
		srv.wakeWorkers()
	}
	if cfg.ArtifactTTL > 0 {
		srv.sweepArtifacts()
		srv.wg.Add(1)
		go srv.artifactSweeper()
	}
	return srv, nil
}

// artifactSweepInterval is how often the TTL sweep re-runs between the
// startup sweep and shutdown.
const artifactSweepInterval = time.Hour

func (srv *Server) sweepArtifacts() {
	removed, err := srv.store.sweepArtifacts(srv.cfg.ArtifactTTL)
	if err != nil {
		srv.log("artifact GC: %v", err)
		return
	}
	if removed > 0 {
		srv.scope.Add("serve.artifacts.expired", int64(removed))
		srv.log("artifact GC: removed %d artifact(s) older than %v", removed, srv.cfg.ArtifactTTL)
	}
}

// artifactSweeper re-runs the TTL sweep hourly. It exits with dispatch
// (Drain or Close) and is joined through srv.wg, so no sweep can race the
// store closing.
func (srv *Server) artifactSweeper() {
	defer srv.wg.Done()
	t := time.NewTicker(artifactSweepInterval)
	defer t.Stop()
	for {
		select {
		case <-srv.dispatch.Done():
			return
		case <-t.C:
			srv.sweepArtifacts()
		}
	}
}

func (srv *Server) log(format string, args ...interface{}) {
	if srv.cfg.Log != nil {
		srv.cfg.Log(format, args...)
	}
}

func (srv *Server) wakeWorkers() {
	select {
	case srv.wake <- struct{}{}:
	default:
	}
}

// worker drains the queue until dispatch dies; the job in hand always runs
// to its own deadline (or the hard stop) first.
func (srv *Server) worker() {
	defer srv.wg.Done()
	for {
		select {
		case <-srv.dispatch.Done():
			return
		case <-srv.wake:
		}
		for srv.dispatch.Err() == nil {
			srv.shedUnderPressure()
			j := srv.store.next()
			if j == nil {
				break
			}
			srv.wakeWorkers() // let an idle sibling grab the next queued job
			srv.scope.SetGauge("serve.queue_depth", float64(srv.store.depth()))
			srv.runJob(srv.hard, j)
		}
	}
}

// shedUnderPressure drops at most one lowest-priority queued job per check
// when memory usage sits above the soft limit. One job per check, not a
// loop: shedding a queued job frees almost nothing immediately (the job
// struct is tiny, and the default heap gauge only falls after a GC cycle),
// so looping until the gauge dropped would flush the entire queue —
// highest-priority jobs included — on a single excursion. Checks run on
// every submission and every worker dequeue, so sustained pressure still
// drains the queue steadily, lowest priority first. Each shed is
// journaled, typed, and counted.
func (srv *Server) shedUnderPressure() {
	if srv.cfg.MemSoftLimit <= 0 || srv.cfg.MemUsage() <= srv.cfg.MemSoftLimit {
		return
	}
	j, err := srv.store.shedLowest()
	if err != nil {
		srv.log("shed: %v", err)
		return
	}
	if j == nil {
		return
	}
	srv.scope.Inc("serve.jobs.shed")
	srv.log("job %s shed (priority %d) under memory pressure", j.ID, j.Priority)
}

// Drain stops admission and dispatch, then waits for in-flight jobs to
// finish (bounded by ctx). Queued jobs stay journaled in the WAL — the
// "unfinished jobs" a restart resumes. Safe to call once before Close.
func (srv *Server) Drain(ctx context.Context) error {
	srv.draining.Store(true)
	srv.cancelDispatch()
	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("graphiod: drain: %w", ctx.Err())
	}
}

// Close hard-stops the daemon: cancels every in-flight job (left
// non-terminal for replay), stops the listener, and releases the data dir.
func (srv *Server) Close() {
	srv.draining.Store(true)
	srv.cancelDispatch()
	srv.cancelHard()
	if srv.httpSrv != nil {
		_ = srv.httpSrv.Close()
		// Join the Serve goroutine so no handler races the store close below.
		<-srv.serveDone
	}
	srv.wg.Wait()
	srv.scope.Close()
	srv.store.close()
}

// Start listens on addr ("host:port"; port 0 picks one) and serves the API
// until Close. It returns the bound address for logging and scripts.
func (srv *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("graphiod: listen: %w", err)
	}
	srv.ln = ln
	srv.httpSrv = &http.Server{Handler: srv.Handler()}
	srv.serveDone = make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		// Serve returns ErrServerClosed when Close stops the listener, by design.
		_ = srv.httpSrv.Serve(ln)
	}(srv.serveDone)
	return ln.Addr().String(), nil
}

// Handler returns the daemon's full HTTP API, auth middleware included:
// job submission and status under /v1/, health probes, and the obs debug
// endpoints (/metrics, /progress, /tasks, /debug/pprof/).
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", srv.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", srv.handleJob)
	mux.HandleFunc("GET /v1/results/{key}", srv.handleResult)
	mux.HandleFunc("GET /healthz", srv.handleHealthz)
	mux.HandleFunc("GET /readyz", srv.handleReadyz)
	mux.Handle("/", obs.DebugHandler())
	return srv.auth(mux)
}

// auth enforces the shared bearer token on everything except the health
// probes, which load balancers must reach unauthenticated.
func (srv *Server) auth(next http.Handler) http.Handler {
	if srv.cfg.AuthToken == "" {
		return next
	}
	want := []byte("Bearer " + srv.cfg.AuthToken)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			next.ServeHTTP(w, r)
			return
		}
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			srv.writeFault(w, http.StatusUnauthorized, Fault{Kind: "auth", Message: "missing or wrong bearer token"}, 0)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// SubmitResponse is the POST /v1/jobs (and GET /v1/jobs/{id}) body: the
// job's status plus, once done, the artifact inline.
type SubmitResponse struct {
	JobInfo
	Result json.RawMessage `json:"result,omitempty"`
}

func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if srv.draining.Load() {
		srv.writeFault(w, http.StatusServiceUnavailable, Fault{Kind: "draining", Message: "daemon is draining for shutdown"}, 5)
		return
	}
	// The envelope cap leaves slack for the JSON fields around an
	// at-the-limit graph upload.
	r.Body = http.MaxBytesReader(w, r.Body, srv.cfg.MaxGraphBytes+64<<10)
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			srv.writeFault(w, http.StatusRequestEntityTooLarge,
				Fault{Kind: "size", Message: "request body over the upload cap", Limit: srv.cfg.MaxGraphBytes}, 0)
			return
		}
		srv.writeFault(w, http.StatusBadRequest, Fault{Kind: "input", Message: "bad JSON: " + err.Error()}, 0)
		return
	}
	spec, fault := srv.buildSpec(req)
	if fault != nil {
		status := http.StatusBadRequest
		if fault.Kind == "size" {
			status = http.StatusRequestEntityTooLarge
		}
		srv.writeFault(w, status, *fault, 0)
		return
	}

	host, _, splitErr := net.SplitHostPort(r.RemoteAddr)
	if splitErr != nil {
		host = r.RemoteAddr
	}
	client := req.Client
	if client == "" {
		client = host
	}
	timeout := srv.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > srv.cfg.MaxTimeout {
		timeout = srv.cfg.MaxTimeout
	}

	// Shedding gets a chance to free room, then admission control runs
	// atomically with the acceptance inside store.accept — the caps and
	// the accept share one lock acquisition, so concurrent submissions
	// cannot collectively overshoot them.
	srv.shedUnderPressure()
	j, err := srv.store.accept(*spec, req.Priority, client, host, timeout, admitLimits{
		ClientInFlight: srv.cfg.ClientInFlight,
		HostInFlight:   srv.cfg.HostInFlight,
		QueueCap:       srv.cfg.QueueCap,
	})
	if err != nil {
		var ae *admitError
		if errors.As(err, &ae) {
			srv.writeFault(w, http.StatusTooManyRequests, ae.Fault, ae.RetryAfter)
			return
		}
		srv.writeFault(w, http.StatusInternalServerError, Fault{Kind: "internal", Message: err.Error()}, 0)
		return
	}
	srv.scope.Inc("serve.jobs.accepted")
	srv.scope.SetGauge("serve.queue_depth", float64(srv.store.depth()))
	resp := SubmitResponse{JobInfo: j.info()}
	status := http.StatusAccepted
	if j.Cached {
		srv.scope.Inc("serve.cache_hits")
		status = http.StatusOK
		if data, err := srv.store.readArtifact(j.Key); err == nil {
			resp.Result = data
		}
	} else {
		srv.wakeWorkers()
	}
	srv.writeJSON(w, status, resp)
}

// buildSpec validates a request into the canonical jobSpec, storing the
// uploaded graph content-addressed on the way. A non-nil Fault describes
// the rejection.
func (srv *Server) buildSpec(req JobRequest) (*jobSpec, *Fault) {
	if (req.Spec == "") == (len(req.Graph) == 0) {
		return nil, &Fault{Kind: "input", Message: "exactly one of spec or graph is required"}
	}
	if req.M < 1 {
		return nil, &Fault{Kind: "input", Message: "m (fast-memory size) must be ≥ 1"}
	}
	maxK := req.MaxK
	if maxK == 0 {
		maxK = defaultMaxK
	}
	if maxK < 1 || maxK > maxMaxK {
		return nil, &Fault{Kind: "input", Message: fmt.Sprintf("max_k must be in [1, %d]", maxMaxK)}
	}
	_, solverName, err := parseSolver(req.Solver)
	if err != nil {
		return nil, &Fault{Kind: "input", Message: err.Error()}
	}
	spec := &jobSpec{V: 1, M: req.M, MaxK: maxK, Solver: solverName}

	if req.Spec != "" {
		canonical, err := ParseSpec(req.Spec, srv.cfg.MaxVertices)
		if err != nil {
			return nil, &Fault{Kind: "input", Message: err.Error()}
		}
		spec.Spec = canonical
		return spec, nil
	}

	g, err := graph.ReadJSONLimit(bytes.NewReader(req.Graph), srv.cfg.MaxGraphBytes)
	if err != nil {
		var sizeErr *graph.SizeError
		if errors.As(err, &sizeErr) {
			return nil, &Fault{Kind: "size", Message: err.Error(), Limit: sizeErr.Limit}
		}
		return nil, &Fault{Kind: "input", Message: "graph: " + err.Error()}
	}
	if g.N() > srv.cfg.MaxVertices {
		return nil, &Fault{Kind: "input", Message: fmt.Sprintf("graph has %d vertices, over the daemon's %d cap", g.N(), srv.cfg.MaxVertices)}
	}
	// Re-encode to the canonical form so semantically identical uploads
	// (whitespace, field order) content-address identically.
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		return nil, &Fault{Kind: "internal", Message: "canonicalize graph: " + err.Error()}
	}
	sha, err := srv.store.storeGraph(buf.Bytes())
	if err != nil {
		return nil, &Fault{Kind: "internal", Message: err.Error()}
	}
	spec.GraphSHA = sha
	return spec, nil
}

func (srv *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	info, ok := srv.store.get(r.PathValue("id"))
	if !ok {
		srv.writeFault(w, http.StatusNotFound, Fault{Kind: "not_found", Message: "no such job"}, 0)
		return
	}
	resp := SubmitResponse{JobInfo: info}
	if info.Status == StateDone {
		if data, err := srv.store.readArtifact(info.Key); err == nil {
			resp.Result = data
		}
	}
	srv.writeJSON(w, http.StatusOK, resp)
}

func (srv *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	srv.writeJSON(w, http.StatusOK, struct {
		Jobs []JobInfo `json:"jobs"`
	}{Jobs: srv.store.list()})
}

func (srv *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	// The {key} segment arrives percent-decoded, so a crafted request can
	// put "../" in it; only the SHA-256 hex shape real keys have may reach
	// the filesystem (readArtifact checks too — this keeps the rejection a
	// clean 404 rather than relying on the error path).
	key := r.PathValue("key")
	if !isContentKey(key) {
		srv.writeFault(w, http.StatusNotFound, Fault{Kind: "not_found", Message: "no artifact for that key"}, 0)
		return
	}
	data, err := srv.store.readArtifact(key)
	if err != nil {
		srv.writeFault(w, http.StatusNotFound, Fault{Kind: "not_found", Message: "no artifact for that key"}, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (srv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (srv *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if srv.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (srv *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		srv.log("write response: %v", err)
	}
}

// writeFault sends the structured error envelope every non-2xx response
// uses; retryAfter > 0 adds the Retry-After hint (429/503 admission).
func (srv *Server) writeFault(w http.ResponseWriter, status int, f Fault, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	srv.writeJSON(w, status, struct {
		Error Fault `json:"error"`
	}{Error: f})
}
