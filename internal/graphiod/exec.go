package graphiod

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"graphio/internal/core"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
	"graphio/internal/obs"
)

// Artifact is the durable, content-addressed result of a bound job. It
// deliberately carries no wall times or host details: the same job must
// produce byte-identical artifacts across runs and restarts, or the cache
// replay guarantee (and the chaos gate that checks it) breaks. Timings
// live in the job status and the metrics, not here.
type Artifact struct {
	Key      string `json:"key"`
	Spec     string `json:"spec,omitempty"`
	GraphSHA string `json:"graph_sha,omitempty"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	MaxK     int    `json:"max_k"`
	Solver   string `json:"solver"`
	// Best is the strongest certificate across methods.
	Best MethodResult `json:"best"`
	// Methods lists every bound method attempted, in a fixed order.
	Methods []MethodResult `json:"methods"`
	// Degraded is set when any method failed outright or had to take the
	// escalation chain; the bound still stands, the provenance is noisier.
	Degraded bool `json:"degraded,omitempty"`
}

// MethodResult is one bound method's outcome inside an Artifact.
type MethodResult struct {
	Method     string   `json:"method"` // theorem4 | theorem5
	Bound      float64  `json:"bound"`
	BestK      int      `json:"best_k,omitempty"`
	SolverUsed string   `json:"solver_used,omitempty"`
	Degraded   bool     `json:"degraded,omitempty"`
	Fallbacks  []string `json:"fallbacks,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// resolveGraph materializes the job's graph: generator specs are rebuilt
// (they are pure functions of the spec), uploads are reread from the
// content store and hash-verified.
func (srv *Server) resolveGraph(spec jobSpec) (*graph.Graph, error) {
	if spec.Spec != "" {
		return BuildSpec(spec.Spec)
	}
	return srv.store.loadGraph(spec.GraphSHA)
}

// runMethod computes one spectral bound (theorem4 or theorem5) under ctx.
// Solver failures after the escalation chain come back inside the
// MethodResult, not as an error — only ctx expiry aborts the method.
func runMethod(ctx context.Context, g *graph.Graph, spec jobSpec, method string, wrap func(linalg.Operator) linalg.Operator) MethodResult {
	solver, _, err := parseSolver(spec.Solver)
	if err != nil {
		return MethodResult{Method: method, Error: err.Error()}
	}
	opt := core.Options{M: spec.M, MaxK: spec.MaxK, Solver: solver, WrapOperator: wrap}
	if method == "theorem5" {
		opt.Laplacian = laplacian.Original
	}
	res, err := core.SpectralBoundContext(ctx, g, opt)
	if err != nil {
		return MethodResult{Method: method, Error: err.Error()}
	}
	return MethodResult{
		Method:     method,
		Bound:      res.Bound,
		BestK:      res.BestK,
		SolverUsed: res.SolverUsed.String(),
		Degraded:   res.Degraded,
		Fallbacks:  res.Fallbacks,
	}
}

// runJob executes one dequeued job end to end: resolve the graph, run both
// spectral methods under the per-job deadline, commit the artifact, journal
// the terminal transition. baseCtx is the worker pool's lifetime; when it
// dies mid-job the job is deliberately left non-terminal so the WAL replays
// it after restart.
func (srv *Server) runJob(baseCtx context.Context, j *job) {
	jctx, cancel := context.WithTimeout(baseCtx, j.Timeout)
	defer cancel()
	scope := srv.scope.Child(j.ID)
	defer scope.Close()
	jctx = obs.WithScope(jctx, scope)

	start := obs.Now()
	g, err := srv.resolveGraph(j.Spec)
	if err != nil {
		srv.finishJob(baseCtx, j, KindInput, err.Error(), obs.Since(start))
		return
	}

	var wrap func(linalg.Operator) linalg.Operator
	if srv.cfg.WrapOperator != nil {
		id := j.ID
		wrap = func(op linalg.Operator) linalg.Operator { return srv.cfg.WrapOperator(id, op) }
	}

	art := Artifact{
		Key:  j.Key,
		Spec: j.Spec.Spec, GraphSHA: j.Spec.GraphSHA,
		N: g.N(), M: j.Spec.M, MaxK: j.Spec.MaxK, Solver: j.Spec.Solver,
	}
	// Fixed method order keeps the artifact bytes stable run to run.
	// truncated marks a method the deadline (or shutdown) actually cut
	// short — jctx expiring *after* a method returned cleanly must not
	// discard that method's finished work, so expiry alone is not enough.
	truncated := false
	for _, method := range []string{"theorem4", "theorem5"} {
		mr := runMethod(jctx, g, j.Spec, method, wrap)
		if jctx.Err() != nil && mr.Error != "" {
			// The clock ran out mid-method; its result certifies nothing
			// and partial artifacts are never committed.
			truncated = true
			break
		}
		art.Methods = append(art.Methods, mr)
		if mr.Error != "" || mr.Degraded {
			art.Degraded = true
		}
		if mr.Error == "" && (art.Best.Method == "" || mr.Bound > art.Best.Bound) {
			art.Best = mr
		}
	}
	wall := obs.Since(start)

	if truncated {
		if baseCtx.Err() != nil {
			// Shutdown took the worker down mid-job. No terminal WAL record:
			// the accept record re-queues this job on the next start.
			scope.Inc("serve.jobs.interrupted")
			return
		}
		srv.finishJob(baseCtx, j, KindDeadline,
			fmt.Sprintf("job exceeded its %v deadline (solver stalled or graph too large for the budget)", j.Timeout), wall)
		return
	}
	if art.Best.Method == "" {
		// Every method failed even after the escalation chain; collect the
		// per-method errors so the client sees why nothing certified.
		msgs := make([]string, 0, len(art.Methods))
		for _, m := range art.Methods {
			msgs = append(msgs, m.Method+": "+m.Error)
		}
		srv.finishJob(baseCtx, j, KindSolver, strings.Join(msgs, "; "), wall)
		return
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		srv.finishJob(baseCtx, j, KindInternal, "encode artifact: "+err.Error(), wall)
		return
	}
	data = append(data, '\n')
	sha, err := srv.store.commitArtifact(j.Key, data)
	if err != nil {
		srv.finishJob(baseCtx, j, KindInternal, err.Error(), wall)
		return
	}
	if err := srv.store.complete(j, sha, wall); err != nil {
		srv.log("job %s: journal done record: %v", j.ID, err)
		return
	}
	srv.scope.Observe("serve.job_wall", wall)
	srv.scope.Inc("serve.jobs.done")
	srv.log("job %s done: %s bound=%.4f in %v", j.ID, art.Best.Method, art.Best.Bound, wall.Round(time.Millisecond))
}

// finishJob journals a typed failure and records it in the metrics.
func (srv *Server) finishJob(baseCtx context.Context, j *job, kind, msg string, wall time.Duration) {
	if baseCtx.Err() != nil && kind != KindDeadline {
		// Don't journal failures caused by our own shutdown.
		return
	}
	if err := srv.store.fail(j, kind, msg, wall); err != nil {
		srv.log("job %s: journal fail record: %v", j.ID, err)
		return
	}
	srv.scope.Inc("serve.jobs.failed")
	srv.scope.Inc("serve.fail." + kind)
	srv.log("job %s failed (%s): %s", j.ID, kind, msg)
}
