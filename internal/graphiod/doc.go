// Package graphiod is the bound-as-a-service layer: a crash-safe HTTP/JSON
// daemon that accepts computation graphs (uploads or generator specs like
// "fft:10"), enqueues spectral lower-bound jobs, and serves results
// asynchronously — engineered for failure first.
//
// Durability. Every job is journaled to a WAL (persist.Journal,
// append-before-effect) before it is admitted, and every terminal
// transition (done, failed, shed) is journaled before it takes effect, so
// a daemon SIGKILLed at any instant restarts into a state it had durably
// announced: jobs accepted but unresolved are re-queued and finish after
// the restart. Results are content-addressed artifacts keyed by a stable
// hash over the result-affecting job fields — graph content, M, MaxK,
// solver — in the style of experiments.Config.Hash, committed atomically
// and verified by SHA-256 on replay, so a re-submitted identical request
// is served from the cache with bytes identical to the pre-crash run.
//
// Degradation. Jobs run under per-job deadlines on a bounded worker pool;
// a stalled eigensolve hits its deadline and resolves as a typed
// "deadline" failure while every other job keeps completing. Solver
// failures ride the core escalation chain and come back as typed Degraded
// results, not errors; a job succeeds if at least one bound method
// produced a certificate. Admission control keeps the daemon alive under
// load: a full queue answers 429 with Retry-After, each client has an
// in-flight cap (backstopped by a per-address cap, since the client name
// is request-supplied), the caps are enforced atomically with acceptance,
// and memory pressure sheds the lowest-priority queued jobs, one per
// check (typed "shed" outcome — the client may resubmit).
//
// Bounded state. Result keys are validated against the SHA-256 hex shape
// before they ever form a filesystem path, terminal job rows beyond a
// retention cap are pruned (their cached artifacts survive), and the WAL
// periodically compacts to live state — result-cache index, retained
// jobs, ID counter — so replay time and memory track live work, not the
// daemon's lifetime job count.
package graphiod
