package linalg

import (
	"context"
	"errors"
	"math"

	"graphio/internal/obs"
)

// TridiagEigBisect computes eigenvalues lo..hi (0-based, inclusive,
// ascending order) of the symmetric tridiagonal matrix with diagonal diag
// and subdiagonal sub, by bisection on Sturm sequences. It is an
// implementation independent of the QL iteration in TridiagEig and serves
// as a cross-check of that solver (and, through it, of the Householder
// reduction); it is also the cheaper choice when only a few interior
// eigenvalues are needed.
//
// The Sturm count of a shift σ — the number of negative values in the
// sequence d_i = (diag_i − σ) − sub_{i-1}²/d_{i-1} — equals the number of
// eigenvalues below σ; bisection on that count isolates each eigenvalue to
// machine precision.
func TridiagEigBisect(diag, sub []float64, lo, hi int) ([]float64, error) {
	return TridiagEigBisectContext(context.Background(), diag, sub, lo, hi)
}

// TridiagEigBisectContext is TridiagEigBisect with its per-eigenvalue
// probe events attributed to ctx's telemetry scope.
func TridiagEigBisectContext(ctx context.Context, diag, sub []float64, lo, hi int) ([]float64, error) {
	n := len(diag)
	if len(sub) != n-1 && !(n == 0 && len(sub) == 0) {
		return nil, errors.New("linalg: TridiagEigBisect: len(sub) must be len(diag)-1")
	}
	if lo < 0 || hi >= n || lo > hi {
		return nil, errors.New("linalg: TridiagEigBisect: index range out of bounds")
	}
	// A NaN/Inf entry would silently corrupt the Sturm counts (NaN
	// comparisons are all false), so reject contaminated input up front.
	if err := CheckFinite("TridiagEigBisect diag input", diag); err != nil {
		return nil, err
	}
	if err := CheckFinite("TridiagEigBisect sub input", sub); err != nil {
		return nil, err
	}

	// Gershgorin interval enclosing the whole spectrum.
	gLo, gHi := math.Inf(1), math.Inf(-1)
	//lint:ignore ctx-loop O(n) interval scan; ctx exists for probe attribution, the bisection below checks nothing longer-running either
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(sub[i-1])
		}
		if i < n-1 {
			r += math.Abs(sub[i])
		}
		if diag[i]-r < gLo {
			gLo = diag[i] - r
		}
		if diag[i]+r > gHi {
			gHi = diag[i] + r
		}
	}
	scale := math.Max(math.Abs(gLo), math.Abs(gHi))
	if EqZero(scale) {
		scale = 1
	}
	// Guard the interval so strict/loose comparisons at the endpoints
	// cannot lose an eigenvalue.
	gLo -= 1e-12*scale + 1e-300
	gHi += 1e-12*scale + 1e-300
	// Entries near ±MaxFloat64 can overflow the interval arithmetic (or the
	// guard above); the bisection only needs finite endpoints, so clamp to
	// the representable range.
	if math.IsInf(gLo, 0) {
		gLo = -math.MaxFloat64
	}
	if math.IsInf(gHi, 0) {
		gHi = math.MaxFloat64
	}

	// sturmCount returns the number of eigenvalues strictly below sigma.
	sub2 := make([]float64, n)
	for i := 1; i < n; i++ {
		sub2[i] = sub[i-1] * sub[i-1]
	}
	const tiny = 1e-300
	sturmCount := func(sigma float64) int {
		count := 0
		d := 1.0 // sub2[0] == 0, so the i=0 step reduces to diag[0]−sigma
		//lint:ignore ctx-loop O(n) Sturm count inside the bisection hot path; ctx exists for probe attribution only
		for i := 0; i < n; i++ {
			d = diag[i] - sigma - sub2[i]/d
			if EqZero(d) {
				d = -tiny
			}
			if d < 0 {
				count++
			}
		}
		return count
	}

	out := make([]float64, 0, hi-lo+1)
	for idx := lo; idx <= hi; idx++ {
		a, b := gLo, gHi
		iters := 0
		// Invariant: count(a) ≤ idx < count(b).
		for iter := 0; iter < 200; iter++ {
			iters = iter + 1
			mid := 0.5*a + 0.5*b // overflow-safe: a+b can exceed MaxFloat64
			//lint:ignore float-eq bisection terminates when the midpoint collapses onto an endpoint — the comparison is exact by construction
			if mid == a || mid == b {
				break
			}
			if sturmCount(mid) <= idx {
				a = mid
			} else {
				b = mid
			}
			if b-a <= 1e-14*scale {
				break
			}
		}
		if obs.EventsEnabled() {
			obs.Probe("linalg.bisect").IterCtx(ctx, int64(idx),
				obs.F("width", b-a),
				obs.FI("iters", int64(iters)),
				obs.F("value", 0.5*a+0.5*b))
		}
		out = append(out, 0.5*a+0.5*b)
	}
	return out, nil
}

// SymEigBisect computes eigenvalues lo..hi of a dense symmetric matrix by
// Householder tridiagonalization followed by Sturm bisection. Cross-check
// companion to SymEig.
func SymEigBisect(a *Dense, lo, hi int) ([]float64, error) {
	n := a.N
	if n == 0 {
		return nil, nil
	}
	work := a.Clone()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = work.Row(i)
	}
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(rows, d, e, false)
	return TridiagEigBisect(d, e[1:], lo, hi)
}
