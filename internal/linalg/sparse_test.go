package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func pathCSR(n int) *CSR {
	var tr []Triplet
	for i := 0; i < n-1; i++ {
		tr = append(tr,
			Triplet{i, i, 1}, Triplet{i + 1, i + 1, 1},
			Triplet{i, i + 1, -1}, Triplet{i + 1, i, -1})
	}
	m, err := NewCSRFromTriplets(n, tr)
	if err != nil {
		panic(err)
	}
	return m
}

func TestCSRFromTripletsMergesDuplicates(t *testing.T) {
	m, err := NewCSRFromTriplets(2, []Triplet{{0, 0, 1}, {0, 0, 2}, {1, 0, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ=%d want 2", m.NNZ())
	}
	if m.At(0, 0) != 3 || m.At(1, 0) != -1 || m.At(0, 1) != 0 {
		t.Errorf("entries: %g %g %g", m.At(0, 0), m.At(1, 0), m.At(0, 1))
	}
}

func TestCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSRFromTriplets(2, []Triplet{{0, 2, 1}}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := NewCSRFromTriplets(2, []Triplet{{-1, 0, 1}}); err == nil {
		t.Error("negative row accepted")
	}
}

func TestCSRMatVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		var tr []Triplet
		for k := 0; k < rng.Intn(4*n); k++ {
			tr = append(tr, Triplet{rng.Intn(n), rng.Intn(n), rng.NormFloat64()})
		}
		m, err := NewCSRFromTriplets(n, tr)
		if err != nil {
			t.Fatal(err)
		}
		d := m.ToDense()
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		want := make([]float64, n)
		m.MatVec(got, src)
		d.MatVec(want, src)
		if dd := maxAbsDiff(got, want); dd > 1e-12 {
			t.Errorf("trial %d: sparse vs dense matvec differ by %g", trial, dd)
		}
	}
}

func TestGershgorinBoundsSpectrum(t *testing.T) {
	for _, n := range []int{2, 5, 20} {
		m := pathCSR(n)
		c := m.GershgorinUpper()
		vals, err := SymEigValues(m.ToDense())
		if err != nil {
			t.Fatal(err)
		}
		if vals[n-1] > c+1e-12 {
			t.Errorf("n=%d: λmax=%g exceeds Gershgorin bound %g", n, vals[n-1], c)
		}
	}
}

func TestShiftedNeg(t *testing.T) {
	m := pathCSR(3)
	s := &ShiftedNeg{A: m, C: 5}
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	s.MatVec(dst, src)
	want := make([]float64, 3)
	m.MatVec(want, src)
	for i := range want {
		want[i] = 5*src[i] - want[i]
	}
	if maxAbsDiff(dst, want) > 1e-14 {
		t.Errorf("ShiftedNeg: got %v want %v", dst, want)
	}
}

func TestLanczosPathSmallest(t *testing.T) {
	for _, n := range []int{5, 40, 150} {
		m := pathCSR(n)
		h := 6
		if h > n {
			h = n
		}
		got, err := SmallestEigsPSD(m, m.GershgorinUpper(), h, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := pathEigenvalues(n)[:h]
		if d := maxAbsDiff(got, want); d > 1e-7 {
			t.Errorf("n=%d: Lanczos error %g: got %v want %v", n, d, got, want)
		}
	}
}

func TestLanczosRecoversMultiplicity(t *testing.T) {
	// K_8: eigenvalues 0, then 8 with multiplicity 7. Plain Lanczos finds
	// one copy; deflation must recover all requested copies.
	n := 8
	var tr []Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, Triplet{i, i, float64(n - 1)})
		for j := 0; j < n; j++ {
			if i != j {
				tr = append(tr, Triplet{i, j, -1})
			}
		}
	}
	m, err := NewCSRFromTriplets(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SmallestEigsPSD(m, m.GershgorinUpper(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 8, 8, 8, 8}
	if d := maxAbsDiff(got, want); d > 1e-7 {
		t.Errorf("complete-graph eigenvalues: got %v, want %v", got, want)
	}
}

func TestLanczosDisconnectedZeros(t *testing.T) {
	// Two disjoint paths: the Laplacian has a two-dimensional kernel.
	n := 10
	var tr []Triplet
	addEdge := func(u, v int) {
		tr = append(tr, Triplet{u, u, 1}, Triplet{v, v, 1}, Triplet{u, v, -1}, Triplet{v, u, -1})
	}
	for i := 0; i < 4; i++ {
		addEdge(i, i+1)
	}
	for i := 5; i < 9; i++ {
		addEdge(i, i+1)
	}
	m, err := NewCSRFromTriplets(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SmallestEigsPSD(m, m.GershgorinUpper(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]) > 1e-8 || math.Abs(got[1]) > 1e-8 {
		t.Errorf("disconnected graph should have two zero eigenvalues, got %v", got)
	}
	if got[2] < 1e-3 {
		t.Errorf("third eigenvalue should be positive, got %v", got)
	}
}

func TestLanczosFullSpectrumSmallMatrix(t *testing.T) {
	// h = n: Lanczos must return the entire spectrum.
	n := 12
	m := pathCSR(n)
	got, err := SmallestEigsPSD(m, m.GershgorinUpper(), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, pathEigenvalues(n)); d > 1e-7 {
		t.Errorf("full spectrum error %g", d)
	}
}

func TestLanczosHLargerThanN(t *testing.T) {
	m := pathCSR(4)
	got, err := SmallestEigsPSD(m, m.GershgorinUpper(), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("len=%d want 4", len(got))
	}
}

func TestLanczosMatchesDenseOnRandomLaplacians(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(60)
		var tr []Triplet
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.15 {
					w := 0.25 + rng.Float64()
					tr = append(tr, Triplet{u, u, w}, Triplet{v, v, w},
						Triplet{u, v, -w}, Triplet{v, u, -w})
				}
			}
		}
		m, err := NewCSRFromTriplets(n, tr)
		if err != nil {
			t.Fatal(err)
		}
		h := 8
		want, err := SymEigValues(m.ToDense())
		if err != nil {
			t.Fatal(err)
		}
		got, err := SmallestEigsPSD(m, m.GershgorinUpper(), h, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := maxAbsDiff(got, want[:h]); d > 1e-6 {
			t.Errorf("trial %d (n=%d): Lanczos vs dense error %g\n got %v\nwant %v",
				trial, n, d, got, want[:h])
		}
	}
}

func TestPowerMatchesDense(t *testing.T) {
	n := 30
	m := pathCSR(n)
	h := 4
	got, err := PowerSmallestPSD(m, m.GershgorinUpper(), h, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := pathEigenvalues(n)[:h]
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Errorf("power iteration error %g: got %v want %v", d, got, want)
	}
}

func TestPowerRecoversMultiplicity(t *testing.T) {
	// Star K_{1,5}: Laplacian eigenvalues 0, 1 (multiplicity 4), 6.
	n := 6
	var tr []Triplet
	for leaf := 1; leaf < n; leaf++ {
		tr = append(tr, Triplet{0, 0, 1}, Triplet{leaf, leaf, 1},
			Triplet{0, leaf, -1}, Triplet{leaf, 0, -1})
	}
	m, err := NewCSRFromTriplets(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PowerSmallestPSD(m, m.GershgorinUpper(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 1, 1, 1}
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Errorf("star eigenvalues: got %v want %v", got, want)
	}
}

func TestSolverErrorsOnBadH(t *testing.T) {
	m := pathCSR(3)
	if _, err := SmallestEigsPSD(m, 4, 0, nil); err == nil {
		t.Error("Lanczos accepted h=0")
	}
	if _, err := PowerSmallestPSD(m, 4, -1, nil); err == nil {
		t.Error("power accepted h=-1")
	}
}
