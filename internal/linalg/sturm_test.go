package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestTridiagEigBisectMatchesQL(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		diag := make([]float64, n)
		sub := make([]float64, n-1)
		for i := range diag {
			diag[i] = rng.NormFloat64() * 3
		}
		for i := range sub {
			sub[i] = rng.NormFloat64()
		}
		want, _, err := TridiagEig(diag, sub, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TridiagEigBisect(diag, sub, 0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Errorf("trial %d (n=%d): bisection vs QL differ by %g", trial, n, d)
		}
	}
}

func TestTridiagEigBisectSubrange(t *testing.T) {
	n := 30
	diag := make([]float64, n)
	sub := make([]float64, n-1)
	for i := range diag {
		diag[i] = 2
	}
	for i := range sub {
		sub[i] = -1
	}
	// Path-like Toeplitz: eigenvalues 2 − 2cos(πj/(n+1)), j=1..n.
	all, err := TridiagEigBisect(diag, sub, 0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= n; j++ {
		want := 2 - 2*math.Cos(math.Pi*float64(j)/float64(n+1))
		if math.Abs(all[j-1]-want) > 1e-10 {
			t.Fatalf("eigenvalue %d: %g want %g", j, all[j-1], want)
		}
	}
	// Interior slice only.
	mid, err := TridiagEigBisect(diag, sub, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range mid {
		if math.Abs(v-all[10+i]) > 1e-10 {
			t.Errorf("subrange mismatch at %d: %g vs %g", i, v, all[10+i])
		}
	}
}

func TestTridiagEigBisectRepeatedEigenvalues(t *testing.T) {
	// Diagonal matrix with repeats: bisection must count multiplicity.
	diag := []float64{1, 3, 3, 3, 7}
	sub := []float64{0, 0, 0, 0}
	got, err := TridiagEigBisect(diag, sub, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 3, 3, 7}
	if d := maxAbsDiff(got, want); d > 1e-10 {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTridiagEigBisectValidation(t *testing.T) {
	if _, err := TridiagEigBisect([]float64{1, 2}, []float64{}, 0, 1); err == nil {
		t.Error("bad sub length accepted")
	}
	if _, err := TridiagEigBisect([]float64{1, 2}, []float64{0}, 1, 0); err == nil {
		t.Error("lo > hi accepted")
	}
	if _, err := TridiagEigBisect([]float64{1, 2}, []float64{0}, 0, 5); err == nil {
		t.Error("hi out of range accepted")
	}
}

func TestSymEigBisectMatchesSymEig(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(25)
		a := randomSymmetric(rng, n)
		want, _, err := SymEig(a, false)
		if err != nil {
			t.Fatal(err)
		}
		h := 1 + rng.Intn(n)
		got, err := SymEigBisect(a, 0, h-1)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want[:h]); d > 1e-8 {
			t.Errorf("trial %d: bisect differs from QL by %g", trial, d)
		}
	}
	if out, err := SymEigBisect(NewDense(0), 0, 0); err != nil || out != nil {
		t.Error("empty matrix should return nil, nil")
	}
}
