package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestChebPathSmallest(t *testing.T) {
	for _, n := range []int{5, 40, 150} {
		m := pathCSR(n)
		h := 6
		if h > n {
			h = n
		}
		got, err := ChebFilteredSmallest(m, m.GershgorinUpper(), h, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := pathEigenvalues(n)[:h]
		if d := maxAbsDiff(got, want); d > 1e-7 {
			t.Errorf("n=%d: error %g: got %v want %v", n, d, got, want)
		}
	}
}

func TestChebRecoversMultiplicity(t *testing.T) {
	// Complete graph K_8: eigenvalue 8 with multiplicity 7. The block
	// method must report every copy.
	n := 8
	var tr []Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, Triplet{i, i, float64(n - 1)})
		for j := 0; j < n; j++ {
			if i != j {
				tr = append(tr, Triplet{i, j, -1})
			}
		}
	}
	m, err := NewCSRFromTriplets(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ChebFilteredSmallest(m, m.GershgorinUpper(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 8, 8, 8, 8}
	if d := maxAbsDiff(got, want); d > 1e-7 {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestChebDisconnectedZeros(t *testing.T) {
	// Two disjoint paths: two exact zero eigenvalues.
	n := 10
	var tr []Triplet
	addEdge := func(u, v int) {
		tr = append(tr, Triplet{u, u, 1}, Triplet{v, v, 1}, Triplet{u, v, -1}, Triplet{v, u, -1})
	}
	for i := 0; i < 4; i++ {
		addEdge(i, i+1)
	}
	for i := 5; i < 9; i++ {
		addEdge(i, i+1)
	}
	m, err := NewCSRFromTriplets(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ChebFilteredSmallest(m, m.GershgorinUpper(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]) > 1e-8 || math.Abs(got[1]) > 1e-8 {
		t.Errorf("want two zero eigenvalues, got %v", got)
	}
	if got[2] < 1e-3 {
		t.Errorf("third eigenvalue should be positive: %v", got)
	}
}

func TestChebMatchesDenseOnRandomLaplacians(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(60)
		var tr []Triplet
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.15 {
					w := 0.25 + rng.Float64()
					tr = append(tr, Triplet{u, u, w}, Triplet{v, v, w},
						Triplet{u, v, -w}, Triplet{v, u, -w})
				}
			}
		}
		m, err := NewCSRFromTriplets(n, tr)
		if err != nil {
			t.Fatal(err)
		}
		h := 8
		want, err := SymEigValues(m.ToDense())
		if err != nil {
			t.Fatal(err)
		}
		got, err := ChebFilteredSmallest(m, m.GershgorinUpper(), h, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := maxAbsDiff(got, want[:h]); d > 1e-6 {
			t.Errorf("trial %d (n=%d): error %g\n got %v\nwant %v", trial, n, d, got, want[:h])
		}
	}
}

func TestChebFullSpectrumAndOversizedH(t *testing.T) {
	m := pathCSR(12)
	got, err := ChebFilteredSmallest(m, m.GershgorinUpper(), 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, pathEigenvalues(12)); d > 1e-7 {
		t.Errorf("full spectrum error %g", d)
	}
	got, err = ChebFilteredSmallest(m, m.GershgorinUpper(), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("h > n should clamp: len=%d", len(got))
	}
}

func TestChebValidation(t *testing.T) {
	m := pathCSR(4)
	if _, err := ChebFilteredSmallest(m, 4, 0, nil); err == nil {
		t.Error("h=0 accepted")
	}
	if out, err := ChebFilteredSmallest(emptyOperator{}, 1, 3, nil); err != nil || out != nil {
		t.Error("empty operator should return nil, nil")
	}
}

type emptyOperator struct{}

func (emptyOperator) Dim() int              { return 0 }
func (emptyOperator) MatVec(_, _ []float64) {}

func TestChebSoundPaddingOnSweepExhaustion(t *testing.T) {
	// Force exhaustion with MaxIter=1: the result must be a sound
	// underestimate (each value ≤ the true one) or an explicit error.
	m := pathCSR(60)
	want := pathEigenvalues(60)
	got, err := ChebFilteredSmallest(m, m.GershgorinUpper(), 10, &ChebOptions{MaxIter: 1, Degree: 4})
	if err != nil {
		return // explicit failure is acceptable
	}
	for i := range got {
		if got[i] > want[i]+1e-6 {
			t.Fatalf("padded value %d overestimates: %g > %g", i, got[i], want[i])
		}
	}
}

func TestChebAgreesWithLanczosMediumGraph(t *testing.T) {
	// A 2-D torus-ish Laplacian: moderate size, no closed form needed —
	// the two iterative solvers must agree with each other.
	side := 18
	n := side * side
	var tr []Triplet
	addEdge := func(u, v int) {
		tr = append(tr, Triplet{u, u, 1}, Triplet{v, v, 1}, Triplet{u, v, -1}, Triplet{v, u, -1})
	}
	id := func(i, j int) int { return ((i+side)%side)*side + (j+side)%side }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			addEdge(id(i, j), id(i+1, j))
			addEdge(id(i, j), id(i, j+1))
		}
	}
	m, err := NewCSRFromTriplets(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	h := 20
	c := m.GershgorinUpper()
	a, err := ChebFilteredSmallest(m, c, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SmallestEigsPSD(m, c, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(a, b); d > 1e-6 {
		t.Errorf("Chebyshev vs Lanczos differ by %g\n%v\n%v", d, a, b)
	}
}
