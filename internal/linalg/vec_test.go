package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestDotNorm(t *testing.T) {
	x := []float64{3, 4}
	if Dot(x, x) != 25 {
		t.Errorf("Dot = %g", Dot(x, x))
	}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %g", Norm2(x))
	}
	if Norm2(nil) != 0 {
		t.Errorf("Norm2(nil) = %g", Norm2(nil))
	}
}

func TestNorm2AvoidsOverflow(t *testing.T) {
	x := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(x); math.Abs(got-want)/want > 1e-14 {
		t.Errorf("Norm2 overflow handling: got %g want %g", got, want)
	}
}

func TestAxpyScaleNormalize(t *testing.T) {
	y := []float64{1, 2}
	Axpy(2, []float64{10, 20}, y)
	if y[0] != 21 || y[1] != 42 {
		t.Errorf("Axpy: %v", y)
	}
	Scale(0.5, y)
	if y[0] != 10.5 || y[1] != 21 {
		t.Errorf("Scale: %v", y)
	}
	n := Normalize(y)
	if math.Abs(Norm2(y)-1) > 1e-14 || n == 0 {
		t.Errorf("Normalize: %v (norm %g)", y, n)
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Error("Normalize of zero vector should return 0")
	}
}

func TestOrthogonalizeAgainst(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 40
	// Build an orthonormal basis of 5 random vectors via Gram-Schmidt.
	var basis [][]float64
	for len(basis) < 5 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		OrthogonalizeAgainst(v, basis)
		if Normalize(v) > 1e-8 {
			basis = append(basis, v)
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	OrthogonalizeAgainst(x, basis)
	for i, b := range basis {
		if d := math.Abs(Dot(x, b)); d > 1e-12 {
			t.Errorf("residual projection on basis[%d]: %g", i, d)
		}
	}
}

func TestKthSmallest(t *testing.T) {
	x := []float64{5, 1, 4, 1, 3}
	for k, want := range map[int]float64{1: 1, 2: 1, 3: 3, 5: 5} {
		if got := kthSmallest(x, k); got != want {
			t.Errorf("kthSmallest(%d) = %g want %g", k, got, want)
		}
	}
	if x[0] != 5 {
		t.Error("kthSmallest mutated its input")
	}
}
