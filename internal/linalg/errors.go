package linalg

import (
	"context"
	"fmt"
	"math"
)

// NotConvergedError reports an eigensolve that ran out of its iteration
// budget. Converged carries whatever ascending prefix of the requested
// spectrum did lock before the budget expired — diagnostics for callers
// that degrade gracefully (core escalates to another solver; the prefix
// itself is NOT guaranteed to be the true smallest eigenvalues, so it must
// not be fed back into a lower bound).
type NotConvergedError struct {
	// Solver names the method that gave up ("lanczos", "chebyshev", "power").
	Solver string
	// Requested and Converged count the wanted and locked eigenpairs.
	Requested, Converged int
	// Partial holds the locked eigenvalues, ascending (may be empty).
	Partial []float64
	// Reason is a one-line diagnosis of why the solve stalled.
	Reason string
}

func (e *NotConvergedError) Error() string {
	return fmt.Sprintf("linalg: %s did not converge: locked %d of %d requested eigenpairs (%s)",
		e.Solver, e.Converged, e.Requested, e.Reason)
}

// NonFiniteError reports NaN or ±Inf contamination detected at a phase
// boundary: a poisoned operator, an overflowed recurrence, or corrupted
// input. It turns silent numerical corruption into a typed, matchable
// failure instead of letting garbage propagate into a "bound".
type NonFiniteError struct {
	// Where locates the check that fired (e.g. "lanczos step", "input diag").
	Where string
}

func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("linalg: non-finite value detected at %s", e.Where)
}

// CheckFinite returns a *NonFiniteError located at where if any element of
// x is NaN or ±Inf, and nil otherwise.
func CheckFinite(where string, x []float64) error {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &NonFiniteError{Where: where}
		}
	}
	return nil
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// ctxErr wraps a context cancellation or deadline error with the solver
// name; it returns nil while ctx is live. Solvers call it at iteration and
// sweep boundaries, where abandoning the run is safe.
func ctxErr(ctx context.Context, solver string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("linalg: %s interrupted: %w", solver, err)
	}
	return nil
}
