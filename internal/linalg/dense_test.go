package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// pathLaplacian returns the Laplacian of the unweighted path on n vertices,
// whose eigenvalues are 2 − 2cos(πj/n), j = 0..n−1.
func pathLaplacian(n int) *Dense {
	m := NewDense(n)
	for i := 0; i < n-1; i++ {
		m.Add(i, i, 1)
		m.Add(i+1, i+1, 1)
		m.Add(i, i+1, -1)
		m.Add(i+1, i, -1)
	}
	return m
}

func pathEigenvalues(n int) []float64 {
	vals := make([]float64, n)
	for j := 0; j < n; j++ {
		vals[j] = 2 - 2*math.Cos(math.Pi*float64(j)/float64(n))
	}
	insertionSort(vals)
	return vals
}

// cycleLaplacian returns the Laplacian of the n-cycle, eigenvalues
// 2 − 2cos(2πj/n).
func cycleLaplacian(n int) *Dense {
	m := NewDense(n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		m.Add(i, i, 1)
		m.Add(j, j, 1)
		m.Add(i, j, -1)
		m.Add(j, i, -1)
	}
	return m
}

func cycleEigenvalues(n int) []float64 {
	vals := make([]float64, n)
	for j := 0; j < n; j++ {
		vals[j] = 2 - 2*math.Cos(2*math.Pi*float64(j)/float64(n))
	}
	insertionSort(vals)
	return vals
}

// completeLaplacian: K_n has eigenvalues {0, n (multiplicity n−1)}.
func completeLaplacian(n int) *Dense {
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.Set(i, j, float64(n-1))
			} else {
				m.Set(i, j, -1)
			}
		}
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestSymEigPath(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 64} {
		vals, _, err := SymEig(pathLaplacian(n), false)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxAbsDiff(vals, pathEigenvalues(n)); d > 1e-10 {
			t.Errorf("n=%d: max eigenvalue error %g", n, d)
		}
	}
}

func TestSymEigCycle(t *testing.T) {
	for _, n := range []int{3, 4, 10, 33} {
		vals, _, err := SymEig(cycleLaplacian(n), false)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxAbsDiff(vals, cycleEigenvalues(n)); d > 1e-10 {
			t.Errorf("n=%d: max eigenvalue error %g", n, d)
		}
	}
}

func TestSymEigComplete(t *testing.T) {
	n := 12
	vals, _, err := SymEig(completeLaplacian(n), false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]) > 1e-10 {
		t.Errorf("λ0 = %g, want 0", vals[0])
	}
	for i := 1; i < n; i++ {
		if math.Abs(vals[i]-float64(n)) > 1e-10 {
			t.Errorf("λ%d = %g, want %d", i, vals[i], n)
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	m := NewDense(4)
	want := []float64{-3, 0.5, 2, 7}
	perm := []int{2, 0, 3, 1}
	for i, p := range perm {
		m.Set(i, i, want[p])
	}
	vals, vecs, err := SymEig(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(vals, want); d > 1e-12 {
		t.Errorf("diagonal eigenvalues off by %g", d)
	}
	if vecs == nil {
		t.Fatal("wantV returned nil vectors")
	}
}

func TestSymEig2x2Exact(t *testing.T) {
	// [[2, 1], [1, 2]] has eigenvalues 1 and 3.
	m := NewDense(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	vals, _, err := SymEig(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(vals, []float64{1, 3}); d > 1e-12 {
		t.Errorf("2x2 eigenvalues %v", vals)
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Dense {
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestSymEigResidualsAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(40)
		a := randomSymmetric(rng, n)
		vals, vecs, err := SymEig(a, true)
		if err != nil {
			t.Fatal(err)
		}
		// Residual ||A v − λ v|| small for each eigenpair.
		av := make([]float64, n)
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, i)
			}
			a.MatVec(av, v)
			Axpy(-vals[i], v, av)
			if r := Norm2(av); r > 1e-9*float64(n) {
				t.Errorf("trial %d: residual %g for eigenpair %d", trial, r, i)
			}
		}
		// Columns orthonormal.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var dot float64
				for r := 0; r < n; r++ {
					dot += vecs.At(r, i) * vecs.At(r, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Errorf("trial %d: <v%d,v%d> = %g", trial, i, j, dot)
				}
			}
		}
	}
}

func TestSymEigTracePreserved(t *testing.T) {
	// Property: sum of eigenvalues equals the trace.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		a := randomSymmetric(rng, n)
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		vals, _, err := SymEig(a, false)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-trace) <= 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSymEigEmpty(t *testing.T) {
	vals, vecs, err := SymEig(NewDense(0), true)
	if err != nil || vals != nil || vecs != nil {
		t.Errorf("empty matrix: %v %v %v", vals, vecs, err)
	}
}

func TestTridiagEigMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(25)
		diag := make([]float64, n)
		sub := make([]float64, n-1)
		m := NewDense(n)
		for i := range diag {
			diag[i] = rng.NormFloat64()
			m.Set(i, i, diag[i])
		}
		for i := range sub {
			sub[i] = rng.NormFloat64()
			m.Set(i, i+1, sub[i])
			m.Set(i+1, i, sub[i])
		}
		want, _, err := SymEig(m, false)
		if err != nil {
			t.Fatal(err)
		}
		got, vecs, err := TridiagEig(diag, sub, true)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("trial %d: tridiag vs dense differ by %g", trial, d)
		}
		// Eigenvector residual check against the tridiagonal matrix.
		av := make([]float64, n)
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, i)
			}
			m.MatVec(av, v)
			Axpy(-got[i], v, av)
			if r := Norm2(av); r > 1e-9*float64(n) {
				t.Errorf("trial %d: tridiag eigenpair %d residual %g", trial, i, r)
			}
		}
	}
}

func TestTridiagEigBadInput(t *testing.T) {
	if _, _, err := TridiagEig([]float64{1, 2}, []float64{}, false); err == nil {
		t.Error("mismatched subdiagonal accepted")
	}
}

func TestDenseIsSymmetric(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 1, 1)
	if m.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	m.Set(1, 0, 1)
	if !m.IsSymmetric(1e-12) {
		t.Error("symmetric matrix reported asymmetric")
	}
}
