package linalg_test

// Error-path coverage for the iterative eigensolvers, driven through
// internal/faultinject: forced non-convergence, NaN poisoning, and
// cancellation/deadline handling. The happy paths live in the in-package
// solver tests; these tests are external (package linalg_test) because
// faultinject imports linalg.

import (
	"context"
	"errors"
	"testing"
	"time"

	"graphio/internal/faultinject"
	"graphio/internal/linalg"
)

// pathLaplacian builds the n-vertex path-graph Laplacian, a PSD matrix with
// a well-understood spectrum that every solver handles easily when healthy.
func pathLaplacian(t *testing.T, n int) *linalg.CSR {
	t.Helper()
	var tr []linalg.Triplet
	for i := 0; i < n-1; i++ {
		tr = append(tr,
			linalg.Triplet{Row: i, Col: i, Val: 1},
			linalg.Triplet{Row: i + 1, Col: i + 1, Val: 1},
			linalg.Triplet{Row: i, Col: i + 1, Val: -1},
			linalg.Triplet{Row: i + 1, Col: i, Val: -1})
	}
	m, err := linalg.NewCSRFromTriplets(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSolversReportNonConvergenceUnderNoise(t *testing.T) {
	// Lanczos needs a matrix big enough that its adaptively-doubled Krylov
	// space cannot reach the full dimension within the restart budget: at
	// full dimension the basis spans R^n, the recurrence breaks down, and
	// breakdown marks every Ritz pair converged — garbage would lock.
	big := pathLaplacian(t, 400)
	small := pathLaplacian(t, 40)
	cases := []struct {
		name   string
		solver string
		m      *linalg.CSR
		run    func(op linalg.Operator, c float64) ([]float64, error)
	}{
		{"lanczos", "Lanczos", big, func(op linalg.Operator, c float64) ([]float64, error) {
			return linalg.SmallestEigsPSD(op, c, 4, &linalg.LanczosOptions{MaxRestarts: 3, Steps: 12})
		}},
		{"chebyshev", "Chebyshev", small, func(op linalg.Operator, c float64) ([]float64, error) {
			return linalg.ChebFilteredSmallest(op, c, 4, &linalg.ChebOptions{MaxIter: 3, Degree: 6})
		}},
		{"power", "power", small, func(op linalg.Operator, c float64) ([]float64, error) {
			return linalg.PowerSmallestPSD(op, c, 4, &linalg.PowerOptions{MaxIter: 25})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Additive noise far above every residual tolerance: the solver
			// keeps producing finite garbage and must report non-convergence,
			// with partial diagnostics attached, instead of hanging or
			// returning a fabricated spectrum.
			inj := &faultinject.Op{A: tc.m, NoiseFrom: 1, NoiseAmp: 5}
			vals, err := tc.run(inj, tc.m.GershgorinUpper())
			if err == nil {
				t.Fatalf("solve under noise succeeded with %v", vals)
			}
			var nc *linalg.NotConvergedError
			if !errors.As(err, &nc) {
				t.Fatalf("error = %v (%T), want *NotConvergedError", err, err)
			}
			if nc.Solver != tc.solver {
				t.Errorf("Solver = %q, want %q", nc.Solver, tc.solver)
			}
			if nc.Requested != 4 {
				t.Errorf("Requested = %d, want 4", nc.Requested)
			}
			if nc.Converged != len(nc.Partial) {
				t.Errorf("Converged = %d but len(Partial) = %d", nc.Converged, len(nc.Partial))
			}
			if inj.Faults() == 0 {
				t.Error("injector reports zero faulted matvecs")
			}
			if nc.Reason == "" || nc.Error() == "" {
				t.Error("empty diagnostics")
			}
		})
	}
}

func TestSolversDetectNaNPoisoning(t *testing.T) {
	m := pathLaplacian(t, 40)
	c := m.GershgorinUpper()
	cases := []struct {
		name string
		run  func(op linalg.Operator) ([]float64, error)
	}{
		{"lanczos", func(op linalg.Operator) ([]float64, error) {
			return linalg.SmallestEigsPSD(op, c, 4, nil)
		}},
		{"chebyshev", func(op linalg.Operator) ([]float64, error) {
			return linalg.ChebFilteredSmallest(op, c, 4, nil)
		}},
		{"power", func(op linalg.Operator) ([]float64, error) {
			return linalg.PowerSmallestPSD(op, c, 4, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := &faultinject.Op{A: m, NaNFrom: 1}
			vals, err := tc.run(inj)
			if err == nil {
				t.Fatalf("solve on NaN-poisoned operator succeeded with %v", vals)
			}
			var nf *linalg.NonFiniteError
			if !errors.As(err, &nf) {
				t.Fatalf("error = %v (%T), want *NonFiniteError", err, err)
			}
			if nf.Where == "" {
				t.Error("NonFiniteError.Where is empty")
			}
		})
	}
}

func TestSolversHonorCancelledContext(t *testing.T) {
	m := pathLaplacian(t, 40)
	c := m.GershgorinUpper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		run  func() ([]float64, error)
	}{
		{"lanczos", func() ([]float64, error) {
			return linalg.SmallestEigsPSDContext(ctx, m, c, 4, nil)
		}},
		{"chebyshev", func() ([]float64, error) {
			return linalg.ChebFilteredSmallestContext(ctx, m, c, 4, nil)
		}},
		{"power", func() ([]float64, error) {
			return linalg.PowerSmallestPSDContext(ctx, m, c, 4, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals, err := tc.run()
			if err == nil {
				t.Fatalf("solve with cancelled ctx succeeded with %v", vals)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled in chain", err)
			}
		})
	}
}

func TestSolversHitDeadlineDuringStalledMatvecs(t *testing.T) {
	m := pathLaplacian(t, 120)
	c := m.GershgorinUpper()
	cases := []struct {
		name string
		run  func(ctx context.Context, op linalg.Operator) ([]float64, error)
	}{
		{"lanczos", func(ctx context.Context, op linalg.Operator) ([]float64, error) {
			return linalg.SmallestEigsPSDContext(ctx, op, c, 6, nil)
		}},
		{"chebyshev", func(ctx context.Context, op linalg.Operator) ([]float64, error) {
			return linalg.ChebFilteredSmallestContext(ctx, op, c, 6, nil)
		}},
		{"power", func(ctx context.Context, op linalg.Operator) ([]float64, error) {
			return linalg.PowerSmallestPSDContext(ctx, op, c, 6, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Every matvec stalls 2ms; the deadline lands mid-solve and the
			// solver must notice at its next iteration boundary rather than
			// grinding through its full budget.
			inj := &faultinject.Op{A: m, StallFrom: 1, Stall: 2 * time.Millisecond}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			start := time.Now()
			vals, err := tc.run(ctx, inj)
			if err == nil {
				t.Fatalf("stalled solve beat a 30ms deadline with %v", vals)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error = %v, want context.DeadlineExceeded in chain", err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Errorf("solver took %v to notice an expired deadline", elapsed)
			}
		})
	}
}

func TestTransientFaultWindowClears(t *testing.T) {
	// A fault window that closes (Until) lets the same wrapped operator fail
	// early and succeed later — the shape the escalation chain's retry path
	// depends on.
	m := pathLaplacian(t, 30)
	c := m.GershgorinUpper()
	inj := &faultinject.Op{A: m, NaNFrom: 1, Until: 3}
	if _, err := linalg.SmallestEigsPSD(inj, c, 3, &linalg.LanczosOptions{MaxRestarts: 1, Steps: 8}); err == nil {
		t.Fatal("solve inside the fault window succeeded")
	}
	vals, err := linalg.SmallestEigsPSD(inj, c, 3, nil)
	if err != nil {
		t.Fatalf("solve after the fault window cleared: %v", err)
	}
	if len(vals) != 3 {
		t.Fatalf("got %d eigenvalues, want 3", len(vals))
	}
	if inj.Calls() <= inj.Faults() {
		t.Errorf("Calls() = %d, Faults() = %d: expected clean calls after the window", inj.Calls(), inj.Faults())
	}
}
