package linalg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"graphio/internal/obs"
)

// PowerOptions tunes PowerSmallestPSD.
type PowerOptions struct {
	// Tol is the relative residual tolerance. Default 1e-7.
	Tol float64
	// MaxIter bounds the iterations per eigenpair. Default 20000.
	MaxIter int
	// Seed seeds the deterministic start-vector generator. Default 1.
	Seed int64
}

func (o *PowerOptions) withDefaults() PowerOptions {
	out := PowerOptions{Tol: 1e-7, MaxIter: 20000, Seed: 1}
	if o != nil {
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		if o.Seed != 0 {
			out.Seed = o.Seed
		}
	}
	return out
}

// PowerSmallestPSD computes the h smallest eigenvalues (with multiplicity)
// of the symmetric PSD operator A with λmax(A) ≤ c, by deflated power
// iteration on B = cI − A. This is the paper's "efficiently computable by
// power iteration" route: simpler than Lanczos, with the usual caveat that
// convergence is linear in the eigenvalue gap ratio. Prefer SmallestEigsPSD;
// this exists as an independent cross-check and a fallback.
func PowerSmallestPSD(A Operator, c float64, h int, opt *PowerOptions) ([]float64, error) {
	return PowerSmallestPSDContext(context.Background(), A, c, h, opt)
}

// PowerSmallestPSDContext is PowerSmallestPSD with cancellation: ctx is
// checked every iteration, and a cancelled or expired context aborts the
// solve with the wrapped ctx error.
func PowerSmallestPSDContext(ctx context.Context, A Operator, c float64, h int, opt *PowerOptions) ([]float64, error) {
	n := A.Dim()
	if h <= 0 {
		return nil, errors.New("linalg: PowerSmallestPSD: h must be positive")
	}
	if h > n {
		h = n
	}
	if n == 0 {
		return nil, nil
	}
	o := opt.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	scale := c
	if scale < 1 {
		scale = 1
	}
	tol := o.Tol * scale
	B := &ShiftedNeg{A: A, C: c}

	locked := make([][]float64, 0, h)
	vals := make([]float64, 0, h)
	bv := make([]float64, n)
	resid := make([]float64, n)
	// Solver telemetry: total iterations across all deflated eigenpairs,
	// reported once per solve (success or failure).
	totalIters := 0
	defer func() {
		if !obs.Enabled() {
			return
		}
		obs.AddCtx(ctx, "linalg.eigensolver.iterations", int64(totalIters))
		obs.AddCtx(ctx, "linalg.power.iterations", int64(totalIters))
		obs.SetGaugeCtx(ctx, "linalg.power.locked", float64(len(locked)))
	}()
	for len(locked) < h {
		v := make([]float64, n)
		for {
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			OrthogonalizeAgainst(v, locked)
			if Normalize(v) > 1e-8 {
				break
			}
		}
		theta := 0.0
		converged := false
		for iter := 0; iter < o.MaxIter; iter++ {
			if err := ctxErr(ctx, "power"); err != nil {
				return nil, err
			}
			totalIters++
			B.MatVec(bv, v)
			// Deflate: keep the iterate in the complement of locked space.
			OrthogonalizeAgainst(bv, locked)
			theta = Dot(bv, v)
			if !isFinite(theta) {
				return nil, &NonFiniteError{Where: "power iteration step"}
			}
			copy(resid, bv)
			Axpy(-theta, v, resid)
			if Norm2(resid) <= tol {
				converged = true
				break
			}
			if EqZero(Normalize(bv)) {
				// B annihilated the complement component; the remaining
				// spectrum in the complement is exactly zero.
				theta = 0
				converged = true
				break
			}
			v, bv = bv, v
		}
		if !converged {
			partial := append([]float64(nil), vals...)
			insertionSort(partial)
			return nil, &NotConvergedError{
				Solver:    "power",
				Requested: h,
				Converged: len(locked),
				Partial:   partial,
				Reason:    fmt.Sprintf("iteration budget %d exhausted on eigenpair %d", o.MaxIter, len(locked)),
			}
		}
		// theta approximates the largest eigenvalue of B in the complement.
		if EqZero(Normalize(v)) {
			partial := append([]float64(nil), vals...)
			insertionSort(partial)
			return nil, &NotConvergedError{
				Solver:    "power",
				Requested: h,
				Converged: len(locked),
				Partial:   partial,
				Reason:    fmt.Sprintf("zero Ritz vector on eigenpair %d", len(locked)),
			}
		}
		locked = append(locked, v)
		vals = append(vals, c-theta)
	}
	insertionSort(vals)
	// Clamp the tiny negative round-off that c−θ can produce for exact zeros.
	for i := range vals {
		if vals[i] < 0 && vals[i] > -1e-8*scale {
			vals[i] = 0
		}
	}
	return vals, nil
}
