package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Operator is a symmetric linear operator on R^n, the abstraction both
// eigensolvers work against.
type Operator interface {
	Dim() int
	// MatVec computes dst = A*src. dst and src never alias.
	MatVec(dst, src []float64)
}

// Triplet is a coordinate-format matrix entry used to assemble CSR matrices.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row square matrix.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NewCSRFromTriplets assembles an n×n CSR matrix from coordinate entries.
// Duplicate (row, col) entries are summed. Entries are validated against n.
func NewCSRFromTriplets(n int, entries []Triplet) (*CSR, error) {
	for _, t := range entries {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			return nil, fmt.Errorf("linalg: triplet (%d,%d) outside %d×%d matrix", t.Row, t.Col, n, n)
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	// Merge duplicates.
	w := 0
	for i := 0; i < len(sorted); i++ {
		if w > 0 && sorted[w-1].Row == sorted[i].Row && sorted[w-1].Col == sorted[i].Col {
			sorted[w-1].Val += sorted[i].Val
			continue
		}
		sorted[w] = sorted[i]
		w++
	}
	sorted = sorted[:w]

	m := &CSR{
		N:      n,
		RowPtr: make([]int32, n+1),
		Col:    make([]int32, len(sorted)),
		Val:    make([]float64, len(sorted)),
	}
	for _, t := range sorted {
		m.RowPtr[t.Row+1]++
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	next := make([]int32, n)
	for _, t := range sorted {
		p := m.RowPtr[t.Row] + next[t.Row]
		m.Col[p] = int32(t.Col)
		m.Val[p] = t.Val
		next[t.Row]++
	}
	return m, nil
}

// Dim implements Operator.
func (m *CSR) Dim() int { return m.N }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns element (i, j) by binary search over row i. O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	lo, hi := int(m.RowPtr[i]), int(m.RowPtr[i+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(m.Col[mid]) < j:
			lo = mid + 1
		case int(m.Col[mid]) > j:
			hi = mid
		default:
			return m.Val[mid]
		}
	}
	return 0
}

// MatVec computes dst = m * src.
func (m *CSR) MatVec(dst, src []float64) {
	for i := 0; i < m.N; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * src[m.Col[p]]
		}
		dst[i] = s
	}
}

// ToDense expands the matrix to dense form (for tests and small problems).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.N)
	for i := 0; i < m.N; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			d.Set(i, int(m.Col[p]), m.Val[p])
		}
	}
	return d
}

// GershgorinUpper returns an upper bound on the largest eigenvalue of the
// symmetric matrix m: max_i (a_ii + Σ_{j≠i} |a_ij|).
func (m *CSR) GershgorinUpper() float64 {
	var best float64
	for i := 0; i < m.N; i++ {
		var diag, radius float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.Col[p]) == i {
				diag = m.Val[p]
			} else {
				radius += math.Abs(m.Val[p])
			}
		}
		if v := diag + radius; v > best || i == 0 {
			best = v
		}
	}
	return best
}

// ShiftedNeg is the operator c*I − A for a symmetric operator A. Lanczos and
// power iteration converge to extremal eigenvalues; running them on
// ShiftedNeg with c ≥ λmax(A) turns the *smallest* eigenvalues of a PSD A
// into the largest of the shifted operator.
type ShiftedNeg struct {
	A Operator
	C float64
}

// Dim implements Operator.
func (s *ShiftedNeg) Dim() int { return s.A.Dim() }

// MatVec computes dst = c*src − A*src.
func (s *ShiftedNeg) MatVec(dst, src []float64) {
	s.A.MatVec(dst, src)
	for i := range dst {
		dst[i] = s.C*src[i] - dst[i]
	}
}
