package linalg

import "math"

// Shared floating-point comparison helpers. The float-eq lint rule forbids
// raw == / != on float operands everywhere in the module: spectra, bounds
// and residuals come out of iterative solvers and exact bit equality on
// them is almost always a latent bug. These helpers are the approved
// spellings — each raw comparison below carries its contract in a
// //lint:ignore directive.

// EqTol reports whether a and b are within tol of each other. NaN compares
// unequal to everything (including NaN), matching IEEE semantics; tol must
// be non-negative. Use for value-vs-value comparisons of computed spectra,
// bounds and residuals.
func EqTol(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// EqZero reports whether x is exactly ±0. This is an intentionally exact
// test: use it where zero is structural rather than numeric — a zero norm
// that makes normalization undefined, a zero pivot that would divide by
// zero, a zero weight that switches a formula branch. For "numerically
// negligible" use EqTol(x, 0, tol) instead.
func EqZero(x float64) bool {
	return x == 0 //lint:ignore float-eq exact ±0 test is this helper's documented contract
}
