package linalg

import (
	"context"
	"errors"
	"fmt"
	"math"

	"graphio/internal/obs"
)

// Dense is a square matrix in row-major order.
type Dense struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewDense allocates a zero n×n matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.N : (i+1)*m.N] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.Data, m.Data)
	return c
}

// MatVec computes dst = m * src.
func (m *Dense) MatVec(dst, src []float64) {
	n := m.N
	for i := 0; i < n; i++ {
		row := m.Data[i*n : (i+1)*n]
		var s float64
		for j, rv := range row {
			s += rv * src[j]
		}
		dst[i] = s
	}
}

// Dim implements Operator.
func (m *Dense) Dim() int { return m.N }

// IsSymmetric reports whether m is symmetric to within tol (absolute).
func (m *Dense) IsSymmetric(tol float64) bool {
	n := m.N
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// SymEig computes the full eigendecomposition of the symmetric matrix a.
// It returns the eigenvalues in ascending order; if wantV is true, vecs is
// the matrix whose column i is the (orthonormal) eigenvector for vals[i],
// otherwise vecs is nil. The input matrix is not modified.
//
// The implementation is the classic EISPACK pair tred2 (Householder
// reduction to tridiagonal form) + tql2 (QL with implicit Wilkinson shifts),
// ported from scratch. Cost is O(n^3).
func SymEig(a *Dense, wantV bool) (vals []float64, vecs *Dense, err error) {
	vals, vecs, _, err = symEig(a, wantV)
	return vals, vecs, err
}

// symEig is SymEig plus the QL iteration count, so top-level entry points
// can report solver effort without inner Rayleigh-Ritz solves (Chebyshev
// calls SymEig every sweep) polluting the counters.
func symEig(a *Dense, wantV bool) (vals []float64, vecs *Dense, iters int, err error) {
	n := a.N
	if n == 0 {
		return nil, nil, 0, nil
	}
	work := a.Clone()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = work.Row(i)
	}
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(rows, d, e, wantV)
	var z [][]float64
	if wantV {
		z = rows
	}
	iters, err = tql2(d, e, z)
	if err != nil {
		return nil, nil, iters, err
	}
	// Sort eigenvalues (and columns of z) ascending with a simple selection
	// sort; n^2 swaps are negligible next to the n^3 factorization.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			if wantV {
				for r := 0; r < n; r++ {
					rows[r][i], rows[r][k] = rows[r][k], rows[r][i]
				}
			}
		}
	}
	if wantV {
		vecs = work
	}
	return d, vecs, iters, nil
}

// SymEigValues returns only the eigenvalues of the symmetric matrix a, in
// ascending order. As the dense path's top-level eigensolve it reports the
// QL sweep count to the observability layer.
func SymEigValues(a *Dense) ([]float64, error) {
	return SymEigValuesContext(context.Background(), a)
}

// SymEigValuesContext is SymEigValues with its solver counters attributed
// to ctx's telemetry scope.
func SymEigValuesContext(ctx context.Context, a *Dense) ([]float64, error) {
	vals, _, iters, err := symEig(a, false)
	if err == nil && obs.Enabled() {
		obs.AddCtx(ctx, "linalg.eigensolver.iterations", int64(iters))
		obs.AddCtx(ctx, "linalg.dense.ql_iters", int64(iters))
	}
	return vals, err
}

// tred2 reduces the symmetric matrix a (given as row slices) to tridiagonal
// form by Householder similarity transformations. On return d holds the
// diagonal and e[1..n-1] the subdiagonal (e[0] = 0). If wantV, a is
// overwritten with the accumulated orthogonal transformation Q such that
// Q^T A Q = T; otherwise a's contents are destroyed.
func tred2(a [][]float64, d, e []float64, wantV bool) {
	n := len(a)
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a[i][k])
			}
			if EqZero(scale) {
				e[i] = a[i][l]
			} else {
				for k := 0; k <= l; k++ {
					a[i][k] /= scale
					h += a[i][k] * a[i][k]
				}
				f := a[i][l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a[i][l] = f - g
				f = 0
				for j := 0; j <= l; j++ {
					if wantV {
						a[j][i] = a[i][j] / h
					}
					g = 0
					for k := 0; k <= j; k++ {
						g += a[j][k] * a[i][k]
					}
					for k := j + 1; k <= l; k++ {
						g += a[k][j] * a[i][k]
					}
					e[j] = g / h
					f += e[j] * a[i][j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = a[i][j]
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a[j][k] -= f*e[k] + g*a[i][k]
					}
				}
			}
		} else {
			e[i] = a[i][l]
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		if wantV {
			l := i - 1
			if !EqZero(d[i]) {
				for j := 0; j <= l; j++ {
					g := 0.0
					for k := 0; k <= l; k++ {
						g += a[i][k] * a[k][j]
					}
					for k := 0; k <= l; k++ {
						a[k][j] -= g * a[k][i]
					}
				}
			}
			d[i] = a[i][i]
			a[i][i] = 1
			for j := 0; j <= l; j++ {
				a[j][i] = 0
				a[i][j] = 0
			}
		} else {
			d[i] = a[i][i]
		}
	}
}

// tql2 computes the eigenvalues (and, if z is non-nil, eigenvectors) of a
// symmetric tridiagonal matrix with diagonal d and subdiagonal e[1..n-1],
// using the QL algorithm with implicit shifts. On return d holds the
// eigenvalues (unsorted) and the columns of z the eigenvectors. z must be
// initialized to the identity (for a tridiagonal input) or to the
// tridiagonalizing transformation (as produced by tred2). Returns the
// total implicit-shift QL iteration count across eigenvalues.
func tql2(d, e []float64, z [][]float64) (int, error) {
	n := len(d)
	total := 0
	if n == 0 {
		return 0, nil
	}
	const eps = 2.220446049250313e-16
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= eps*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			total++
			if iter > 60 {
				return total, fmt.Errorf("linalg: tql2 failed to converge at eigenvalue %d", l)
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if EqZero(r) {
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < n; k++ {
						f = z[k][i+1]
						z[k][i+1] = s*z[k][i] + c*f
						z[k][i] = c*z[k][i] - s*f
					}
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return total, nil
}

// TridiagEig computes the eigendecomposition of the symmetric tridiagonal
// matrix with diagonal diag and subdiagonal sub (len(sub) == len(diag)-1).
// Eigenvalues are returned in ascending order; if wantV is true, column i of
// vecs is the unit eigenvector for vals[i]. This is the small inner solve
// used by the Lanczos iteration.
func TridiagEig(diag, sub []float64, wantV bool) (vals []float64, vecs *Dense, err error) {
	n := len(diag)
	if n == 0 {
		return nil, nil, nil
	}
	if len(sub) != n-1 {
		return nil, nil, errors.New("linalg: TridiagEig: len(sub) must be len(diag)-1")
	}
	d := make([]float64, n)
	copy(d, diag)
	e := make([]float64, n)
	copy(e[1:], sub)
	var z [][]float64
	var zm *Dense
	if wantV {
		zm = NewDense(n)
		z = make([][]float64, n)
		for i := range z {
			z[i] = zm.Row(i)
			z[i][i] = 1
		}
	}
	if _, err := tql2(d, e, z); err != nil {
		return nil, nil, err
	}
	// Selection sort ascending, permuting columns of z alongside.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			if wantV {
				for r := 0; r < n; r++ {
					z[r][i], z[r][k] = z[r][k], z[r][i]
				}
			}
		}
	}
	return d, zm, nil
}
