package linalg_test

// Fuzz coverage for the bisection eigensolver: arbitrary (including
// non-finite) tridiagonal input must never panic, and every successful
// return must be the requested number of finite eigenvalues. Non-finite
// input is rejected as a typed *NonFiniteError rather than corrupting the
// Sturm counts silently.

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"graphio/internal/linalg"
)

func FuzzTridiagEigBisect(f *testing.F) {
	// Seeds: a small path-graph tridiagonal, a constant diagonal, and a
	// payload carrying NaN and ±Inf bit patterns.
	path := make([]byte, 0, 7*8)
	for _, v := range []float64{2, 2, 2, 2, -1, -1, -1} {
		path = binary.LittleEndian.AppendUint64(path, math.Float64bits(v))
	}
	f.Add(path, uint8(0), uint8(3))
	f.Add(path[:8], uint8(0), uint8(0))
	poison := make([]byte, 0, 3*8)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		poison = binary.LittleEndian.AppendUint64(poison, math.Float64bits(v))
	}
	f.Add(poison, uint8(0), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, lo8, hi8 uint8) {
		const maxN = 24
		vals := make([]float64, 0, 2*maxN-1)
		for i := 0; i+8 <= len(data) && len(vals) < 2*maxN-1; i += 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
		}
		if len(vals)%2 == 0 && len(vals) > 0 {
			vals = vals[:len(vals)-1] // odd split: n diagonal + n-1 subdiagonal
		}
		if len(vals) == 0 {
			return
		}
		n := (len(vals) + 1) / 2
		diag, sub := vals[:n], vals[n:]
		lo, hi := int(lo8)%n, int(hi8)%n
		if lo > hi {
			lo, hi = hi, lo
		}

		out, err := linalg.TridiagEigBisect(diag, sub, lo, hi)
		if err != nil {
			var nf *linalg.NonFiniteError
			if !errors.As(err, &nf) {
				t.Fatalf("unexpected error type %T: %v", err, err)
			}
			return // contaminated input, correctly rejected
		}
		if len(out) != hi-lo+1 {
			t.Fatalf("got %d eigenvalues, want %d", len(out), hi-lo+1)
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("eigenvalue %d is non-finite: %v (diag=%v sub=%v)", i, v, diag, sub)
			}
		}
	})
}
