package linalg

import (
	"sync/atomic"

	"graphio/internal/obs"
)

// CountingOperator wraps an Operator, counts MatVec applications, and
// feeds each application's latency into the "linalg.matvec_ns" histogram.
// The increment is atomic because the Chebyshev solver applies the filter
// from a pool of worker goroutines; one atomic add plus two clock reads
// are negligible next to the O(nnz) mat-vec they measure. The
// spectral-bound core wraps solver inputs with it only when observability
// is enabled, so the count covers pilot runs, filter applications and
// residual checks alike and the latency distribution separates the
// Lanczos single-vector products from the Chebyshev block products.
type CountingOperator struct {
	A Operator
	// Scope attributes the latency histogram to a telemetry scope; the
	// operator cannot take a context (MatVec is the hot interface), so the
	// wrapper resolves the scope once at construction. Nil routes to the
	// default registry unchanged.
	Scope *obs.Scope
	n     atomic.Int64
}

// Dim implements Operator.
func (c *CountingOperator) Dim() int { return c.A.Dim() }

// MatVec implements Operator, counting and timing the application.
func (c *CountingOperator) MatVec(dst, src []float64) {
	c.n.Add(1)
	start := obs.Now()
	c.A.MatVec(dst, src)
	c.Scope.ObserveHistDuration("linalg.matvec_ns", obs.Since(start))
}

// Count returns the number of MatVec applications so far.
func (c *CountingOperator) Count() int64 { return c.n.Load() }
