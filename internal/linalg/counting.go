package linalg

import "sync/atomic"

// CountingOperator wraps an Operator and counts MatVec applications.
// The increment is atomic because the Chebyshev solver applies the filter
// from a pool of worker goroutines; one atomic add is negligible next to
// the O(nnz) mat-vec it counts. The spectral-bound core wraps solver
// inputs with it when observability is enabled, so the count covers pilot
// runs, filter applications and residual checks alike.
type CountingOperator struct {
	A Operator
	n atomic.Int64
}

// Dim implements Operator.
func (c *CountingOperator) Dim() int { return c.A.Dim() }

// MatVec implements Operator, counting the application.
func (c *CountingOperator) MatVec(dst, src []float64) {
	c.n.Add(1)
	c.A.MatVec(dst, src)
}

// Count returns the number of MatVec applications so far.
func (c *CountingOperator) Count() int64 { return c.n.Load() }
