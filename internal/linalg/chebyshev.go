package linalg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"graphio/internal/obs"
)

// ChebDebug, when non-nil, receives one diagnostic line per filtered
// subspace sweep (iteration, block size, degree, cut, worst residual).
// Intended for development and performance investigation only.
var ChebDebug io.Writer

// ChebOptions tunes ChebFilteredSmallest.
type ChebOptions struct {
	// Tol is the relative residual tolerance. Default 1e-8.
	Tol float64
	// Degree of the Chebyshev filter polynomial per iteration. Default 60.
	Degree int
	// MaxIter bounds the filtered subspace iterations. Default 60.
	MaxIter int
	// Block is the subspace width. Default h + max(12, h/4).
	Block int
	// Seed seeds the start block. Default 1.
	Seed int64
}

func (o *ChebOptions) withDefaults(n, h int) ChebOptions {
	out := ChebOptions{Tol: 1e-8, Degree: 60, MaxIter: 60, Seed: 1}
	if o != nil {
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		if o.Degree > 0 {
			out.Degree = o.Degree
		}
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		if o.Block > 0 {
			out.Block = o.Block
		}
		if o.Seed != 0 {
			out.Seed = o.Seed
		}
	}
	if out.Block == 0 {
		extra := h / 4
		if extra < 12 {
			extra = 12
		}
		out.Block = h + extra
	}
	if out.Block > n {
		out.Block = n
	}
	return out
}

// ChebFilteredSmallest computes the h smallest eigenvalues — with
// multiplicity — of the symmetric PSD operator A with λmax(A) ≤ c, by
// Chebyshev-filtered subspace iteration: each sweep applies a degree-d
// Chebyshev polynomial that damps the unwanted interval [aCut, c] onto
// [−1, 1] while amplifying [0, aCut) exponentially, then orthonormalizes
// the block and Rayleigh–Ritz-extracts eigenpair estimates. Being a block
// method it converges through clustered spectra and high-multiplicity
// eigenvalues (butterflies, hypercubes) where single-vector Lanczos needs
// one restart per eigenvalue copy.
func ChebFilteredSmallest(A Operator, c float64, h int, opt *ChebOptions) ([]float64, error) {
	return ChebFilteredSmallestContext(context.Background(), A, c, h, opt)
}

// ChebFilteredSmallestContext is ChebFilteredSmallest with cooperative
// cancellation: ctx is checked at every sweep boundary and between filtered
// columns, so a deadline or cancellation interrupts the solve without
// waiting for the full subspace iteration to run its course.
func ChebFilteredSmallestContext(ctx context.Context, A Operator, c float64, h int, opt *ChebOptions) ([]float64, error) {
	n := A.Dim()
	if h <= 0 {
		return nil, errors.New("linalg: ChebFilteredSmallest: h must be positive")
	}
	if h > n {
		h = n
	}
	if n == 0 {
		return nil, nil
	}
	o := opt.withDefaults(n, h)
	b := o.Block
	scale := c
	if scale < 1 {
		scale = 1
	}
	tol := o.Tol * scale
	rng := rand.New(rand.NewSource(o.Seed))
	// The block can grow: when a degenerate cluster straddles the block
	// boundary (butterfly spectra have multiplicities in the hundreds), no
	// cut point separates wanted from damped directions until the block
	// swallows the whole cluster.
	maxBlock := 4*h + 64
	if maxBlock > n {
		maxBlock = n
	}
	if b > maxBlock {
		maxBlock = b
	}

	// Random orthonormal start block.
	X := make([][]float64, b)
	//lint:ignore ctx-loop O(n·b) random start-block fill; the filter sweeps below check ctx every iteration
	for i := range X {
		X[i] = make([]float64, n)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
	}
	orthonormalizeBlock(X, rng)

	// Pilot cut point from a short Lanczos run: roughly where the h-th
	// smallest eigenvalue sits. Adapted every iteration afterwards.
	aCut := pilotCut(ctx, A, c, h, rng)
	if err := ctxErr(ctx, "Chebyshev"); err != nil {
		return nil, err
	}

	var theta []float64
	var resid []float64
	degree := o.Degree
	prevWorst := math.Inf(1)
	cappedNoGap := 0 // consecutive sweeps stuck at max block with no usable gap

	// Solver telemetry, reported once per solve so the sweep loop carries
	// no per-iteration observability cost.
	sweeps := 0
	growths := 0
	lastWorst := math.NaN()
	defer func() {
		if !obs.Enabled() {
			return
		}
		obs.AddCtx(ctx, "linalg.eigensolver.iterations", int64(sweeps))
		obs.AddCtx(ctx, "linalg.cheb.sweeps", int64(sweeps))
		obs.AddCtx(ctx, "linalg.cheb.block_growths", int64(growths))
		obs.SetGaugeCtx(ctx, "linalg.cheb.block", float64(b))
		obs.SetGaugeCtx(ctx, "linalg.cheb.degree", float64(degree))
		obs.SetGaugeCtx(ctx, "linalg.cheb.worst_residual", lastWorst) // NaN before the first sweep is dropped
	}()

	for iter := 0; iter < o.MaxIter; iter++ {
		if err := ctxErr(ctx, "Chebyshev"); err != nil {
			return nil, err
		}
		sweeps++
		// Precision cap on the filter degree: the amplification ratio
		// between the bottom of the spectrum and the cut grows like
		// exp(d·acosh(m0)) with m0 the affine image of 0; letting it pass
		// ~1e12 erases the boundary cluster from the block in float64 and
		// the sweep collapses. Sharper separation beyond the cap must come
		// from block growth, not degree.
		m0 := (c + aCut) / (c - aCut)
		dcap := 400
		if ac := math.Acosh(m0); ac > 0 {
			dcap = int(27 / ac)
		}
		if dcap < 10 {
			dcap = 10
		}
		degEff := degree
		if degEff > dcap {
			degEff = dcap
		}
		// Filter the block: X ← p(A)·X with p the scaled Chebyshev
		// polynomial on [aCut, c].
		chebFilterBlock(ctx, A, X, aCut, c, degEff)
		if err := ctxErr(ctx, "Chebyshev"); err != nil {
			return nil, err // the filter bailed out mid-block
		}
		orthonormalizeBlock(X, rng)
		b = len(X)

		// Rayleigh-Ritz on the filtered subspace. The block mat-vecs and
		// the Gram matrix rows are embarrassingly parallel.
		W := make([][]float64, b) // W = A·X, reused for residuals
		parallelFor(b, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				W[i] = make([]float64, n)
				A.MatVec(W[i], X[i])
			}
		})
		H := NewDense(b)
		parallelFor(b, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := i; j < b; j++ {
					v := Dot(X[i], W[j])
					H.Set(i, j, v)
					H.Set(j, i, v)
				}
			}
		})
		if err := CheckFinite("Chebyshev Gram matrix", H.Data); err != nil {
			// A poisoned mat-vec (NaN/Inf leak) shows up in the projected
			// matrix before anywhere else; fail typed instead of feeding the
			// dense eigensolver garbage.
			return nil, err
		}
		vals, S, err := SymEig(H, true)
		if err != nil {
			return nil, fmt.Errorf("linalg: Chebyshev Rayleigh-Ritz: %w", err)
		}
		theta = vals
		rotateBlock(X, S)
		rotateBlock(W, S)

		// Converged when the h smallest Ritz pairs have small residuals.
		resid = resid[:0]
		worst := 0.0
		for i := 0; i < h; i++ {
			var r2 float64
			for j := 0; j < n; j++ {
				d := W[i][j] - theta[i]*X[i][j]
				r2 += d * d
			}
			r := math.Sqrt(r2)
			resid = append(resid, r)
			if r > worst {
				worst = r
			}
		}
		lastWorst = worst
		if obs.EventsEnabled() {
			obs.Probe("linalg.cheb").IterCtx(ctx, int64(iter),
				obs.FI("block", int64(b)),
				obs.FI("degree", int64(degEff)),
				obs.F("cut", aCut),
				obs.F("worst_resid", worst),
				obs.F("theta_h", theta[h-1]))
		}
		if ChebDebug != nil {
			fmt.Fprintf(ChebDebug, "cheb iter=%d b=%d deg=%d(cap %d) aCut=%.6g worst=%.3g theta[h-1]=%.6g\n",
				iter, b, degEff, dcap, aCut, worst, theta[h-1])
		}
		if worst <= tol {
			return clampSpectrum(theta[:h:h], scale), nil
		}

		// Adapt the cut: place it in the largest relative gap at or above
		// the h-th Ritz value, so a cluster straddling position h stays
		// wholly inside the amplified interval.
		bestGap, bestAt := -1.0, b-1
		for i := h - 1; i < b-1; i++ {
			gap := (theta[i+1] - theta[i]) / (theta[i+1] + 1e-12*scale)
			if gap > bestGap {
				bestGap, bestAt = gap, i
			}
		}
		stagnant := worst > prevWorst/1.5
		prevWorst = worst
		if bestGap < 0.02 && b >= maxBlock && stagnant {
			// A degenerate cluster wider than the block cap straddles the
			// boundary: no cut will ever separate it, so further sweeps
			// cannot converge the tail. Bail out to the sound padded
			// result below once this persists (the padded tail barely
			// matters: the bound's maximizing k is far below h here).
			cappedNoGap++
			if cappedNoGap >= 3 {
				break
			}
		} else {
			cappedNoGap = 0
		}
		if stagnant {
			if bestGap < 0.02 && b < maxBlock {
				// The window above position h is a near-flat cluster
				// (possibly a single degenerate eigenvalue spilling past
				// the block): no cut separates inside it. Grow the block
				// until the cluster — and a real gap — fits.
				growths++
				grow := b / 2
				if b+grow > maxBlock {
					grow = maxBlock - b
				}
				for g := 0; g < grow; g++ {
					col := make([]float64, n)
					for j := range col {
						col[j] = rng.NormFloat64()
					}
					X = append(X, col)
				}
				orthonormalizeBlock(X, rng)
				b = len(X)
				prevWorst = math.Inf(1)
				continue
			}
			// A usable gap exists but convergence stalls: sharpen the
			// filter (the precision cap above still applies).
			if degree < 256 {
				degree *= 2
			}
		}
		newCut := 0.5 * (theta[bestAt] + theta[bestAt+1])
		if low := theta[h-1] * 1.0001; newCut < low {
			newCut = low
		}
		if floor := 1e-6 * scale; newCut < floor {
			newCut = floor
		}
		if ceil := 0.95 * c; newCut > ceil {
			newCut = ceil
		}
		aCut = newCut
	}

	// Out of sweeps. Return the converged prefix with a *sound* tail: pad
	// unconverged positions with the last converged value. The spectrum is
	// ascending, so the padded values never overestimate the true ones and
	// every bound computed from them stays a valid lower bound (slightly
	// weaker at large k, which the k sweep rarely uses).
	p := 0
	for p < h && resid[p] <= tol {
		p++
	}
	if p == 0 {
		return nil, &NotConvergedError{
			Solver: "Chebyshev", Requested: h, Converged: 0,
			Reason: fmt.Sprintf("no Ritz pair converged in %d sweeps", o.MaxIter),
		}
	}
	// Partial convergence: pad the tail soundly (see above) and count the
	// degradation so an operator can see that a run returned a padded —
	// valid but weaker at large k — spectrum.
	obs.AddCtx(ctx, "linalg.cheb.padded_tail", int64(h-p))
	if h > p {
		obs.IncCtx(ctx, "linalg.cheb.padded_solves")
	}
	out := make([]float64, h)
	copy(out, theta[:p])
	for i := p; i < h; i++ {
		out[i] = theta[p-1]
	}
	return clampSpectrum(out, scale), nil
}

// clampSpectrum zeroes the tiny negatives PSD round-off produces.
func clampSpectrum(vals []float64, scale float64) []float64 {
	for i := range vals {
		if vals[i] < 0 && vals[i] > -1e-8*scale {
			vals[i] = 0
		}
	}
	return vals
}

// pilotCut estimates where the h-th smallest eigenvalue lies using a short
// Lanczos run; a rough value suffices (the main loop re-adapts it). A
// cancelled ctx cuts the pilot short; the fallback c/2 estimate is fine
// because the caller aborts at its next boundary check anyway.
func pilotCut(ctx context.Context, A Operator, c float64, h int, rng *rand.Rand) float64 {
	n := A.Dim()
	m := 60
	if m > n {
		m = n
	}
	v := make([]float64, n)
	//lint:ignore ctx-loop O(n) random vector fill; the pilot Lanczos loop below checks ctx
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	if EqZero(Normalize(v)) {
		return c / 2
	}
	V := make([][]float64, 0, m)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m)
	w := make([]float64, n)
	for j := 0; j < m; j++ {
		if ctx.Err() != nil {
			return c / 2
		}
		V = append(V, v)
		A.MatVec(w, v)
		if j > 0 {
			Axpy(-beta[j-1], V[j-1], w)
		}
		a := Dot(w, v)
		alpha = append(alpha, a)
		Axpy(-a, v, w)
		OrthogonalizeAgainst(w, V)
		bnorm := Norm2(w)
		if EqZero(bnorm) || j == m-1 {
			break
		}
		beta = append(beta, bnorm)
		nv := make([]float64, n)
		copy(nv, w)
		Scale(1/bnorm, nv)
		v = nv
	}
	vals, _, err := TridiagEig(alpha, beta[:len(alpha)-1], false)
	if err != nil || len(vals) == 0 || !isFinite(vals[len(vals)/4]) {
		return c / 2
	}
	// Ritz values of a short run overestimate the low end; take an early
	// quantile and pad upward.
	idx := len(vals) / 4
	cut := vals[idx] * 1.5
	if floor := 1e-6 * c; cut < floor {
		cut = floor
	}
	if cut > 0.95*c {
		cut = 0.95 * c
	}
	return cut
}

// chebFilterBlock applies the degree-d scaled Chebyshev filter for the
// damp interval [a, c] to every column of X in place, using the three-term
// recurrence T_{k+1}(t) = 2t·T_k(t) − T_{k-1}(t) on the affine map sending
// [a, c] to [−1, 1]. Columns are rescaled each step to dodge overflow (the
// amplification at the low end is exponential in d). Columns are
// independent, so they are filtered by a pool of workers; each worker
// carries its own recurrence buffers. Cancelling ctx makes workers stop
// between columns; the caller re-checks ctx after the block returns.
func chebFilterBlock(ctx context.Context, A Operator, X [][]float64, a, c float64, degree int) {
	n := A.Dim()
	e := (c - a) / 2
	mid := (c + a) / 2
	parallelFor(len(X), func(lo, hi int) {
		y := make([]float64, n)
		prev := make([]float64, n)
		cur := make([]float64, n)
		for col := lo; col < hi; col++ {
			if ctx.Err() != nil {
				return
			}
			x := X[col]
			copy(prev, x) // T_0 · x
			// T_1 · x = (A − mid)x / e
			A.MatVec(y, x)
			for j := 0; j < n; j++ {
				cur[j] = (y[j] - mid*x[j]) / e
			}
			for k := 2; k <= degree; k++ {
				A.MatVec(y, cur)
				for j := 0; j < n; j++ {
					y[j] = 2*(y[j]-mid*cur[j])/e - prev[j]
				}
				prev, cur, y = cur, y, prev
				if k%16 == 0 {
					if s := Norm2(cur); s > 1e100 {
						Scale(1/s, cur)
						Scale(1/s, prev)
					}
				}
			}
			copy(x, cur)
		}
	})
}

// parallelFor splits [0, n) across GOMAXPROCS workers, each receiving a
// contiguous chunk. Falls back to a direct call when one worker suffices.
func parallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// orthonormalizeBlock runs two passes of modified Gram-Schmidt over the
// block's columns, replacing any numerically collapsed column with a fresh
// random direction orthogonal to the rest.
func orthonormalizeBlock(X [][]float64, rng *rand.Rand) {
	for i := range X {
		for attempt := 0; ; attempt++ {
			for pass := 0; pass < 2; pass++ {
				for j := 0; j < i; j++ {
					Axpy(-Dot(X[i], X[j]), X[j], X[i])
				}
			}
			if Normalize(X[i]) > 1e-10 {
				break
			}
			if attempt > 4 {
				// Give up gracefully: leave a random unit vector (it will
				// be cleaned up by the next sweep's Rayleigh-Ritz).
				break
			}
			for j := range X[i] {
				X[i][j] = rng.NormFloat64()
			}
		}
	}
}

// rotateBlock computes X ← X·S for an n-column block and a small square
// rotation S (column i of the result is Σ_j S[j][i] X_j). Destination
// columns are independent and computed in parallel.
func rotateBlock(X [][]float64, S *Dense) {
	b := len(X)
	if b == 0 {
		return
	}
	n := len(X[0])
	out := make([][]float64, b)
	parallelFor(b, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			col := make([]float64, n)
			for j := 0; j < b; j++ {
				if s := S.At(j, i); !EqZero(s) {
					Axpy(s, X[j], col)
				}
			}
			out[i] = col
		}
	})
	for i := range X {
		copy(X[i], out[i])
	}
}
