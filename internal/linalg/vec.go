// Package linalg implements the numerical linear algebra this module needs,
// from scratch on the standard library: dense symmetric eigendecomposition
// (Householder tridiagonalization + implicit-shift QL, with a Sturm-sequence
// bisection solver as an independent cross-check), compressed sparse row
// matrices, and three iterative solvers for the smallest eigenvalues of
// large sparse PSD matrices — Chebyshev-filtered subspace iteration (the
// default: a block method that powers through the clustered,
// high-multiplicity spectra of structured computation graphs), Lanczos with
// full reorthogonalization and deflation, and a deflated power iteration.
package linalg

import "math"

// Dot returns the inner product of x and y. The slices must have equal length.
func Dot(x, y []float64) float64 {
	var s float64
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled to avoid overflow for very large norms; the sizes here are
	// modest, but the cost is negligible.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if EqZero(v) {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i, xv := range x {
		y[i] += a * xv
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the original
// norm. If x is the zero vector it is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if EqZero(n) {
		return 0
	}
	Scale(1/n, x)
	return n
}

// OrthogonalizeAgainst subtracts from x its projections onto each vector in
// basis (assumed orthonormal). Two passes of classical Gram-Schmidt give
// working orthogonality in floating point.
func OrthogonalizeAgainst(x []float64, basis [][]float64) {
	for pass := 0; pass < 2; pass++ {
		for _, b := range basis {
			Axpy(-Dot(x, b), b, x)
		}
	}
}
