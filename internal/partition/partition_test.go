package partition

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"graphio/internal/gen"
	"graphio/internal/graph"
	"graphio/internal/laplacian"
)

func TestRecursiveBisectionCoversAllVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(60)
		g := gen.ErdosRenyiDAG(n, 0.2, rng.Int63())
		maxSize := 1 + rng.Intn(12)
		parts, err := RecursiveBisection(g, maxSize)
		if err != nil {
			t.Fatal(err)
		}
		var all []int
		for _, p := range parts {
			if len(p) == 0 || len(p) > maxSize {
				t.Fatalf("part size %d violates maxSize %d", len(p), maxSize)
			}
			all = append(all, p...)
		}
		sort.Ints(all)
		if len(all) != n {
			t.Fatalf("cover size %d != n %d", len(all), n)
		}
		for i, v := range all {
			if v != i {
				t.Fatalf("vertex %d missing or duplicated", i)
			}
		}
	}
}

func TestRecursiveBisectionValidation(t *testing.T) {
	if _, err := RecursiveBisection(gen.Chain(4), 0); err == nil {
		t.Error("maxSize=0 accepted")
	}
	parts, err := RecursiveBisection(graph.NewBuilder(0, 0).MustBuild(), 4)
	if err != nil || len(parts) != 0 {
		t.Errorf("empty graph: %v, %v", parts, err)
	}
}

func TestBisectionOfPathIsContiguous(t *testing.T) {
	// The Fiedler vector of a path is monotone along it, so one spectral
	// bisection of a path must produce two contiguous halves.
	g := gen.Chain(32)
	parts, err := RecursiveBisection(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("got %d parts", len(parts))
	}
	for _, p := range parts {
		lo, hi := p[0], p[0]
		for _, v := range p {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo+1 != len(p) {
			t.Errorf("part %v is not contiguous", p)
		}
	}
}

func TestFiedlerVectorOnPath(t *testing.T) {
	g := gen.Chain(20)
	L, err := laplacian.BuildCSR(g, laplacian.Original)
	if err != nil {
		t.Fatal(err)
	}
	f := FiedlerVector(L, 2000, 1e-8, 1)
	if f == nil {
		t.Fatal("no Fiedler vector for a path")
	}
	// Rayleigh quotient ≈ λ2 = 2(1 − cos(π/20)).
	tmp := make([]float64, 20)
	L.MatVec(tmp, f)
	var num, den float64
	for i := range f {
		num += f[i] * tmp[i]
		den += f[i] * f[i]
	}
	want := 2 * (1 - math.Cos(math.Pi/20))
	if got := num / den; math.Abs(got-want) > 1e-4 {
		t.Errorf("Rayleigh quotient %g, want λ2 %g", got, want)
	}
	// Monotone along the path (up to global sign).
	inc, dec := true, true
	for i := 1; i < len(f); i++ {
		if f[i] < f[i-1] {
			inc = false
		}
		if f[i] > f[i-1] {
			dec = false
		}
	}
	if !inc && !dec {
		t.Error("path Fiedler vector should be monotone")
	}
}

func TestFiedlerVectorDegenerateInputs(t *testing.T) {
	g := gen.Chain(1)
	L, err := laplacian.BuildCSR(g, laplacian.Original)
	if err != nil {
		t.Fatal(err)
	}
	if FiedlerVector(L, 100, 1e-6, 1) != nil {
		t.Error("n=1 should return nil")
	}
	// Edgeless graph: Gershgorin bound 0 → nil.
	b := graph.NewBuilder(3, 0)
	b.AddVertices(3)
	L2, err := laplacian.BuildCSR(b.MustBuild(), laplacian.Original)
	if err != nil {
		t.Fatal(err)
	}
	if FiedlerVector(L2, 100, 1e-6, 1) != nil {
		t.Error("edgeless graph should return nil")
	}
}

func TestSortIdxByValue(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sortIdxByValue(idx, vals)
		seen := make([]bool, n)
		for i := 1; i < n; i++ {
			if vals[idx[i]] < vals[idx[i-1]] {
				t.Fatalf("not sorted at %d", i)
			}
		}
		for _, id := range idx {
			if seen[id] {
				t.Fatal("duplicate index after sort")
			}
			seen[id] = true
		}
	}
}

func TestBisectionEdgelessFallsBackToBFS(t *testing.T) {
	// An edgeless graph has no Fiedler vector (Gershgorin bound 0); the
	// bisection must fall back to BFS order and still cover everything.
	b := graph.NewBuilder(9, 0)
	b.AddVertices(9)
	g := b.MustBuild()
	parts, err := RecursiveBisection(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var all []int
	for _, p := range parts {
		if len(p) > 2 {
			t.Fatalf("part %v exceeds maxSize", p)
		}
		all = append(all, p...)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("cover broken: %v", all)
		}
	}
}

func TestBisectionSeparatesTwoCliques(t *testing.T) {
	// Two 8-cliques joined by one edge: spectral bisection should cut the
	// bridge, putting each clique in its own part.
	b := graph.NewBuilder(16, 0)
	b.AddVertices(16)
	for base := 0; base < 16; base += 8 {
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				b.MustEdge(base+i, base+j)
			}
		}
	}
	b.MustEdge(7, 8)
	g := b.MustBuild()
	parts, err := RecursiveBisection(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("%d parts", len(parts))
	}
	for _, p := range parts {
		lowSide := p[0] < 8
		for _, v := range p {
			if (v < 8) != lowSide {
				t.Fatalf("part %v mixes the two cliques", p)
			}
		}
	}
}
