// Package partition provides balanced graph partitioning — the METIS
// substitute used by the partitioned convex min-cut variant and by callers
// wanting per-part analyses. Recursive bisection splits a vertex set in
// two balanced halves along the Fiedler vector (the Laplacian's second
// eigenvector, approximated by deflated power iteration) and recurses until
// every part is at most the requested size. The spectral split degrades
// gracefully: when the power iteration stalls the bisection falls back to a
// BFS-order split, which always succeeds.
package partition

import (
	"errors"
	"math/rand"

	"graphio/internal/graph"
	"graphio/internal/laplacian"
	"graphio/internal/linalg"
)

// RecursiveBisection partitions g's vertices into parts of at most maxSize
// vertices each. Parts are returned as original-vertex-ID slices; their
// concatenation is a permutation of V.
func RecursiveBisection(g *graph.Graph, maxSize int) ([][]int, error) {
	if maxSize < 1 {
		return nil, errors.New("partition: maxSize must be ≥ 1")
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	var out [][]int
	var rec func(vs []int) error
	rec = func(vs []int) error {
		if len(vs) <= maxSize {
			if len(vs) > 0 {
				out = append(out, vs)
			}
			return nil
		}
		lo, hi, err := bisect(g, vs)
		if err != nil {
			return err
		}
		if err := rec(lo); err != nil {
			return err
		}
		return rec(hi)
	}
	if err := rec(all); err != nil {
		return nil, err
	}
	return out, nil
}

// bisect splits vs into two balanced halves, preferring the Fiedler-vector
// ordering and falling back to BFS order.
func bisect(g *graph.Graph, vs []int) (lo, hi []int, err error) {
	sub, err := g.InducedSubgraph(vs)
	if err != nil {
		return nil, nil, err
	}
	order := fiedlerOrder(sub)
	if order == nil {
		order = bfsOrder(sub)
	}
	half := len(vs) / 2
	lo = make([]int, 0, half)
	hi = make([]int, 0, len(vs)-half)
	for i, idx := range order {
		if i < half {
			lo = append(lo, vs[idx])
		} else {
			hi = append(hi, vs[idx])
		}
	}
	return lo, hi, nil
}

// fiedlerOrder returns the subgraph's vertices sorted by their Fiedler
// vector entry, or nil when the power iteration fails to produce a usable
// vector.
func fiedlerOrder(sub *graph.Graph) []int {
	L, err := laplacian.BuildCSR(sub, laplacian.Original)
	if err != nil {
		return nil
	}
	f := FiedlerVector(L, 400, 1e-6, 1)
	if f == nil {
		return nil
	}
	idx := make([]int, sub.N())
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free sort by Fiedler entry using a simple merge via sort
	// package semantics would pull in a closure; a straightforward
	// selection is fine at partitioner sizes... but parts can be large, so
	// use an index-sorting helper.
	sortIdxByValue(idx, f)
	return idx
}

// bfsOrder returns vertices in BFS order from vertex 0 across all weakly
// connected pieces; splitting it in half keeps parts contiguous-ish.
func bfsOrder(sub *graph.Graph) []int {
	n := sub.N()
	seen := make([]bool, n)
	order := make([]int, 0, n)
	for root := 0; root < n; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue := []int32{int32(root)}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			order = append(order, int(v))
			for _, w := range sub.Succ(int(v)) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
			for _, w := range sub.Pred(int(v)) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return order
}

// FiedlerVector approximates the eigenvector for the second-smallest
// eigenvalue of the PSD Laplacian L by power iteration on cI − L with the
// constant vector deflated. Returns nil when the iteration fails to
// converge to the requested tolerance.
func FiedlerVector(L *linalg.CSR, maxIter int, tol float64, seed int64) []float64 {
	n := L.N
	if n < 2 {
		return nil
	}
	c := L.GershgorinUpper()
	if c <= 0 {
		return nil // edgeless graph: no spectral information
	}
	B := &linalg.ShiftedNeg{A: L, C: c}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	linalg.Normalize(ones)
	deflate := [][]float64{ones}

	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	linalg.OrthogonalizeAgainst(v, deflate)
	if linalg.EqZero(linalg.Normalize(v)) {
		return nil
	}
	bv := make([]float64, n)
	resid := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		B.MatVec(bv, v)
		linalg.OrthogonalizeAgainst(bv, deflate)
		theta := linalg.Dot(bv, v)
		copy(resid, bv)
		linalg.Axpy(-theta, v, resid)
		if linalg.Norm2(resid) <= tol*c {
			return v
		}
		if linalg.EqZero(linalg.Normalize(bv)) {
			return v // iterate annihilated: v spans the remaining space
		}
		v, bv = bv, v
	}
	// Partitioning is a heuristic: a partially converged direction still
	// orders vertices usefully, so return it rather than failing.
	return v
}

// sortIdxByValue sorts idx so that vals[idx[i]] is non-decreasing.
func sortIdxByValue(idx []int, vals []float64) {
	// Bottom-up merge sort: deterministic, no stdlib closure allocation in
	// the hot partitioning path.
	n := len(idx)
	buf := make([]int, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if vals[idx[i]] <= vals[idx[j]] {
					buf[k] = idx[i]
					i++
				} else {
					buf[k] = idx[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = idx[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = idx[j]
				j++
				k++
			}
		}
		copy(idx, buf)
	}
}
