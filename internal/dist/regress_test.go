package dist

// Regression tests for the concurrency fixes that the lock-blocking and
// goroutine-join lint rules drove: result commits must not run under
// c.mu, Close must join the Serve goroutine, and LPT claim ordering must
// follow the wall-time history.

import (
	"net/http"
	"reflect"
	"testing"
	"time"
)

func TestBuildClaimOrderLPT(t *testing.T) {
	canonical := []string{"a", "b", "c", "d"}
	cases := []struct {
		name string
		hist map[string]time.Duration
		want []string
	}{
		{"no history keeps canonical order", nil, []string{"a", "b", "c", "d"}},
		{"known shards sort by descending wall time",
			map[string]time.Duration{"a": time.Second, "b": 4 * time.Second, "c": 2 * time.Second, "d": 3 * time.Second},
			[]string{"b", "d", "c", "a"}},
		{"unknown shards go first, in canonical order",
			map[string]time.Duration{"a": time.Second, "c": 2 * time.Second},
			[]string{"b", "d", "c", "a"}},
		{"ties stay in canonical order",
			map[string]time.Duration{"a": time.Second, "b": time.Second, "c": time.Second, "d": time.Second},
			[]string{"a", "b", "c", "d"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := buildClaimOrder(canonical, c.hist)
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("buildClaimOrder = %v, want %v", got, c.want)
			}
		})
	}
}

func TestClaimOrderFollowsWallHistory(t *testing.T) {
	_, url := newTestCoordinator(t, Config{
		Shards:     []string{"fast", "slow", "mid"},
		ConfigHash: "h",
		WallHistory: map[string]time.Duration{
			"fast": time.Second, "slow": 10 * time.Second, "mid": 5 * time.Second,
		},
	})
	for _, want := range []string{"slow", "mid", "fast"} {
		claim := claimUntilShard(t, url, "w1", "h")
		if claim.Shard != want {
			t.Fatalf("granted %s, want %s (LPT order)", claim.Shard, want)
		}
		var done CompleteResponse
		if _, err := postJSON(t, url+PathComplete, CompleteRequest{
			Worker: "w1", Shard: claim.Shard, Lease: claim.Lease, ConfigHash: "h",
			Title: claim.Shard, CSV: []byte("k,v\n"),
		}, &done); err != nil {
			t.Fatal(err)
		}
	}
}

// blockingSink gates CommitResult on a channel so a test can hold an
// upload mid-commit and probe what else the coordinator can do meanwhile.
type blockingSink struct {
	*memSink
	entered chan struct{} // closed when CommitResult is reached
	release chan struct{} // commit completes when this closes
}

func (s *blockingSink) CommitResult(name, title string, csv []byte, wallMS int64, worker string) error {
	close(s.entered)
	<-s.release
	return s.memSink.CommitResult(name, title, csv, wallMS, worker)
}

// TestCompleteCommitOutsideLock holds an upload inside Sink.CommitResult
// and requires a concurrent renewal to succeed while it is stuck: the
// multi-megabyte artifact fsync must not serialize the claim/renew path.
func TestCompleteCommitOutsideLock(t *testing.T) {
	sink := &blockingSink{
		memSink: newMemSink(),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	_, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha", "beta"}, ConfigHash: "h", Sink: sink,
	})
	alpha := claimUntilShard(t, url, "w1", "h")
	beta := claimUntilShard(t, url, "w2", "h")

	completeDone := make(chan error, 1)
	go func() {
		var done CompleteResponse
		_, err := postJSON(t, url+PathComplete, CompleteRequest{
			Worker: "w1", Shard: alpha.Shard, Lease: alpha.Lease, ConfigHash: "h",
			Title: "t", CSV: []byte("k,v\n"),
		}, &done)
		completeDone <- err
	}()

	select {
	case <-sink.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("upload never reached CommitResult")
	}

	renewDone := make(chan RenewResponse, 1)
	go func() {
		var renew RenewResponse
		if _, err := postJSON(t, url+PathRenew, RenewRequest{Worker: "w2", Shard: beta.Shard, Lease: beta.Lease}, &renew); err != nil {
			t.Error(err)
		}
		renewDone <- renew
	}()
	select {
	case renew := <-renewDone:
		if !renew.OK {
			t.Errorf("renewal during in-flight commit rejected: %+v", renew)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("renewal blocked behind an in-flight CommitResult: the commit is running under c.mu")
	}

	close(sink.release)
	if err := <-completeDone; err != nil {
		t.Fatalf("held upload failed after release: %v", err)
	}
}

// TestCloseJoinsServeGoroutine: Close must not return before the Serve
// goroutine has exited (the goroutine-join fix), and the port must really
// be closed afterwards.
func TestCloseJoinsServeGoroutine(t *testing.T) {
	c, err := New(Config{Shards: []string{"alpha"}, ConfigHash: "h", Sink: newMemSink(), OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr
	resp, err := http.Get(url + PathState)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	c.Close()
	select {
	case <-c.serveDone:
	default:
		t.Error("Close returned while the Serve goroutine was still running")
	}
	if _, err := http.Get(url + PathState); err == nil {
		t.Error("state endpoint still serving after Close")
	}
}
