package dist

// The wire protocol: four POST endpoints a worker drives (claim, renew,
// complete, fail) plus one GET (state) for introspection and scripts. All
// bodies are JSON; CSV payloads ride []byte fields (base64 in JSON).
// Protocol-level outcomes (lease lost, shard unknown) come back inside 200
// responses so workers can branch on typed fields; config-hash mismatches
// are 409s because they mean the worker is running the wrong sweep and
// must stop, not retry.

// Endpoint paths, versioned so a future protocol revision can coexist.
const (
	PathClaim    = "/v1/claim"
	PathRenew    = "/v1/renew"
	PathComplete = "/v1/complete"
	PathFail     = "/v1/fail"
	PathState    = "/v1/state"
)

// ClaimRequest asks for the next shard. ConfigHash is the worker's own
// experiments.Config hash; the coordinator rejects a mismatch so a
// misconfigured worker cannot pollute the sweep.
type ClaimRequest struct {
	Worker     string `json:"worker"`
	ConfigHash string `json:"config_hash"`
}

// ClaimResponse statuses.
const (
	ClaimShard = "shard" // a shard was granted; run it
	ClaimWait  = "wait"  // nothing claimable now; poll again after RetryMS
	ClaimDone  = "done"  // every shard is resolved; the worker may exit
)

// ClaimResponse carries a granted shard (Status == ClaimShard) or tells
// the worker to wait or exit.
type ClaimResponse struct {
	Status     string `json:"status"`
	Shard      string `json:"shard,omitempty"`
	Lease      string `json:"lease,omitempty"`
	LeaseTTLMS int64  `json:"lease_ttl_ms,omitempty"`
	Attempt    int    `json:"attempt,omitempty"` // 1-based attempt this grant is
	RetryMS    int64  `json:"retry_ms,omitempty"`
}

// RenewRequest extends a held lease; the worker sends one every TTL/3.
type RenewRequest struct {
	Worker string `json:"worker"`
	Shard  string `json:"shard"`
	Lease  string `json:"lease"`
}

// RenewResponse: OK false means the lease is gone (expired and reassigned,
// or the coordinator restarted without it) — the worker must abandon the
// shard run.
type RenewResponse struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// CompleteRequest uploads a finished shard. Uploads are idempotent per
// config hash: the coordinator accepts them even from expired leases and
// merges last-write-wins, so a worker that lost the response to a
// previous upload can safely retry.
type CompleteRequest struct {
	Worker     string `json:"worker"`
	Shard      string `json:"shard"`
	Lease      string `json:"lease"`
	ConfigHash string `json:"config_hash"`
	Title      string `json:"title"`
	CSV        []byte `json:"csv"`
	WallMS     int64  `json:"wall_ms"`
}

// CompleteResponse acknowledges a merged upload. Stale reports whether the
// lease had already been lost when the upload landed (informational).
type CompleteResponse struct {
	OK    bool `json:"ok"`
	Stale bool `json:"stale,omitempty"`
}

// FailRequest reports a shard run that errored. The coordinator re-queues
// the shard with backoff, or poisons it once attempts are exhausted.
type FailRequest struct {
	Worker string `json:"worker"`
	Shard  string `json:"shard"`
	Lease  string `json:"lease"`
	Error  string `json:"error"`
	WallMS int64  `json:"wall_ms"`
}

// FailResponse: Poisoned tells the worker the shard will not be retried.
type FailResponse struct {
	OK       bool `json:"ok"`
	Poisoned bool `json:"poisoned,omitempty"`
}

// Shard states as reported by /v1/state.
const (
	StatePending  = "pending"
	StateLeased   = "leased"
	StateDone     = "done"
	StatePoisoned = "poisoned"
)

// ShardInfo is one shard's row in the state dump.
type ShardInfo struct {
	Name        string `json:"name"`
	Status      string `json:"status"`
	Attempts    int    `json:"attempts"`
	Worker      string `json:"worker,omitempty"`
	LeaseMSLeft int64  `json:"lease_ms_left,omitempty"`
	Error       string `json:"error,omitempty"`
}

// StateResponse is the GET /v1/state body.
type StateResponse struct {
	Done       bool        `json:"done"`
	ConfigHash string      `json:"config_hash"`
	Shards     []ShardInfo `json:"shards"`
}
