package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphio/internal/faultinject"
)

// stubRun returns a RunFunc producing a deterministic table per shard
// after simulating delay of ctx-aware work.
func stubRun(delay time.Duration) RunFunc {
	return func(ctx context.Context, shard string) (string, []byte, error) {
		if err := sleepCtx(ctx, delay); err != nil {
			return "", nil, err
		}
		return "table " + shard, []byte("k,v\n1," + shard + "\n"), nil
	}
}

func TestWorkerRunsWholeSweep(t *testing.T) {
	sink := newMemSink()
	c, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha", "beta", "gamma"}, ConfigHash: "h", Sink: sink,
	})
	err := RunWorker(context.Background(), WorkerConfig{
		ID: "w1", Coordinator: url, ConfigHash: "h", Run: stubRun(time.Millisecond),
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		r, ok := sink.result(name)
		if !ok || r.worker != "w1" || r.title != "table "+name {
			t.Fatalf("sink result for %s = %+v, ok=%v", name, r, ok)
		}
	}
	if !c.Snapshot().Done {
		t.Fatal("sweep not done after worker finished")
	}
}

func TestWorkerReportsFailuresUntilPoison(t *testing.T) {
	sink := newMemSink()
	c, url := newTestCoordinator(t, Config{
		Shards: []string{"good", "bad"}, ConfigHash: "h", Sink: sink,
		MaxAttempts: 2, RetryDelay: time.Millisecond,
	})
	run := func(ctx context.Context, shard string) (string, []byte, error) {
		if shard == "bad" {
			return "", nil, errors.New("deterministic explosion")
		}
		return stubRun(0)(ctx, shard)
	}
	if err := RunWorker(context.Background(), WorkerConfig{
		ID: "w1", Coordinator: url, ConfigHash: "h", Run: run,
	}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if _, ok := sink.result("good"); !ok {
		t.Fatal("good shard missing from sink")
	}
	if n, ok := sink.poisonedAttempts("bad"); !ok || n != 2 {
		t.Fatalf("bad shard poisoned = (%d, %v), want (2, true)", n, ok)
	}
	if got := c.Poisoned(); len(got) != 1 || got[0] != "bad" {
		t.Fatalf("Poisoned() = %v", got)
	}
}

// A worker whose lease is yanked mid-run must abandon the shard silently —
// no failure report (the expiry already burned the attempt) — and then
// pick the shard back up on a fresh lease.
func TestWorkerAbandonsLostLeaseThenRetries(t *testing.T) {
	sink := newMemSink()
	c, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha"}, ConfigHash: "h", Sink: sink,
		LeaseTTL: 150 * time.Millisecond, MaxAttempts: 3, RetryDelay: time.Millisecond,
	})
	var runs atomic.Int64
	started := make(chan struct{}, 1)
	run := func(ctx context.Context, shard string) (string, []byte, error) {
		if runs.Add(1) == 1 {
			started <- struct{}{}
			<-ctx.Done() // wedged until the lease-loss cancellation arrives
			return "", nil, ctx.Err()
		}
		return stubRun(0)(ctx, shard)
	}
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), WorkerConfig{
			ID: "w1", Coordinator: url, ConfigHash: "h", Run: run,
		})
	}()
	<-started
	c.forceExpire("alpha") // the next renewal discovers the loss
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunWorker: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("worker did not converge after lease loss")
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("runs = %d, want 2 (abandon, then retry)", got)
	}
	if sink.commitCount("alpha") != 1 {
		t.Fatalf("commits = %d, want 1", sink.commitCount("alpha"))
	}
	// Exactly one failure record — the lease expiry. A worker-side fail
	// report would make it two (double-charging the attempt).
	if n := sink.failureCount("alpha"); n != 1 {
		t.Fatalf("failure records = %d, want 1 (expiry only, no worker report)", n)
	}
	snap := c.Snapshot()
	if snap.Shards[0].Attempts != 2 || snap.Shards[0].Status != StateDone {
		t.Fatalf("final shard state = %+v, want done on attempt 2", snap.Shards[0])
	}
}

// pathFault routes requests to one path through a faulting transport and
// everything else through the clean base — faults aimed at result uploads
// without disturbing the claim/renew chatter.
type pathFault struct {
	path  string
	inner http.RoundTripper
	base  http.RoundTripper
	hits  atomic.Int64
}

func (p *pathFault) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasSuffix(r.URL.Path, p.path) {
		p.hits.Add(1)
		return p.inner.RoundTrip(r)
	}
	return p.base.RoundTrip(r)
}

// The half-open upload: the coordinator commits the result but the worker
// never sees the ACK. The retry double-submits; last-write-wins absorbs it.
func TestWorkerUploadSurvivesDroppedResponse(t *testing.T) {
	sink := newMemSink()
	_, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha"}, ConfigHash: "h", Sink: sink,
	})
	ft := &faultinject.Transport{DropFrom: 1, Until: 1} // first upload's response is lost
	client := &http.Client{Transport: &pathFault{path: PathComplete, inner: ft, base: http.DefaultTransport}}
	if err := RunWorker(context.Background(), WorkerConfig{
		ID: "w1", Coordinator: url, ConfigHash: "h", Run: stubRun(0),
		Client: client, PollDelay: 5 * time.Millisecond,
	}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if got := ft.Faults(); got != 1 {
		t.Fatalf("injected faults = %d, want 1", got)
	}
	if got := sink.commitCount("alpha"); got != 2 {
		t.Fatalf("commits = %d, want 2 (the dropped ACK forced a double submit)", got)
	}
	if _, ok := sink.result("alpha"); !ok {
		t.Fatal("result missing after retried upload")
	}
}

// A truncated (torn mid-body) upload response is just another transient:
// the worker retries and the sweep converges.
func TestWorkerUploadSurvivesTruncatedResponse(t *testing.T) {
	sink := newMemSink()
	_, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha"}, ConfigHash: "h", Sink: sink,
	})
	ft := &faultinject.Transport{TruncateFrom: 1, TruncateBytes: 3, Until: 1}
	client := &http.Client{Transport: &pathFault{path: PathComplete, inner: ft, base: http.DefaultTransport}}
	if err := RunWorker(context.Background(), WorkerConfig{
		ID: "w1", Coordinator: url, ConfigHash: "h", Run: stubRun(0),
		Client: client, PollDelay: 5 * time.Millisecond,
	}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if _, ok := sink.result("alpha"); !ok {
		t.Fatal("result missing after truncated-response retry")
	}
}

func TestWorkerConfigHashMismatchIsFatal(t *testing.T) {
	_, url := newTestCoordinator(t, Config{Shards: []string{"alpha"}, ConfigHash: "right"})
	err := RunWorker(context.Background(), WorkerConfig{
		ID: "w1", Coordinator: url, ConfigHash: "wrong", Run: stubRun(0),
	})
	if err == nil || !strings.Contains(err.Error(), "config hash mismatch") {
		t.Fatalf("RunWorker with wrong hash = %v, want fatal mismatch error", err)
	}
}

func TestWorkerGivesUpOnUnreachableCoordinator(t *testing.T) {
	err := RunWorker(context.Background(), WorkerConfig{
		ID: "w1", Coordinator: "http://127.0.0.1:1", ConfigHash: "h", Run: stubRun(0),
		PollDelay: time.Millisecond, MaxIdle: 50 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("RunWorker against dead coordinator = %v, want unreachable error", err)
	}
}

// Two workers racing one coordinator must partition the shards between
// them without double-running anything on the happy path.
func TestWorkersPartitionShards(t *testing.T) {
	sink := newMemSink()
	shards := make([]string, 8)
	for i := range shards {
		shards[i] = fmt.Sprintf("s%02d", i)
	}
	c, url := newTestCoordinator(t, Config{Shards: shards, ConfigHash: "h", Sink: sink})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(context.Background(), WorkerConfig{
				ID: fmt.Sprintf("w%d", i), Coordinator: url, ConfigHash: "h",
				Run: stubRun(2 * time.Millisecond), PollDelay: 2 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	workers := map[string]bool{}
	for _, name := range shards {
		r, ok := sink.result(name)
		if !ok {
			t.Fatalf("shard %s missing", name)
		}
		if sink.commitCount(name) != 1 {
			t.Fatalf("shard %s committed %d times, want 1", name, sink.commitCount(name))
		}
		workers[r.worker] = true
	}
	if !c.Snapshot().Done {
		t.Fatal("sweep not done")
	}
	_ = workers // either worker may win every race; partitioning is not asserted
}
