// Package dist scales the experiment sweep beyond one process: a
// coordinator owns the sweep's outDir and shards its experiment manifest;
// stateless workers claim shards over a small HTTP/JSON API, run them
// through the ordinary experiments.RunAll path, and upload the resulting
// tables for the coordinator to merge. The merged directory is
// indistinguishable from a single-process sweep — same manifest journal,
// same -resume semantics, and a report.txt byte-identical to what one
// process would have written for the same surviving experiments.
//
// Fault tolerance is lease-based. A claim grants a shard lease with a TTL;
// the worker renews it while the shard runs. A worker that is SIGKILLed,
// wedged, or partitioned stops renewing, its lease expires, and the
// coordinator re-queues the shard with exponential backoff (plus
// deterministic jitter) for another worker to claim. A shard that keeps
// failing is poisoned after a capped number of attempts: the sweep
// completes without it, and the final report names the poisoned shards
// explicitly instead of silently shrinking. Because results are a pure
// function of the config hash both sides verify at claim and upload time,
// a late upload from a worker whose lease was reassigned is accepted and
// merged last-write-wins — the half-open network case (response lost after
// the server committed) therefore converges instead of diverging.
//
// The coordinator itself is crash-safe: every lease grant and terminal
// transition lands in a CRC-framed persist journal (the WAL, dist.json in
// outDir) before it takes effect, so a killed coordinator restarted with
// -resume replays its assignment state, restores in-flight leases with a
// fresh TTL, and keeps accepting renewals from workers that survived the
// outage. Workers ride out the gap on the same capped backoff they use for
// any transport error.
//
// Everything observable rides the obs scope tree: the coordinator opens a
// "dist" scope with one child per shard (live on /tasks while unresolved),
// and each worker wraps its shard runs in a scope named after the worker
// ID, so a metrics dump from a worker shows worker-<id>/sweep/<experiment>
// attribution per shard.
package dist
