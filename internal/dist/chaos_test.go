package dist

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphio/internal/experiments"
	"graphio/internal/faultinject"
	"graphio/internal/obs"
)

// Chaos: the whole machine under fire, with the real experiments.Merge as
// the sink. Workers are SIGKILLed mid-shard (simulated by cancelling their
// context so they vanish without reporting), stall past lease expiry
// without renewing, and lose upload ACKs to an injected flaky network —
// and the surviving fleet must still converge to an output directory
// byte-identical to an undisturbed run. scripts/verify_dist.sh repeats
// this at the process level with real SIGKILLs and a coordinator restart.

// openMergeSink opens an experiments.Merge over dir.
func openMergeSink(t *testing.T, dir string, resume bool) *experiments.Merge {
	t.Helper()
	m, err := experiments.OpenMerge(context.Background(), dir, experiments.Config{}, resume)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// chaosShards is the shard set all chaos tests sweep.
var chaosShards = []string{"s00", "s01", "s02", "s03", "s04", "s05"}

// referenceDir runs the sweep's commits undisturbed into a fresh Merge and
// returns its directory — the golden everything chaotic must match.
func referenceDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	m := openMergeSink(t, dir, false)
	for _, name := range chaosShards {
		title, csv, err := stubRun(0)(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CommitResult(name, title, csv, 1, "ref"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.FinishReport(chaosShards); err != nil {
		t.Fatal(err)
	}
	return dir
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosConvergesToSingleProcessReport is the headline guarantee: one
// worker SIGKILLed mid-shard, one stalled past lease expiry, one with a
// flaky network dropping upload ACKs — and the final report.txt is
// byte-identical to an undisturbed single-process sweep.
func TestChaosConvergesToSingleProcessReport(t *testing.T) {
	obs.Enable(true)
	defer obs.Enable(false)
	outDir := t.TempDir()
	merge := openMergeSink(t, outDir, false)
	c, err := New(Config{
		Shards: chaosShards, ConfigHash: merge.ConfigHash(), Sink: merge,
		OutDir: outDir, LeaseTTL: 250 * time.Millisecond,
		MaxAttempts: 5, RetryDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	url, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url = "http://" + url

	ctx, cancelAll := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelAll()

	// Victim 1: claims a shard, wedges, and is SIGKILLed (context torn
	// down) mid-run — it never reports anything and stops renewing.
	victimCtx, killVictim := context.WithCancel(ctx)
	victimStarted := make(chan struct{}, 1)
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		_ = RunWorker(victimCtx, WorkerConfig{
			ID: "victim", Coordinator: url, ConfigHash: merge.ConfigHash(),
			Run: func(rctx context.Context, shard string) (string, []byte, error) {
				victimStarted <- struct{}{}
				<-rctx.Done()
				return "", nil, rctx.Err()
			},
		})
	}()

	// Victim 2: stalls holding its lease hostage, never renewing.
	stallCtx, stopStall := context.WithCancel(ctx)
	stallDone := make(chan struct{})
	go func() {
		defer close(stallDone)
		_ = RunWorker(stallCtx, WorkerConfig{
			ID: "staller", Coordinator: url, ConfigHash: merge.ConfigHash(),
			StallAfterClaim: true,
		})
	}()

	<-victimStarted
	killVictim() // SIGKILL: vanishes mid-shard without a word

	// The survivors: one healthy, one whose upload ACKs get eaten.
	ft := &faultinject.Transport{DropFrom: 1, Until: 2}
	flakyClient := &http.Client{Transport: &pathFault{path: PathComplete, inner: ft, base: http.DefaultTransport}}
	workerErrs := make(chan error, 2)
	go func() {
		workerErrs <- RunWorker(ctx, WorkerConfig{
			ID: "healthy", Coordinator: url, ConfigHash: merge.ConfigHash(),
			Run: stubRun(5 * time.Millisecond), PollDelay: 10 * time.Millisecond,
		})
	}()
	go func() {
		workerErrs <- RunWorker(ctx, WorkerConfig{
			ID: "flaky", Coordinator: url, ConfigHash: merge.ConfigHash(),
			Run: stubRun(5 * time.Millisecond), PollDelay: 10 * time.Millisecond,
			Client: flakyClient,
		})
	}()

	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator did not converge: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-workerErrs; err != nil {
			t.Fatalf("surviving worker: %v", err)
		}
	}
	stopStall()
	<-stallDone
	<-victimDone

	if got := c.Poisoned(); len(got) != 0 {
		t.Fatalf("shards poisoned despite surviving workers: %v", got)
	}
	if _, err := merge.FinishReport(chaosShards); err != nil {
		t.Fatal(err)
	}
	// Chaos actually happened: at least the victim's and staller's leases
	// expired, and at least one upload ACK was eaten.
	if got := c.scope.Counter("dist.expirations"); got < 2 {
		t.Fatalf("dist.expirations = %d, want >= 2 (victim + staller)", got)
	}
	if ft.Faults() == 0 {
		t.Fatal("no upload faults injected; the flaky path went unexercised")
	}

	ref := referenceDir(t)
	if want, got := readFile(t, filepath.Join(ref, "report.txt")), readFile(t, filepath.Join(outDir, "report.txt")); !bytes.Equal(want, got) {
		t.Errorf("chaos report differs from single-process report:\n--- single\n%s--- chaos\n%s", want, got)
	}
	for _, name := range chaosShards {
		if want, got := readFile(t, filepath.Join(ref, name+".csv")), readFile(t, filepath.Join(outDir, name+".csv")); !bytes.Equal(want, got) {
			t.Errorf("%s.csv differs from single-process run", name)
		}
	}

	// And the merged directory resumes like any single-process sweep.
	merge.Close()
	m2 := openMergeSink(t, outDir, true)
	for _, name := range chaosShards {
		if !m2.Reusable(name) {
			t.Errorf("shard %s does not verify on resume after chaos", name)
		}
	}
}

// TestChaosCoordinatorRestart kills the coordinator mid-sweep and restarts
// it with -resume: the WAL replays, the surviving worker rides out the
// outage on claim/renew retries, completed shards are not re-granted, and
// the sweep still converges.
func TestChaosCoordinatorRestart(t *testing.T) {
	outDir := t.TempDir()
	merge := openMergeSink(t, outDir, false)
	shards := []string{"s00", "s01", "s02", "s03"}
	cfg := Config{
		Shards: shards, ConfigHash: merge.ConfigHash(), Sink: merge,
		OutDir: outDir, LeaseTTL: 2 * time.Second,
		MaxAttempts: 3, RetryDelay: 5 * time.Millisecond,
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var runsSeen atomic.Int64
	firstDone := make(chan struct{}, 1)
	run := func(rctx context.Context, shard string) (string, []byte, error) {
		n := runsSeen.Add(1)
		title, csv, err := stubRun(100*time.Millisecond)(rctx, shard)
		if n == 1 && err == nil {
			select {
			case firstDone <- struct{}{}:
			default:
			}
		}
		return title, csv, err
	}
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerConfig{
			ID: "w1", Coordinator: url, ConfigHash: merge.ConfigHash(), Run: run,
			PollDelay: 10 * time.Millisecond, MaxIdle: 30 * time.Second,
		})
	}()

	<-firstDone
	// Give the first upload a moment to land, then kill the coordinator.
	waitFor(t, 5*time.Second, func() bool {
		for _, s := range c1.Snapshot().Shards {
			if s.Status == StateDone {
				return true
			}
		}
		return false
	})
	doneBefore := map[string]bool{}
	for _, s := range c1.Snapshot().Shards {
		if s.Status == StateDone {
			doneBefore[s.Name] = true
		}
	}
	c1.Close() // SIGKILL-equivalent for assignment state: only the WAL survives

	time.Sleep(50 * time.Millisecond) // the outage window
	cfg.Resume = true
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Start(addr); err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	for _, s := range c2.Snapshot().Shards {
		if doneBefore[s.Name] && s.Status != StateDone {
			t.Fatalf("shard %s was done before the restart but replayed as %s", s.Name, s.Status)
		}
	}

	if err := c2.Wait(ctx); err != nil {
		t.Fatalf("post-restart convergence: %v", err)
	}
	if err := <-workerErr; err != nil {
		t.Fatalf("worker did not ride out the restart: %v", err)
	}
	if _, err := merge.FinishReport(shards); err != nil {
		t.Fatal(err)
	}
	for name := range doneBefore {
		// Re-granting a completed shard would show up as a second run.
		if runsSeen.Load() > int64(len(shards)+1) {
			t.Fatalf("%d runs for %d shards: restart re-granted completed work", runsSeen.Load(), len(shards))
		}
		_ = name
	}
	report := readFile(t, filepath.Join(outDir, "report.txt"))
	for _, name := range shards {
		if !bytes.Contains(report, []byte(name)) {
			t.Errorf("report.txt missing shard %s after restart:\n%s", name, report)
		}
	}
}

// TestChaosPoisonedShardInReport: a shard that fails every attempt is
// poisoned, the sweep still completes, and the report says so explicitly.
func TestChaosPoisonedShardInReport(t *testing.T) {
	outDir := t.TempDir()
	merge := openMergeSink(t, outDir, false)
	shards := []string{"good", "doomed"}
	c, err := New(Config{
		Shards: shards, ConfigHash: merge.ConfigHash(), Sink: merge,
		OutDir: outDir, MaxAttempts: 2, RetryDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	run := func(rctx context.Context, shard string) (string, []byte, error) {
		if shard == "doomed" {
			return "", nil, errors.New("always explodes")
		}
		return stubRun(0)(rctx, shard)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := RunWorker(ctx, WorkerConfig{
		ID: "w1", Coordinator: "http://" + addr, ConfigHash: merge.ConfigHash(), Run: run,
		PollDelay: 5 * time.Millisecond,
	}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Poisoned(); len(got) != 1 || got[0] != "doomed" {
		t.Fatalf("Poisoned() = %v, want [doomed]", got)
	}
	included, err := merge.FinishReport(shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(included) != 1 || included[0] != "good" {
		t.Fatalf("included = %v, want [good]", included)
	}
	report := string(readFile(t, filepath.Join(outDir, "report.txt")))
	if !strings.Contains(report, "poisoned shards") ||
		!strings.Contains(report, "doomed: gave up after 2 attempt(s)") {
		t.Errorf("report does not name the poisoned shard:\n%s", report)
	}
	// The poisoned record survives resume: a later sweep re-runs it.
	merge.Close()
	m2 := openMergeSink(t, outDir, true)
	if m2.Reusable("doomed") {
		t.Error("poisoned shard reported reusable on resume")
	}
	if !m2.Reusable("good") {
		t.Error("good shard does not verify on resume")
	}
}

// TestChaosFullRestartReportComplete is the process-level restart the
// in-process coordinator-restart test cannot reach: coordinator AND Merge
// both die (as when the whole process is SIGKILLed) and a fresh pair
// reopened with resume finishes the sweep. Shards completed before the
// crash must re-enter the report through artifact verification — a WAL
// that says done is not enough, the restarted Merge has to reload the
// tables — and the final directory must match an undisturbed run.
func TestChaosFullRestartReportComplete(t *testing.T) {
	ref := referenceDir(t)
	outDir := t.TempDir()

	// Epoch 1: complete half the shards over the wire, then crash.
	m1 := openMergeSink(t, outDir, false)
	hash := m1.ConfigHash()
	c1, err := New(Config{
		Shards: chaosShards, ConfigHash: hash, Sink: m1, OutDir: outDir,
		LeaseTTL: time.Second, MaxAttempts: 3, RetryDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(chaosShards)/2; i++ {
		g := claimUntilShard(t, "http://"+addr, "w1", hash)
		title, csv, err := stubRun(0)(context.Background(), g.Shard)
		if err != nil {
			t.Fatal(err)
		}
		var done CompleteResponse
		if _, err := postJSON(t, "http://"+addr+PathComplete, CompleteRequest{
			Worker: "w1", Shard: g.Shard, Lease: g.Lease, ConfigHash: hash,
			Title: title, CSV: csv, WallMS: 1,
		}, &done); err != nil {
			t.Fatal(err)
		}
		if !done.OK {
			t.Fatalf("epoch-1 upload of %s rejected", g.Shard)
		}
	}
	c1.Close()
	m1.Close()

	// Epoch 2: everything reopens with resume; a worker drains the rest.
	m2 := openMergeSink(t, outDir, true)
	c2, err := New(Config{
		Shards: chaosShards, ConfigHash: m2.ConfigHash(), Sink: m2,
		OutDir: outDir, Resume: true,
		LeaseTTL: time.Second, MaxAttempts: 3, RetryDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	addr2, err := c2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerConfig{
			ID: "w2", Coordinator: "http://" + addr2, ConfigHash: m2.ConfigHash(),
			Run: stubRun(0), PollDelay: 10 * time.Millisecond,
		})
	}()
	if err := c2.Wait(ctx); err != nil {
		t.Fatalf("post-restart convergence: %v", err)
	}
	if err := <-workerErr; err != nil {
		t.Fatalf("epoch-2 worker: %v", err)
	}
	if _, err := m2.FinishReport(chaosShards); err != nil {
		t.Fatal(err)
	}
	for _, name := range append([]string{"report.txt"}, chaosShards...) {
		f := name
		if f != "report.txt" {
			f += ".csv"
		}
		got := readFile(t, filepath.Join(outDir, f))
		want := readFile(t, filepath.Join(ref, f))
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs from the undisturbed run after a full restart:\n got: %q\nwant: %q", f, got, want)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
