package dist

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"graphio/internal/obs"
	"graphio/internal/persist"
)

// Sink is where shard outcomes land. *experiments.Merge satisfies it
// exactly; tests substitute an in-memory recorder. Every method must be
// safe for concurrent use — the coordinator's HTTP handlers call them as
// uploads arrive.
type Sink interface {
	// Reusable reports whether a prior artifact for the shard still
	// verifies, in which case the coordinator marks it done without
	// granting it (the -resume skip path).
	Reusable(name string) bool
	// CommitResult durably merges one completed shard (last-write-wins on
	// repeats). An error means the upload was rejected or could not be
	// made durable; the coordinator keeps the shard unresolved.
	CommitResult(name, title string, csv []byte, wallMS int64, worker string) error
	// CommitFailure records one failed attempt (audit trail, not a verdict).
	CommitFailure(name string, wallMS int64, cause error, worker string) error
	// CommitPoisoned records that the sweep gave up on the shard.
	CommitPoisoned(name string, attempts int, cause error) error
}

// Config configures a Coordinator.
type Config struct {
	// Shards are the experiment names to distribute, in canonical
	// (Runners()) order.
	Shards []string
	// ConfigHash pins the sweep: claims and uploads carrying a different
	// hash are rejected with 409 so a misconfigured worker cannot pollute
	// the results.
	ConfigHash string
	// Sink receives shard outcomes.
	Sink Sink
	// OutDir holds the WAL (dist.json). Usually the sweep's output
	// directory, next to manifest.json.
	OutDir string
	// Resume replays an existing WAL, restoring assignment state from a
	// crashed coordinator; otherwise any prior WAL is discarded.
	Resume bool
	// LeaseTTL is how long a granted shard stays owned without a renewal.
	// Default 30s.
	LeaseTTL time.Duration
	// MaxAttempts caps grants per shard before it is poisoned. Default 3.
	MaxAttempts int
	// RetryDelay is the base of the exponential re-queue backoff after a
	// failed or expired attempt. Default 1s.
	RetryDelay time.Duration
	// AuthToken, when non-empty, requires every request to carry
	// "Authorization: Bearer <token>" (shared with workers via
	// WorkerConfig.AuthToken / GRAPHIO_TOKEN). Token check only; transport
	// encryption is out of scope.
	AuthToken string
	// WallHistory maps shard names to their wall time in a prior run
	// (experiments.Merge.WallHistory provides it from the manifest). When
	// non-empty the coordinator grants the slowest known shards first (LPT
	// scheduling), shrinking sweep makespan: without it a long shard
	// granted last leaves one worker grinding while the rest idle.
	WallHistory map[string]time.Duration
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 30 * time.Second
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c Config) retryDelay() time.Duration {
	if c.RetryDelay > 0 {
		return c.RetryDelay
	}
	return time.Second
}

// walName is the coordinator's journal, kept in OutDir beside the sweep
// manifest. Same CRC-framed JSONL format (persist.Journal).
const walName = "dist.json"

// walRecord is one assignment-state transition. Each record is appended
// (and fsynced) *before* the in-memory transition it describes takes
// effect, so a coordinator killed at any instant restarts into a state it
// had durably announced.
type walRecord struct {
	Kind    string `json:"kind"` // grant | complete | fail | poison
	Shard   string `json:"shard"`
	Worker  string `json:"worker,omitempty"`
	Lease   string `json:"lease,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// shardState is one shard's slot in the coordinator's state machine:
// pending -> leased -> done | back to pending (attempt burned) | poisoned.
type shardState struct {
	name      string
	state     string // StatePending | StateLeased | StateDone | StatePoisoned
	attempts  int    // grants so far (1-based on the current lease)
	worker    string
	lease     string
	expiry    time.Time // lease deadline while leased
	notBefore time.Time // re-queue backoff gate while pending
	lastErr   string
	scope     *obs.Scope // open while unresolved and at least once granted
}

// Coordinator shards a sweep across workers: it serves the claim protocol,
// enforces leases, journals every transition to the WAL, and funnels
// outcomes into the Sink.
type Coordinator struct {
	cfg   Config
	scope *obs.Scope

	mu     sync.Mutex
	wal    *persist.Journal
	shards map[string]*shardState
	order  []string // canonical (display/snapshot) order
	grants []string // claim-time order: LPT when WallHistory is known
	seq    int      // lease sequence, monotone across restarts (replayed from WAL)

	srv       *http.Server
	ln        net.Listener
	serveDone chan struct{} // closed when the Serve goroutine exits
}

// New opens (or, with cfg.Resume, replays) the WAL and returns a
// coordinator ready to serve. Shards whose artifacts the Sink already
// verifies are marked done up front — the distributed analogue of the
// -resume skip.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("dist: no shards to coordinate")
	}
	if cfg.Sink == nil {
		return nil, errors.New("dist: Config.Sink is required")
	}
	walPath := filepath.Join(cfg.OutDir, walName)
	if !cfg.Resume {
		if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	wal, records, err := persist.OpenJournal(walPath)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		scope:  obs.NewScope("dist"),
		wal:    wal,
		shards: map[string]*shardState{},
		order:  append([]string(nil), cfg.Shards...),
	}
	c.grants = buildClaimOrder(c.order, cfg.WallHistory)
	for _, name := range c.order {
		c.shards[name] = &shardState{name: name, state: StatePending}
	}
	if err := c.replay(records); err != nil {
		_ = wal.Close()
		c.scope.Close()
		return nil, err
	}
	// Shards still pending after replay may already have verified artifacts
	// (a prior sweep, or work that completed before a crash the WAL missed
	// the tail of): skip them exactly like a single-process -resume would.
	for _, name := range c.order {
		s := c.shards[name]
		if s.state == StatePending && cfg.Sink.Reusable(name) {
			s.state = StateDone
			c.logf("dist: shard %s reused (artifact verified)", name)
			c.scope.Inc("dist.reused")
		}
	}
	return c, nil
}

// replay rebuilds the shard state machine from WAL records. Leases found
// still open are restored with a fresh TTL from restart time: a surviving
// worker keeps renewing and never notices the outage; a dead worker's
// restored lease expires on the normal schedule and the shard is re-queued.
func (c *Coordinator) replay(records [][]byte) error {
	for i, raw := range records {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("dist: WAL record %d: %w", i+1, err)
		}
		s, ok := c.shards[r.Shard]
		if !ok {
			// A WAL written by a sweep over a different shard set: refuse
			// rather than silently dropping assignment state.
			return fmt.Errorf("dist: WAL names unknown shard %q (stale dist.json? run without -resume)", r.Shard)
		}
		switch r.Kind {
		case "grant":
			s.state = StateLeased
			s.worker, s.lease, s.attempts = r.Worker, r.Lease, r.Attempt
			s.expiry = obs.Now().Add(c.cfg.leaseTTL())
			c.seq++
		case "complete":
			s.state = StateDone
			s.worker, s.lease = "", ""
		case "fail":
			s.state = StatePending
			s.worker, s.lease = "", ""
			if r.Attempt > 0 {
				s.attempts = r.Attempt
			}
			s.lastErr = r.Error
			s.notBefore = obs.Now().Add(c.requeueDelay(s.attempts))
		case "poison":
			s.state = StatePoisoned
			s.worker, s.lease = "", ""
			s.attempts, s.lastErr = r.Attempt, r.Error
		default:
			return fmt.Errorf("dist: WAL record %d: unknown kind %q", i+1, r.Kind)
		}
	}
	replayed := 0
	for _, name := range c.order {
		s := c.shards[name]
		switch s.state {
		case StateLeased:
			c.logf("dist: restored lease %s on %s (worker %s, fresh TTL)", s.lease, s.name, s.worker)
			s.scope = c.scope.Child(s.name)
			replayed++
		case StatePoisoned:
			// Repopulate the sink's poisoned set so the final report still
			// names the shard after a coordinator restart.
			if err := c.cfg.Sink.CommitPoisoned(s.name, s.attempts, errors.New(s.lastErr)); err != nil {
				return err
			}
			replayed++
		case StateDone:
			// The WAL says done, but the restarted sink has not seen the
			// result — and the artifact could have vanished in the outage.
			// Re-verify through the sink, which reloads the table for the
			// final report on success (the -resume skip path); on failure
			// the shard re-queues rather than silently dropping out.
			if c.cfg.Sink.Reusable(s.name) {
				replayed++
			} else {
				s.state = StatePending
				c.logf("dist: shard %s done in the WAL but its artifact no longer verifies; re-queuing", s.name)
			}
		}
	}
	if replayed > 0 {
		c.logf("dist: WAL replayed %d resolved/in-flight shard(s)", replayed)
	}
	return nil
}

// buildClaimOrder decides the order shards are granted in: shards with no
// recorded wall time first, in canonical order (their cost is unknown, so
// starting them early bounds the surprise), then known shards
// longest-first — the classic LPT heuristic, which keeps the slowest
// shard off the critical path of the sweep's tail.
func buildClaimOrder(canonical []string, hist map[string]time.Duration) []string {
	if len(hist) == 0 {
		return append([]string(nil), canonical...)
	}
	var unknown, known []string
	for _, name := range canonical {
		if _, ok := hist[name]; ok {
			known = append(known, name)
		} else {
			unknown = append(unknown, name)
		}
	}
	sort.SliceStable(known, func(i, j int) bool { return hist[known[i]] > hist[known[j]] })
	return append(unknown, known...)
}

// requeueDelay is the backoff before a shard that burned attempt n becomes
// claimable again: RetryDelay * 2^(n-1), up to half of that again as
// deterministic jitter, capped at 30s.
func (c *Coordinator) requeueDelay(attempt int) time.Duration {
	d := c.cfg.retryDelay()
	for i := 1; i < attempt && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d + time.Duration(jitterFrac(int64(attempt), int64(c.seq))*float64(d)/2)
}

// append journals one WAL record; the caller holds c.mu. An error means
// the transition must not take effect.
func (c *Coordinator) append(r walRecord) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return c.wal.Append(raw)
}

// expireLocked sweeps leases past their deadline; the caller holds c.mu.
// An expired lease burns the attempt: the shard is re-queued with backoff
// or poisoned once attempts are exhausted.
func (c *Coordinator) expireLocked() {
	now := obs.Now()
	for _, name := range c.order {
		s := c.shards[name]
		if s.state != StateLeased || now.Before(s.expiry) {
			continue
		}
		cause := fmt.Errorf("lease %s expired (worker %s stopped renewing)", s.lease, s.worker)
		c.logf("dist: shard %s attempt %d: %v", s.name, s.attempts, cause)
		c.scope.Inc("dist.expirations")
		//lint:ignore lock-blocking expiry must burn the attempt atomically with the lease state under c.mu; failure records are small appends, not CSV merges
		if err := c.cfg.Sink.CommitFailure(s.name, 0, cause, s.worker); err != nil {
			c.logf("dist: recording expiry of %s: %v", s.name, err)
		}
		c.resolveAttemptLocked(s, cause)
	}
}

// resolveAttemptLocked ends the current attempt in failure: re-queue with
// backoff, or poison past the cap. The caller holds c.mu.
func (c *Coordinator) resolveAttemptLocked(s *shardState, cause error) {
	if s.attempts >= c.cfg.maxAttempts() {
		//lint:ignore lock-blocking append-before-effect: poison/fail records must be durable before the transition they describe, atomically under the caller's c.mu
		if err := c.append(walRecord{Kind: "poison", Shard: s.name, Attempt: s.attempts, Error: cause.Error()}); err != nil {
			c.logf("dist: WAL poison %s: %v", s.name, err)
			return
		}
		s.state = StatePoisoned
		s.worker, s.lease = "", ""
		s.lastErr = cause.Error()
		if err := c.cfg.Sink.CommitPoisoned(s.name, s.attempts, cause); err != nil {
			c.logf("dist: poisoning %s: %v", s.name, err)
		}
		s.scope.Close()
		s.scope = nil
		c.scope.Inc("dist.poisoned")
		c.logf("dist: shard %s poisoned after %d attempt(s): %v", s.name, s.attempts, cause)
		return
	}
	if err := c.append(walRecord{Kind: "fail", Shard: s.name, Attempt: s.attempts, Error: cause.Error()}); err != nil {
		c.logf("dist: WAL fail %s: %v", s.name, err)
		return
	}
	s.state = StatePending
	s.worker, s.lease = "", ""
	s.lastErr = cause.Error()
	s.notBefore = obs.Now().Add(c.requeueDelay(s.attempts))
}

// Handler returns the coordinator's HTTP API (bearer-token guarded when
// Config.AuthToken is set).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathClaim, c.handleClaim)
	mux.HandleFunc("POST "+PathRenew, c.handleRenew)
	mux.HandleFunc("POST "+PathComplete, c.handleComplete)
	mux.HandleFunc("POST "+PathFail, c.handleFail)
	mux.HandleFunc("GET "+PathState, c.handleState)
	if c.cfg.AuthToken == "" {
		return mux
	}
	want := []byte("Bearer " + c.cfg.AuthToken)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			http.Error(w, "missing or wrong bearer token", http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// maxBody bounds request bodies; the largest legitimate payload is a CSV
// table upload, far under this.
const maxBody = 64 << 20

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, into); err != nil {
		http.Error(w, "decoding body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !decode(w, r, &req) {
		return
	}
	if req.ConfigHash != c.cfg.ConfigHash {
		http.Error(w, fmt.Sprintf("config hash mismatch: coordinator sweeps %s, worker configured for %s",
			c.cfg.ConfigHash, req.ConfigHash), http.StatusConflict)
		return
	}
	resp, errMsg := c.claim(req)
	if errMsg != "" {
		http.Error(w, errMsg, http.StatusInternalServerError)
		return
	}
	reply(w, resp)
}

// claim runs the grant state machine under c.mu and returns the response
// to send. The HTTP write happens in the handler after the lock is
// released: a slow or stalled client must not hold up every other
// worker's claim.
func (c *Coordinator) claim(req ClaimRequest) (ClaimResponse, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	now := obs.Now()
	unresolved := false
	var nextEvent time.Time
	for _, name := range c.grants {
		s := c.shards[name]
		switch s.state {
		case StateDone, StatePoisoned:
			continue
		case StateLeased:
			unresolved = true
			if nextEvent.IsZero() || s.expiry.Before(nextEvent) {
				nextEvent = s.expiry
			}
			continue
		}
		unresolved = true
		if now.Before(s.notBefore) {
			if nextEvent.IsZero() || s.notBefore.Before(nextEvent) {
				nextEvent = s.notBefore
			}
			continue
		}
		// Grant: WAL first, then the in-memory transition. The lease id is
		// derived from the NEXT sequence number; c.seq itself only advances
		// once the record is durable, so a failed append leaves nothing to
		// roll back.
		lease := fmt.Sprintf("L%06d", c.seq+1)
		attempt := s.attempts + 1
		//lint:ignore lock-blocking append-before-effect: the grant record must be durable before the lease transition it describes, atomically under c.mu
		if err := c.append(walRecord{Kind: "grant", Shard: s.name, Worker: req.Worker, Lease: lease, Attempt: attempt}); err != nil {
			return ClaimResponse{}, "journaling grant: " + err.Error()
		}
		c.seq++
		s.state = StateLeased
		s.worker, s.lease, s.attempts = req.Worker, lease, attempt
		s.expiry = now.Add(c.cfg.leaseTTL())
		if s.scope == nil {
			s.scope = c.scope.Child(s.name)
		}
		c.scope.Inc("dist.claims")
		c.logf("dist: shard %s -> worker %s (lease %s, attempt %d/%d)", s.name, req.Worker, lease, attempt, c.cfg.maxAttempts())
		return ClaimResponse{
			Status: ClaimShard, Shard: s.name, Lease: lease,
			LeaseTTLMS: c.cfg.leaseTTL().Milliseconds(), Attempt: attempt,
		}, ""
	}
	if !unresolved {
		return ClaimResponse{Status: ClaimDone}, ""
	}
	retry := 500 * time.Millisecond
	if !nextEvent.IsZero() {
		if d := nextEvent.Sub(now); d < retry {
			retry = d
		}
	}
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	return ClaimResponse{Status: ClaimWait, RetryMS: retry.Milliseconds()}, ""
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decode(w, r, &req) {
		return
	}
	reply(w, c.renew(req))
}

// renew extends a held lease under c.mu; the reply is written lock-free
// in the handler.
func (c *Coordinator) renew(req RenewRequest) RenewResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	s, ok := c.shards[req.Shard]
	if !ok {
		return RenewResponse{OK: false, Reason: "unknown shard"}
	}
	if s.state != StateLeased || s.lease != req.Lease {
		c.scope.Inc("dist.renewals_rejected")
		return RenewResponse{OK: false, Reason: "lease not held (expired and reassigned, or shard resolved)"}
	}
	// Renewals are in-memory only: the WAL does not need them, because a
	// restarted coordinator re-arms every open lease with a fresh TTL.
	s.expiry = obs.Now().Add(c.cfg.leaseTTL())
	c.scope.Inc("dist.renewals")
	return RenewResponse{OK: true}
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	if req.ConfigHash != c.cfg.ConfigHash {
		http.Error(w, "config hash mismatch", http.StatusConflict)
		return
	}
	// Phase 1, locked: validate the shard and capture lease freshness.
	c.mu.Lock()
	c.expireLocked()
	s, ok := c.shards[req.Shard]
	if !ok {
		c.mu.Unlock()
		http.Error(w, "unknown shard "+req.Shard, http.StatusBadRequest)
		return
	}
	// Uploads are accepted regardless of lease state: the result is a pure
	// function of the config hash both sides verified, so a late upload
	// from an expired lease (or a retry after a lost response) merges
	// last-write-wins instead of being dropped. That is what makes the
	// half-open failure mode converge.
	stale := s.state != StateLeased || s.lease != req.Lease || s.worker != req.Worker
	c.mu.Unlock()

	// Phase 2, unlocked: merge the upload. CommitResult fsyncs a
	// potentially multi-megabyte CSV; under c.mu that one fsync would
	// stall every claim, renew and expiry sweep for its duration. The Sink
	// contract requires concurrent safety and the merge is
	// last-write-wins, so two racing uploads of one shard converge in
	// either order.
	if err := c.cfg.Sink.CommitResult(req.Shard, req.Title, req.CSV, req.WallMS, req.Worker); err != nil {
		// Rejected (garbage CSV) or not durable: the shard stays unresolved.
		http.Error(w, "committing result: "+err.Error(), http.StatusInternalServerError)
		return
	}

	// Phase 3, locked again: journal the completion, then apply it. The
	// shard may have changed state while unlocked (expiry, even poisoning);
	// a durable verified result still wins — same convergence argument as
	// the stale-upload path.
	c.mu.Lock()
	if s.state != StateDone {
		//lint:ignore lock-blocking append-before-effect: the completion record must be durable before the transition it describes, atomically under c.mu
		if err := c.append(walRecord{Kind: "complete", Shard: req.Shard, Worker: req.Worker, Lease: req.Lease}); err != nil {
			c.mu.Unlock()
			http.Error(w, "journaling completion: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.state = StateDone
	s.worker, s.lease, s.lastErr = "", "", ""
	s.scope.Close()
	s.scope = nil
	c.scope.Inc("dist.completions")
	if stale {
		c.scope.Inc("dist.late_uploads")
		c.logf("dist: shard %s completed by %s on a lost lease (merged last-write-wins)", req.Shard, req.Worker)
	} else {
		c.logf("dist: shard %s completed by %s (%dms)", req.Shard, req.Worker, req.WallMS)
	}
	c.mu.Unlock()
	reply(w, CompleteResponse{OK: true, Stale: stale})
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !decode(w, r, &req) {
		return
	}
	resp, errMsg := c.fail(req)
	if errMsg != "" {
		http.Error(w, errMsg, http.StatusBadRequest)
		return
	}
	reply(w, resp)
}

// fail burns the reported attempt under c.mu; the reply is written
// lock-free in the handler.
func (c *Coordinator) fail(req FailRequest) (FailResponse, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	s, ok := c.shards[req.Shard]
	if !ok {
		return FailResponse{}, "unknown shard " + req.Shard
	}
	if s.state != StateLeased || s.lease != req.Lease {
		// The attempt was already accounted (expiry or reassignment); this
		// report is news from the past. Acknowledge and ignore.
		return FailResponse{OK: true, Poisoned: s.state == StatePoisoned}, ""
	}
	cause := errors.New(req.Error)
	c.scope.Inc("dist.failures")
	c.logf("dist: shard %s attempt %d failed on %s: %v", s.name, s.attempts, req.Worker, cause)
	//lint:ignore lock-blocking attempt accounting must stay atomic with the lease state under c.mu; failure records are small appends, not CSV merges
	if err := c.cfg.Sink.CommitFailure(s.name, req.WallMS, cause, req.Worker); err != nil {
		c.logf("dist: recording failure of %s: %v", s.name, err)
	}
	c.resolveAttemptLocked(s, cause)
	return FailResponse{OK: true, Poisoned: s.state == StatePoisoned}, ""
}

func (c *Coordinator) handleState(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.expireLocked()
	resp := c.snapshotLocked()
	c.mu.Unlock()
	reply(w, resp)
}

func (c *Coordinator) snapshotLocked() StateResponse {
	now := obs.Now()
	resp := StateResponse{Done: true, ConfigHash: c.cfg.ConfigHash}
	for _, name := range c.order {
		s := c.shards[name]
		info := ShardInfo{Name: name, Status: s.state, Attempts: s.attempts, Worker: s.worker, Error: s.lastErr}
		if s.state == StateLeased {
			info.LeaseMSLeft = s.expiry.Sub(now).Milliseconds()
		}
		if s.state != StateDone && s.state != StatePoisoned {
			resp.Done = false
		}
		resp.Shards = append(resp.Shards, info)
	}
	return resp
}

// Snapshot returns the current shard states (the /v1/state body).
func (c *Coordinator) Snapshot() StateResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	return c.snapshotLocked()
}

// Poisoned returns the shards the sweep has given up on, in canonical order.
func (c *Coordinator) Poisoned() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for _, name := range c.order {
		if c.shards[name].state == StatePoisoned {
			names = append(names, name)
		}
	}
	return names
}

// Start begins serving on addr (":0" picks a free port) and returns the
// bound address workers should dial.
func (c *Coordinator) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	c.ln = ln
	c.srv = &http.Server{Handler: c.Handler()}
	c.serveDone = make(chan struct{})
	go func(done chan struct{}) {
		defer close(done)
		_ = c.srv.Serve(ln)
	}(c.serveDone)
	c.logf("dist: coordinator serving on %s (%d shard(s), lease TTL %v)", ln.Addr(), len(c.order), c.cfg.leaseTTL())
	return ln.Addr().String(), nil
}

// Wait blocks until every shard is resolved (done or poisoned) or ctx is
// cancelled, expiring leases as it goes so progress does not depend on
// worker traffic.
func (c *Coordinator) Wait(ctx context.Context) error {
	tick := c.cfg.leaseTTL() / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		c.mu.Lock()
		c.expireLocked()
		resolved := true
		for _, s := range c.shards {
			if s.state != StateDone && s.state != StatePoisoned {
				resolved = false
				break
			}
		}
		c.mu.Unlock()
		if resolved {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Close stops the server (if started), closes the WAL, and closes the
// coordinator's telemetry scopes. Committed state is already durable; a
// coordinator that dies without Close loses nothing the WAL has not
// recorded.
func (c *Coordinator) Close() {
	if c.srv != nil {
		_ = c.srv.Close()
		// Join the Serve goroutine so no handler races the WAL close below.
		<-c.serveDone
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		s.scope.Close()
		s.scope = nil
	}
	c.scope.Close()
	//lint:ignore lock-blocking shutdown path: the server is stopped and its goroutine joined, so the final WAL close convoys nothing
	_ = c.wal.Close()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}
