package dist

import (
	"context"
	"hash/fnv"
	"math/rand"
	"time"
)

// backoff produces exponentially growing delays with deterministic jitter.
// The RNG is seeded from a name (worker ID, coordinator role), so a
// replayed chaos test sees identical delay sequences while distinct
// workers still de-synchronize — the whole point of jitter is that a
// coordinator restart does not get a thundering herd of perfectly aligned
// retries.
type backoff struct {
	base, max, next time.Duration
	rng             *rand.Rand
}

func newBackoff(seedName string, base, max time.Duration) *backoff {
	h := fnv.New64a()
	_, _ = h.Write([]byte(seedName))
	return &backoff{base: base, max: max, next: base, rng: rand.New(rand.NewSource(int64(h.Sum64())))}
}

// delay returns the next delay in the schedule: the current step plus up
// to half a step of jitter, then doubles the step up to the cap.
func (b *backoff) delay() time.Duration {
	d := b.next
	if d > 0 {
		d += time.Duration(b.rng.Int63n(int64(d)/2 + 1))
	}
	if b.next *= 2; b.next > b.max {
		b.next = b.max
	}
	return d
}

// reset rewinds the schedule after a success.
func (b *backoff) reset() { b.next = b.base }

// sleepCtx waits d or until ctx is done, whichever comes first, and
// reports the context's error in the latter case — the cancellable
// replacement for time.Sleep that the ctx-loop lint rule insists on in
// polling loops.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// jitterFrac returns a deterministic fraction in [0,1) from a pair of
// integers — requeue backoff jitter on the coordinator, where delays must
// depend only on (shard attempt, sequence) so WAL replay reproduces them.
func jitterFrac(a, b int64) float64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b) + 0x632BE59BD9B4E019
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
