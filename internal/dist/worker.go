package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"graphio/internal/obs"
)

// RunFunc executes one shard and returns its table title and CSV bytes.
// The cmd wiring routes this through experiments.RunAll with a single
// experiment name; tests substitute stubs. The ctx carries the worker's
// telemetry scope and is cancelled when the shard's lease is lost or its
// deadline passes — a RunFunc that honours ctx (everything built on the
// solvers does) therefore stops wasting cycles on work nobody will accept.
type RunFunc func(ctx context.Context, shard string) (title string, csv []byte, err error)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// ID names this worker in leases, manifest records and telemetry.
	ID string
	// Coordinator is the base URL to dial, e.g. "http://127.0.0.1:9120".
	Coordinator string
	// ConfigHash must match the coordinator's sweep; a mismatch is fatal.
	ConfigHash string
	// AuthToken rides every request as "Authorization: Bearer <token>"
	// when non-empty; must match the coordinator's Config.AuthToken.
	AuthToken string
	// Run executes one claimed shard.
	Run RunFunc
	// Client issues the HTTP requests (nil = a dedicated default client).
	// Tests inject faultinject.Transport here to simulate a flaky network.
	Client *http.Client
	// ShardTimeout deadlines each shard run (0 = none).
	ShardTimeout time.Duration
	// PollDelay is the base backoff between failed or empty claims.
	// Default 200ms.
	PollDelay time.Duration
	// MaxIdle bounds how long the worker keeps retrying an unreachable
	// coordinator before giving up. Default 2m. A coordinator restart
	// shorter than this is ridden out transparently.
	MaxIdle time.Duration
	// StallAfterClaim is a chaos mode: claim one shard, then stall without
	// renewing (holding the lease hostage past its TTL) until ctx ends.
	// Exercises the lease-expiry path end to end.
	StallAfterClaim bool
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (c WorkerConfig) pollDelay() time.Duration {
	if c.PollDelay > 0 {
		return c.PollDelay
	}
	return 200 * time.Millisecond
}

func (c WorkerConfig) maxIdle() time.Duration {
	if c.MaxIdle > 0 {
		return c.MaxIdle
	}
	return 2 * time.Minute
}

// errLeaseLost cancels a shard run whose lease the coordinator no longer
// honours; the worker abandons the run silently (the coordinator has
// already burned the attempt and re-queued the shard).
var errLeaseLost = errors.New("dist: lease lost")

// errFatal wraps protocol errors that retrying cannot fix (409 config
// mismatch, malformed requests): the worker exits instead of hammering.
type errFatal struct{ err error }

func (e errFatal) Error() string { return e.err.Error() }
func (e errFatal) Unwrap() error { return e.err }

// RunWorker claims shards from the coordinator until the sweep is done,
// ctx is cancelled, or the coordinator stays unreachable past MaxIdle.
// Returns nil on a completed sweep (including one with poisoned shards —
// the coordinator owns that verdict).
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Run == nil && !cfg.StallAfterClaim {
		return errors.New("dist: WorkerConfig.Run is required")
	}
	w := &worker{cfg: cfg, client: cfg.Client}
	if w.client == nil {
		w.client = &http.Client{}
	}
	// The worker's root scope: shard runs derive their ctx from it, so the
	// sweep scope RunAll opens nests under it and /tasks shows
	// worker-<id>/sweep/<experiment> attribution per shard.
	w.scope = obs.NewScope("worker-" + cfg.ID)
	defer w.scope.Close()
	return w.run(obs.WithScope(ctx, w.scope))
}

type worker struct {
	cfg    WorkerConfig
	client *http.Client
	scope  *obs.Scope
}

func (w *worker) run(ctx context.Context) error {
	claimBackoff := newBackoff(w.cfg.ID, w.cfg.pollDelay(), 5*time.Second)
	var unreachableSince time.Time
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp ClaimResponse
		err := w.post(ctx, PathClaim, ClaimRequest{Worker: w.cfg.ID, ConfigHash: w.cfg.ConfigHash}, &resp)
		if err != nil {
			var fatal errFatal
			if errors.As(err, &fatal) {
				return fmt.Errorf("dist: worker %s: %w", w.cfg.ID, err)
			}
			// Transport trouble: the coordinator may be restarting. Back off
			// and retry until MaxIdle says it is gone for good.
			if unreachableSince.IsZero() {
				unreachableSince = obs.Now()
			} else if obs.Since(unreachableSince) > w.cfg.maxIdle() {
				return fmt.Errorf("dist: worker %s: coordinator unreachable for %v: %w", w.cfg.ID, w.cfg.maxIdle(), err)
			}
			w.scope.Inc("dist.worker.claim_errors")
			w.logf("dist: worker %s: claim failed (%v), retrying", w.cfg.ID, err)
			if serr := sleepCtx(ctx, claimBackoff.delay()); serr != nil {
				return serr
			}
			continue
		}
		unreachableSince = time.Time{}
		claimBackoff.reset()
		switch resp.Status {
		case ClaimDone:
			w.logf("dist: worker %s: sweep complete, exiting", w.cfg.ID)
			return nil
		case ClaimWait:
			delay := time.Duration(resp.RetryMS) * time.Millisecond
			if delay <= 0 {
				delay = w.cfg.pollDelay()
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return err
			}
		case ClaimShard:
			if w.cfg.StallAfterClaim {
				// Chaos: hold the lease without renewing until ctx ends. The
				// coordinator must expire it and hand the shard elsewhere.
				w.logf("dist: worker %s: stalling on %s (lease %s, chaos mode)", w.cfg.ID, resp.Shard, resp.Lease)
				<-ctx.Done()
				return ctx.Err()
			}
			if err := w.runShard(ctx, resp); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: worker %s: unknown claim status %q", w.cfg.ID, resp.Status)
		}
	}
}

// runShard executes one granted shard under a lease-renewal goroutine and
// reports the outcome. Errors returned here end the worker; shard-level
// failures are reported to the coordinator and return nil.
func (w *worker) runShard(ctx context.Context, grant ClaimResponse) error {
	shard, lease := grant.Shard, grant.Lease
	ttl := time.Duration(grant.LeaseTTLMS) * time.Millisecond
	w.logf("dist: worker %s: running %s (lease %s, attempt %d)", w.cfg.ID, shard, lease, grant.Attempt)

	runCtx, cancel := context.WithCancelCause(ctx)
	if w.cfg.ShardTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(runCtx, w.cfg.ShardTimeout)
		defer tcancel()
	}
	renewDone := make(chan struct{})
	go w.renewLoop(runCtx, shard, lease, ttl, cancel, renewDone)

	start := obs.Now()
	title, csv, runErr := w.cfg.Run(runCtx, shard)
	wallMS := obs.Since(start).Milliseconds()
	cancel(nil) // stop the renewal loop
	<-renewDone

	leaseLost := errors.Is(context.Cause(runCtx), errLeaseLost)
	if runErr != nil {
		if leaseLost {
			// The coordinator already expired the lease and re-queued the
			// shard; reporting a failure now would double-charge the attempt
			// (it would be ignored anyway — the lease is stale). Abandon.
			w.scope.Inc("dist.worker.abandoned")
			w.logf("dist: worker %s: abandoning %s (lease lost mid-run)", w.cfg.ID, shard)
			return nil
		}
		if err := ctx.Err(); err != nil {
			// The worker itself is shutting down; the lease will expire.
			return err
		}
		w.scope.Inc("dist.worker.shard_failures")
		w.logf("dist: worker %s: %s failed after %dms: %v", w.cfg.ID, shard, wallMS, runErr)
		var resp FailResponse
		if err := w.postRetry(ctx, PathFail, FailRequest{
			Worker: w.cfg.ID, Shard: shard, Lease: lease, Error: runErr.Error(), WallMS: wallMS,
		}, &resp); err != nil {
			// Could not deliver the report: the lease expires and the
			// coordinator charges the attempt anyway. Not fatal.
			w.logf("dist: worker %s: failure report for %s lost (%v); lease expiry will cover it", w.cfg.ID, shard, err)
		}
		return nil
	}

	// Upload even if the lease was lost while finishing: the result is
	// still valid for the config hash, and the coordinator merges it
	// last-write-wins — better a redundant result than a wasted run.
	var resp CompleteResponse
	if err := w.postRetry(ctx, PathComplete, CompleteRequest{
		Worker: w.cfg.ID, Shard: shard, Lease: lease, ConfigHash: w.cfg.ConfigHash,
		Title: title, CSV: csv, WallMS: wallMS,
	}, &resp); err != nil {
		var fatal errFatal
		if errors.As(err, &fatal) {
			return fmt.Errorf("dist: worker %s: uploading %s: %w", w.cfg.ID, shard, err)
		}
		w.logf("dist: worker %s: upload of %s lost (%v); shard will be re-run", w.cfg.ID, shard, err)
		return nil
	}
	w.scope.Inc("dist.worker.completed")
	if resp.Stale {
		w.logf("dist: worker %s: %s uploaded on a lost lease (merged anyway)", w.cfg.ID, shard)
	} else {
		w.logf("dist: worker %s: %s done in %dms", w.cfg.ID, shard, wallMS)
	}
	return nil
}

// renewLoop keeps the shard's lease alive with renewals every TTL/3. When
// the coordinator rejects a renewal, or renewals keep failing past a full
// TTL (the lease must be gone by then), the shard run is cancelled with
// errLeaseLost.
func (w *worker) renewLoop(ctx context.Context, shard, lease string, ttl time.Duration, cancel context.CancelCauseFunc, done chan<- struct{}) {
	defer close(done)
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	lastOK := obs.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var resp RenewResponse
		err := w.post(ctx, PathRenew, RenewRequest{Worker: w.cfg.ID, Shard: shard, Lease: lease}, &resp)
		switch {
		case err == nil && resp.OK:
			lastOK = obs.Now()
			w.scope.Inc("dist.worker.renewals")
		case err == nil: // definitive: the coordinator disowned the lease
			w.logf("dist: worker %s: lease %s on %s rejected: %s", w.cfg.ID, lease, shard, resp.Reason)
			cancel(errLeaseLost)
			return
		default: // transport trouble: tolerate until the lease must be dead
			if obs.Since(lastOK) > ttl {
				w.logf("dist: worker %s: no successful renewal of %s for %v; assuming lease lost", w.cfg.ID, shard, ttl)
				cancel(errLeaseLost)
				return
			}
		}
	}
}

// post issues one JSON POST. Non-2xx statuses become errors; 409 (config
// mismatch) and 400 (malformed request) are wrapped errFatal because
// retrying cannot fix them.
func (w *worker) post(ctx context.Context, path string, body, into any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return errFatal{err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(w.cfg.Coordinator, "/")+path, bytes.NewReader(raw))
	if err != nil {
		return errFatal{err}
	}
	req.Header.Set("Content-Type", "application/json")
	if w.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.AuthToken)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
		// 409 (config mismatch), 400 (malformed), and 401 (bad or missing
		// token) cannot be fixed by retrying.
		if resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusUnauthorized {
			return errFatal{err}
		}
		return err
	}
	return json.Unmarshal(data, into)
}

// postRetry is post with capped retries for transient failures — the
// upload path, where a lost response must not lose the result.
func (w *worker) postRetry(ctx context.Context, path string, body, into any) error {
	b := newBackoff(w.cfg.ID+path, w.cfg.pollDelay(), 2*time.Second)
	const attempts = 5
	var last error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := w.post(ctx, path, body, into)
		if err == nil {
			return nil
		}
		var fatal errFatal
		if errors.As(err, &fatal) {
			return err
		}
		last = err
		w.scope.Inc("dist.worker.upload_retries")
		if serr := sleepCtx(ctx, b.delay()); serr != nil {
			return serr
		}
	}
	return fmt.Errorf("giving up after %d attempts: %w", attempts, last)
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		fmt.Fprintf(w.cfg.Log, format+"\n", args...)
	}
}
