package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphio/internal/obs"
)

// memSink records Sink calls in memory — the coordinator's contract under
// test without dragging in the experiments package.
type memSink struct {
	mu       sync.Mutex
	results  map[string]memResult
	commits  map[string]int
	failures map[string][]string
	poisoned map[string]int
	reuse    map[string]bool
}

type memResult struct {
	title  string
	csv    []byte
	worker string
}

func newMemSink() *memSink {
	return &memSink{
		results:  map[string]memResult{},
		commits:  map[string]int{},
		failures: map[string][]string{},
		poisoned: map[string]int{},
		reuse:    map[string]bool{},
	}
}

func (s *memSink) Reusable(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reuse[name]
}

func (s *memSink) CommitResult(name, title string, csv []byte, wallMS int64, worker string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[name] = memResult{title: title, csv: append([]byte(nil), csv...), worker: worker}
	s.commits[name]++
	delete(s.poisoned, name)
	// Like the real sink: a durably committed result verifies as reusable
	// for a later replay.
	s.reuse[name] = true
	return nil
}

func (s *memSink) CommitFailure(name string, wallMS int64, cause error, worker string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures[name] = append(s.failures[name], cause.Error())
	return nil
}

func (s *memSink) CommitPoisoned(name string, attempts int, cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.poisoned[name] = attempts
	delete(s.reuse, name)
	return nil
}

func (s *memSink) result(name string) (memResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[name]
	return r, ok
}

func (s *memSink) commitCount(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits[name]
}

func (s *memSink) failureCount(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.failures[name])
}

func (s *memSink) poisonedAttempts(name string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.poisoned[name]
	return n, ok
}

// forceExpire backdates a live lease so the next request expires it —
// deterministic lease loss without waiting out a real TTL.
func (c *Coordinator) forceExpire(shard string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.shards[shard]; s != nil && s.state == StateLeased {
		s.expiry = obs.Now().Add(-time.Second)
	}
}

// postJSON posts body to url and decodes a 200 response into into.
// Non-200 statuses are returned with the body as the error text.
func postJSON(t *testing.T, url string, body, into any) (int, error) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(buf.String()))
	}
	return resp.StatusCode, json.Unmarshal(buf.Bytes(), into)
}

// claimUntilShard polls claim until a shard is granted (retry/backoff is
// the coordinator's answer while leases run out or backoff gates hold).
func claimUntilShard(t *testing.T, url, worker, hash string) ClaimResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var resp ClaimResponse
		if _, err := postJSON(t, url+PathClaim, ClaimRequest{Worker: worker, ConfigHash: hash}, &resp); err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case ClaimShard:
			return resp
		case ClaimDone:
			t.Fatalf("claim for %s returned done while a shard was expected", worker)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no shard granted to %s within deadline", worker)
	return ClaimResponse{}
}

func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	if cfg.OutDir == "" {
		cfg.OutDir = t.TempDir()
	}
	if cfg.Sink == nil {
		cfg.Sink = newMemSink()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(c.Close)
	return c, srv.URL
}

func TestCoordinatorProtocolHappyPath(t *testing.T) {
	sink := newMemSink()
	c, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha", "beta"}, ConfigHash: "h1", Sink: sink,
	})
	for i, want := range []string{"alpha", "beta"} {
		var claim ClaimResponse
		if _, err := postJSON(t, url+PathClaim, ClaimRequest{Worker: "w1", ConfigHash: "h1"}, &claim); err != nil {
			t.Fatal(err)
		}
		if claim.Status != ClaimShard || claim.Shard != want || claim.Attempt != 1 {
			t.Fatalf("claim %d = %+v, want shard %s attempt 1", i, claim, want)
		}
		var renew RenewResponse
		if _, err := postJSON(t, url+PathRenew, RenewRequest{Worker: "w1", Shard: want, Lease: claim.Lease}, &renew); err != nil {
			t.Fatal(err)
		}
		if !renew.OK {
			t.Fatalf("renewal of live lease rejected: %+v", renew)
		}
		var done CompleteResponse
		if _, err := postJSON(t, url+PathComplete, CompleteRequest{
			Worker: "w1", Shard: want, Lease: claim.Lease, ConfigHash: "h1",
			Title: "t " + want, CSV: []byte("k,v\n1,2\n"), WallMS: 3,
		}, &done); err != nil {
			t.Fatal(err)
		}
		if !done.OK || done.Stale {
			t.Fatalf("complete = %+v, want ok and not stale", done)
		}
	}
	var claim ClaimResponse
	if _, err := postJSON(t, url+PathClaim, ClaimRequest{Worker: "w1", ConfigHash: "h1"}, &claim); err != nil {
		t.Fatal(err)
	}
	if claim.Status != ClaimDone {
		t.Fatalf("claim after all shards = %+v, want done", claim)
	}
	snap := c.Snapshot()
	if !snap.Done {
		t.Fatalf("snapshot not done: %+v", snap)
	}
	for _, name := range []string{"alpha", "beta"} {
		r, ok := sink.result(name)
		if !ok || r.worker != "w1" {
			t.Fatalf("sink missing result for %s (got %+v)", name, r)
		}
	}
}

func TestCoordinatorRejectsConfigHashMismatch(t *testing.T) {
	_, url := newTestCoordinator(t, Config{Shards: []string{"alpha"}, ConfigHash: "good"})
	var claim ClaimResponse
	status, err := postJSON(t, url+PathClaim, ClaimRequest{Worker: "w1", ConfigHash: "evil"}, &claim)
	if status != http.StatusConflict {
		t.Fatalf("mismatched claim: status %d (err %v), want 409", status, err)
	}
	var done CompleteResponse
	status, _ = postJSON(t, url+PathComplete, CompleteRequest{
		Worker: "w1", Shard: "alpha", Lease: "L000001", ConfigHash: "evil", CSV: []byte("k\n1\n"),
	}, &done)
	if status != http.StatusConflict {
		t.Fatalf("mismatched complete: status %d, want 409", status)
	}
}

func TestCoordinatorFailBurnsAttemptsThenPoisons(t *testing.T) {
	sink := newMemSink()
	c, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha"}, ConfigHash: "h", Sink: sink,
		MaxAttempts: 2, RetryDelay: time.Millisecond,
	})
	for attempt := 1; attempt <= 2; attempt++ {
		claim := claimUntilShard(t, url, "w1", "h")
		if claim.Attempt != attempt {
			t.Fatalf("grant attempt = %d, want %d", claim.Attempt, attempt)
		}
		var fail FailResponse
		if _, err := postJSON(t, url+PathFail, FailRequest{
			Worker: "w1", Shard: "alpha", Lease: claim.Lease, Error: "solver exploded", WallMS: 1,
		}, &fail); err != nil {
			t.Fatal(err)
		}
		if wantPoison := attempt == 2; fail.Poisoned != wantPoison {
			t.Fatalf("attempt %d: poisoned = %v, want %v", attempt, fail.Poisoned, wantPoison)
		}
	}
	if n, ok := sink.poisonedAttempts("alpha"); !ok || n != 2 {
		t.Fatalf("sink poisoned = (%d, %v), want (2, true)", n, ok)
	}
	if sink.failureCount("alpha") != 2 {
		t.Fatalf("failure records = %d, want 2", sink.failureCount("alpha"))
	}
	var claim ClaimResponse
	if _, err := postJSON(t, url+PathClaim, ClaimRequest{Worker: "w1", ConfigHash: "h"}, &claim); err != nil {
		t.Fatal(err)
	}
	if claim.Status != ClaimDone {
		t.Fatalf("claim after poison = %+v, want done (poisoned resolves the sweep)", claim)
	}
	if got := c.Poisoned(); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("Poisoned() = %v, want [alpha]", got)
	}
}

func TestCoordinatorExpiredLeaseIsReassigned(t *testing.T) {
	sink := newMemSink()
	c, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha"}, ConfigHash: "h", Sink: sink,
		MaxAttempts: 3, RetryDelay: time.Millisecond,
	})
	obs.Enable(true)
	defer obs.Enable(false)
	first := claimUntilShard(t, url, "w1", "h")
	c.forceExpire("alpha")
	second := claimUntilShard(t, url, "w2", "h")
	if second.Attempt != 2 || second.Lease == first.Lease {
		t.Fatalf("reassigned grant = %+v, want attempt 2 under a new lease", second)
	}
	// The dead worker's renewal must now be rejected.
	var renew RenewResponse
	if _, err := postJSON(t, url+PathRenew, RenewRequest{Worker: "w1", Shard: "alpha", Lease: first.Lease}, &renew); err != nil {
		t.Fatal(err)
	}
	if renew.OK {
		t.Fatal("renewal of an expired, reassigned lease succeeded")
	}
	if sink.failureCount("alpha") != 1 {
		t.Fatalf("expiry did not land an audit failure (count %d)", sink.failureCount("alpha"))
	}
	if got := c.scope.Counter("dist.expirations"); got != 1 {
		t.Fatalf("dist.expirations = %d, want 1", got)
	}
}

func TestCoordinatorLateUploadMergesLastWriteWins(t *testing.T) {
	sink := newMemSink()
	c, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha"}, ConfigHash: "h", Sink: sink,
		MaxAttempts: 3, RetryDelay: time.Millisecond,
	})
	obs.Enable(true)
	defer obs.Enable(false)
	first := claimUntilShard(t, url, "w1", "h")
	c.forceExpire("alpha")
	second := claimUntilShard(t, url, "w2", "h")
	var done CompleteResponse
	if _, err := postJSON(t, url+PathComplete, CompleteRequest{
		Worker: "w2", Shard: "alpha", Lease: second.Lease, ConfigHash: "h",
		Title: "t", CSV: []byte("k\nfresh\n"), WallMS: 2,
	}, &done); err != nil {
		t.Fatal(err)
	}
	if !done.OK || done.Stale {
		t.Fatalf("live complete = %+v", done)
	}
	// w1 finally finishes and uploads on its long-dead lease: accepted,
	// flagged stale, merged last-write-wins.
	if _, err := postJSON(t, url+PathComplete, CompleteRequest{
		Worker: "w1", Shard: "alpha", Lease: first.Lease, ConfigHash: "h",
		Title: "t", CSV: []byte("k\nlate\n"), WallMS: 9,
	}, &done); err != nil {
		t.Fatal(err)
	}
	if !done.OK || !done.Stale {
		t.Fatalf("late complete = %+v, want ok and stale", done)
	}
	r, _ := sink.result("alpha")
	if r.worker != "w1" || !bytes.Contains(r.csv, []byte("late")) {
		t.Fatalf("last write did not win: %+v", r)
	}
	if sink.commitCount("alpha") != 2 {
		t.Fatalf("commits = %d, want 2 (double submit absorbed, not dropped)", sink.commitCount("alpha"))
	}
	if got := c.scope.Counter("dist.late_uploads"); got != 1 {
		t.Fatalf("dist.late_uploads = %d, want 1", got)
	}
}

func TestCoordinatorWALReplayRestoresAssignments(t *testing.T) {
	outDir := t.TempDir()
	sink := newMemSink()
	cfg := Config{
		Shards: []string{"alpha", "beta", "gamma"}, ConfigHash: "h", Sink: sink,
		OutDir: outDir, MaxAttempts: 3, RetryDelay: time.Millisecond,
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	a := claimUntilShard(t, srv1.URL, "w1", "h")
	var done CompleteResponse
	if _, err := postJSON(t, srv1.URL+PathComplete, CompleteRequest{
		Worker: "w1", Shard: a.Shard, Lease: a.Lease, ConfigHash: "h",
		Title: "t", CSV: []byte("k\n1\n"), WallMS: 1,
	}, &done); err != nil {
		t.Fatal(err)
	}
	b := claimUntilShard(t, srv1.URL, "w1", "h")
	if b.Shard != "beta" {
		t.Fatalf("second grant = %s, want beta", b.Shard)
	}
	// Crash: the coordinator dies with beta leased and gamma pending.
	srv1.Close()
	c1.Close()

	cfg.Resume = true
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	defer c2.Close()
	snap := c2.Snapshot()
	wantStates := map[string]string{"alpha": StateDone, "beta": StateLeased, "gamma": StatePending}
	for _, s := range snap.Shards {
		if s.Status != wantStates[s.Name] {
			t.Fatalf("after replay, %s = %s, want %s", s.Name, s.Status, wantStates[s.Name])
		}
	}
	// The surviving worker's renewal of the restored lease must still work,
	// and so must its upload.
	var renew RenewResponse
	if _, err := postJSON(t, srv2.URL+PathRenew, RenewRequest{Worker: "w1", Shard: "beta", Lease: b.Lease}, &renew); err != nil {
		t.Fatal(err)
	}
	if !renew.OK {
		t.Fatalf("renewal of replayed lease rejected: %+v", renew)
	}
	if _, err := postJSON(t, srv2.URL+PathComplete, CompleteRequest{
		Worker: "w1", Shard: "beta", Lease: b.Lease, ConfigHash: "h",
		Title: "t", CSV: []byte("k\n2\n"), WallMS: 1,
	}, &done); err != nil {
		t.Fatal(err)
	}
	if !done.OK || done.Stale {
		t.Fatalf("upload onto replayed lease = %+v, want ok and not stale", done)
	}
	// Lease sequence numbers continue past replayed grants — no reuse.
	g := claimUntilShard(t, srv2.URL, "w1", "h")
	if g.Shard != "gamma" || g.Lease == a.Lease || g.Lease == b.Lease {
		t.Fatalf("post-replay grant = %+v, want gamma under a fresh lease", g)
	}
}

func TestCoordinatorFreshStartDiscardsWAL(t *testing.T) {
	outDir := t.TempDir()
	cfg := Config{Shards: []string{"alpha"}, ConfigHash: "h", OutDir: outDir, Sink: newMemSink()}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	claimUntilShard(t, srv1.URL, "w1", "h")
	srv1.Close()
	c1.Close()
	// Without -resume, the prior WAL (with its open lease) is discarded:
	// the shard is granted again as attempt 1.
	c2, url := newTestCoordinator(t, cfg)
	claim := claimUntilShard(t, url, "w2", "h")
	if claim.Attempt != 1 {
		t.Fatalf("fresh-start grant attempt = %d, want 1", claim.Attempt)
	}
	_ = c2
}

func TestCoordinatorSkipsReusableShards(t *testing.T) {
	sink := newMemSink()
	sink.reuse["alpha"] = true
	c, url := newTestCoordinator(t, Config{Shards: []string{"alpha", "beta"}, ConfigHash: "h", Sink: sink})
	claim := claimUntilShard(t, url, "w1", "h")
	if claim.Shard != "beta" {
		t.Fatalf("first grant = %s, want beta (alpha's artifact verified)", claim.Shard)
	}
	snap := c.Snapshot()
	if snap.Shards[0].Name != "alpha" || snap.Shards[0].Status != StateDone {
		t.Fatalf("reusable shard not marked done: %+v", snap.Shards[0])
	}
}

func TestCoordinatorPoisonSurvivesRestart(t *testing.T) {
	outDir := t.TempDir()
	cfg := Config{
		Shards: []string{"alpha", "beta"}, ConfigHash: "h", OutDir: outDir,
		Sink: newMemSink(), MaxAttempts: 1, RetryDelay: time.Millisecond,
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	claim := claimUntilShard(t, srv1.URL, "w1", "h")
	var fail FailResponse
	if _, err := postJSON(t, srv1.URL+PathFail, FailRequest{
		Worker: "w1", Shard: claim.Shard, Lease: claim.Lease, Error: "boom",
	}, &fail); err != nil {
		t.Fatal(err)
	}
	if !fail.Poisoned {
		t.Fatalf("fail at the attempt cap = %+v, want poisoned", fail)
	}
	srv1.Close()
	c1.Close()

	// Restarting with -resume must re-commit the poison into the (fresh)
	// sink so the final report still names the shard.
	sink2 := newMemSink()
	cfg.Sink = sink2
	cfg.Resume = true
	c2, url := newTestCoordinator(t, cfg)
	if n, ok := sink2.poisonedAttempts("alpha"); !ok || n != 1 {
		t.Fatalf("poison not replayed into sink: (%d, %v)", n, ok)
	}
	if got := c2.Poisoned(); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("Poisoned() after restart = %v, want [alpha]", got)
	}
	if claim := claimUntilShard(t, url, "w1", "h"); claim.Shard != "beta" {
		t.Fatalf("post-restart grant = %s, want beta", claim.Shard)
	}
}

func TestCoordinatorStateEndpoint(t *testing.T) {
	_, url := newTestCoordinator(t, Config{Shards: []string{"alpha"}, ConfigHash: "h"})
	resp, err := http.Get(url + PathState)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state StateResponse
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state.Done || state.ConfigHash != "h" || len(state.Shards) != 1 || state.Shards[0].Status != StatePending {
		t.Fatalf("state = %+v", state)
	}
}
