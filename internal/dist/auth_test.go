package dist

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// An auth-enabled coordinator must reject unauthenticated and wrong-token
// requests with 401 on every endpoint, while probes carrying the right
// token proceed.
func TestCoordinatorRejectsBadBearerToken(t *testing.T) {
	_, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha"}, ConfigHash: "h", AuthToken: "sekrit",
	})

	var claim ClaimResponse
	status, err := postJSON(t, url+PathClaim, ClaimRequest{Worker: "w1", ConfigHash: "h"}, &claim)
	if status != http.StatusUnauthorized {
		t.Fatalf("unauthenticated claim = %d (%v), want 401", status, err)
	}
	if err == nil || !strings.Contains(err.Error(), "bearer token") {
		t.Fatalf("401 body = %v, want a bearer-token explanation", err)
	}

	req, err := http.NewRequest(http.MethodGet, url+PathState, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token state = %d, want 401", resp.StatusCode)
	}
}

// A worker holding the shared token completes the sweep against an
// auth-enabled coordinator; a tokenless worker fails fast (401 is fatal,
// not retried into the attempt budget).
func TestWorkerAuthTokenRoundTrip(t *testing.T) {
	sink := newMemSink()
	c, url := newTestCoordinator(t, Config{
		Shards: []string{"alpha", "beta"}, ConfigHash: "h", Sink: sink,
		AuthToken: "sekrit",
	})

	start := time.Now()
	err := RunWorker(context.Background(), WorkerConfig{
		ID: "noauth", Coordinator: url, ConfigHash: "h", Run: stubRun(0),
	})
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless worker err = %v, want fatal 401", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("tokenless worker took %v to fail; 401 must be fatal, not retried", elapsed)
	}

	err = RunWorker(context.Background(), WorkerConfig{
		ID: "w1", Coordinator: url, ConfigHash: "h", Run: stubRun(time.Millisecond),
		AuthToken: "sekrit",
	})
	if err != nil {
		t.Fatalf("authenticated worker: %v", err)
	}
	if !c.Snapshot().Done {
		t.Fatal("sweep not done after the authenticated worker finished")
	}
	for _, name := range []string{"alpha", "beta"} {
		if _, ok := sink.result(name); !ok {
			t.Fatalf("sink missing result for %s", name)
		}
	}
}
