package obs

import (
	"os"
	"testing"
)

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func TestCPUProfileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/cpu.pprof"
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has at least a header worth of data.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("CPU profile is empty")
	}
}

func TestCPUProfileBadPath(t *testing.T) {
	if _, err := StartCPUProfile(t.TempDir() + "/no/such/dir/cpu.pprof"); err == nil {
		t.Error("expected an error for an unwritable profile path")
	}
}

func TestHeapProfileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/heap.pprof"
	if err := WriteHeapProfile(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("heap profile is empty")
	}
}
