package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"

	"graphio/internal/persist"
)

// StartCPUProfile begins a CPU profile streamed to a staged temp file and
// returns the function that stops the profile and atomically publishes it
// at path — a run killed mid-profile leaves no torn profile behind.
func StartCPUProfile(path string) (stop func() error, err error) {
	w, err := persist.NewWriter(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(w); err != nil {
		_ = w.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return w.Commit()
	}, nil
}

// WriteHeapProfile captures a heap profile to path after a GC, so the
// profile reflects live objects rather than garbage awaiting collection.
// The write is atomic: failure or interruption leaves path untouched.
func WriteHeapProfile(path string) error {
	err := persist.WriteTo(path, func(w io.Writer) error {
		runtime.GC()
		return pprof.WriteHeapProfile(w)
	})
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
