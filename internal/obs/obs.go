// Package obs is the module's stdlib-only observability layer: a race-safe
// metrics registry (counters, gauges, duration timers, log-bucketed
// histograms — histogram.go), a structured span/event API for phase-level
// telemetry (span.go), a trace collector that exports completed spans as
// Chrome trace-event JSON for Perfetto (tracefile.go), an optional HTTP
// debug server with pprof, Prometheus-text /metrics and a /progress
// open-span snapshot (httpdebug.go), and runtime/pprof capture helpers
// (profile.go). The solver packages report iterations-to-convergence,
// mat-vec counts, search-state expansions, per-phase wall times and
// latency distributions through it; the binaries expose it behind
// -v / -metrics-out / -trace-out / -debug-addr / -cpuprofile /
// -memprofile flags (cli.go).
//
// Everything is off by default. Every package-level entry point starts with
// a single atomic load, so instrumented hot paths cost nothing measurable
// when no flag enabled the layer; the heavier call sites additionally batch
// their counts locally and report once per solve.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphio/internal/persist"
)

var (
	enabled  atomic.Bool
	defaultR = NewRegistry()
)

// persist reports its commit/abort/journal events through a hook so it
// can stay dependency-free; point the hook here so persist.* counters
// land in the registry alongside everything else (no-ops while disabled).
func init() {
	persist.Count = Inc
}

// Enable turns the default registry on or off. Disabled is the zero state.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether the default registry is collecting.
func Enabled() bool { return enabled.Load() }

// Default returns the process-wide registry the package-level helpers feed.
func Default() *Registry { return defaultR }

// Reset clears every metric in the default registry (tests, mainly).
func Reset() { defaultR.Reset() }

// Registry holds named counters, gauges, timers and histograms. All
// methods are safe for concurrent use; counter, gauge and histogram
// updates are lock-free after the first touch of a name.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*int64
	gauges   map[string]*uint64 // float64 bits
	timers   map[string]*timer
	hists    map[string]*hist
}

type timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*int64),
		gauges:   make(map[string]*uint64),
		timers:   make(map[string]*timer),
		hists:    make(map[string]*hist),
	}
}

// Reset drops every metric.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*int64)
	r.gauges = make(map[string]*uint64)
	r.timers = make(map[string]*timer)
	r.hists = make(map[string]*hist)
}

func (r *Registry) counter(name string) *int64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(int64)
		r.counters[name] = c
	}
	return c
}

func (r *Registry) gauge(name string) *uint64 {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(uint64)
		r.gauges[name] = g
	}
	return g
}

func (r *Registry) timer(name string) *timer {
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &timer{}
		r.timers[name] = t
	}
	return t
}

// Add increments counter name by delta (creating it at zero first).
func (r *Registry) Add(name string, delta int64) { atomic.AddInt64(r.counter(name), delta) }

// Inc increments counter name by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Counter returns the current value of counter name (0 if never touched).
func (r *Registry) Counter(name string) int64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(c)
}

// SetGauge records the latest value of gauge name. Non-finite values are
// dropped (the JSON emitter could not represent them anyway).
func (r *Registry) SetGauge(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	atomic.StoreUint64(r.gauge(name), math.Float64bits(v))
}

// Gauge returns the current value of gauge name (0 if never set).
func (r *Registry) Gauge(name string) float64 {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(g))
}

// Observe folds one duration into timer name (count/total/min/max).
func (r *Registry) Observe(name string, d time.Duration) {
	t := r.timer(name)
	t.mu.Lock()
	t.count++
	t.total += d
	if t.count == 1 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.mu.Unlock()
}

// TimerStat is the exported state of one timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
	AvgNS   int64 `json:"avg_ns"`
}

// Snapshot is a point-in-time copy of a registry, ready for serialization.
type Snapshot struct {
	Counters map[string]int64     `json:"counters"`
	Gauges   map[string]float64   `json:"gauges"`
	Timers   map[string]TimerStat `json:"timers"`
	Hists    map[string]HistStat  `json:"hists"`
}

// Snapshot copies the registry's current state. Timers and histograms that
// exist but were never observed are omitted: their zero values (min=0 or
// min=MaxInt64) would read as garbage in the export.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Timers:   map[string]TimerStat{},
		Hists:    map[string]HistStat{},
	}
	r.mu.RLock()
	counters := make(map[string]*int64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*uint64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	hists := make(map[string]*hist, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = atomic.LoadInt64(v)
	}
	for k, v := range gauges {
		s.Gauges[k] = math.Float64frombits(atomic.LoadUint64(v))
	}
	for k, t := range timers {
		t.mu.Lock()
		st := TimerStat{Count: t.count, TotalNS: t.total.Nanoseconds(), MinNS: t.min.Nanoseconds(), MaxNS: t.max.Nanoseconds()}
		t.mu.Unlock()
		if st.Count == 0 {
			continue
		}
		st.AvgNS = st.TotalNS / st.Count
		s.Timers[k] = st
	}
	for k, h := range hists {
		st := h.stat()
		if st.Count == 0 {
			continue
		}
		s.Hists[k] = st
	}
	return s
}

// WriteJSON emits the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText emits the registry as sorted human-readable lines.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "counter %-42s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-42s %g\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Timers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t := s.Timers[k]
		if _, err := fmt.Fprintf(w, "timer   %-42s count=%d total=%v avg=%v min=%v max=%v\n",
			k, t.Count,
			time.Duration(t.TotalNS).Round(time.Microsecond),
			time.Duration(t.AvgNS).Round(time.Microsecond),
			time.Duration(t.MinNS).Round(time.Microsecond),
			time.Duration(t.MaxNS).Round(time.Microsecond)); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Hists[k]
		if _, err := fmt.Fprintf(w, "hist    %-42s count=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%d\n",
			k, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// Package-level helpers: one atomic load, then the default registry.

// Add increments a default-registry counter when collection is enabled.
func Add(name string, delta int64) {
	if !enabled.Load() {
		return
	}
	defaultR.Add(name, delta)
}

// Inc increments a default-registry counter by one when enabled.
func Inc(name string) { Add(name, 1) }

// SetGauge records a default-registry gauge when enabled.
func SetGauge(name string, v float64) {
	if !enabled.Load() {
		return
	}
	defaultR.SetGauge(name, v)
}

// Observe folds a duration into a default-registry timer when enabled.
func Observe(name string, d time.Duration) {
	if !enabled.Load() {
		return
	}
	defaultR.Observe(name, d)
}

// Time starts a stopwatch for timer name and returns the function that
// stops it. When collection is disabled the returned function is a no-op.
func Time(name string) func() {
	if !enabled.Load() {
		return func() {}
	}
	start := time.Now()
	return func() { defaultR.Observe(name, time.Since(start)) }
}

// Dump is the full -metrics-out payload: the process-wide snapshot with
// the per-scope sections inlined under "scopes". The Snapshot fields stay
// at the top level (embedded), so consumers of the pre-scope format —
// obsreport's auto-detection, older diff baselines — parse a Dump as a
// plain Snapshot and simply ignore the sections.
type Dump struct {
	Snapshot
	Scopes []ScopeSection `json:"scopes,omitempty"`
}

// WriteJSON emits the default registry plus the per-scope sections as
// indented JSON.
func WriteJSON(w io.Writer) error {
	d := Dump{Snapshot: defaultR.Snapshot(), Scopes: ScopeSections()}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText emits the default registry as text.
func WriteText(w io.Writer) error { return defaultR.WriteText(w) }

// DumpJSON writes the default registry's snapshot (with per-scope
// sections) to path atomically: a signal or crash arriving mid-flush
// leaves path absent or with its previous content, never truncated.
func DumpJSON(path string) error {
	return persist.WriteTo(path, WriteJSON)
}
