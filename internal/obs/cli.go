package obs

import (
	"flag"
	"os"
	"time"
)

// CLI bundles the standard observability flags a binary exposes and the
// begin/finish lifecycle behind them. Both specio and cmd/experiments use
// it so the flag names and semantics stay identical:
//
//	-v               phase/solver telemetry log to stderr
//	-metrics-out F   JSON metrics dump written to F on exit
//	-cpuprofile F    runtime/pprof CPU profile
//	-memprofile F    runtime/pprof heap profile (captured at exit)
type CLI struct {
	Verbose    bool
	MetricsOut string
	CPUProfile string
	MemProfile string

	stopCPU func() error
	start   time.Time
}

// AddFlags registers the observability flags on fs and returns the bundle
// to Begin/Finish around the command body.
func AddFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.BoolVar(&c.Verbose, "v", false, "log phase timings and solver telemetry to stderr")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write collected metrics as JSON to this file on exit")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// Begin applies the parsed flags: enables the registry and/or verbose sink
// and starts the CPU profile. Call it after flag parsing, before the work.
func (c *CLI) Begin() error {
	c.start = time.Now()
	if c.Verbose {
		SetVerbose(os.Stderr)
	}
	if c.Verbose || c.MetricsOut != "" {
		Enable(true)
	}
	if c.CPUProfile != "" {
		stop, err := StartCPUProfile(c.CPUProfile)
		if err != nil {
			return err
		}
		c.stopCPU = stop
	}
	return nil
}

// Finish stops profiling, records total wall time, and writes the metrics
// dump. It is safe to call exactly once after the work, error or not.
func (c *CLI) Finish() error {
	var firstErr error
	if c.stopCPU != nil {
		firstErr = c.stopCPU()
		c.stopCPU = nil
	}
	if c.MemProfile != "" {
		if err := WriteHeapProfile(c.MemProfile); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	wall := time.Since(c.start)
	if Enabled() {
		Observe("wall", wall)
		SetGauge("wall_seconds", wall.Seconds())
	}
	Logf("total wall time %v", wall.Round(time.Microsecond))
	if c.MetricsOut != "" {
		if err := DumpJSON(c.MetricsOut); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
