package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// CLI bundles the standard observability flags a binary exposes and the
// begin/finish lifecycle behind them. Both specio and cmd/experiments use
// it so the flag names and semantics stay identical:
//
//	-v               phase/solver telemetry log to stderr
//	-metrics-out F   JSON metrics dump written to F on exit
//	-trace-out F     Chrome trace-event JSON of completed spans (Perfetto)
//	-debug-addr A    HTTP debug server: /debug/pprof/, /metrics, /progress
//	-cpuprofile F    runtime/pprof CPU profile
//	-memprofile F    runtime/pprof heap profile (captured at exit)
//
// Begin also installs a SIGINT/SIGTERM handler that flushes everything
// above before exiting non-zero, so interrupting a long sweep keeps its
// telemetry instead of losing the whole run.
type CLI struct {
	Verbose    bool
	MetricsOut string
	TraceOut   string
	DebugAddr  string
	CPUProfile string
	MemProfile string

	stopCPU    func() error
	stopHTTP   func() error
	sigStop    context.CancelFunc
	ctx        context.Context
	start      time.Time
	finishing  atomic.Bool
	finishOnce sync.Once
	finishErr  error
}

// AddFlags registers the observability flags on fs and returns the bundle
// to Begin/Finish around the command body.
func AddFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.BoolVar(&c.Verbose, "v", false, "log phase timings and solver telemetry to stderr")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write collected metrics as JSON to this file on exit")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write completed spans as Chrome trace-event JSON to this file on exit (open in Perfetto)")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve /debug/pprof/, /metrics and /progress on this host:port while running")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// Begin applies the parsed flags: enables the registry, verbose sink,
// trace collector and/or debug server, starts the CPU profile, and
// installs the interrupt handler. Call it after flag parsing, before the
// work.
func (c *CLI) Begin() error {
	c.start = time.Now()
	if c.Verbose {
		SetVerbose(os.Stderr)
	}
	if c.Verbose || c.MetricsOut != "" || c.TraceOut != "" || c.DebugAddr != "" {
		Enable(true)
	}
	if c.TraceOut != "" {
		StartTrace()
	}
	if c.DebugAddr != "" {
		stop, addr, err := StartDebugServer(c.DebugAddr)
		if err != nil {
			return err
		}
		c.stopHTTP = stop
		fmt.Fprintf(os.Stderr, "obs: debug server listening on http://%s\n", addr)
	}
	if c.CPUProfile != "" {
		stop, err := StartCPUProfile(c.CPUProfile)
		if err != nil {
			return err
		}
		c.stopCPU = stop
	}
	// Interrupt handling goes in last so a signal-triggered Finish sees
	// every sink above already installed. On SIGINT/SIGTERM the handler
	// flushes profiles, metrics and trace, then exits 130 (interrupted).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	c.ctx, c.sigStop = ctx, stop
	go func() {
		<-ctx.Done()
		if c.finishing.Load() {
			return // normal shutdown released the handler
		}
		fmt.Fprintln(os.Stderr, "obs: interrupted; flushing telemetry")
		c.Finish() //nolint:errcheck // exiting non-zero regardless
		os.Exit(130)
	}()
	return nil
}

// Context returns a context cancelled on SIGINT/SIGTERM (Background before
// Begin). Long sweeps can poll it to stop cleanly ahead of the flush.
func (c *CLI) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Finish stops profiling and the debug server, records total wall time,
// and writes the metrics and trace dumps. It is idempotent: the interrupt
// handler and the normal exit path may both call it, and only the first
// call does the work (later calls return its error).
func (c *CLI) Finish() error {
	c.finishOnce.Do(func() { c.finishErr = c.finish() })
	return c.finishErr
}

func (c *CLI) finish() error {
	c.finishing.Store(true)
	if c.sigStop != nil {
		c.sigStop() // release the handler goroutine; after this ^C kills hard
	}
	var firstErr error
	if c.stopCPU != nil {
		firstErr = c.stopCPU()
		c.stopCPU = nil
	}
	if c.MemProfile != "" {
		if err := WriteHeapProfile(c.MemProfile); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	wall := time.Since(c.start)
	if Enabled() {
		Observe("wall", wall)
		SetGauge("wall_seconds", wall.Seconds())
	}
	Logf("total wall time %v", wall.Round(time.Microsecond))
	if c.MetricsOut != "" {
		if err := DumpJSON(c.MetricsOut); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.TraceOut != "" {
		if err := DumpTrace(c.TraceOut); err != nil && firstErr == nil {
			firstErr = err
		}
		StopTrace()
	}
	if c.stopHTTP != nil {
		if err := c.stopHTTP(); err != nil && firstErr == nil {
			firstErr = err
		}
		c.stopHTTP = nil
	}
	return firstErr
}
