package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// CLI bundles the standard observability flags a binary exposes and the
// begin/finish lifecycle behind them. Both specio and cmd/experiments use
// it so the flag names and semantics stay identical:
//
//	-v               phase/solver telemetry log to stderr
//	-log-json        telemetry log as slog JSON lines instead of text
//	-metrics-out F   JSON metrics dump written to F on exit
//	-trace-out F     Chrome trace-event JSON of completed spans (Perfetto)
//	-events-out F    per-iteration solver events, CRC-framed JSONL journal
//	-debug-addr A    HTTP debug server: /debug/pprof/, /metrics, /progress
//	-cpuprofile F    runtime/pprof CPU profile
//	-memprofile F    runtime/pprof heap profile (captured at exit)
//
//	-timeout D       global wall-clock budget (Context deadline; 0 = none)
//
// Begin also installs a SIGINT/SIGTERM handler. The first signal cancels
// Context() and lets the pipeline wind down on its own — in-flight solves
// notice the cancellation at their next iteration boundary, completed
// output stays on disk, and the command's own exit path flushes telemetry
// through Finish. A second signal stops waiting: it flushes immediately
// and exits 130.
type CLI struct {
	Verbose    bool
	LogJSON    bool
	MetricsOut string
	TraceOut   string
	EventsOut  string
	DebugAddr  string
	CPUProfile string
	MemProfile string
	Timeout    time.Duration

	stopCPU     func() error
	stopHTTP    func() error
	ctx         context.Context
	cancelCtx   context.CancelFunc
	finished    chan struct{}
	start       time.Time
	interrupted atomic.Bool
	finishOnce  sync.Once
	finishErr   error
}

// AddFlags registers the observability flags on fs and returns the bundle
// to Begin/Finish around the command body.
func AddFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.BoolVar(&c.Verbose, "v", false, "log phase timings and solver telemetry to stderr")
	fs.BoolVar(&c.LogJSON, "log-json", false, "emit the telemetry log as slog JSON lines (with scope correlation IDs) instead of text; implies -v")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write collected metrics as JSON to this file on exit")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write completed spans as Chrome trace-event JSON to this file on exit (open in Perfetto)")
	fs.StringVar(&c.EventsOut, "events-out", "", "write per-iteration solver events as a CRC-framed JSONL journal to this file on exit (render with obsreport convergence)")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve /debug/pprof/, /metrics and /progress on this host:port while running")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	// Some subcommands already own a -timeout flag with narrower scope
	// (specio mincut's per-sweep cutoff); the global wall-clock budget only
	// claims the name when it is free.
	if fs.Lookup("timeout") == nil {
		fs.DurationVar(&c.Timeout, "timeout", 0, "global wall-clock budget for the whole run; on expiry the pipeline winds down like an interrupt (0 = unlimited)")
	}
	return c
}

// Begin applies the parsed flags: enables the registry, verbose sink,
// trace collector and/or debug server, starts the CPU profile, and
// installs the interrupt handler. Call it after flag parsing, before the
// work.
func (c *CLI) Begin() error {
	c.start = time.Now()
	if c.LogJSON {
		SetLogJSON(os.Stderr)
	} else if c.Verbose {
		SetVerbose(os.Stderr)
	}
	if c.Verbose || c.LogJSON || c.MetricsOut != "" || c.TraceOut != "" || c.EventsOut != "" || c.DebugAddr != "" {
		Enable(true)
	}
	if c.TraceOut != "" {
		StartTrace()
	}
	if c.EventsOut != "" {
		StartEvents()
	}
	if c.DebugAddr != "" {
		stop, addr, err := StartDebugServer(c.DebugAddr)
		if err != nil {
			return err
		}
		c.stopHTTP = stop
		fmt.Fprintf(os.Stderr, "obs: debug server listening on http://%s\n", addr)
	}
	if c.CPUProfile != "" {
		stop, err := StartCPUProfile(c.CPUProfile)
		if err != nil {
			return err
		}
		c.stopCPU = stop
	}
	// Interrupt handling goes in last so a signal-triggered flush sees
	// every sink above already installed.
	if c.Timeout > 0 {
		//lint:ignore ctx-flow Begin mints the process-root context every command descends from; there is no outer ctx to thread
		c.ctx, c.cancelCtx = context.WithTimeout(context.Background(), c.Timeout)
	} else {
		//lint:ignore ctx-flow Begin mints the process-root context every command descends from; there is no outer ctx to thread
		c.ctx, c.cancelCtx = context.WithCancel(context.Background())
	}
	c.finished = make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	//lint:ignore goroutine-join process-lifetime signal watcher: it exits through c.finished when Finish runs, or takes the process down itself
	go func() {
		defer signal.Stop(sigs)
		select {
		case <-c.finished:
			return // clean exit: the command finished before any signal
		case sig := <-sigs:
			// First signal: cancel the pipeline context and wait. In-flight
			// solves stop at their next iteration boundary, completed CSVs
			// stay on disk, and the command's exit path runs Finish, which
			// flushes telemetry and closes c.finished.
			c.interrupted.Store(true)
			fmt.Fprintf(os.Stderr, "obs: %v: cancelling pipeline, waiting for in-flight work (signal again to exit immediately)\n", sig)
			c.cancelCtx()
			select {
			case <-c.finished:
				return
			case <-sigs:
				// Second signal: the wind-down is taking too long (or is
				// stuck). Flush what we have and go.
				fmt.Fprintln(os.Stderr, "obs: second signal: flushing telemetry and exiting")
				c.Finish() //lint:ignore errcheck second-signal path exits non-zero regardless; the flush is best-effort
				os.Exit(130)
			}
		}
	}()
	return nil
}

// Context returns the pipeline context: cancelled on SIGINT/SIGTERM and
// deadlined by -timeout (Background before Begin). Every solve in the run
// should descend from it.
func (c *CLI) Context() context.Context {
	if c.ctx == nil {
		//lint:ignore ctx-flow Background-before-Begin is this accessor's documented fallback; the real root is minted in Begin
		return context.Background()
	}
	return c.ctx
}

// Interrupted reports whether a SIGINT/SIGTERM triggered the context
// cancellation. Commands use it to exit 130 after a clean wind-down.
func (c *CLI) Interrupted() bool {
	return c.interrupted.Load()
}

// Finish stops profiling and the debug server, records total wall time,
// and writes the metrics and trace dumps. It is idempotent: the interrupt
// handler and the normal exit path may both call it, and only the first
// call does the work (later calls return its error).
func (c *CLI) Finish() error {
	c.finishOnce.Do(func() { c.finishErr = c.finish() })
	return c.finishErr
}

func (c *CLI) finish() error {
	if c.finished != nil {
		close(c.finished) // release the signal handler; after this ^C kills hard
	}
	if c.cancelCtx != nil {
		c.cancelCtx()
	}
	var firstErr error
	if c.stopCPU != nil {
		firstErr = c.stopCPU()
		c.stopCPU = nil
	}
	if c.MemProfile != "" {
		if err := WriteHeapProfile(c.MemProfile); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	wall := time.Since(c.start)
	if Enabled() {
		Observe("wall", wall)
		SetGauge("wall_seconds", wall.Seconds())
	}
	Logf("total wall time %v", wall.Round(time.Microsecond))
	if c.MetricsOut != "" {
		if err := DumpJSON(c.MetricsOut); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.TraceOut != "" {
		if err := DumpTrace(c.TraceOut); err != nil && firstErr == nil {
			firstErr = err
		}
		StopTrace()
	}
	if c.EventsOut != "" {
		// Same contract as the trace dump: the journal is committed
		// atomically, so the first-signal flush is CRC-clean end to end.
		if err := DumpEvents(c.EventsOut); err != nil && firstErr == nil {
			firstErr = err
		}
		StopEvents()
	}
	if c.stopHTTP != nil {
		if err := c.stopHTTP(); err != nil && firstErr == nil {
			firstErr = err
		}
		c.stopHTTP = nil
	}
	return firstErr
}
