package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The golden test pins the exact bytes of the Chrome trace-event output:
// field order, separators and the fixed-point microsecond encoding are all
// part of the contract (stable diffs across runs, Perfetto compatibility).
func TestWriteTraceEventsGolden(t *testing.T) {
	events := []TraceEvent{
		{
			Name: "core.spectral_bound", TsNS: 1000, DurNS: 2500500,
			Gid: 1, ID: 1, ParentID: 0,
			Keys: []string{"n", "solver"}, Vals: []string{"4096", "chebyshev"},
		},
		{
			Name: "core.spectral_bound/eigensolve", TsNS: 2000, DurNS: 2000000,
			Gid: 1, ID: 2, ParentID: 1,
		},
	}
	var buf bytes.Buffer
	if err := writeTraceEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "chrome_trace.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output diverged from %s:\n got: %s\nwant: %s", goldenPath, buf.Bytes(), want)
	}
	// The golden bytes must themselves be a valid JSON document of the
	// shape Perfetto requires: a traceEvents array of complete events.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "dur", "pid", "tid", "args"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event missing %q: %v", field, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Errorf("ph = %v, want X", ev["ph"])
		}
	}
}

func TestWriteTraceEmptyIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTraceEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
}

func TestMicroseconds(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"},
		{2500500, "2500.500"}, {-7, "0.000"},
	}
	for _, c := range cases {
		if got := microseconds(c.ns); got != c.want {
			t.Errorf("microseconds(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// End-to-end: spans started while tracing land in the trace with parent
// links and goroutine ids, and leave the open-span table empty when done.
func TestTraceCollectsSpans(t *testing.T) {
	Reset()
	Enable(false)
	ResetTrace()
	StartTrace()
	defer func() {
		StopTrace()
		ResetTrace()
	}()

	sp := StartSpan("root")
	if sp == nil {
		t.Fatal("tracing alone should activate spans")
	}
	sp.SetInt("size", 42)
	if open := OpenSpans(); len(open) != 1 || open[0].Name != "root" {
		t.Fatalf("open spans = %+v", open)
	}
	child := sp.Child("phase")
	child.End()
	sp.End()
	if open := OpenSpans(); len(open) != 0 {
		t.Fatalf("spans still open after End: %+v", open)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Tid  int64  `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2 (child then root)", len(doc.TraceEvents))
	}
	// Events buffer in End order: child first.
	if doc.TraceEvents[0].Name != "root/phase" || doc.TraceEvents[1].Name != "root" {
		t.Errorf("event names = %s, %s", doc.TraceEvents[0].Name, doc.TraceEvents[1].Name)
	}
	childArgs, rootArgs := doc.TraceEvents[0].Args, doc.TraceEvents[1].Args
	if childArgs["parent_id"] != rootArgs["span_id"] {
		t.Errorf("child parent_id %v != root span_id %v", childArgs["parent_id"], rootArgs["span_id"])
	}
	if rootArgs["size"] != "42" {
		t.Errorf("root args missing field: %v", rootArgs)
	}
	if doc.TraceEvents[0].Tid == 0 {
		t.Error("goroutine id not recorded")
	}
	// The registry stayed off throughout: tracing must not leak metrics.
	if s := Default().Snapshot(); len(s.Timers) != 0 {
		t.Errorf("registry recorded timers while disabled: %+v", s.Timers)
	}
}

func TestGoidParses(t *testing.T) {
	if id := goid(); id <= 0 {
		t.Errorf("goid() = %d, want a positive goroutine id", id)
	}
}
