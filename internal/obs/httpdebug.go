package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// The debug server gives a running sweep live introspection without
// restarting it under a profiler: runtime profiles at /debug/pprof/, the
// default registry as Prometheus text at /metrics, and the currently open
// spans as JSON at /progress. It is aimed at the multi-hour
// cmd/experiments runs where the 15-second heartbeat says only that
// *something* is still running.

var procStart = time.Now()

// StartDebugServer listens on addr ("host:port"; port 0 picks a free one)
// and serves the debug endpoints until the returned stop function is
// called. It also turns on open-span tracking so /progress has data, and
// returns the bound address for logging.
func StartDebugServer(addr string) (stop func() error, boundAddr string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: DebugHandler()}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		// Serve returns ErrServerClosed when the stop function closes the
		// listener, by design.
		_ = srv.Serve(ln)
	}()
	debugTrackRef(+1)
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		debugTrackRef(-1)
		err := srv.Close()
		// Join the Serve goroutine: after stop returns, nothing of the debug
		// server is still running.
		<-serveDone
		return err
	}, ln.Addr().String(), nil
}

// DebugHandler returns the debug endpoints as a mountable http.Handler:
// /metrics (Prometheus text), /progress (open spans JSON), /tasks (live
// scope tree JSON), /debug/pprof/* (runtime profiles), and an index at /.
// StartDebugServer serves exactly this handler; daemons with their own
// listener (cmd/graphiod) mount it next to their API routes instead.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/progress", handleProgress)
	mux.HandleFunc("/tasks", handleTasks)
	mux.HandleFunc("/", handleIndex)
	return mux
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, `<html><body><h1>graphio debug</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text format</li>
<li><a href="/progress">/progress</a> — open spans JSON</li>
<li><a href="/tasks">/tasks</a> — live telemetry scopes JSON</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul></body></html>
`)
}

func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, Default().Snapshot())
}

// progressSnapshot is the /progress response body.
type progressSnapshot struct {
	UptimeSeconds  float64        `json:"uptime_seconds"`
	MetricsEnabled bool           `json:"metrics_enabled"`
	TraceEnabled   bool           `json:"trace_enabled"`
	TraceBuffered  int            `json:"trace_buffered"`
	TraceDropped   int64          `json:"trace_dropped"`
	EventsEnabled  bool           `json:"events_enabled"`
	EventsBuffered int            `json:"events_buffered"`
	EventsDropped  int64          `json:"events_dropped"`
	Sweep          *SweepStatus   `json:"sweep,omitempty"`
	OpenSpans      []OpenSpanInfo `json:"open_spans"`
}

func handleProgress(w http.ResponseWriter, _ *http.Request) {
	buffered, dropped := TraceStats()
	ebuf, edropped := EventStats()
	snap := progressSnapshot{
		UptimeSeconds:  time.Since(procStart).Seconds(),
		MetricsEnabled: Enabled(),
		TraceEnabled:   TraceEnabled(),
		TraceBuffered:  buffered,
		TraceDropped:   dropped,
		EventsEnabled:  EventsEnabled(),
		EventsBuffered: ebuf,
		EventsDropped:  edropped,
		OpenSpans:      OpenSpans(),
	}
	if st, ok := CurrentSweepStatus(); ok {
		snap.Sweep = &st
	}
	if snap.OpenSpans == nil {
		snap.OpenSpans = []OpenSpanInfo{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //lint:ignore errcheck best-effort debug endpoint; a failed write only truncates the client's JSON
}

// tasksSnapshot is the /tasks response body: every live scope with its
// lineage, elapsed time, open spans, and top counters.
type tasksSnapshot struct {
	Tasks []TaskInfo `json:"tasks"`
}

func handleTasks(w http.ResponseWriter, _ *http.Request) {
	snap := tasksSnapshot{Tasks: Tasks()}
	if snap.Tasks == nil {
		snap.Tasks = []TaskInfo{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //lint:ignore errcheck best-effort debug endpoint; a failed write only truncates the client's JSON
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as their native types,
// timers and histograms as summaries (histograms with p50/p90/p99
// quantile series). Metric names are sanitized to the Prometheus charset.
func WritePrometheus(w io.Writer, s Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Timers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t := s.Timers[k]
		n := promName(k) + "_ns"
		fmt.Fprintf(w, "# TYPE %s summary\n%s_sum %d\n%s_count %d\n", n, n, t.TotalNS, n, t.Count)
	}
	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Hists[k]
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, b.LE, b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
		// Quantiles ride along as their own gauge families: a Prometheus
		// family cannot be both histogram and summary, and the estimates
		// are cheap to precompute server-side.
		for _, q := range []struct {
			suffix string
			v      float64
		}{{"_p50", h.P50}, {"_p90", h.P90}, {"_p99", h.P99}} {
			fmt.Fprintf(w, "# TYPE %s%s gauge\n%s%s %g\n", n, q.suffix, n, q.suffix, q.v)
		}
	}
}

// promName maps a metric name onto the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
