package obs_test

// Flush-path durability. The signal/exit flush (-metrics-out, -trace-out,
// heap profiles) goes through persist's atomic writer, so an interrupt or
// I/O fault during the dump can corrupt at most an invisible temp file —
// never a previously committed artifact. External test package: the
// faultinject filesystem imports obs for its own metrics, so these tests
// cannot live inside package obs.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphio/internal/faultinject"
	"graphio/internal/obs"
	"graphio/internal/persist"
)

// withFaultyFS routes every persist-opened file through a fresh
// faultinject wrapper for the duration of the test.
func withFaultyFS(t *testing.T, mk func(persist.File) persist.File) {
	t.Helper()
	persist.WrapFile = mk
	t.Cleanup(func() { persist.WrapFile = nil })
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp debris %s left behind by failed flush", e.Name())
		}
	}
}

func TestDumpJSONFaultPreservesPriorDump(t *testing.T) {
	obs.Enable(true)
	defer obs.Enable(false)
	obs.Reset()
	obs.Inc("flushfault.counter")

	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if err := obs.DumpJSON(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The next flush dies on fsync, like a disk-full SIGINT flush.
	withFaultyFS(t, func(f persist.File) persist.File {
		return &faultinject.File{F: f, FailOnSync: 1}
	})
	obs.Inc("flushfault.counter")
	if err := obs.DumpJSON(path); err == nil {
		t.Fatal("DumpJSON succeeded through a failing fsync")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Error("failed flush replaced the previously committed metrics dump")
	}
	assertNoTemps(t, dir)
}

func TestDumpTraceTornWriteNeverPublishes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	// Torn write: only a prefix of the trace reaches the temp file before
	// the fault hits. The destination must never appear.
	withFaultyFS(t, func(f persist.File) persist.File {
		return &faultinject.File{F: f, FailWriteAfter: 4}
	})
	if err := obs.DumpTrace(path); err == nil {
		t.Fatal("DumpTrace succeeded through a torn write")
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("torn trace dump was published")
	}
	assertNoTemps(t, dir)
}
