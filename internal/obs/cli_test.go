package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphio/internal/persist"
)

func TestCLIFinishIdempotent(t *testing.T) {
	Reset()
	defer func() {
		Enable(false)
		Reset()
	}()
	dir := t.TempDir()
	c := &CLI{MetricsOut: filepath.Join(dir, "m.json")}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	Inc("idem.counter")
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	// A second Finish (the interrupt handler and the normal path can both
	// reach it) must be a no-op, not a double flush or a panic.
	if err := c.Finish(); err != nil {
		t.Fatalf("second Finish: %v", err)
	}
	b, err := readFile(c.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b, "idem.counter") {
		t.Errorf("metrics dump missing counter:\n%s", b)
	}
}

func TestCLITraceOutWritesPerfettoFile(t *testing.T) {
	Reset()
	ResetTrace()
	defer func() {
		Enable(false)
		StopTrace()
		ResetTrace()
		Reset()
	}()
	dir := t.TempDir()
	c := &CLI{TraceOut: filepath.Join(dir, "run.trace.json")}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if !TraceEnabled() {
		t.Fatal("-trace-out should enable the trace collector")
	}
	sp := StartSpan("cli.phase")
	sp.Child("inner").End()
	sp.End()
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if TraceEnabled() {
		t.Error("Finish should stop the trace collector")
	}
	raw, err := os.ReadFile(c.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	if !names["cli.phase"] || !names["cli.phase/inner"] {
		t.Errorf("trace missing spans: %v", names)
	}
}

func TestCLIEventsOutWritesJournal(t *testing.T) {
	Reset()
	ResetEvents()
	defer func() {
		Enable(false)
		StopEvents()
		ResetEvents()
		Reset()
	}()
	dir := t.TempDir()
	c := &CLI{EventsOut: filepath.Join(dir, "events.jsonl")}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if !EventsEnabled() {
		t.Fatal("-events-out should enable the event collector")
	}
	Probe("cli.phase").Iter(0, F("resid", 1.5), FI("restart", 1))
	Probe("cli.phase").Iter(1, F("resid", 0.5), FI("restart", 2))
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if EventsEnabled() {
		t.Error("Finish should stop the event collector")
	}
	recs, err := persist.ReadJournal(c.EventsOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d event records, want 2", len(recs))
	}
	if !strings.Contains(string(recs[1]), `"iter":1`) {
		t.Errorf("second record = %s", recs[1])
	}
}

func TestCLITimeoutDeadlinesContext(t *testing.T) {
	c := &CLI{Timeout: 20 * time.Millisecond}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	defer c.Finish()
	if _, ok := c.Context().Deadline(); !ok {
		t.Fatal("-timeout did not put a deadline on the pipeline context")
	}
	select {
	case <-c.Context().Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context never expired")
	}
	if c.Interrupted() {
		t.Error("a wall-clock timeout must not report as a signal interrupt")
	}
}

func TestCLITimeoutFlagYieldsToExistingFlag(t *testing.T) {
	// specio mincut predates the global budget with its own -timeout (the
	// per-sweep cutoff); AddFlags must not collide with it.
	fs := flag.NewFlagSet("sub", flag.ContinueOnError)
	var local time.Duration
	fs.DurationVar(&local, "timeout", 0, "subcommand-scoped cutoff")
	c := AddFlags(fs)
	if err := fs.Parse([]string{"-timeout", "7s"}); err != nil {
		t.Fatal(err)
	}
	if local != 7*time.Second {
		t.Errorf("pre-existing flag got %v, want 7s", local)
	}
	if c.Timeout != 0 {
		t.Errorf("CLI.Timeout = %v, want 0 (name owned by the subcommand)", c.Timeout)
	}

	fs2 := flag.NewFlagSet("plain", flag.ContinueOnError)
	c2 := AddFlags(fs2)
	if err := fs2.Parse([]string{"-timeout", "7s"}); err != nil {
		t.Fatal(err)
	}
	if c2.Timeout != 7*time.Second {
		t.Errorf("CLI.Timeout = %v, want 7s", c2.Timeout)
	}
}

// TestCLIInterruptFlushesTelemetry re-runs the test binary as a child that
// starts a CLI-managed "sweep", then interrupts it and checks the metrics
// and trace dumps were still written — the exact Ctrl-C-loses-everything
// failure the interrupt handler exists to fix.
func TestCLIInterruptFlushesTelemetry(t *testing.T) {
	if os.Getenv("OBS_CLI_INTERRUPT_CHILD") == "1" {
		cliInterruptChild()
		return
	}
	dir := t.TempDir()
	mout := filepath.Join(dir, "m.json")
	tout := filepath.Join(dir, "t.json")
	eout := filepath.Join(dir, "events.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run", "TestCLIInterruptFlushesTelemetry$")
	cmd.Env = append(os.Environ(),
		"OBS_CLI_INTERRUPT_CHILD=1", "OBS_CLI_MOUT="+mout, "OBS_CLI_TOUT="+tout, "OBS_CLI_EOUT="+eout)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the child to report it is mid-"sweep" before interrupting.
	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "CHILD_READY") {
				ready <- nil
				return
			}
		}
		ready <- errors.New("child exited before READY")
	}()
	select {
	case err := <-ready:
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("timed out waiting for child")
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("child exit = %v, want non-zero status", err)
	}
	if code := exit.ExitCode(); code != 130 {
		t.Errorf("child exit code = %d, want 130", code)
	}
	metrics, err := readFile(mout)
	if err != nil {
		t.Fatalf("metrics not flushed on interrupt: %v", err)
	}
	if !strings.Contains(metrics, "child.sweep.counter") {
		t.Errorf("flushed metrics missing counter:\n%s", metrics)
	}
	trace, err := readFile(tout)
	if err != nil {
		t.Fatalf("trace not flushed on interrupt: %v", err)
	}
	if !strings.Contains(trace, "child.sweep") {
		t.Errorf("flushed trace missing span:\n%s", trace)
	}
	// The event journal must not just exist — it must be CRC-clean: every
	// frame replayable, no torn tail from the interrupt-time flush.
	recs, err := persist.ReadJournal(eout)
	if err != nil {
		t.Fatalf("interrupt-flushed event journal not clean: %v", err)
	}
	foundProbe := false
	for _, r := range recs {
		if strings.Contains(string(r), `"probe":"child.sweep_probe"`) {
			foundProbe = true
		}
	}
	if !foundProbe {
		t.Errorf("flushed events missing probe record (%d records)", len(recs))
	}
}

// cliInterruptChild is the body run inside the re-executed test binary.
func cliInterruptChild() {
	c := &CLI{
		MetricsOut: os.Getenv("OBS_CLI_MOUT"),
		TraceOut:   os.Getenv("OBS_CLI_TOUT"),
		EventsOut:  os.Getenv("OBS_CLI_EOUT"),
	}
	if err := c.Begin(); err != nil {
		fmt.Println("CHILD_BEGIN_ERROR", err)
		os.Exit(3)
	}
	Inc("child.sweep.counter")
	sp := StartSpan("child.sweep")
	sp.End()
	Probe("child.sweep_probe").Iter(0, F("resid", 0.25))
	fmt.Println("CHILD_READY")
	// The new contract: the signal cancels Context(), the command winds down
	// on its own, flushes through Finish, and exits 130 itself.
	select {
	case <-c.Context().Done():
	case <-time.After(30 * time.Second):
		os.Exit(0) // reached only if the signal never came
	}
	if err := c.Finish(); err != nil {
		fmt.Println("CHILD_FINISH_ERROR", err)
		os.Exit(3)
	}
	if c.Interrupted() {
		os.Exit(130)
	}
	os.Exit(0)
}
