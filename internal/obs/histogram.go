package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histograms record value *distributions* where timers record only
// count/total/min/max. They exist for the hot paths whose per-event cost
// varies by orders of magnitude across one run — per-k bound evaluations,
// eigensolver mat-vecs, min-cut flow rounds, pebble simulations — where a
// mean hides the tail that actually determines wall time.
//
// The layout is 65 power-of-two buckets over int64 values (nanoseconds for
// durations, raw counts for rates): bucket 0 holds v ≤ 0 and bucket i
// (1 ≤ i ≤ 64) holds 2^(i-1) ≤ v < 2^i. Every write is a handful of atomic
// adds — no lock, no allocation — so concurrent writers (the Chebyshev
// filter pool, the min-cut workers) never serialize on telemetry.
const histBuckets = 65

type hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // seeded to MaxInt64 at creation
	max     atomic.Int64 // seeded to MinInt64 at creation
	buckets [histBuckets]atomic.Int64
}

func newHist() *hist {
	h := &hist{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// histBucket maps a value to its bucket index: 0 for v ≤ 0, otherwise the
// bit length of v, so bucket i covers [2^(i-1), 2^i).
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

func (h *hist) observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[histBucket(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistStat is the exported state of one histogram. Quantiles are estimated
// by linear interpolation inside the owning log bucket and clamped to the
// observed [min, max], so a histogram fed a single repeated value reports
// that exact value at every quantile.
type HistStat struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Buckets is the cumulative bucket table in Prometheus histogram
	// convention: each entry counts observations ≤ LE, and only upper
	// bounds whose underlying bucket is non-empty appear. Omitted from
	// JSON when the histogram is empty, so older dumps stay comparable.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one cumulative bucket: Count observations had value ≤ LE.
type HistBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// stat snapshots the histogram. Concurrent writers may land between the
// field loads; the skew is at most the handful of in-flight observations.
func (h *hist) stat() HistStat {
	s := HistStat{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	var b [histBuckets]int64
	total := int64(0)
	for i := range b {
		b[i] = h.buckets[i].Load()
		total += b[i]
	}
	cum := int64(0)
	for i, c := range b {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		if i == 0 {
			hi = 0 // bucket 0 holds v ≤ 0
		}
		s.Buckets = append(s.Buckets, HistBucket{LE: hi, Count: cum})
	}
	s.P50 = histQuantile(b[:], total, s.Min, s.Max, 0.50)
	s.P90 = histQuantile(b[:], total, s.Min, s.Max, 0.90)
	s.P99 = histQuantile(b[:], total, s.Min, s.Max, 0.99)
	return s
}

// histQuantile estimates quantile q from bucket counts, interpolating
// linearly within the bucket that holds the target rank and clamping to
// the observed extremes.
func histQuantile(buckets []int64, total, min, max int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= rank {
			lo, hi := bucketBounds(i)
			v := lo + (rank-cum)/fc*(hi-lo)
			if v < float64(min) {
				v = float64(min)
			}
			if v > float64(max) {
				v = float64(max)
			}
			return v
		}
		cum += fc
	}
	return float64(max)
}

// ObserveHist folds value v into histogram name.
func (r *Registry) ObserveHist(name string, v int64) {
	r.hist(name).observe(v)
}

func (r *Registry) hist(name string) *hist {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHist()
		r.hists[name] = h
	}
	return h
}

// Hist returns the current statistics of histogram name (zero value if the
// histogram was never observed).
func (r *Registry) Hist(name string) HistStat {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h == nil {
		return HistStat{}
	}
	return h.stat()
}

// Package-level helpers, gated like the counter/gauge/timer ones.

// ObserveHist folds v into a default-registry histogram when enabled.
func ObserveHist(name string, v int64) {
	if !enabled.Load() {
		return
	}
	defaultR.ObserveHist(name, v)
}

// ObserveHistDuration folds a duration (as nanoseconds) into a
// default-registry histogram when enabled.
func ObserveHistDuration(name string, d time.Duration) {
	ObserveHist(name, d.Nanoseconds())
}

// TimeHist starts a stopwatch whose stop function feeds histogram name.
// When collection is disabled the returned function is a no-op.
func TimeHist(name string) func() {
	if !enabled.Load() {
		return func() {}
	}
	start := time.Now()
	return func() { defaultR.ObserveHist(name, time.Since(start).Nanoseconds()) }
}
