package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
)

// Logging rides log/slog. Two handlers ship: the line handler renders the
// classic "[obs] msg k=v" text the -v flag has always produced (goldens
// and operator muscle memory keep working), and slog's JSONHandler serves
// machine consumers behind -log-json. Both receive the same records —
// span completions, Logf events — and scoped records carry the scope path
// and correlation ID as attributes, so a JSON log line can be joined to
// the /tasks view and the per-scope metrics sections it belongs to.
var (
	logOn  atomic.Bool
	logMu  sync.Mutex
	logger *slog.Logger
)

// SetLogger installs l as the telemetry log sink; nil silences logging.
func SetLogger(l *slog.Logger) {
	logMu.Lock()
	logger = l
	logMu.Unlock()
	logOn.Store(l != nil)
}

// SetVerbose directs span/event lines to w in the legacy "[obs] msg k=v"
// text form; nil silences them. It is the -v wiring.
func SetVerbose(w io.Writer) {
	if w == nil {
		SetLogger(nil)
		return
	}
	SetLogger(slog.New(&lineHandler{out: &syncWriter{w: w}}))
}

// SetLogJSON directs span/event records to w as slog JSON lines; nil
// silences them. It is the -log-json wiring.
func SetLogJSON(w io.Writer) {
	if w == nil {
		SetLogger(nil)
		return
	}
	SetLogger(slog.New(slog.NewJSONHandler(w, nil)))
}

// Verbose reports whether a log sink is installed.
func Verbose() bool { return logOn.Load() }

func currentLogger() *slog.Logger {
	logMu.Lock()
	defer logMu.Unlock()
	return logger
}

// Logf writes one unscoped event record to the log sink, if any.
func Logf(format string, args ...interface{}) {
	if !logOn.Load() {
		return
	}
	l := currentLogger()
	if l == nil {
		return
	}
	l.Info(fmt.Sprintf(format, args...))
}

// LogCtx writes one event record attributed to ctx's scope: the scope
// path and correlation ID ride every record as attributes.
func LogCtx(ctx context.Context, format string, args ...interface{}) {
	if !logOn.Load() {
		return
	}
	l := currentLogger()
	if l == nil {
		return
	}
	if s := FromContext(ctx); s != nil {
		l.Info(fmt.Sprintf(format, args...), slog.String("scope", s.path), slog.String("scope_id", s.id))
		return
	}
	l.Info(fmt.Sprintf(format, args...))
}

// logRecord emits msg with pre-built attrs through the sink (span.End's
// path — it has already rendered its fields as attributes).
func logRecord(msg string, attrs []slog.Attr) {
	l := currentLogger()
	if l == nil {
		return
	}
	args := make([]any, len(attrs))
	for i, a := range attrs {
		args[i] = a
	}
	l.Info(msg, args...)
}

// syncWriter serializes writes so concurrent span completions cannot
// interleave mid-line on the shared sink.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// lineHandler renders slog records in the legacy verbose-sink format:
// "[obs] <message> k=v k=v\n". Level and timestamp are dropped — the text
// sink is for humans tailing a run, and the trace/metrics files carry the
// precise timings.
type lineHandler struct {
	out   io.Writer
	attrs []slog.Attr
}

// Enabled implements slog.Handler; the line sink takes every level.
func (h *lineHandler) Enabled(context.Context, slog.Level) bool { return true }

// Handle implements slog.Handler.
func (h *lineHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString("[obs] ")
	b.WriteString(r.Message)
	writeAttr := func(a slog.Attr) bool {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value.String())
		return true
	}
	//lint:ignore ctx-loop slog.Handler interface ctx; rendering a handful of attrs needs no cancellation
	for _, a := range h.attrs {
		writeAttr(a)
	}
	r.Attrs(writeAttr)
	b.WriteByte('\n')
	_, err := io.WriteString(h.out, b.String())
	return err
}

// WithAttrs implements slog.Handler.
func (h *lineHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return &lineHandler{out: h.out, attrs: merged}
}

// WithGroup implements slog.Handler. Groups are flattened: the line
// format has no nesting.
func (h *lineHandler) WithGroup(string) slog.Handler { return h }
