package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistBucketMapping(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's bounds must tile [1, 2^63) without gaps.
	for i := 1; i < 64; i++ {
		lo, hi := bucketBounds(i)
		if lo != math.Ldexp(1, i-1) || hi != math.Ldexp(1, i) {
			t.Errorf("bucketBounds(%d) = (%g, %g)", i, lo, hi)
		}
	}
}

// A histogram fed one repeated value must report that exact value at every
// quantile — the min/max clamp, not bucket interpolation, decides.
func TestHistSingleValueQuantiles(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.ObserveHist("h", 8) // 8 sits exactly on a bucket boundary
	}
	h := r.Hist("h")
	if h.Count != 50 || h.Min != 8 || h.Max != 8 {
		t.Fatalf("stat = %+v", h)
	}
	for _, q := range []float64{h.P50, h.P90, h.P99} {
		if q != 8 {
			t.Errorf("quantile = %g, want exactly 8", q)
		}
	}
	if h.Mean != 8 {
		t.Errorf("mean = %g, want 8", h.Mean)
	}
}

func TestHistQuantilesAtBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	for _, v := range []int64{1, 2, 4, 8} { // each exactly a bucket lower bound
		r.ObserveHist("h", v)
	}
	h := r.Hist("h")
	if h.Count != 4 || h.Sum != 15 || h.Min != 1 || h.Max != 8 {
		t.Fatalf("stat = %+v", h)
	}
	// p50's rank lands at the top of the [2,4) bucket: the estimate must
	// stay inside the data's true middle range.
	if h.P50 < 2 || h.P50 > 4 {
		t.Errorf("p50 = %g, want within [2, 4]", h.P50)
	}
	// p99's rank lands in the [8,16) bucket; the max clamp must pin it to
	// the largest observed value rather than the bucket's upper bound.
	if h.P99 != 8 {
		t.Errorf("p99 = %g, want 8 (clamped to max)", h.P99)
	}
	if h.P90 > 8 || h.P90 < 4 {
		t.Errorf("p90 = %g, want within [4, 8]", h.P90)
	}
}

func TestHistNonPositiveValues(t *testing.T) {
	r := NewRegistry()
	r.ObserveHist("h", 0)
	r.ObserveHist("h", -5)
	h := r.Hist("h")
	if h.Count != 2 || h.Min != -5 || h.Max != 0 {
		t.Fatalf("stat = %+v", h)
	}
	if h.P50 < -5 || h.P50 > 0 {
		t.Errorf("p50 = %g, want within [min, max]", h.P50)
	}
	if h.Mean != -2.5 {
		t.Errorf("mean = %g, want -2.5", h.Mean)
	}
}

// TestHistConcurrent hammers one histogram from many goroutines; the real
// assertion is the -race run, the totals are a bonus.
func TestHistConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.ObserveHist("shared", int64(i%1000)+1)
			}
		}(w)
	}
	wg.Wait()
	h := r.Hist("shared")
	if h.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", h.Count, workers*perWorker)
	}
	if h.Min != 1 || h.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 1/1000", h.Min, h.Max)
	}
}

func TestHistSnapshotOmitsNeverObserved(t *testing.T) {
	r := NewRegistry()
	r.hist("ghost") // touched but never observed
	r.ObserveHist("real", 7)
	s := r.Snapshot()
	if _, ok := s.Hists["ghost"]; ok {
		t.Error("never-observed histogram leaked into the snapshot")
	}
	if s.Hists["real"].Count != 1 {
		t.Errorf("hists = %+v", s.Hists)
	}
}

func TestHistPackageHelpersGated(t *testing.T) {
	Reset()
	Enable(false)
	ObserveHist("never", 1)
	ObserveHistDuration("never", time.Second)
	TimeHist("never")()
	if s := Default().Snapshot(); len(s.Hists) != 0 {
		t.Errorf("disabled helpers recorded hists: %+v", s.Hists)
	}
	Enable(true)
	defer func() {
		Enable(false)
		Reset()
	}()
	ObserveHist("on", 3)
	ObserveHistDuration("on_ns", 2*time.Microsecond)
	stop := TimeHist("timed_ns")
	stop()
	s := Default().Snapshot()
	if s.Hists["on"].Count != 1 || s.Hists["on"].Max != 3 {
		t.Errorf("hist on = %+v", s.Hists["on"])
	}
	if s.Hists["on_ns"].Max != 2000 {
		t.Errorf("hist on_ns = %+v", s.Hists["on_ns"])
	}
	if s.Hists["timed_ns"].Count != 1 {
		t.Errorf("hist timed_ns = %+v", s.Hists["timed_ns"])
	}
}
