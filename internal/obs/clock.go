package obs

import (
	"sync/atomic"
	"time"
)

// The repo's time-now lint rule routes every wall-clock read outside this
// package through Now/Since, so all timing the system acts on is visible to
// the observability layer and can be driven by an injected clock in fault
// and determinism tests.

var clockFn atomic.Value // func() time.Time; nil entry means wall clock

// Now returns the current time from the active clock (the real wall clock
// unless SetClock installed an override).
func Now() time.Time {
	if f, ok := clockFn.Load().(func() time.Time); ok && f != nil {
		return f()
	}
	return time.Now()
}

// Since returns the elapsed time between t and Now(), mirroring time.Since
// but honoring an injected clock.
func Since(t time.Time) time.Duration { return Now().Sub(t) }

// SetClock overrides the time source used by Now and Since. Passing nil
// restores the wall clock. Intended for tests and fault injection — e.g.
// freezing time to make duration metrics deterministic.
func SetClock(f func() time.Time) {
	if f == nil {
		clockFn.Store((func() time.Time)(nil))
		return
	}
	clockFn.Store(f)
}
