package obs

import (
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"graphio/internal/persist"
)

func resetProbes(t *testing.T) {
	t.Helper()
	StopEvents()
	ResetEvents()
	t.Cleanup(func() {
		StopEvents()
		ResetEvents()
		SetClock(nil)
	})
}

func TestProbeDisabledIsInert(t *testing.T) {
	resetProbes(t)
	Probe("linalg.lanczos").Iter(0, F("resid", 0.5))
	if n, _ := EventStats(); n != 0 {
		t.Errorf("disabled collector buffered %d events", n)
	}
	if EventsEnabled() {
		t.Error("EventsEnabled true before StartEvents")
	}
}

// TestProbeEventRoundTrip drives the collector with an injected clock and
// checks the dumped file is a CRC-clean persist journal whose payloads
// are byte-for-byte deterministic.
func TestProbeEventRoundTrip(t *testing.T) {
	resetProbes(t)
	base := time.Unix(1700000000, 0)
	tick := 0
	SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	})
	StartEvents()
	if !EventsEnabled() {
		t.Fatal("EventsEnabled false after StartEvents")
	}
	Probe("linalg.lanczos").Iter(0, F("resid", 0.5), FI("locked", 2))
	Probe("linalg.lanczos").Iter(1, F("bad", math.NaN()), F("width", 1e-9))
	Probe("pebble.simulate").Iter(4096)
	StopEvents()
	Probe("linalg.lanczos").Iter(2, F("resid", 0.1))

	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := DumpEvents(path); err != nil {
		t.Fatal(err)
	}
	recs, err := persist.ReadJournal(path)
	if err != nil {
		t.Fatalf("dumped event log is not a clean journal: %v", err)
	}
	want := []string{
		`{"probe":"linalg.lanczos","iter":0,"t_ns":1000000,"f":{"resid":0.5,"locked":2}}`,
		`{"probe":"linalg.lanczos","iter":1,"t_ns":2000000,"f":{"width":1e-09}}`,
		`{"probe":"pebble.simulate","iter":4096,"t_ns":3000000,"f":{}}`,
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if string(recs[i]) != w {
			t.Errorf("record %d = %s, want %s", i, recs[i], w)
		}
	}
}

func TestWriteEventsDeterministic(t *testing.T) {
	resetProbes(t)
	base := time.Unix(1700000000, 0)
	SetClock(func() time.Time { return base })
	StartEvents()
	for i := int64(0); i < 10; i++ {
		Probe("mincut.sweep").Iter(i, FI("cut", 100-i), FI("best", 90))
	}
	StopEvents()
	var a, b strings.Builder
	if err := WriteEvents(&a); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvents(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two WriteEvents of the same buffer differ")
	}
	if a.Len() == 0 {
		t.Error("no output")
	}
}

// Concurrent emitters (the mincut worker pool) must be safe under -race
// and lose nothing below the buffer bound.
func TestProbeConcurrentEmit(t *testing.T) {
	resetProbes(t)
	StartEvents()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := Probe("mincut.sweep")
			for i := 0; i < per; i++ {
				p.Iter(int64(i), FI("worker", int64(w)))
			}
		}(w)
	}
	wg.Wait()
	StopEvents()
	if n, dropped := EventStats(); n != workers*per || dropped != 0 {
		t.Errorf("buffered %d (dropped %d), want %d", n, dropped, workers*per)
	}
}
