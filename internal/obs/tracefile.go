package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphio/internal/persist"
)

// The trace collector records completed spans as events and serializes
// them to the Chrome trace-event JSON format, which Perfetto and
// chrome://tracing open directly. It is independent of the metrics
// registry: -trace-out enables it alone; -debug-addr enables only the
// open-span *tracking* half so /progress can show what a long sweep is
// doing without buffering a full trace.
//
// Collection is bounded: after maxTraceEvents completed spans, further
// events are counted as dropped rather than buffered, so a multi-hour
// sweep cannot exhaust memory through telemetry.
const maxTraceEvents = 1 << 20

// TraceEvent is one completed span, ready for serialization. Ts and Dur
// are nanoseconds; Ts is relative to the trace start.
type TraceEvent struct {
	Name     string
	TsNS     int64
	DurNS    int64
	Gid      int64
	ID       uint64
	ParentID uint64 // 0 = root span
	Keys     []string
	Vals     []string
}

// openSpan is the immutable-at-start info /progress snapshots. Span fields
// (SetInt etc.) are deliberately excluded: they are appended without a lock
// by the owning goroutine and must not be read concurrently.
type openSpan struct {
	name  string
	start time.Time
	gid   int64
}

var tracer struct {
	record atomic.Bool // buffer completed spans for -trace-out
	track  atomic.Bool // maintain the open-span table (record or debug server)
	debug  atomic.Int32
	nextID atomic.Uint64

	mu      sync.Mutex
	start   time.Time
	events  []TraceEvent
	open    map[uint64]openSpan
	dropped int64
}

// StartTrace begins buffering completed spans (idempotent).
func StartTrace() {
	tracer.mu.Lock()
	if tracer.open == nil {
		tracer.open = make(map[uint64]openSpan)
	}
	if tracer.start.IsZero() {
		tracer.start = time.Now()
	}
	tracer.mu.Unlock()
	tracer.record.Store(true)
	tracer.track.Store(true)
}

// StopTrace stops buffering completed spans. Already-buffered events stay
// available to WriteTrace until ResetTrace.
func StopTrace() {
	tracer.record.Store(false)
	tracer.track.Store(tracer.debug.Load() > 0)
}

// TraceEnabled reports whether completed spans are being buffered.
func TraceEnabled() bool { return tracer.record.Load() }

// ResetTrace drops all buffered and open spans (tests, mainly).
func ResetTrace() {
	tracer.mu.Lock()
	tracer.events = nil
	tracer.open = make(map[uint64]openSpan)
	tracer.start = time.Time{}
	tracer.dropped = 0
	tracer.mu.Unlock()
}

// trackingSpans reports whether spans need trace bookkeeping at all.
func trackingSpans() bool { return tracer.track.Load() }

// debugTrackRef counts debug servers that need the open-span table; the
// table stays on while either tracing or at least one server is active.
func debugTrackRef(delta int32) {
	n := tracer.debug.Add(delta)
	tracer.mu.Lock()
	if tracer.open == nil {
		tracer.open = make(map[uint64]openSpan)
	}
	if tracer.start.IsZero() {
		tracer.start = time.Now()
	}
	tracer.mu.Unlock()
	tracer.track.Store(tracer.record.Load() || n > 0)
}

// beginTraceSpan registers a newly started span and returns its trace id.
func beginTraceSpan(name string, start time.Time, gid int64) uint64 {
	id := tracer.nextID.Add(1)
	tracer.mu.Lock()
	if tracer.open == nil {
		tracer.open = make(map[uint64]openSpan)
	}
	tracer.open[id] = openSpan{name: name, start: start, gid: gid}
	tracer.mu.Unlock()
	return id
}

// endTraceSpan unregisters span id and, when recording, buffers its event.
func endTraceSpan(s *Span, end time.Time) {
	tracer.mu.Lock()
	delete(tracer.open, s.traceID)
	if !tracer.record.Load() {
		tracer.mu.Unlock()
		return
	}
	if len(tracer.events) >= maxTraceEvents {
		tracer.dropped++
		tracer.mu.Unlock()
		return
	}
	ev := TraceEvent{
		Name:     s.name,
		TsNS:     s.start.Sub(tracer.start).Nanoseconds(),
		DurNS:    end.Sub(s.start).Nanoseconds(),
		Gid:      s.gid,
		ID:       s.traceID,
		ParentID: s.parentID,
	}
	if len(s.keys) > 0 {
		ev.Keys = append([]string(nil), s.keys...)
		ev.Vals = append([]string(nil), s.vals...)
	}
	tracer.events = append(tracer.events, ev)
	tracer.mu.Unlock()
}

// OpenSpanInfo is one still-running span, as reported by /progress.
type OpenSpanInfo struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Goroutine int64  `json:"goroutine"`
}

// OpenSpans returns the currently open spans, oldest first.
func OpenSpans() []OpenSpanInfo {
	now := time.Now()
	tracer.mu.Lock()
	infos := make([]OpenSpanInfo, 0, len(tracer.open))
	starts := make([]time.Time, 0, len(tracer.open))
	for _, sp := range tracer.open {
		infos = append(infos, OpenSpanInfo{Name: sp.name, ElapsedNS: now.Sub(sp.start).Nanoseconds(), Goroutine: sp.gid})
		starts = append(starts, sp.start)
	}
	tracer.mu.Unlock()
	sort.Sort(&openByStart{infos, starts})
	return infos
}

type openByStart struct {
	infos  []OpenSpanInfo
	starts []time.Time
}

func (o *openByStart) Len() int           { return len(o.infos) }
func (o *openByStart) Less(i, j int) bool { return o.starts[i].Before(o.starts[j]) }
func (o *openByStart) Swap(i, j int) {
	o.infos[i], o.infos[j] = o.infos[j], o.infos[i]
	o.starts[i], o.starts[j] = o.starts[j], o.starts[i]
}

// TraceStats reports the collector's buffered and dropped event counts.
func TraceStats() (buffered int, dropped int64) {
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	return len(tracer.events), tracer.dropped
}

// WriteTrace serializes the buffered events as Chrome trace-event JSON.
func WriteTrace(w io.Writer) error {
	tracer.mu.Lock()
	events := append([]TraceEvent(nil), tracer.events...)
	dropped := tracer.dropped
	tracer.mu.Unlock()
	if dropped > 0 {
		Logf("trace: %d spans dropped past the %d-event buffer", dropped, maxTraceEvents)
	}
	return writeTraceEvents(w, events)
}

// DumpTrace writes the buffered trace to path atomically (temp file +
// rename), so an interrupt landing mid-flush cannot truncate an existing
// trace or leave a half-written one.
func DumpTrace(path string) error {
	return persist.WriteTo(path, WriteTrace)
}

// writeTraceEvents emits the JSON Object Format of the Chrome trace-event
// spec: {"traceEvents":[...]} with one complete ("ph":"X") event per span.
// Fields are written by hand, in a fixed order, so the output is stable
// for golden-file testing and diffing across runs.
func writeTraceEvents(w io.Writer, events []TraceEvent) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":["); err != nil {
		return err
	}
	for i := range events {
		e := &events[i]
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n{\"name\":%s,\"cat\":\"obs\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{",
			sep, quoteJSON(e.Name), microseconds(e.TsNS), microseconds(e.DurNS), e.Gid); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "\"span_id\":%d,\"parent_id\":%d", e.ID, e.ParentID); err != nil {
			return err
		}
		for j, k := range e.Keys {
			if _, err := fmt.Fprintf(w, ",%s:%s", quoteJSON(k), quoteJSON(e.Vals[j])); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ns\"}\n")
	return err
}

// microseconds renders ns as a decimal microsecond value with nanosecond
// precision ("1234.567"), avoiding float formatting instability.
func microseconds(ns int64) string {
	if ns < 0 {
		ns = 0
	}
	return strconv.FormatInt(ns/1000, 10) + "." + fmt.Sprintf("%03d", ns%1000)
}

// quoteJSON escapes s as a JSON string literal. strconv.Quote would be
// cheaper but emits Go \x escapes that are invalid JSON.
func quoteJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(b)
}

// goid parses the current goroutine's id from its stack header
// ("goroutine 123 [running]:"). Only called on span start while tracing —
// microseconds of cost against a phase-scale span.
func goid() int64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	s = s[len(prefix):]
	var id int64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
